/**
 * @file
 * TenantMux / ShardPartitionTrace implementation.
 */

#include "service/tenant_mux.hh"

#include "common/check.hh"
#include "common/flat_map.hh"

namespace dewrite {

TenantMux::TenantMux(const std::vector<TenantSpec> &tenants,
                     unsigned burst_max)
    : burstMax_(burst_max)
{
    DEWRITE_CHECK(!tenants.empty(), "mux needs at least one tenant");
    DEWRITE_CHECK(burst_max >= 1, "burst length must be at least one");
    streams_.reserve(tenants.size());
    for (const TenantSpec &tenant : tenants) {
        streams_.push_back(std::make_unique<SyntheticWorkload>(
            tenant.profile, tenant.seed));
    }
    remaining_ = burstLen(0, 0);
}

unsigned
TenantMux::burstLen(std::uint64_t tenant, std::uint64_t round) const
{
    // A pure hash of the visit keeps arrivals bursty but replayable.
    const std::uint64_t mixed =
        flatMix64(round * 0x9e3779b97f4a7c15ULL + tenant + 1);
    return 1 + static_cast<unsigned>(mixed % burstMax_);
}

void
TenantMux::next(MemEvent &event, std::uint64_t &tenant)
{
    while (remaining_ == 0) {
        if (++current_ == streams_.size()) {
            current_ = 0;
            ++round_;
        }
        remaining_ = burstLen(current_, round_);
    }
    --remaining_;
    tenant = current_;
    const bool alive = streams_[current_]->next(event);
    DEWRITE_CHECK(alive, "synthetic tenant stream ended unexpectedly");
}

ShardPartitionTrace::ShardPartitionTrace(
    const std::vector<TenantSpec> &tenants, unsigned burst_max,
    const ShardRouter &router, std::size_t shard)
    : mux_(tenants, burst_max), router_(router), shard_(shard)
{
}

bool
ShardPartitionTrace::next(MemEvent &event)
{
    // Draw from the canonical order until an event routes here. The
    // skipped events belong to other shards; their instruction gaps are
    // theirs too, so nothing of them leaks into this shard's timing.
    for (;;) {
        std::uint64_t tenant = 0;
        mux_.next(event, tenant);
        const std::uint64_t g = router_.globalKey(tenant, event.addr);
        if (router_.shardOf(g) == shard_) {
            event.addr = router_.localAddr(g);
            return true;
        }
    }
}

} // namespace dewrite
