/**
 * @file
 * FreeSpaceTable implementation.
 */

#include "dedup/free_space.hh"

#include "common/logging.hh"

namespace dewrite {

FreeSpaceTable::FreeSpaceTable(std::uint64_t num_lines)
    : bits_(num_lines, true), freeCount_(num_lines)
{
    if (num_lines == 0)
        fatal("free-space table needs at least one line");
}

bool
FreeSpaceTable::isFree(LineAddr slot) const
{
    return bits_[slot];
}

void
FreeSpaceTable::allocate(LineAddr slot)
{
    if (!bits_[slot])
        panic("FSM: allocating already-used slot %llu",
              static_cast<unsigned long long>(slot));
    bits_[slot] = false;
    --freeCount_;
}

void
FreeSpaceTable::release(LineAddr slot)
{
    if (bits_[slot])
        panic("FSM: releasing already-free slot %llu",
              static_cast<unsigned long long>(slot));
    bits_[slot] = true;
    ++freeCount_;
}

LineAddr
FreeSpaceTable::allocatePreferring(LineAddr preferred)
{
    if (freeCount_ == 0)
        return kInvalidAddr;
    if (preferred < bits_.size() && bits_[preferred]) {
        allocate(preferred);
        return preferred;
    }
    for (std::uint64_t probes = 0; probes < bits_.size(); ++probes) {
        const LineAddr slot = cursor_;
        cursor_ = (cursor_ + 1) % bits_.size();
        if (bits_[slot]) {
            allocate(slot);
            return slot;
        }
    }
    panic("FSM: freeCount %llu but no free slot found",
          static_cast<unsigned long long>(freeCount_));
}

} // namespace dewrite
