/**
 * @file
 * The inverted hash table (Section III-B2) with counter colocation
 * (Section III-C).
 *
 * Indexed by storage slot (real address), entry S holds the fingerprint
 * of the data currently stored at slot S so that a rewrite can find and
 * remove the stale record from the hash store without rehashing old
 * data. When slot S holds no valid data, the entry is "null" and is
 * reused to store slot S's encryption counter (flag = 0) — counters must
 * survive frees so that a reallocated slot never repeats an OTP.
 */

#ifndef DEWRITE_DEDUP_INVERTED_HASH_HH
#define DEWRITE_DEDUP_INVERTED_HASH_HH

#include <cstdint>

#include "common/paged_array.hh"
#include "common/types.hh"

namespace dewrite {

class InvertedHashTable
{
  public:
    /** Pre-sizes the table for @p num_lines storage slots. */
    // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
    // the hot edge is a member-name over-approximation
    void reserve(std::uint64_t num_lines) { entries_.reserve(num_lines); }

    /** Pure cache-warming hint for slot @p real_addr's entry. */
    void prefetch(LineAddr real_addr) const
    {
        entries_.prefetch(real_addr);
    }

    /** True iff slot @p real_addr currently holds valid data. */
    bool holdsData(LineAddr real_addr) const;

    /** The fingerprint of the data at @p real_addr (must hold data). */
    std::uint64_t hash(LineAddr real_addr) const;

    /**
     * Marks @p real_addr as holding data fingerprinted by @p hash. Any
     * counter colocated in the entry is destroyed: the caller
     * (DedupEngine::setCounterOf) must save it beforehand and re-home
     * it afterwards.
     */
    void setHash(LineAddr real_addr, std::uint64_t hash);

    /**
     * Marks @p real_addr as holding no valid data; the entry becomes a
     * null (counter) slot holding 0 until the caller re-homes a counter.
     */
    void clearHash(LineAddr real_addr);

    /**
     * Counter colocated at entry @p real_addr. Only valid when the slot
     * holds no data. Unwritten entries hold counter 0.
     */
    std::uint64_t counter(LineAddr real_addr) const;

    /** Stores @p counter; the slot must not hold data. */
    void setCounter(LineAddr real_addr, std::uint64_t counter);

    /**
     * Fused holdsData() + counter() in one table walk: when the slot
     * holds no data, stores its colocated counter (0 if untouched)
     * into @p counter and returns true; returns false for data slots.
     */
    bool counterIfNoData(LineAddr real_addr, std::uint64_t &counter) const;

    /**
     * Fused holdsData() + setCounter() in one table walk: stores
     * @p counter iff the slot holds no data; returns whether it did.
     */
    bool trySetCounter(LineAddr real_addr, std::uint64_t counter);

    /** Number of slots currently holding valid data. */
    std::size_t dataSlots() const { return dataSlots_; }

    /**
     * Visits every data-holding slot as (realAddr, hash) in ascending
     * slot order. Used by recovery to rebuild the hash store and the
     * free-space bitmap.
     */
    template <typename Visitor>
    void
    forEachDataSlot(Visitor &&visit) const
    {
        // PagedArray visits ascending addresses (the auditor's
        // determinism relies on this order).
        // dewrite-lint: allow(unsorted-iteration)
        entries_.forEach([&](LineAddr real_addr, const Entry &entry) {
            if (entry.hasHash)
                visit(real_addr, entry.value);
        });
    }

  private:
    struct Entry
    {
        bool hasHash = false;
        std::uint64_t value = 0; //!< hash when hasHash, counter otherwise.
    };

    PagedArray<Entry> entries_;
    std::size_t dataSlots_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_INVERTED_HASH_HH
