/**
 * @file
 * ShardRouter unit tests: the partition must be a bijection, the
 * per-shard geometry must cover it, and the DEWRITE_SHARDS knob must
 * obey the fail-fast env contract.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "service/shard_router.hh"

namespace dewrite {
namespace {

/** Scoped DEWRITE_SHARDS override (unset restores at destruction). */
class ScopedShards
{
  public:
    explicit ScopedShards(const char *value)
    {
        ::setenv("DEWRITE_SHARDS", value, 1);
    }
    ~ScopedShards() { ::unsetenv("DEWRITE_SHARDS"); }
};

TEST(ShardRouter, FoldsTenantsIntoDisjointKeyRanges)
{
    const ShardRouter router(4, 3, 100);
    EXPECT_EQ(router.globalLines(), 300u);
    std::set<std::uint64_t> keys;
    for (std::uint64_t tenant = 0; tenant < 3; ++tenant)
        for (LineAddr addr = 0; addr < 100; ++addr)
            keys.insert(router.globalKey(tenant, addr));
    EXPECT_EQ(keys.size(), 300u);
    EXPECT_EQ(*keys.begin(), 0u);
    EXPECT_EQ(*keys.rbegin(), 299u);
}

TEST(ShardRouter, PartitionIsABijection)
{
    // Every global key must map to exactly one (shard, local) pair and
    // back: g = local * S + shard under the interleaved partition.
    for (std::size_t shards : { 1u, 2u, 3u, 5u, 8u, 64u }) {
        const ShardRouter router(shards, 4, 64);
        for (std::uint64_t g = 0; g < router.globalLines(); ++g) {
            const std::size_t shard = router.shardOf(g);
            const LineAddr local = router.localAddr(g);
            ASSERT_LT(shard, shards);
            ASSERT_LT(local, router.shardLines());
            ASSERT_EQ(local * shards + shard, g);
        }
    }
}

TEST(ShardRouter, ShardLinesCoverTheWholeSpace)
{
    for (std::size_t shards = 1; shards <= kMaxShards; ++shards) {
        const ShardRouter router(shards, 7, 97); // Deliberately odd.
        // ceil(globalLines / shards), and never an over-allocation of
        // more than one line per shard.
        EXPECT_GE(router.shardLines() * shards, router.globalLines());
        EXPECT_LT((router.shardLines() - 1) * shards,
                  router.globalLines());
    }
}

TEST(ShardRouter, ShardConfigSizesTheShard)
{
    const ShardRouter router(8, 16, 4096);
    SystemConfig base;
    const SystemConfig config = router.shardConfig(base, 50000);
    EXPECT_EQ(config.memory.numLines, router.shardLines());
    // Hint capped by the shard size here (8192 lines < 50000 events).
    EXPECT_EQ(config.memory.workingSetHintLines, router.shardLines());

    // A tiny event budget caps the hint below the shard size.
    const SystemConfig small = router.shardConfig(base, 2000);
    EXPECT_EQ(small.memory.workingSetHintLines, 2000u);

    // An explicit hint is never overridden.
    base.memory.workingSetHintLines = 123;
    EXPECT_EQ(router.shardConfig(base, 50000).memory.workingSetHintLines,
              123u);
}

TEST(ShardsKnob, DefaultsToOne)
{
    ::unsetenv("DEWRITE_SHARDS");
    EXPECT_EQ(serviceShards(), 1u);
}

TEST(ShardsKnob, HonorsValidOverride)
{
    ScopedShards shards("8");
    EXPECT_EQ(serviceShards(), 8u);
}

TEST(ShardsKnob, HonorsTheCap)
{
    ScopedShards shards("64");
    EXPECT_EQ(serviceShards(), 64u);
}

TEST(ShardsKnob, RejectsMalformed)
{
    ScopedShards shards("many");
    EXPECT_EXIT(serviceShards(), testing::ExitedWithCode(1),
                "DEWRITE_SHARDS");
}

TEST(ShardsKnob, RejectsZero)
{
    ScopedShards shards("0");
    EXPECT_EXIT(serviceShards(), testing::ExitedWithCode(1),
                "DEWRITE_SHARDS");
}

TEST(ShardsKnob, RejectsAboveCap)
{
    ScopedShards shards("65");
    EXPECT_EXIT(serviceShards(), testing::ExitedWithCode(1),
                "DEWRITE_SHARDS");
}

TEST(ShardsKnob, RejectsTrailingGarbage)
{
    ScopedShards shards("8x");
    EXPECT_EXIT(serviceShards(), testing::ExitedWithCode(1),
                "DEWRITE_SHARDS");
}

} // namespace
} // namespace dewrite
