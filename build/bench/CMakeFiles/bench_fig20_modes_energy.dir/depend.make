# Empty dependencies file for bench_fig20_modes_energy.
# This may be replaced when dependencies are built.
