/**
 * @file
 * Metadata crash consistency and recovery (the paper's Section V).
 *
 * The metadata cache is write-back; on a crash, metadata that only
 * lived in dirty cache blocks is gone unless protected. The paper
 * points at three industrial options — a battery-backed cache (Silent
 * Shredder), explicit writeback primitives + ADR (Liu et al.), and
 * write-through counters (SecPM) — and this module supplies the piece
 * all of them still need: an audit-and-rebuild pass that restores the
 * *derived* structures from the durable ones.
 *
 * The durable ground truth after a crash is (a) the data lines, (b)
 * the address-mapping table, and (c) the inverted hash table — the
 * last two are written in the same persist path as the data they
 * describe. The hash store (a lookup accelerator) and the FSM bitmap
 * (a cache of "which slots hold data") are fully derivable:
 *
 *   hash store  <- one record per inverted-hash data slot, with
 *                  reference = |logicals mapping to the slot| plus the
 *                  slot's own logical if it is not remapped;
 *   FSM bitmap  <- slot used iff its inverted-hash entry holds a hash.
 *
 * RecoveryManager can audit a live engine against these rules, damage
 * the derived structures the way a crash would (for tests and drills),
 * rebuild them, and estimate the NVM scan time a real controller would
 * spend doing the same.
 */

#ifndef DEWRITE_DEDUP_RECOVERY_HH
#define DEWRITE_DEDUP_RECOVERY_HH

#include <cstdint>

#include "common/types.hh"

namespace dewrite {

class DedupEngine;
struct SystemConfig;

/** Outcome of one audit pass. */
struct AuditReport
{
    std::uint64_t hashRecordsChecked = 0;
    std::uint64_t missingHashRecords = 0;  //!< Data slot, no record.
    std::uint64_t strayHashRecords = 0;    //!< Record, no data slot.
    std::uint64_t wrongReferences = 0;     //!< Count disagrees.
    std::uint64_t fsmMismatches = 0;       //!< Bitmap disagrees.

    bool
    consistent() const
    {
        return missingHashRecords == 0 && strayHashRecords == 0 &&
               wrongReferences == 0 && fsmMismatches == 0;
    }
};

/** Outcome of a rebuild pass. */
struct RecoveryReport
{
    std::uint64_t slotsScanned = 0;     //!< Inverted-hash data slots.
    std::uint64_t mappingsScanned = 0;  //!< Remapped logical lines.
    std::uint64_t recordsRebuilt = 0;   //!< Hash-store records restored.
    std::uint64_t strongFpsRebuilt = 0; //!< Fingerprint caches rewarmed
                                        //!< (weak+strong policies only).

    /**
     * Modelled wall-clock time of the recovery scan: reading the
     * durable metadata regions once, spread across the banks.
     */
    Time estimatedScanTime = 0;
};

class RecoveryManager
{
  public:
    explicit RecoveryManager(DedupEngine &engine);

    /** Checks the derived structures against the durable ones. */
    AuditReport audit() const;

    /**
     * Simulates the crash damage of an unprotected write-back cache:
     * the derived structures (hash store, FSM) are discarded, as their
     * lazily-written blocks cannot be trusted after the crash.
     */
    void simulateCrashDamage();

    /**
     * Rebuilds the hash store and FSM bitmap from the durable tables
     * and returns what was done. Safe to run on a consistent engine
     * (idempotent).
     */
    RecoveryReport rebuild();

  private:
    DedupEngine &engine_;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_RECOVERY_HH
