/**
 * @file
 * AddressMappingTable and InvertedHashTable tests, including the
 * counter-colocation flag semantics of Section III-C.
 */

#include <gtest/gtest.h>

#include "dedup/address_mapping.hh"
#include "dedup/inverted_hash.hh"

namespace dewrite {
namespace {

TEST(AddressMappingTest, DefaultEntriesAreNullWithZeroCounter)
{
    AddressMappingTable table;
    EXPECT_FALSE(table.isRemapped(123));
    EXPECT_EQ(table.counter(123), 0u);
    EXPECT_EQ(table.remappedCount(), 0u);
}

TEST(AddressMappingTest, RemapAndClear)
{
    AddressMappingTable table;
    table.remap(5, 99);
    EXPECT_TRUE(table.isRemapped(5));
    EXPECT_EQ(table.realAddr(5), 99u);
    EXPECT_EQ(table.remappedCount(), 1u);

    table.clearRemap(5);
    EXPECT_FALSE(table.isRemapped(5));
    EXPECT_EQ(table.remappedCount(), 0u);
    EXPECT_EQ(table.counter(5), 0u); // Null slots come back zeroed.
}

TEST(AddressMappingTest, RemapOverwriteKeepsCountAtOne)
{
    AddressMappingTable table;
    table.remap(1, 10);
    table.remap(1, 20);
    EXPECT_EQ(table.realAddr(1), 20u);
    EXPECT_EQ(table.remappedCount(), 1u);
}

TEST(AddressMappingTest, CounterStorageInNullEntry)
{
    AddressMappingTable table;
    table.setCounter(8, 41);
    EXPECT_EQ(table.counter(8), 41u);
}

TEST(AddressMappingDeathTest, CounterAccessOnRemappedPanics)
{
    AddressMappingTable table;
    table.remap(2, 3);
    EXPECT_DEATH(table.counter(2), "remapped");
    EXPECT_DEATH(table.setCounter(2, 1), "remapped");
}

TEST(AddressMappingDeathTest, RealAddrOfNullEntryPanics)
{
    AddressMappingTable table;
    EXPECT_DEATH(table.realAddr(4), "non-remapped");
}

TEST(InvertedHashTest, DefaultSlotsHoldNoData)
{
    InvertedHashTable table;
    EXPECT_FALSE(table.holdsData(55));
    EXPECT_EQ(table.counter(55), 0u);
    EXPECT_EQ(table.dataSlots(), 0u);
}

TEST(InvertedHashTest, SetAndClearHash)
{
    InvertedHashTable table;
    table.setHash(9, 0xdeadbeef);
    EXPECT_TRUE(table.holdsData(9));
    EXPECT_EQ(table.hash(9), 0xdeadbeefu);
    EXPECT_EQ(table.dataSlots(), 1u);

    table.clearHash(9);
    EXPECT_FALSE(table.holdsData(9));
    EXPECT_EQ(table.dataSlots(), 0u);
    EXPECT_EQ(table.counter(9), 0u);
}

TEST(InvertedHashTest, HashOverwriteKeepsCount)
{
    InvertedHashTable table;
    table.setHash(1, 0x11);
    table.setHash(1, 0x22);
    EXPECT_EQ(table.hash(1), 0x22u);
    EXPECT_EQ(table.dataSlots(), 1u);
}

TEST(InvertedHashTest, CounterStorageInNullEntry)
{
    InvertedHashTable table;
    table.setCounter(3, 1234);
    EXPECT_EQ(table.counter(3), 1234u);
}

TEST(InvertedHashDeathTest, CounterAccessOnDataSlotPanics)
{
    InvertedHashTable table;
    table.setHash(6, 0x66);
    EXPECT_DEATH(table.counter(6), "data slot");
    EXPECT_DEATH(table.setCounter(6, 1), "data slot");
}

TEST(InvertedHashDeathTest, HashOfEmptySlotPanics)
{
    InvertedHashTable table;
    EXPECT_DEATH(table.hash(7), "empty slot");
}

} // namespace
} // namespace dewrite
