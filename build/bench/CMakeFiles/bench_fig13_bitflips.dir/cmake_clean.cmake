file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_bitflips.dir/bench_fig13_bitflips.cc.o"
  "CMakeFiles/bench_fig13_bitflips.dir/bench_fig13_bitflips.cc.o.d"
  "bench_fig13_bitflips"
  "bench_fig13_bitflips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_bitflips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
