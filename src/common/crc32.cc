/**
 * @file
 * CRC-32 kernels: bytewise reference, portable slice-by-8, and
 * hardware fast paths (PCLMULQDQ folding for the IEEE polynomial,
 * SSE4.2 _mm_crc32_u64 for CRC-32C), selected once at startup.
 *
 * Every kernel of a polynomial produces bit-identical results; the
 * tests cross-check the dispatched entry points against the bytewise
 * references on random buffers of every size and alignment class.
 */

#include "common/crc32.hh"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DEWRITE_X86 1
#endif

namespace dewrite {

namespace {

/** Reflected IEEE 802.3 polynomial. */
constexpr std::uint32_t kPolynomial = 0xedb88320u;

/** Reflected Castagnoli polynomial (iSCSI / SSE4.2 crc32 instruction). */
constexpr std::uint32_t kPolynomialC = 0x82f63b78u;

/**
 * Slice-by-8 table set: table[0] is the classic bytewise table;
 * table[k][b] extends the remainder of byte b through k additional
 * zero bytes, letting eight bytes fold in per step.
 */
using SliceTables = std::array<std::array<std::uint32_t, 256>, 8>;

SliceTables
makeSliceTables(std::uint32_t polynomial)
{
    SliceTables tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? polynomial : 0);
        tables[0][i] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            const std::uint32_t prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xff];
        }
    }
    return tables;
}

const SliceTables kIeee = makeSliceTables(kPolynomial);
const SliceTables kCastagnoli = makeSliceTables(kPolynomialC);

/** Bytewise update starting from raw state @p crc (no init/final xor). */
// dewrite-lint: hot
inline std::uint32_t
updateBytewise(const SliceTables &tables, std::uint32_t crc,
               const std::uint8_t *data, std::size_t size)
{
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ tables[0][(crc ^ data[i]) & 0xff];
    return crc;
}

/** Slice-by-8 update from raw state (little-endian hosts only). */
// dewrite-lint: hot
std::uint32_t
updateSliced(const SliceTables &tables, std::uint32_t crc,
             const std::uint8_t *data, std::size_t size)
{
    if constexpr (std::endian::native != std::endian::little)
        return updateBytewise(tables, crc, data, size);

    while (size >= 8) {
        std::uint32_t lo, hi;
        std::memcpy(&lo, data, 4);
        std::memcpy(&hi, data + 4, 4);
        lo ^= crc;
        crc = tables[7][lo & 0xff] ^ tables[6][(lo >> 8) & 0xff] ^
              tables[5][(lo >> 16) & 0xff] ^ tables[4][lo >> 24] ^
              tables[3][hi & 0xff] ^ tables[2][(hi >> 8) & 0xff] ^
              tables[1][(hi >> 16) & 0xff] ^ tables[0][hi >> 24];
        data += 8;
        size -= 8;
    }
    return updateBytewise(tables, crc, data, size);
}

#ifdef DEWRITE_X86

/**
 * PCLMULQDQ folding for the reflected IEEE polynomial, after Gopal et
 * al., "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ"
 * (the zlib/Chromium kernel). Processes 16-byte blocks; the caller
 * handles tails. Constants are x^(8·k) mod P precomputed for the
 * reflected polynomial.
 */
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
updateClmul(std::uint32_t crc, const std::uint8_t *data, std::size_t size)
{
    // size >= 64 and a multiple of 16, guaranteed by the dispatcher.
    const __m128i k1k2 = _mm_set_epi64x(0x00000001c6e41596, // x^(64*9)
                                        0x0000000154442bd4); // x^(64*8)
    const __m128i k3k4 = _mm_set_epi64x(0x00000000ccaa009e, // x^(64*3)
                                        0x00000001751997d0); // x^(64*2)

    __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(data));
    __m128i x2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data + 16));
    __m128i x3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data + 32));
    __m128i x4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data + 48));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
    data += 64;
    size -= 64;

    // Fold four 16-byte lanes in parallel, 64 bytes per iteration.
    while (size >= 64) {
        __m128i t1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
        __m128i t2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
        __m128i t3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
        __m128i t4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
        x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
        x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
        x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
        x1 = _mm_xor_si128(
            _mm_xor_si128(x1, t1),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(data)));
        x2 = _mm_xor_si128(
            _mm_xor_si128(x2, t2),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + 16)));
        x3 = _mm_xor_si128(
            _mm_xor_si128(x3, t3),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + 32)));
        x4 = _mm_xor_si128(
            _mm_xor_si128(x4, t4),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + 48)));
        data += 64;
        size -= 64;
    }

    // Merge the four lanes into one.
    __m128i t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x2);
    t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x3);
    t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x4);

    // Remaining whole 16-byte blocks.
    while (size >= 16) {
        t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(
            _mm_xor_si128(x1, t),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(data)));
        data += 16;
        size -= 16;
    }

    // Fold 128 -> 64 bits.
    const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
    t = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, t);

    const __m128i k5 = _mm_set_epi64x(0, 0x0000000163cd6124); // x^(64+32)
    t = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
    x1 = _mm_xor_si128(x1, t);

    // Barrett reduction 64 -> 32 bits.
    const __m128i poly = _mm_set_epi64x(0x00000001f7011641,  // mu
                                        0x00000001db710641); // P'
    t = _mm_and_si128(x1, mask32);
    t = _mm_clmulepi64_si128(t, poly, 0x10);
    t = _mm_and_si128(t, mask32);
    t = _mm_clmulepi64_si128(t, poly, 0x00);
    x1 = _mm_xor_si128(x1, t);
    return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

__attribute__((target("sse4.2"))) std::uint32_t
updateCrc32cHw(std::uint32_t crc, const std::uint8_t *data,
               std::size_t size)
{
    std::uint64_t state = crc;
    while (size >= 8) {
        std::uint64_t word;
        std::memcpy(&word, data, 8);
        state = _mm_crc32_u64(state, word);
        data += 8;
        size -= 8;
    }
    std::uint32_t crc32 = static_cast<std::uint32_t>(state);
    while (size--)
        crc32 = _mm_crc32_u8(crc32, *data++);
    return crc32;
}

bool
cpuHasClmul()
{
    return __builtin_cpu_supports("pclmul") &&
           __builtin_cpu_supports("sse4.1");
}

bool
cpuHasSse42()
{
    return __builtin_cpu_supports("sse4.2");
}

#else // !DEWRITE_X86

bool cpuHasClmul() { return false; }
bool cpuHasSse42() { return false; }

#endif // DEWRITE_X86

const bool kUseClmul = cpuHasClmul();
const bool kUseSse42Crc = cpuHasSse42();

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t crc = 0xffffffffu;
#ifdef DEWRITE_X86
    if (kUseClmul && size >= 64) {
        const std::size_t folded = size & ~std::size_t{ 15 };
        crc = updateClmul(crc, data, folded);
        data += folded;
        size -= folded;
    }
#endif
    return updateSliced(kIeee, crc, data, size) ^ 0xffffffffu;
}

std::uint32_t
crc32(const Line &line)
{
    return crc32(line.data(), kLineSize);
}

std::uint32_t
crc32Reference(const std::uint8_t *data, std::size_t size)
{
    return updateBytewise(kIeee, 0xffffffffu, data, size) ^ 0xffffffffu;
}

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t size)
{
    const std::uint32_t init = 0xffffffffu;
#ifdef DEWRITE_X86
    if (kUseSse42Crc)
        return updateCrc32cHw(init, data, size) ^ 0xffffffffu;
#endif
    return updateSliced(kCastagnoli, init, data, size) ^ 0xffffffffu;
}

std::uint32_t
crc32c(const Line &line)
{
    return crc32c(line.data(), kLineSize);
}

std::uint32_t
crc32cReference(const std::uint8_t *data, std::size_t size)
{
    return updateBytewise(kCastagnoli, 0xffffffffu, data, size) ^
           0xffffffffu;
}

bool
crc32UsesClmul()
{
    return kUseClmul;
}

bool
crc32cUsesSse42()
{
    return kUseSse42Crc;
}

} // namespace dewrite
