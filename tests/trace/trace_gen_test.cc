/**
 * @file
 * Synthetic workload generator tests.
 */

#include "trace/trace_gen.hh"

#include <gtest/gtest.h>

#include <unordered_map>

#include "trace/workload_stats.hh"

namespace dewrite {
namespace {

AppProfile
testProfile(double dup_target)
{
    AppProfile profile;
    profile.name = "test";
    profile.suite = "TEST";
    profile.dupTarget = dup_target;
    profile.zeroGivenDup = 0.2;
    profile.statePersistence = 0.9;
    profile.writeFraction = 0.5;
    profile.rewriteFraction = 0.6;
    profile.mutateWordsMax = 6;
    profile.workingSetLines = 4096;
    profile.instGapMean = 100.0;
    profile.popularityTheta = 0.7;
    return profile;
}

TEST(SyntheticWorkloadTest, Deterministic)
{
    SyntheticWorkload a(testProfile(0.5), 7);
    SyntheticWorkload b(testProfile(0.5), 7);
    for (int i = 0; i < 1000; ++i) {
        MemEvent ea, eb;
        ASSERT_TRUE(a.next(ea));
        ASSERT_TRUE(b.next(eb));
        EXPECT_EQ(ea.isWrite, eb.isWrite);
        EXPECT_EQ(ea.addr, eb.addr);
        EXPECT_EQ(ea.instGap, eb.instGap);
        if (ea.isWrite) {
            EXPECT_EQ(ea.data, eb.data);
        }
    }
}

TEST(SyntheticWorkloadTest, SeedsDiverge)
{
    SyntheticWorkload a(testProfile(0.5), 1);
    SyntheticWorkload b(testProfile(0.5), 2);
    int identical = 0;
    for (int i = 0; i < 200; ++i) {
        MemEvent ea, eb;
        a.next(ea);
        b.next(eb);
        identical += ea.addr == eb.addr && ea.isWrite == eb.isWrite;
    }
    EXPECT_LT(identical, 150);
}

TEST(SyntheticWorkloadTest, FirstEventIsWrite)
{
    SyntheticWorkload workload(testProfile(0.5), 3);
    MemEvent event;
    ASSERT_TRUE(workload.next(event));
    EXPECT_TRUE(event.isWrite);
}

TEST(SyntheticWorkloadTest, ReadsTargetWrittenAddresses)
{
    SyntheticWorkload workload(testProfile(0.5), 4);
    std::unordered_map<LineAddr, bool> written;
    MemEvent event;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(workload.next(event));
        if (event.isWrite)
            written[event.addr] = true;
        else
            EXPECT_TRUE(written.contains(event.addr)) << "event " << i;
    }
}

TEST(SyntheticWorkloadTest, DupFractionTracksTarget)
{
    for (double target : { 0.2, 0.5, 0.9 }) {
        SyntheticWorkload workload(testProfile(target), 5);
        const WorkloadStats stats = measureWorkload(workload, 30000);
        EXPECT_NEAR(stats.dupFraction(), target, 0.08)
            << "target " << target;
    }
}

TEST(SyntheticWorkloadTest, StatePersistenceEmergesFromMarkovChain)
{
    SyntheticWorkload workload(testProfile(0.5), 6);
    const WorkloadStats stats = measureWorkload(workload, 30000);
    EXPECT_GT(stats.statePersistence(), 0.85);
}

TEST(SyntheticWorkloadTest, WorkingSetBoundsAddresses)
{
    AppProfile profile = testProfile(0.5);
    profile.workingSetLines = 256;
    SyntheticWorkload workload(profile, 7);
    MemEvent event;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(workload.next(event));
        EXPECT_LT(event.addr, 256u);
    }
}

TEST(SyntheticWorkloadTest, ZeroLinesAppearInDupHeavyStreams)
{
    AppProfile profile = testProfile(0.8);
    profile.zeroGivenDup = 0.9;
    SyntheticWorkload workload(profile, 8);
    const WorkloadStats stats = measureWorkload(workload, 20000);
    EXPECT_GT(stats.zeroFraction(), 0.4);
}

TEST(WorstCaseWorkloadTest, NoDuplicatesEver)
{
    WorstCaseWorkload workload(512, 100.0, 9);
    const WorkloadStats stats = measureWorkload(workload, 20000);
    EXPECT_EQ(stats.duplicateWrites, 0u);
    EXPECT_EQ(stats.zeroWrites, 0u);
}

TEST(WorstCaseWorkloadTest, AlternatesWriteAndReadPasses)
{
    WorstCaseWorkload workload(16, 100.0, 10);
    MemEvent event;
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(workload.next(event));
        EXPECT_TRUE(event.isWrite);
        EXPECT_EQ(event.addr, static_cast<LineAddr>(i));
    }
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(workload.next(event));
        EXPECT_FALSE(event.isWrite);
    }
    ASSERT_TRUE(workload.next(event));
    EXPECT_TRUE(event.isWrite); // Next write pass with fresh values.
}

} // namespace
} // namespace dewrite
