/**
 * @file
 * Table I — traditional fingerprint deduplication vs DeWrite.
 *
 * Part (a) prints the hash-function hardware catalog. Part (b)
 * measures duplication-detection latency on the live engine for a
 * duplicate and a non-duplicate line, and compares with what a
 * cryptographic-fingerprint scheme would pay (hash latency alone
 * exceeds the NVM write it tries to avoid).
 *
 * Paper's shape: traditional >= 312 ns either way; DeWrite ~91 ns for
 * a duplicate (CRC + confirm read + compare) and ~15 ns-class for a
 * non-duplicate.
 */

#include <cstdio>

#include "cache/metadata_cache.hh"
#include "common/hash_latency.hh"
#include "common/rng.hh"
#include "common/table_printer.hh"
#include "crypto/counter_mode.hh"
#include "dedup/dedup_engine.hh"
#include "nvm/nvm_device.hh"
#include "obs/bench_report.hh"
#include "sim/system.hh"

using namespace dewrite;

int
main()
{
    std::printf("Table I(a): hash-function hardware characteristics\n\n");
    TablePrinter spec_table({ "function", "latency", "digest",
                              "needs confirm read" });
    for (const HashSpec &spec : allHashSpecs()) {
        spec_table.addRow(
            { std::string(spec.name),
              TablePrinter::num(
                  static_cast<double>(spec.latency) / kNanoSecond, 0) +
                  " ns",
              TablePrinter::num(spec.digestBits, 0) + " bits",
              spec.cryptographic ? "no" : "yes" });
    }
    spec_table.print();

    std::printf("\nTable I(b): duplication detection latency\n\n");

    SystemConfig config;
    config.memory.numLines = 1 << 16;
    NvmDevice device(config);
    CounterModeEngine cme(defaultAesKey());
    MetadataCache metadata(config, device, config.memory.numLines);
    DedupEngine engine(config, device, metadata, cme);

    Rng rng(1);
    const Line duplicate_content = Line::random(rng);
    // Store the line so a duplicate exists, then warm the metadata.
    const DetectOutcome seed =
        engine.detect(duplicate_content, 0, true);
    WriteCommit commit = engine.commitUnique(1, duplicate_content,
                                             seed.hash, seed.done,
                                             seed.done);
    Time now = commit.done;

    const DetectOutcome dup = engine.detect(duplicate_content, now, true);
    now = dup.done;

    Line unseen = Line::random(rng);
    engine.detect(unseen, now, true); // Warm the hash block.
    const DetectOutcome non_dup = engine.detect(unseen, now, true);

    // A second engine configured as the traditional comparator: MD5
    // fingerprints, trusted without confirmation reads.
    SystemConfig md5_config = config;
    md5_config.memory.hashDigestBits = 128;
    NvmDevice md5_device(md5_config);
    MetadataCache md5_metadata(md5_config, md5_device,
                               md5_config.memory.numLines);
    DedupEngine md5_engine(
        md5_config, md5_device, md5_metadata, cme,
        DedupEngine::Options{ DetectPolicy::ConfirmRead, nullptr, 4,
                              HashFunction::Md5 });

    const DetectOutcome md5_seed =
        md5_engine.detect(duplicate_content, 0, true);
    const WriteCommit md5_commit = md5_engine.commitUnique(
        1, duplicate_content, md5_seed.hash, md5_seed.done,
        md5_seed.done);
    const DetectOutcome md5_dup =
        md5_engine.detect(duplicate_content, md5_commit.done, true);
    md5_engine.detect(unseen, md5_dup.done, true); // Warm.
    const DetectOutcome md5_non_dup =
        md5_engine.detect(unseen, md5_dup.done, true);

    TablePrinter lat_table({ "method", "duplicate line",
                             "non-duplicate line" });
    lat_table.addRow(
        { "traditional MD5 (measured)",
          TablePrinter::num(
              static_cast<double>(md5_dup.done - md5_commit.done) /
                  kNanoSecond,
              1) + " ns",
          TablePrinter::num(
              static_cast<double>(md5_non_dup.done - md5_dup.done) /
                  kNanoSecond,
              1) + " ns" });
    lat_table.addRow(
        { "DeWrite CRC-32 (measured)",
          TablePrinter::num(
              static_cast<double>(dup.done - commit.done) / kNanoSecond,
              1) + " ns",
          TablePrinter::num(
              static_cast<double>(non_dup.done - now) / kNanoSecond, 1) +
              " ns" });
    lat_table.print();

    std::printf("\nNVM write latency for reference: %.0f ns — the "
                "cryptographic fingerprint alone costs more than the "
                "write it would eliminate.\n",
                static_cast<double>(config.timing.nvmWrite) /
                    kNanoSecond);
    std::printf("paper: DeWrite ~91 ns + tQ' (duplicate), "
                "~15 ns + tQ' (non-duplicate)\n");

    obs::BenchReport report("tab1_detection_latency",
                            /*events_per_cell=*/0, /*threads=*/1);
    obs::JsonWriter &w = report.json();
    w.key("latency_ns");
    w.beginObject();
    w.field("md5_duplicate",
            static_cast<double>(md5_dup.done - md5_commit.done) /
                kNanoSecond);
    w.field("md5_non_duplicate",
            static_cast<double>(md5_non_dup.done - md5_dup.done) /
                kNanoSecond);
    w.field("crc32_duplicate",
            static_cast<double>(dup.done - commit.done) / kNanoSecond);
    w.field("crc32_non_duplicate",
            static_cast<double>(non_dup.done - now) / kNanoSecond);
    w.field("nvm_write_reference",
            static_cast<double>(config.timing.nvmWrite) / kNanoSecond);
    w.endObject();
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    return 0;
}
