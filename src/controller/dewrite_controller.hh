/**
 * @file
 * The DeWrite memory controller (Figures 3, 5, 10, 11).
 *
 * Wraps the dedup engine with the write-scheduling policy the paper
 * evaluates in three flavors:
 *
 *  - Direct (Fig. 3a): detect first; encrypt only confirmed-unique
 *    lines. Minimum AES energy, maximum latency for unique writes.
 *  - Parallel (Fig. 3b): always encrypt concurrently with detection.
 *    Minimum latency, wasted AES energy on every duplicate.
 *  - Predicted (DeWrite proper): a 3-bit history window chooses per
 *    write — predicted duplicates take the direct path, predicted
 *    uniques the parallel path — and gates in-NVM hash-table queries
 *    (the PNA scheme).
 */

#ifndef DEWRITE_CONTROLLER_DEWRITE_CONTROLLER_HH
#define DEWRITE_CONTROLLER_DEWRITE_CONTROLLER_HH

#include <memory>

#include "cache/metadata_cache.hh"
#include "common/timing.hh"
#include "controller/bitlevel/bitflip.hh"
#include "controller/mem_controller.hh"
#include "crypto/counter_mode.hh"
#include "dedup/dedup_engine.hh"
#include "dedup/predictor.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

/** Write-scheduling policy between detection and encryption. */
enum class DedupMode
{
    Direct,
    Parallel,
    Predicted,
};

/** Printable mode name. */
std::string dedupModeName(DedupMode mode);

class DeWriteController : public MemController
{
  public:
    struct Options
    {
        DedupMode mode = DedupMode::Predicted;
        bool pnaEnabled = true;   //!< Prediction-gated NVM hash queries.
        unsigned historyBits = 3; //!< Predictor window (Figure 4).

        /**
         * How weak-fingerprint matches resolve (DESIGN.md §5j). The
         * default follows DEWRITE_DETECT so every scheme — examples,
         * experiments, service shards — inherits the knob; the paper's
         * confirm-read remains the fallback when it is unset.
         */
        DetectPolicy detect = detectPolicyFromEnv();

        /** Adaptive epoch length in commits (DEWRITE_DETECT_EPOCH). */
        std::uint64_t detectEpochWrites = detectEpochFromEnv();

        BitTechnique technique = BitTechnique::None; //!< Fig. 13 combos.

        /**
         * Fingerprint function: CRC-32 (DeWrite) or MD5/SHA-1 (the
         * traditional comparator of Table I, trusted without a
         * confirmation read). Set MemoryConfig::hashDigestBits to
         * match when using a cryptographic function.
         */
        HashFunction hashFunction = HashFunction::Crc32;
    };

    DeWriteController(const SystemConfig &config, NvmDevice &device,
                      const AesKey &key, Options options);

    DeWriteController(const SystemConfig &config, NvmDevice &device,
                      const AesKey &key);

    CtrlWriteResult write(LineAddr addr, const Line &data,
                          Time now) override;
    CtrlReadResult read(LineAddr addr, Time now) override;
    CtrlReadResult readTiming(LineAddr addr, Time now) override;

    /**
     * Batched entry point: digests, metadata prefetches, and candidate
     * pad generation run across the whole group (DedupEngine's
     * prepareBatch) before the members replay through the serial write
     * path with their digest handed in.
     */
    void writeBatch(const CtrlWriteRequest *requests,
                    CtrlWriteResult *results, std::size_t count) override;

    std::string name() const override;
    Energy controllerEnergy() const override;

    /** @{ Component access for tests and experiment harnesses. */
    const DedupEngine &engine() const { return engine_; }
    const DupPredictor &predictor() const { return predictor_; }
    const MetadataCache &metadataCache() const { return metadata_; }
    /** @} */

    /** Encryptions whose output was discarded (duplicate confirmed). */
    std::uint64_t wastedEncryptions() const
    {
        return wastedEncryptions_.value();
    }

    /** Total data-line encryptions started (useful or not). */
    std::uint64_t encryptionsStarted() const
    {
        return encryptionsStarted_.value();
    }

    /**
     * Runs the metadata auditor immediately, panicking with full
     * context on the first violated invariant. Called automatically
     * every audit epoch and at run end when DEWRITE_AUDIT=1; harnesses
     * and tests may call it at any quiescent point.
     */
    void auditNow(const char *when) const;

    /** Metadata audits executed so far (epoch + explicit). */
    std::uint64_t auditsRun() const { return auditsRun_; }

  protected:
    void registerSchemeMetrics(obs::MetricRegistry &registry)
        const override;

  private:
    /** Charges one line encryption's energy and counts it. */
    void startEncryption();

    /**
     * The full serial write path; @p precomputed_hash (from a batch
     * digest round) skips re-fingerprinting inside detect().
     */
    CtrlWriteResult writeOne(LineAddr addr, const Line &data, Time now,
                             const std::uint64_t *precomputed_hash,
                             const StrongFp *precomputed_strong = nullptr);

    const SystemConfig &config_;
    NvmDevice &device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    std::unique_ptr<BitLevelReducer> reducer_;
    DedupEngine engine_;
    DupPredictor predictor_;
    Options options_;

    Counter wastedEncryptions_;
    Counter encryptionsStarted_;
    Energy aesEnergy_ = 0;

    /** @{ DEWRITE_AUDIT=1 epoch auditing (DESIGN.md §5e). */
    bool auditPerEpoch_ = false;
    std::uint64_t auditEpochWrites_ = 0;
    std::uint64_t writesSinceAudit_ = 0;
    mutable std::uint64_t auditsRun_ = 0;
    /** @} */
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_DEWRITE_CONTROLLER_HH
