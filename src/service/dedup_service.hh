/**
 * @file
 * DedupService: N independent dedup shards behind one ingest front-end.
 *
 * The service scales the single-System simulator horizontally: the
 * multi-tenant address space and every piece of dedup metadata are
 * partitioned by ShardRouter into DEWRITE_SHARDS shards, each a full
 * System (device + controller + metadata) driven by its own resumable
 * ShardCore. Shards share nothing mutable, so the drain loop needs no
 * locks: each ingest round routes a slice of the canonical tenant-mux
 * order into per-shard buffers, one ThreadPool task per shard drains
 * its buffer with exclusive ownership, and the main thread fills the
 * next round's buffers while the pool works (double buffering, so the
 * hot path allocates nothing after the first round).
 *
 * Correctness is pinned, not assumed: an N-shard run must produce
 * per-shard ExperimentResult fingerprints identical to N independent
 * single-shard System runs over ShardPartitionTrace — at any thread
 * count, since parallelism only changes which host thread drains a
 * shard, never the order within one. See DESIGN.md §5g.
 */

#ifndef DEWRITE_SERVICE_DEDUP_SERVICE_HH
#define DEWRITE_SERVICE_DEDUP_SERVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metric_registry.hh"
#include "obs/telemetry.hh"
#include "service/shard_core.hh"
#include "service/shard_router.hh"
#include "service/tenant_mux.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "sim/thread_pool.hh"

namespace dewrite {

/** Everything one service run needs; zeros resolve to shared defaults. */
struct ServiceOptions
{
    std::size_t shards = 0;       //!< 0 → DEWRITE_SHARDS (default 1).
    std::uint64_t tenants = 16;   //!< Concurrent tenant namespaces.
    std::uint64_t linesPerTenant = 4096; //!< Lines per namespace.
    unsigned burstMax = 32;       //!< Longest per-tenant ingest burst.
    std::uint64_t roundEvents = 4096; //!< Ingest events per drain round.
    std::uint64_t totalEvents = 0; //!< 0 → experimentEvents().
    unsigned threads = 0;         //!< 0 → runnerThreads().
    SystemConfig base;            //!< Resized per shard by the router.
    SchemeOptions scheme;         //!< Defaults to full DeWrite.
};

/** One shard's outcome, fingerprinted for the parity contract. */
struct ShardOutcome
{
    ExperimentResult cell;        //!< app = "shard<k>".
    std::uint32_t fingerprint = 0;
    std::uint64_t events = 0;     //!< Events the router sent this shard.
};

struct ServiceResult
{
    std::vector<ShardOutcome> shards;
    std::uint64_t totalEvents = 0;
    double hostSeconds = 0.0;     //!< Ingest + drain wall time.
    double eventsPerSecond = 0.0;
    std::size_t shardCount = 0;
    unsigned threads = 0;
};

class DedupService
{
  public:
    explicit DedupService(const ServiceOptions &options);

    /** Ingests and drains totalEvents, then finalizes every shard. */
    ServiceResult run();

    /** @{ Resolved configuration. */
    std::size_t shards() const { return shards_.size(); }
    std::uint64_t totalEvents() const { return totalEvents_; }
    unsigned threads() const { return pool_.threadCount(); }
    const ShardRouter &router() const { return router_; }
    const std::vector<TenantSpec> &tenantSpecs() const
    {
        return tenants_;
    }
    /** @} */

    const System &shardSystem(std::size_t shard) const
    {
        return *shards_[shard].system;
    }
    const ShardCore &shardCore(std::size_t shard) const
    {
        return *shards_[shard].core;
    }

    /**
     * Merged metric view: every shard's registry snapshot under a
     * "shard<k>." prefix, plus the service-level ingest metrics —
     * path-sorted like MetricRegistry::snapshot().
     */
    std::vector<obs::MetricSample> registrySnapshot() const;

    /** @{ Telemetry plane (always recorded; sink only when enabled). */
    const obs::ShardTelemetry &shardTelemetry(std::size_t shard) const
    {
        return *shards_[shard].telemetry;
    }
    const obs::SkewMonitor &skewMonitor() const { return skew_; }
    const obs::TelemetrySink &telemetrySink() const { return sink_; }
    std::uint64_t telemetrySnapshots() const
    {
        return sink_.snapshots();
    }
    /** @} */

    /**
     * The per-shard tenant streams resolved from @p options — the
     * single source of the tenant/seed assignment, shared by the
     * service and the reference side so both replay the same canonical
     * order.
     */
    static std::vector<TenantSpec> resolveTenants(
        const ServiceOptions &options);

    /**
     * Simulates shard @p shard of an @p options service as one
     * independent single-shard System over the partitioned trace —
     * @p events must be the event count the service routed there (the
     * ShardOutcome::events of the run being checked). The returned
     * cell's fingerprint must equal the service's: this is the
     * reference side of the parity contract.
     */
    static ExperimentResult runShardReference(
        const ServiceOptions &options, std::size_t shard,
        std::uint64_t events);

  private:
    struct Shard
    {
        std::unique_ptr<System> system;
        std::unique_ptr<ShardCore> core;
        /** Written only by this shard's drain task (zero-sharing);
         * read by the main thread strictly after pool.wait(). */
        std::unique_ptr<obs::ShardTelemetry> telemetry;
        /** Double ingest buffers: fill one while the pool drains the
         * other. */
        std::vector<MemEvent> buffers[2];
        std::uint64_t events = 0;
    };

    /** Routes up to roundEvents mux events into @p side's buffers.
     * @return events produced (0 once the budget is exhausted). */
    std::uint64_t fillRound(int side);

    /** Finalizes one shard: drain, account, audit, fingerprint. */
    ShardOutcome finalizeShard(std::size_t shard);

    /** Assembles and emits one telemetry frame (round or run-end). */
    void emitTelemetry(bool final_frame);

    ServiceOptions options_;          //!< With zeros resolved.
    std::uint64_t totalEvents_ = 0;
    std::uint64_t produced_ = 0;      //!< Mux events drawn so far.
    std::vector<TenantSpec> tenants_;
    ShardRouter router_;
    TenantMux mux_;
    std::vector<Shard> shards_;
    ThreadPool pool_;
    Counter roundsIngested_;          //!< Drain rounds executed.

    obs::SkewMonitor skew_;
    obs::TelemetrySink sink_;
    /** Scratch for per-round skew counts (no per-round allocation). */
    std::vector<std::uint64_t> roundCounts_;

    /** Service-level metrics: ingest rounds, per-shard routed events,
     * and each ShardCore's batch former (under "shard<k>.ingest"). */
    obs::MetricRegistry serviceRegistry_;
};

} // namespace dewrite

#endif // DEWRITE_SERVICE_DEDUP_SERVICE_HH
