/**
 * @file
 * Figure 13 — average bit flips per write across write-reduction
 * techniques.
 *
 * Compares the bit-level techniques (DCW, FNW, DEUCE) standalone,
 * composed with Silent Shredder, and composed with DeWrite. Flips are
 * averaged over *all* write-back requests, so line-level elimination
 * shows up as zero-flip writes.
 *
 * Paper's shape: DCW 50%, FNW 43%, DEUCE 24%; Shredder shaves a
 * little; DeWrite halves each (22% / 19% / 11%).
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

double
flipFraction(const RunResult &run)
{
    return run.writes
        ? static_cast<double>(run.bitsProgrammed) /
              (static_cast<double>(run.writes) * kLineBits)
        : 0.0;
}

} // namespace

int
main()
{
    std::printf("Figure 13: average bit flips per write\n\n");

    SystemConfig config;
    const std::uint64_t events = experimentEvents() / 3;
    const BitTechnique techniques[] = { BitTechnique::Dcw,
                                        BitTechnique::Fnw,
                                        BitTechnique::Deuce,
                                        BitTechnique::Secret };

    std::vector<SchemeOptions> schemes;
    for (int combo = 0; combo < 3; ++combo) {
        for (BitTechnique technique : techniques) {
            SchemeOptions scheme;
            if (combo < 2) {
                scheme = secureBaselineScheme();
                scheme.baseline.technique = technique;
                scheme.baseline.shredZeroLines = combo == 1;
            } else {
                scheme = dewriteScheme(DedupMode::Predicted);
                scheme.dewrite.technique = technique;
            }
            schemes.push_back(scheme);
        }
    }

    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, schemes, config, events);

    TablePrinter table({ "app", "DCW", "FNW", "DEUCE", "SECRET",
                         "Shr+DCW", "Shr+FNW", "Shr+DEUCE",
                         "Shr+SECRET", "DW+DCW", "DW+FNW", "DW+DEUCE",
                         "DW+SECRET" });
    double sums[12] = {};
    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::vector<std::string> row{ apps[a].name };
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const double flips =
                flipFraction(cells[a * schemes.size() + s].run);
            sums[s] += flips;
            row.push_back(TablePrinter::percent(flips));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg{ "AVERAGE" };
    const double n = static_cast<double>(appCatalog().size());
    for (double sum : sums)
        avg.push_back(TablePrinter::percent(sum / n));
    table.addRow(std::move(avg));
    table.print();

    std::printf("\npaper: DCW 50%%, FNW 43%%, DEUCE 24%%; with DeWrite "
                "22%% / 19%% / 11%%\n");
    std::printf("(SECRET is this repository's extension of the "
                "comparison, per the paper's Section V)\n");
    return 0;
}
