file(REMOVE_RECURSE
  "libdewrite.a"
)
