/**
 * @file
 * DeWriteController tests: the three scheduling modes of Figure 3.
 */

#include "controller/dewrite_controller.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

SystemConfig &
config()
{
    static SystemConfig instance = [] {
        SystemConfig c;
        c.memory.numLines = 1 << 16;
        return c;
    }();
    return instance;
}

AesKey
key()
{
    AesKey k{};
    k[1] = 0x20;
    return k;
}

DeWriteController::Options
modeOptions(DedupMode mode)
{
    DeWriteController::Options options;
    options.mode = mode;
    return options;
}

class DeWriteModeTest : public ::testing::TestWithParam<DedupMode>
{
};

TEST_P(DeWriteModeTest, RoundTripAndElimination)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(GetParam()));
    Rng rng(111);
    const Line data = Line::random(rng);

    const CtrlWriteResult first = ctrl.write(1, data, 0);
    EXPECT_FALSE(first.eliminated);
    const CtrlWriteResult second = ctrl.write(2, data, 0);
    EXPECT_TRUE(second.eliminated);

    EXPECT_EQ(ctrl.read(1, 0).data, data);
    EXPECT_EQ(ctrl.read(2, 0).data, data);
    EXPECT_EQ(ctrl.writesEliminated(), 1u);
}

TEST_P(DeWriteModeTest, ManyWritesStayFunctionallyCorrect)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(GetParam()));
    Rng rng(112 + static_cast<int>(GetParam()));

    // Mixed duplicate/unique stream with rewrites; verify against a
    // reference map.
    std::unordered_map<LineAddr, Line> reference;
    std::vector<Line> pool;
    for (int i = 0; i < 400; ++i) {
        const LineAddr addr = rng.nextBelow(64);
        Line data;
        if (!pool.empty() && rng.chance(0.5)) {
            data = pool[rng.nextBelow(pool.size())];
        } else {
            data = Line::random(rng);
            pool.push_back(data);
        }
        ctrl.write(addr, data, 0);
        reference[addr] = data;
    }
    for (const auto &[addr, expected] : reference) {
        const CtrlReadResult read = ctrl.read(addr, 0);
        EXPECT_TRUE(read.valid);
        EXPECT_EQ(read.data, expected) << "addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeWriteModeTest,
                         ::testing::Values(DedupMode::Direct,
                                           DedupMode::Parallel,
                                           DedupMode::Predicted),
                         [](const auto &param_info) {
                             return dedupModeName(param_info.param);
                         });

TEST(DeWriteControllerTest, ParallelModeWastesEncryptionOnDuplicates)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(DedupMode::Parallel));
    Rng rng(113);
    const Line data = Line::random(rng);
    ctrl.write(1, data, 0);
    ctrl.write(2, data, 0); // Duplicate: speculative AES wasted.
    EXPECT_EQ(ctrl.wastedEncryptions(), 1u);
    EXPECT_EQ(ctrl.encryptionsStarted(), 2u);
}

TEST(DeWriteControllerTest, DirectModeNeverWastesEncryption)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(DedupMode::Direct));
    Rng rng(114);
    const Line data = Line::random(rng);
    ctrl.write(1, data, 0);
    ctrl.write(2, data, 0);
    EXPECT_EQ(ctrl.wastedEncryptions(), 0u);
    EXPECT_EQ(ctrl.encryptionsStarted(), 1u);
}

TEST(DeWriteControllerTest, DirectModeSerializesDetectionAndEncryption)
{
    NvmDevice deviceDirect(config());
    DeWriteController direct(config(), deviceDirect, key(),
                             modeOptions(DedupMode::Direct));
    NvmDevice deviceParallel(config());
    DeWriteController parallel(config(), deviceParallel, key(),
                               modeOptions(DedupMode::Parallel));
    Rng rng(115);
    // Warm the metadata blocks with a first write so the measured
    // write's commit path is on-chip; otherwise cold metadata fills
    // dominate both modes equally and mask the AES serialization.
    const Line warmup = Line::random(rng);
    direct.write(1, warmup, 0);
    parallel.write(1, warmup, 0);

    const Line data = Line::random(rng);
    const Time direct_latency = direct.write(2, data, 1000000).latency;
    const Time parallel_latency =
        parallel.write(2, data, 1000000).latency;
    // A unique write pays detection + AES serially in direct mode but
    // overlapped in parallel mode.
    EXPECT_GT(direct_latency, parallel_latency);
}

TEST(DeWriteControllerTest, DuplicateWriteIsFasterThanUniqueWrite)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(DedupMode::Predicted));
    Rng rng(116);
    const Line data = Line::random(rng);
    const Time unique_latency = ctrl.write(1, data, 0).latency;
    const Time dup_latency = ctrl.write(2, data, 1000000000).latency;
    // Eliminating the 300 ns cell write leaves roughly a read-cost
    // detection — the asymmetry payoff (Table Ib).
    EXPECT_LT(dup_latency, unique_latency / 2);
}

TEST(DeWriteControllerTest, PredictorLearnsFromOutcomes)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(DedupMode::Predicted));
    Rng rng(117);
    const Line data = Line::random(rng);
    ctrl.write(1, data, 0);
    for (LineAddr addr = 2; addr < 30; ++addr)
        ctrl.write(addr, data, 0);
    // A long run of duplicates drives the window to all-ones.
    EXPECT_TRUE(ctrl.predictor().predictDuplicate());
    EXPECT_EQ(ctrl.predictor().predictions(), 29u);
}

TEST(DeWriteControllerTest, StatsExportCoversKeyCounters)
{
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(DedupMode::Predicted));
    Rng rng(118);
    const Line data = Line::random(rng);
    ctrl.write(1, data, 0);
    ctrl.write(2, data, 0);
    ctrl.read(1, 0);

    StatSet stats;
    ctrl.fillStats(stats);
    EXPECT_EQ(stats.get("writes"), 2.0);
    EXPECT_EQ(stats.get("reads"), 1.0);
    EXPECT_EQ(stats.get("writes_eliminated"), 1.0);
    EXPECT_EQ(stats.get("duplicate_commits"), 1.0);
    EXPECT_EQ(stats.get("unique_commits"), 1.0);
    EXPECT_TRUE(stats.has("prediction_accuracy"));
    EXPECT_TRUE(stats.has("hit_rate_hash_store"));
}

TEST(DeWriteControllerTest, NameReflectsModeAndTechnique)
{
    NvmDevice device(config());
    DeWriteController::Options options;
    options.mode = DedupMode::Parallel;
    options.technique = BitTechnique::Deuce;
    DeWriteController ctrl(config(), device, key(), options);
    EXPECT_EQ(ctrl.name(), "dewrite-parallel+DEUCE");
}

TEST(DeWriteControllerTest, BitTechniqueComposesWithDedup)
{
    NvmDevice device(config());
    DeWriteController::Options options;
    options.technique = BitTechnique::Dcw;
    DeWriteController ctrl(config(), device, key(), options);
    Rng rng(119);
    const Line a = Line::random(rng);
    ctrl.write(1, a, 0);              // Unique: ~50% of cells.
    ctrl.write(2, a, 0);              // Duplicate: zero cells.
    EXPECT_LT(ctrl.dataBitsProgrammed(), kLineBits * 6 / 10);
    EXPECT_GT(ctrl.dataBitsProgrammed(), kLineBits * 4 / 10);
    EXPECT_EQ(ctrl.read(2, 0).data, a);
}

TEST(DeWriteControllerTest, WorstCaseUniqueStreamStaysClose)
{
    // All-unique writes (Figure 18): DeWrite's overhead vs the time a
    // bare encrypted write would take must stay small.
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(),
                           modeOptions(DedupMode::Predicted));
    Rng rng(120);
    Time total = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        Line data;
        data.setWord64(0, rng.next64());
        data.setWord64(1, i + 1);
        total += ctrl.write(i, data, i * 1000000).latency;
    }
    const double avg = static_cast<double>(total) / n;
    const double floor = static_cast<double>(config().timing.aesLine +
                                             config().timing.nvmWrite);
    EXPECT_LT(avg, floor * 1.25);
}

} // namespace
} // namespace dewrite
