/**
 * @file
 * Lightweight statistics primitives: named counters, means, histograms.
 *
 * Every simulated component accumulates its activity in Stat objects;
 * the experiment harnesses read them back to print the paper's tables
 * and figures.
 */

#ifndef DEWRITE_COMMON_STATS_HH
#define DEWRITE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dewrite {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count / sum / mean / min / max. */
class Accumulator
{
  public:
    void add(double sample);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, bucketCount * bucketWidth); samples at
 * or beyond the top land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::size_t bucket_count, double bucket_width);

    void add(double sample);

    std::size_t bucketCount() const { return buckets_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples strictly below @p threshold. */
    double fractionBelow(double threshold) const;

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double bucketWidth_;
};

/**
 * A flat registry of named numeric results, used by components to expose
 * their counters to harnesses without hard-wiring every field name.
 */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    void add(const std::string &name, double delta);

    /** Returns the value, or 0 if the stat was never set. */
    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, double> &all() const { return values_; }

  private:
    std::map<std::string, double> values_;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_STATS_HH
