/**
 * @file
 * Logging tests: DEWRITE_LOG parsing, level gating, and interleaving
 * safety of concurrent reports.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace dewrite {
namespace {

TEST(ParseLogLevelTest, AcceptsTheThreeLevels)
{
    LogLevel level = LogLevel::Normal;
    EXPECT_TRUE(parseLogLevel("quiet", level));
    EXPECT_EQ(level, LogLevel::Quiet);
    EXPECT_TRUE(parseLogLevel("normal", level));
    EXPECT_EQ(level, LogLevel::Normal);
    EXPECT_TRUE(parseLogLevel("verbose", level));
    EXPECT_EQ(level, LogLevel::Verbose);
}

TEST(ParseLogLevelTest, RejectsEverythingElse)
{
    LogLevel level = LogLevel::Quiet;
    EXPECT_FALSE(parseLogLevel(nullptr, level));
    EXPECT_FALSE(parseLogLevel("", level));
    EXPECT_FALSE(parseLogLevel("QUIET", level)); // Case-sensitive.
    EXPECT_FALSE(parseLogLevel("verbose ", level));
    EXPECT_FALSE(parseLogLevel("2", level));
    EXPECT_EQ(level, LogLevel::Quiet); // Untouched on failure.
}

TEST(LogLevelDeathTest, MalformedEnvValueIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            ::setenv("DEWRITE_LOG", "loud", 1);
            logLevel();
        },
        ::testing::ExitedWithCode(1), "DEWRITE_LOG");
}

TEST(LogLevelDeathTest, ValidEnvValueIsHonored)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // The level latches on first use, so probe it in a child process.
    EXPECT_EXIT(
        {
            ::setenv("DEWRITE_LOG", "verbose", 1);
            std::exit(logLevel() == LogLevel::Verbose ? 17 : 1);
        },
        ::testing::ExitedWithCode(17), "");
}

TEST(LogLevelDeathTest, QuietSilencesInform)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            ::setenv("DEWRITE_LOG", "quiet", 1);
            inform("this must not appear");
            warn("warnings still appear");
            std::exit(23);
        },
        ::testing::ExitedWithCode(23), "^warn: warnings still appear\n$");
}

TEST(LogLevelDeathTest, VerboseGatesDebugChatter)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            ::setenv("DEWRITE_LOG", "normal", 1);
            verbose("hidden at normal");
            std::exit(29);
        },
        ::testing::ExitedWithCode(29), "^$");
    EXPECT_EXIT(
        {
            ::setenv("DEWRITE_LOG", "verbose", 1);
            verbose("shown at verbose");
            std::exit(31);
        },
        ::testing::ExitedWithCode(31), "shown at verbose");
}

TEST(LoggingTest, ConcurrentWarnsDoNotCrash)
{
    // Smoke for the thread-safe single-write path: interleaving is
    // prevented by construction (one fwrite per message); here we just
    // hammer it from several threads.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < 50; ++i)
                warn("thread %d message %d", t, i);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
}

} // namespace
} // namespace dewrite
