/**
 * @file
 * Rng implementation (xoshiro256** + SplitMix64 seeding).
 */

#include "common/rng.hh"

#include <cmath>

namespace dewrite {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Debiased multiply-shift (Lemire); the bias without rejection is
    // negligible for workload generation, so we keep the fast path only.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next64()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextExponential(double mean)
{
    if (mean <= 0.0)
        return 0;
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double sample = -mean * std::log(u);
    return static_cast<std::uint64_t>(sample);
}

const Rng::ZipfTerms &
Rng::zipfTerms(std::uint64_t n, double theta)
{
    for (const ZipfTerms &entry : zipf_) {
        if (entry.valid && entry.n == n && entry.theta == theta)
            return entry;
    }
    ZipfTerms &entry = zipf_[zipfVictim_];
    zipfVictim_ ^= 1;
    entry.n = n;
    entry.theta = theta;
    entry.thetaOne = std::abs(theta - 1.0) < 1e-9;
    if (entry.thetaOne) {
        entry.top = std::log(static_cast<double>(n) + 1.0);
        entry.invExp = 0.0;
    } else {
        const double one_minus = 1.0 - theta;
        entry.top = std::pow(static_cast<double>(n) + 1.0, one_minus);
        entry.invExp = 1.0 / one_minus;
    }
    entry.valid = true;
    return entry;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double theta)
{
    if (n <= 1)
        return 0;
    // Continuous bounded-Pareto inversion: a fast O(1) approximation of
    // the discrete Zipf CDF, more than adequate for shaping content
    // popularity in synthetic workloads.
    const double u = nextDouble();
    const ZipfTerms &terms = zipfTerms(n, theta);
    double x;
    if (terms.thetaOne) {
        x = std::exp(u * terms.top);
    } else {
        x = std::pow(u * (terms.top - 1.0) + 1.0, terms.invExp);
    }
    auto rank = static_cast<std::uint64_t>(x) - 1;
    return rank >= n ? n - 1 : rank;
}

} // namespace dewrite
