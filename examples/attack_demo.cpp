/**
 * @file
 * Threat-model demo (Section II-A): what a stolen-DIMM attacker sees.
 *
 * Writes recognizable secrets through (a) a plain NVM controller and
 * (b) the DeWrite secure controller, then plays the attacker: dump the
 * raw cells of the stolen module and scan them for the secrets. The
 * plain module leaks everything; the encrypted one yields
 * indistinguishable-from-random bytes (a byte-entropy estimate is
 * printed as evidence).
 *
 * Usage:
 *   ./build/examples/attack_demo
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/system.hh"

using namespace dewrite;

namespace {

const char *kSecrets[] = {
    "user=root password=hunter2",
    "BEGIN RSA PRIVATE KEY 4242",
    "credit_card=4111111111111111",
};

/** The attacker's dump: every written line's raw cells. */
std::vector<std::uint8_t>
dumpModule(const NvmDevice &device, LineAddr first, LineAddr last)
{
    std::vector<std::uint8_t> dump;
    for (LineAddr addr = first; addr < last; ++addr) {
        if (!device.isWritten(addr))
            continue;
        const Line line = device.peek(addr);
        dump.insert(dump.end(), line.data(), line.data() + kLineSize);
    }
    return dump;
}

bool
containsSecret(const std::vector<std::uint8_t> &dump, const char *secret)
{
    const std::size_t n = std::strlen(secret);
    if (dump.size() < n)
        return false;
    for (std::size_t i = 0; i + n <= dump.size(); ++i) {
        if (std::memcmp(dump.data() + i, secret, n) == 0)
            return true;
    }
    return false;
}

/** Shannon entropy of the dump's byte histogram, bits per byte. */
double
byteEntropy(const std::vector<std::uint8_t> &dump)
{
    if (dump.empty())
        return 0.0;
    std::uint64_t histogram[256] = {};
    for (std::uint8_t byte : dump)
        ++histogram[byte];
    double entropy = 0.0;
    for (std::uint64_t count : histogram) {
        if (count == 0)
            continue;
        const double p =
            static_cast<double>(count) / static_cast<double>(dump.size());
        entropy -= p * std::log2(p);
    }
    return entropy;
}

void
attack(const char *label, System &system)
{
    // The victim stores secrets plus some filler.
    LineAddr addr = 100;
    for (const char *secret : kSecrets) {
        Line line;
        std::memcpy(line.data(), secret, std::strlen(secret));
        system.write(addr++, line);
    }
    for (int i = 0; i < 29; ++i)
        system.write(addr++, Line::pattern(0x4141414141414141ULL));

    // The DIMM is stolen; the attacker streams out the cells.
    const std::vector<std::uint8_t> dump =
        dumpModule(system.device(), 100, addr);

    std::printf("%s: dumped %zu bytes, entropy %.2f bits/byte\n", label,
                dump.size(), byteEntropy(dump));
    for (const char *secret : kSecrets) {
        std::printf("  secret \"%.20s...\": %s\n", secret,
                    containsSecret(dump, secret) ? "LEAKED"
                                                 : "not found");
    }
}

} // namespace

int
main()
{
    std::printf("Stolen-DIMM attack (Section II-A threat model)\n\n");

    SystemConfig config;

    SchemeOptions plain;
    plain.kind = SchemeKind::Plain;
    System exposed(config, plain);
    attack("plain NVM    ", exposed);

    std::printf("\n");

    SchemeOptions secure;
    secure.kind = SchemeKind::DeWrite;
    System protected_system(config, secure);
    attack("DeWrite NVMM ", protected_system);

    std::printf("\nCounter-mode AES leaves the stolen module looking "
                "like noise (~8 bits/byte); deduplication changes "
                "which cells hold data, never whether they are "
                "encrypted.\n");
    return 0;
}
