# Empty dependencies file for dewrite.
# This may be replaced when dependencies are built.
