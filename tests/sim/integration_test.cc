/**
 * @file
 * Cross-module integration tests: the paper's headline effects must
 * emerge from the assembled system (directions, not exact numbers).
 *
 * Every (app, scheme) cell the assertions below consult is simulated
 * exactly once, up front, through the parallel experiment runner —
 * both to keep the suite fast on multi-core hosts and to exercise the
 * runner itself on the integration workloads.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"
#include "trace/workload_stats.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 18;
    return config;
}

constexpr std::uint64_t kEvents = 8000;

SchemeOptions
shredderScheme()
{
    SchemeOptions scheme = secureBaselineScheme();
    scheme.baseline.shredZeroLines = true;
    return scheme;
}

/**
 * Precomputes the distinct simulation cells shared by the tests.
 *
 * gtest runs tests serially, so without the cache the lbm baseline
 * (for example) would be re-simulated by three separate tests.
 */
class IntegrationTest : public ::testing::Test
{
  protected:
    struct CellSpec
    {
        const char *app;
        const char *scheme_name;
        SchemeOptions scheme;
    };

    static void
    SetUpTestSuite()
    {
        if (cells_ != nullptr)
            return;
        const std::vector<CellSpec> specs = {
            { "lbm", "baseline", secureBaselineScheme() },
            { "lbm", "predicted", dewriteScheme(DedupMode::Predicted) },
            { "cactusADM", "baseline", secureBaselineScheme() },
            { "cactusADM", "predicted",
              dewriteScheme(DedupMode::Predicted) },
            { "vips", "baseline", secureBaselineScheme() },
            { "vips", "predicted", dewriteScheme(DedupMode::Predicted) },
            { "gcc", "direct", dewriteScheme(DedupMode::Direct) },
            { "gcc", "parallel", dewriteScheme(DedupMode::Parallel) },
            { "gcc", "predicted", dewriteScheme(DedupMode::Predicted) },
            { "lbm", "direct", dewriteScheme(DedupMode::Direct) },
            { "lbm", "parallel", dewriteScheme(DedupMode::Parallel) },
            { "sjeng", "baseline", secureBaselineScheme() },
            { "sjeng", "shredder", shredderScheme() },
            { "sjeng", "predicted", dewriteScheme(DedupMode::Predicted) },
            { "zeusmp", "shredder", shredderScheme() },
            { "zeusmp", "predicted",
              dewriteScheme(DedupMode::Predicted) },
        };
        std::vector<RunResult> results(specs.size());
        parallelFor(specs.size(), [&](std::size_t i) {
            results[i] = runApp(appByName(specs[i].app), smallConfig(),
                                specs[i].scheme, kEvents, 99)
                             .run;
        });
        cells_ = new std::map<std::string, RunResult>;
        for (std::size_t i = 0; i < specs.size(); ++i)
            (*cells_)[std::string(specs[i].app) + "/" +
                      specs[i].scheme_name] = results[i];
    }

    static const RunResult &
    cell(const std::string &app, const std::string &scheme)
    {
        return cells_->at(app + "/" + scheme);
    }

  private:
    static std::map<std::string, RunResult> *cells_;
};

std::map<std::string, RunResult> *IntegrationTest::cells_ = nullptr;

TEST_F(IntegrationTest, DeWriteEliminatesRoughlyTheDupFraction)
{
    const RunResult &result = cell("lbm", "predicted");
    const double eliminated = static_cast<double>(result.writesEliminated) /
                              static_cast<double>(result.writes);
    EXPECT_NEAR(eliminated, appByName("lbm").dupTarget, 0.1);
}

TEST_F(IntegrationTest, WriteSpeedupOnDupHeavyApp)
{
    const RunResult &baseline = cell("lbm", "baseline");
    const RunResult &dewrite = cell("lbm", "predicted");
    // Figure 14's direction: several-fold write speedup on a >90%
    // duplicate application.
    EXPECT_GT(baseline.avgWriteLatencyNs / dewrite.avgWriteLatencyNs,
              2.0);
}

TEST_F(IntegrationTest, ReadSpeedupFromRemovedBankContention)
{
    const RunResult &baseline = cell("lbm", "baseline");
    const RunResult &dewrite = cell("lbm", "predicted");
    // Figure 16's direction: reads also win because eliminated writes
    // stop blocking banks.
    EXPECT_GT(baseline.avgReadLatencyNs, dewrite.avgReadLatencyNs);
}

TEST_F(IntegrationTest, IpcImprovesOnDupHeavyApp)
{
    const RunResult &baseline = cell("cactusADM", "baseline");
    const RunResult &dewrite = cell("cactusADM", "predicted");
    EXPECT_GT(dewrite.ipc, baseline.ipc * 1.2);
}

TEST_F(IntegrationTest, EnergyDropsOnDupHeavyApp)
{
    const RunResult &baseline = cell("lbm", "baseline");
    const RunResult &dewrite = cell("lbm", "predicted");
    EXPECT_LT(dewrite.totalEnergy, baseline.totalEnergy);
}

TEST_F(IntegrationTest, LowDupAppGainsAreModest)
{
    const RunResult &baseline = cell("vips", "baseline");
    const RunResult &dewrite = cell("vips", "predicted");
    const double speedup =
        baseline.avgWriteLatencyNs / dewrite.avgWriteLatencyNs;
    // vips is the paper's low end (18.6% duplicates): some gain, but
    // nowhere near the dup-heavy apps.
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 2.5);
}

TEST_F(IntegrationTest, ModeLatencyOrdering)
{
    // Figure 15: direct >= DeWrite ~= parallel in write latency.
    const RunResult &direct = cell("gcc", "direct");
    const RunResult &predicted = cell("gcc", "predicted");
    const RunResult &parallel = cell("gcc", "parallel");
    EXPECT_GE(direct.avgWriteLatencyNs, predicted.avgWriteLatencyNs);
    EXPECT_GE(direct.avgWriteLatencyNs, parallel.avgWriteLatencyNs);
    // "Nearly the same" as the parallel way (the gap is the serial
    // AES the mispredicted-duplicate writes pay).
    EXPECT_LE(predicted.avgWriteLatencyNs,
              1.15 * parallel.avgWriteLatencyNs);
}

TEST_F(IntegrationTest, ModeEnergyOrdering)
{
    // Figure 20: parallel >= DeWrite ~= direct in energy.
    const RunResult &direct = cell("lbm", "direct");
    const RunResult &predicted = cell("lbm", "predicted");
    const RunResult &parallel = cell("lbm", "parallel");
    EXPECT_GE(parallel.totalEnergy, predicted.totalEnergy);
    EXPECT_LE(
        static_cast<double>(predicted.totalEnergy),
        1.15 * static_cast<double>(direct.totalEnergy));
}

TEST_F(IntegrationTest, WorstCasePenaltyIsSmall)
{
    // Figure 18: on an all-unique workload DeWrite stays within a few
    // percent of the secure baseline.
    SystemConfig config = smallConfig();

    WorstCaseWorkload trace_base(4096, 100.0, 5);
    System baseline(config, secureBaselineScheme());
    const RunResult base = baseline.run(trace_base, kEvents);

    WorstCaseWorkload trace_dw(4096, 100.0, 5);
    System dewrite(config, dewriteScheme(DedupMode::Predicted));
    const RunResult dw = dewrite.run(trace_dw, kEvents);

    EXPECT_EQ(dw.writesEliminated, 0u);
    EXPECT_GT(dw.ipc, base.ipc * 0.9);
}

TEST_F(IntegrationTest, ShredderCapturesOnlyZeroLines)
{
    // On sjeng — the one zero-dominated app (Figure 2) — shredding is
    // competitive with full dedup.
    const RunResult &shred_sjeng = cell("sjeng", "shredder");
    const RunResult &dewrite_sjeng = cell("sjeng", "predicted");
    EXPECT_GT(shred_sjeng.writesEliminated, 0u);
    EXPECT_GT(dewrite_sjeng.writesEliminated,
              shred_sjeng.writesEliminated * 8 / 10);

    // On a typical app, most duplicates are non-zero and dedup clearly
    // wins (the paper's 58% vs 16% average comparison).
    const RunResult &shred_zeusmp = cell("zeusmp", "shredder");
    const RunResult &dewrite_zeusmp = cell("zeusmp", "predicted");
    EXPECT_GT(dewrite_zeusmp.writesEliminated,
              2 * shred_zeusmp.writesEliminated);

    const RunResult &baseline = cell("sjeng", "baseline");
    EXPECT_EQ(baseline.writesEliminated, 0u);
}

TEST_F(IntegrationTest, MeasuredDupMatchesEngineElimination)
{
    // The dedup engine should find nearly all duplicates the offline
    // scanner counts (the small gap is PNA + saturation, Figure 12).
    const AppProfile &app = appByName("milc");
    SyntheticWorkload measure_trace(app, 42);
    const WorkloadStats truth = measureWorkload(measure_trace, kEvents);

    SyntheticWorkload sim_trace(app, 42);
    System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
    const RunResult run = system.run(sim_trace, kEvents);

    const double truth_dup = truth.dupFraction();
    const double eliminated = static_cast<double>(run.writesEliminated) /
                              static_cast<double>(run.writes);
    EXPECT_LE(eliminated, truth_dup + 0.01);
    EXPECT_GT(eliminated, truth_dup - 0.06);
}

} // namespace
} // namespace dewrite
