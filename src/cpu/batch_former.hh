/**
 * @file
 * The write-batch former shared by every trace-driven core loop.
 *
 * A former stages consecutive store-queue writes and hands them to
 * MemController::writeBatch() as one group — the host-side batching of
 * DESIGN.md §5f. It owns the staging slots (fixed capacity, no
 * allocation after construction) and the flush-reason accounting:
 * every non-empty flush is attributed to the event that forced it
 * (a read that must observe the staged writes, a full store queue, a
 * full batch, or the end of the trace), so the registry exposes *why*
 * batches break up, not just cycle totals.
 *
 * Both CoreModel::runMulti (the batch-run experiment path) and the
 * service's ShardCore (the resumable per-shard loop) drive one former;
 * extracting it keeps the strict-equivalence contract in one place.
 */

#ifndef DEWRITE_CPU_BATCH_FORMER_HH
#define DEWRITE_CPU_BATCH_FORMER_HH

#include <array>
#include <cstddef>

#include "common/stats.hh"
#include "common/types.hh"
#include "controller/mem_controller.hh"
#include "obs/metric_registry.hh"

namespace dewrite {

class BatchFormer
{
  public:
    /** What event forced a (non-empty) flush. */
    enum class FlushReason
    {
        Read,      //!< A read must observe every staged write first.
        QueueFull, //!< The store queue reached its drain threshold.
        BatchFull, //!< The batch reached DEWRITE_BATCH staged writes.
        TraceEnd,  //!< End of trace / end of run drains the tail.
    };

    /**
     * Arms the former for a run with @p capacity staged writes per
     * batch (1..kMaxWriteBatch; normally writeBatchSize()). Discards
     * anything staged; counters persist across runs.
     */
    void reset(std::size_t capacity);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= capacity_; }

    /**
     * Stages one write (copied — the trace buffer may be overwritten
     * before the flush) and returns its slot index within the current
     * batch. The former must not be full.
     */
    std::size_t stage(LineAddr addr, const Line &data, Time now);

    /**
     * Issue time of staged slot @p slot. Slot data stays readable
     * after flush() until stage() overwrites it, which lets callers
     * resolve store-queue completion times from the responses.
     */
    Time slotNow(std::size_t slot) const { return slots_[slot].now; }

    /**
     * Address of staged slot @p slot; same post-flush lifetime as
     * slotNow(), which lets telemetry attribute flushed writes to
     * their tenants from the response array.
     */
    LineAddr slotAddr(std::size_t slot) const
    {
        return slots_[slot].addr;
    }

    /**
     * Hands every staged write to @p controller.writeBatch() in stage
     * order, filling results[0..size) — the strict-equivalence batch
     * contract — and counts the flush under @p reason. Empty formers
     * return 0 without touching the controller or the counters.
     * @return the number of writes flushed.
     */
    std::size_t flush(MemController &controller, CtrlWriteResult *results,
                      FlushReason reason);

    /** @{ Flush-reason accounting (non-empty flushes only). */
    std::uint64_t flushesOnRead() const { return flushRead_.value(); }
    std::uint64_t flushesOnQueueFull() const
    {
        return flushQueueFull_.value();
    }
    std::uint64_t flushesOnBatchFull() const
    {
        return flushBatchFull_.value();
    }
    std::uint64_t flushesOnTraceEnd() const
    {
        return flushTraceEnd_.value();
    }
    std::uint64_t flushes() const;
    std::uint64_t writesStaged() const { return writesStaged_.value(); }
    /** @} */

    /**
     * Registers the flush-reason counters under @p scope (canonically
     * "core.batch"). Host-side accounting only: none of these carry
     * legacy StatSet names, so result signatures are untouched.
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const;

  private:
    struct Slot
    {
        LineAddr addr = 0;
        Time now = 0;
        Line data;
    };

    std::array<Slot, kMaxWriteBatch> slots_;
    std::size_t capacity_ = 1;
    std::size_t size_ = 0;

    Counter flushRead_;
    Counter flushQueueFull_;
    Counter flushBatchFull_;
    Counter flushTraceEnd_;
    Counter writesStaged_;
};

} // namespace dewrite

#endif // DEWRITE_CPU_BATCH_FORMER_HH
