# Empty dependencies file for bench_fig16_read_speedup.
# This may be replaced when dependencies are built.
