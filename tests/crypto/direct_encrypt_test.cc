/**
 * @file
 * Direct (metadata) encryption tests.
 */

#include "crypto/direct_encrypt.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

AesKey
testKey()
{
    AesKey key{};
    key[0] = 0x5a;
    key[15] = 0xa5;
    return key;
}

TEST(DirectEncryptTest, RoundTrip)
{
    const DirectEncryptEngine engine(testKey());
    Rng rng(41);
    for (int trial = 0; trial < 20; ++trial) {
        const Line pt = Line::random(rng);
        const LineAddr addr = rng.next64() % (1u << 20);
        const Line ct = engine.encryptLine(pt, addr);
        EXPECT_NE(ct, pt);
        EXPECT_EQ(engine.decryptLine(ct, addr), pt);
    }
}

TEST(DirectEncryptTest, AddressTweakBreaksEcb)
{
    // Identical plaintext at different addresses must not match — the
    // ECB weakness the XEX-style tweak removes.
    const DirectEncryptEngine engine(testKey());
    const Line pt = Line::filled(0x77);
    EXPECT_NE(engine.encryptLine(pt, 100), engine.encryptLine(pt, 101));
}

TEST(DirectEncryptTest, IdenticalBlocksWithinLineDiffer)
{
    // All sixteen AES blocks of this line hold identical plaintext;
    // the per-block tweak must still decorrelate them.
    const DirectEncryptEngine engine(testKey());
    const Line ct = engine.encryptLine(Line::filled(0x11), 5);
    bool any_difference = false;
    for (std::size_t block = 1; block < kAesBlocksPerLine; ++block) {
        for (std::size_t i = 0; i < kAesBlockSize; ++i) {
            if (ct.byte(block * kAesBlockSize + i) != ct.byte(i))
                any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(DirectEncryptTest, DeterministicForSameInputs)
{
    const DirectEncryptEngine engine(testKey());
    const Line pt = Line::filled(0x3c);
    EXPECT_EQ(engine.encryptLine(pt, 9), engine.encryptLine(pt, 9));
}

} // namespace
} // namespace dewrite
