/**
 * @file
 * MetricRegistry implementation.
 */

#include "obs/metric_registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/json_writer.hh"

namespace dewrite::obs {

double
MetricRegistry::Entry::read() const
{
    switch (kind) {
      case MetricKind::Counter:
        return static_cast<double>(counter->value());
      case MetricKind::Gauge:
        return gauge();
      case MetricKind::Accumulator:
        return accumulator->mean();
      case MetricKind::Histogram:
        return static_cast<double>(histogram->total());
    }
    panic("bad metric kind");
}

MetricRegistry::Entry &
MetricRegistry::insert(std::string path, std::string desc,
                       std::string legacy, MetricKind kind)
{
    if (path.empty())
        panic("metric path must not be empty");
    const auto [it, fresh] = byPath_.emplace(path, entries_.size());
    if (!fresh)
        panic("metric path collision: \"%s\"", path.c_str());
    // dewrite-analyze: allow(hot-path-purity) registration happens at construction time; the hot
    // edge is a name-collision over-approximation (insert)
    Entry &entry = entries_.emplace_back();
    entry.path = std::move(path);
    entry.desc = std::move(desc);
    entry.legacy = std::move(legacy);
    entry.kind = kind;
    return entry;
}

void
MetricRegistry::addCounter(std::string path,
                           const dewrite::Counter &counter,
                           std::string desc, std::string legacy)
{
    insert(std::move(path), std::move(desc), std::move(legacy),
           MetricKind::Counter)
        .counter = &counter;
}

void
MetricRegistry::addGauge(std::string path, std::function<double()> fn,
                         std::string desc, std::string legacy)
{
    insert(std::move(path), std::move(desc), std::move(legacy),
           MetricKind::Gauge)
        .gauge = std::move(fn);
}

void
MetricRegistry::addAccumulator(std::string path,
                               const dewrite::Accumulator &accumulator,
                               std::string desc, std::string legacy)
{
    insert(std::move(path), std::move(desc), std::move(legacy),
           MetricKind::Accumulator)
        .accumulator = &accumulator;
}

void
MetricRegistry::addHistogram(std::string path,
                             const dewrite::Histogram &histogram,
                             std::string desc, std::string legacy)
{
    insert(std::move(path), std::move(desc), std::move(legacy),
           MetricKind::Histogram)
        .histogram = &histogram;
}

void
MetricRegistry::aliasLegacy(const std::string &path, std::string legacy)
{
    const auto it = byPath_.find(path);
    if (it == byPath_.end())
        panic("aliasLegacy: no metric at \"%s\"", path.c_str());
    Entry &entry = entries_[it->second];
    if (!entry.legacy.empty())
        panic("aliasLegacy: \"%s\" already has legacy name \"%s\"",
              path.c_str(), entry.legacy.c_str());
    entry.legacy = std::move(legacy);
}

bool
MetricRegistry::has(const std::string &path) const
{
    return byPath_.contains(path);
}

const MetricRegistry::Entry *
MetricRegistry::find(const std::string &path) const
{
    const auto it = byPath_.find(path);
    return it == byPath_.end() ? nullptr : &entries_[it->second];
}

std::vector<MetricSample>
MetricRegistry::snapshot() const
{
    std::vector<MetricSample> samples;
    samples.reserve(entries_.size());
    for (const Entry &entry : entries_)
        samples.push_back({ entry.path, entry.kind, entry.read() });
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.path < b.path;
              });
    return samples;
}

void
MetricRegistry::fillStatSet(StatSet &out) const
{
    for (const Entry &entry : entries_) {
        if (!entry.legacy.empty())
            out.set(entry.legacy, entry.read());
    }
}

void
MetricRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const MetricSample &sample : snapshot())
        w.field(sample.path, sample.value);
    w.endObject();
}

} // namespace dewrite::obs
