/**
 * @file
 * Deterministic fingerprinting of experiment cells for the golden
 * parity test.
 *
 * A cell's signature serializes every user-visible number an
 * ExperimentResult carries — the RunResult headline fields and every
 * controller detail stat — into one canonical text form; the
 * fingerprint is its CRC-32. The golden constants embedded in
 * golden_parity_test.cc were produced by the pre-FlatMap (node-based
 * std::unordered_map) implementation, so the test proves the flat
 * data-structure migration changed no observable counter by even one
 * bit. Doubles print with %.17g, which round-trips IEEE-754 exactly.
 */

#ifndef DEWRITE_TESTS_SIM_GOLDEN_FINGERPRINT_HH
#define DEWRITE_TESTS_SIM_GOLDEN_FINGERPRINT_HH

#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/crc32.hh"
#include "sim/experiment.hh"

namespace dewrite {

inline std::string
cellSignature(const ExperimentResult &cell)
{
    std::string sig;
    char buf[128];
    auto addU64 = [&](const char *name, std::uint64_t v) {
        std::snprintf(buf, sizeof buf, "%s=%" PRIu64 ";", name, v);
        sig += buf;
    };
    auto addF64 = [&](const char *name, double v) {
        std::snprintf(buf, sizeof buf, "%s=%.17g;", name, v);
        sig += buf;
    };

    sig += cell.app + "/" + cell.scheme + ";";
    const RunResult &r = cell.run;
    addU64("instructions", r.instructions);
    addU64("cycles", r.cycles);
    addU64("events", r.events);
    addU64("writes", r.writes);
    addU64("reads", r.reads);
    addU64("writesEliminated", r.writesEliminated);
    addF64("ipc", r.ipc);
    addF64("avgWriteLatencyNs", r.avgWriteLatencyNs);
    addF64("avgReadLatencyNs", r.avgReadLatencyNs);
    addU64("totalEnergy", r.totalEnergy);
    addU64("nvmLineWrites", r.nvmLineWrites);
    addU64("nvmLineReads", r.nvmLineReads);
    addU64("bitsProgrammed", r.bitsProgrammed);
    for (const auto &[name, value] : cell.stats.all())
        addF64(name.c_str(), value);
    return sig;
}

inline std::uint32_t
cellFingerprint(const ExperimentResult &cell)
{
    const std::string sig = cellSignature(cell);
    return crc32(reinterpret_cast<const std::uint8_t *>(sig.data()),
                 sig.size());
}

} // namespace dewrite

#endif // DEWRITE_TESTS_SIM_GOLDEN_FINGERPRINT_HH
