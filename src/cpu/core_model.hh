/**
 * @file
 * The trace-driven in-order core model (the gem5 CPU substitute).
 *
 * Executes non-memory instructions at one per cycle and stalls on every
 * memory event. Reads stall because the core is in-order; writes stall
 * because this is *persistent* memory — consistency requires ordered
 * cache-line flushes and fences, so a write's full latency lands on the
 * critical path (Section III, the premise of the whole paper). IPC is
 * therefore directly sensitive to the write latency each controller
 * scheme achieves.
 */

#ifndef DEWRITE_CPU_CORE_MODEL_HH
#define DEWRITE_CPU_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/timing.hh"
#include "common/types.hh"
#include "cpu/batch_former.hh"

namespace dewrite {

class TraceSource;

/**
 * Writes handed to the controller per batched step: DEWRITE_BATCH
 * (envUint, 1..64, default 16; 1 disables batching). Read per run.
 */
std::size_t writeBatchSize();

/** Aggregate outcome of one simulation run. */
struct RunResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t writesEliminated = 0;

    double ipc = 0.0;
    double avgWriteLatencyNs = 0.0;
    double avgReadLatencyNs = 0.0;

    /** Filled by System::run: device + controller energy, pJ. */
    Energy totalEnergy = 0;
    std::uint64_t nvmLineWrites = 0; //!< Device writes incl. metadata.
    std::uint64_t nvmLineReads = 0;
    std::uint64_t bitsProgrammed = 0; //!< Data cells programmed.
};

class CoreModel
{
  public:
    explicit CoreModel(const TimingConfig &timing) : timing_(timing) {}

    /**
     * Drives @p controller with up to @p max_events events from
     * @p trace and returns the core-side accounting (memory-side
     * fields are zero; System::run completes them).
     */
    RunResult run(TraceSource &trace, MemController &controller,
                  std::uint64_t max_events);

    /**
     * Multi-core replay: each trace drives one core with its own local
     * clock; the next event issued is always the globally earliest, so
     * requests from different cores overlap at the controller and
     * contend for banks — the condition under which eliminating writes
     * also accelerates reads (Section I). @p max_events bounds the
     * total across cores; cycles are the slowest core's, instructions
     * sum over cores (so IPC is aggregate, up to one per core).
     */
    RunResult runMulti(const std::vector<TraceSource *> &traces,
                       MemController &controller,
                       std::uint64_t max_events);

    /**
     * Registers the batch former's flush-reason counters under
     * @p scope (the System passes "core"). Host-side accounting only;
     * simulated results carry no trace of it.
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const;

    /** The write-batch former (counters persist across runs). */
    const BatchFormer &former() const { return former_; }

  private:
    const TimingConfig &timing_;
    BatchFormer former_;
};

} // namespace dewrite

#endif // DEWRITE_CPU_CORE_MODEL_HH
