/**
 * @file
 * The deduplication engine: DeWrite's "dedup logic" block (Figure 5).
 *
 * Owns the four metadata structures (hash store, address-mapping table,
 * inverted hash table, free-space bitmap) *functionally* — contents are
 * exact and reads round-trip — while charging all timing and traffic
 * through the metadata cache and the NVM device, so the same object
 * serves both correctness tests and the paper's performance experiments.
 *
 * Counter colocation (Section III-C) is centralized here: the per-slot
 * encryption counter lives in whichever of mapping[S] / invertedHash[S]
 * is currently a null entry. Both can be occupied in one corner case the
 * paper does not discuss (slot S holds foreign data while logical S is
 * remapped); those counters spill to a small overflow store whose
 * occupancy is tracked and expected to stay near zero (see DESIGN.md).
 *
 * Write-path split: the memory controller decides *scheduling* (direct /
 * parallel / predicted, Figure 3) by calling detect() and then one of
 * commitDuplicate() / commitUnique() with the time its chosen schedule
 * made the ciphertext available; the engine owns the *semantics*.
 */

#ifndef DEWRITE_DEDUP_DEDUP_ENGINE_HH
#define DEWRITE_DEDUP_DEDUP_ENGINE_HH

#include <cstdint>

#include "cache/metadata_cache.hh"
#include "common/fast_div.hh"
#include "common/flat_map.hh"
#include "common/line.hh"
#include "common/paged_array.hh"
#include "common/stats.hh"
#include "common/timing.hh"
#include "common/types.hh"
// dewrite-analyze: allow(layering) the engine prices candidate
// writes with the controller's bit-flip model; inverting this
// edge would duplicate the Flip-N-Write cost tables
#include "controller/bitlevel/bitflip.hh"
// dewrite-analyze: allow(layering) legacy back-edge for the
// metadata-write callback interface (DESIGN.md 5i)
#include "controller/mem_controller.hh"
#include "crypto/counter_mode.hh"
#include "dedup/fingerprint.hh"
#include "obs/metric_registry.hh"
#include "obs/stage_profile.hh"
#include "obs/trace_ring.hh"
#include "dedup/address_mapping.hh"
#include "dedup/free_space.hh"
#include "dedup/hash_store.hh"
#include "dedup/inverted_hash.hh"

namespace dewrite {

class NvmDevice;

/**
 * How a weak-fingerprint (CRC-32) match is resolved into a duplicate
 * verdict (DESIGN.md §5j). Cryptographic fingerprinters (MD5/SHA-1)
 * are trusted outright and ignore this policy, as before.
 */
enum class DetectPolicy
{
    /** The paper's scheme: read the candidate line and compare. */
    ConfirmRead = 0,
    /** Trust the CRC. Saves the confirmation entirely but silently
     *  corrupts data on a collision — ablation only. */
    WeakOnly = 1,
    /** Two-tier: compare 128-bit strong fingerprints cached in the
     *  hash store; fall back to a confirmation read (which also
     *  caches the fingerprint) when the candidate's is not valid. */
    WeakStrong = 2,
    /** Per-epoch choice between ConfirmRead and WeakStrong from the
     *  observed duplicate ratio, with hysteresis. */
    Adaptive = 3,
};

/** Stable identifier of @p policy ("confirm-read", "weak-only", ...). */
const char *detectPolicyName(DetectPolicy policy);

/** DEWRITE_DETECT: detection policy, default confirm-read. */
DetectPolicy detectPolicyFromEnv();

/** DEWRITE_DETECT_EPOCH: adaptive epoch length in writes. */
std::uint64_t detectEpochFromEnv();

/** Result of duplication detection for one incoming line. */
struct DetectOutcome
{
    std::uint64_t hash = 0;    //!< Fingerprint of the incoming plaintext.
    bool authoritative = false;//!< Hash store actually consulted (not PNA-skipped).
    bool duplicate = false;    //!< Confirmed duplicate with spare refcount.
    LineAddr dupSlot = kInvalidAddr; //!< Slot holding the identical data.
    Time done = 0;             //!< Absolute time detection resolved.
    unsigned confirmReads = 0; //!< Candidate lines read for confirmation.
};

/** Result of committing one write. */
struct WriteCommit
{
    LineAddr slot = kInvalidAddr; //!< Slot referenced or written.
    bool wroteLine = false;       //!< A data-line NVM write was issued.
    bool reencrypted = false;     //!< Optimistic ciphertext was discarded.
    std::size_t bitsProgrammed = 0; //!< Cells programmed by the write.
    Time done = 0;                //!< Absolute completion time.
};

/** Result of a read. */
struct ReadOutcome
{
    Line data;
    bool valid = false;    //!< Line had ever been written.
    bool remapped = false; //!< Served through an address mapping.
    Time done = 0;
};

class DedupEngine
{
  public:
    /** Tunables for ablation studies. */
    struct Options
    {
        /**
         * How weak-fingerprint matches are resolved (DESIGN.md §5j).
         * ConfirmRead is the paper's design and the default; WeakOnly
         * is the unsafe ablation that trusts the 32-bit hash;
         * WeakStrong compares cached 128-bit strong fingerprints;
         * Adaptive switches between ConfirmRead and WeakStrong per
         * epoch from the observed duplicate ratio.
         */
        DetectPolicy detect = DetectPolicy::ConfirmRead;

        /**
         * Bit-level write-reduction technique applied to the unique
         * writes DeWrite cannot eliminate (Figure 13 composition).
         * Non-owning; null programs full lines.
         */
        BitLevelReducer *reducer = nullptr;

        /**
         * Hardware bound on candidates examined per detection. CRC
         * chains are almost always length one; pathological chains
         * (e.g. pinned saturated records of a popular content) are cut
         * off here and the write proceeds as unique.
         */
        unsigned maxChainProbe = 4;

        /**
         * Fingerprint function. CRC-32 is DeWrite's choice (cheap,
         * confirmed by read); MD5/SHA-1 configure the traditional
         * cryptographic-fingerprint comparator of Table I, whose
         * matches are trusted without a confirmation read. When using
         * a cryptographic function, set
         * MemoryConfig::hashDigestBits to match for space accounting.
         */
        HashFunction hashFunction = HashFunction::Crc32;

        /**
         * Width of the stored per-line minor counter (the paper's is
         * 28 bits). On wrap a per-line major counter increments so an
         * OTP is never reused — the split-counter discipline. Kept
         * configurable so tests can exercise wraps without 2^28
         * writes.
         */
        unsigned counterBits = 28;

        /**
         * Adaptive-policy epoch length: commits per re-evaluation of
         * the operational detection mode (DEWRITE_DETECT_EPOCH).
         */
        std::uint64_t detectEpochWrites = 4096;
    };

    DedupEngine(const SystemConfig &config, NvmDevice &device,
                MetadataCache &metadata, CounterModeEngine &cme,
                Options options);

    /** Convenience: default options (confirm-by-read enabled). */
    DedupEngine(const SystemConfig &config, NvmDevice &device,
                MetadataCache &metadata, CounterModeEngine &cme);

    /**
     * Duplication detection (Section III-B1): CRC-32, hash-store query,
     * read-and-compare confirmation of candidates.
     *
     * @param allow_nvm_fill When false (PNA for predicted-non-duplicate
     *        writes), a metadata-cache miss terminates detection as
     *        non-authoritative instead of querying the in-NVM table.
     */
    DetectOutcome detect(const Line &plaintext, Time now,
                         bool allow_nvm_fill,
                         const std::uint64_t *precomputed_hash = nullptr,
                         const StrongFp *precomputed_strong = nullptr);

    /**
     * Host-side preparation for a batch of writes about to be pushed
     * through detect()/commit one by one (the batched pipeline of
     * DESIGN.md §5f). Three rounds, each issuing all its prefetches
     * before any member consumes a result:
     *  1. fingerprint every member with the slice-by-8 CRC kernel,
     *     storing the digests into @p hashes (pass each back to
     *     detect() as @p precomputed_hash);
     *  2. prefetch every member's hash-store bucket, mapping /
     *     inverted-hash / written entries, and NVM store pages;
     *  3. against the warmed buckets, prefetch each live candidate's
     *     stored line, then batch-generate the pads the members will
     *     need (confirm pads for candidates, a predicted in-place
     *     commit pad for empty chains) through the eight-wide AES
     *     kernel into the pad cache. In the weak+strong detection
     *     mode, candidates with a valid cached fingerprint skip the
     *     line/pad prefetch (no confirmation read will happen) and
     *     the members' own strong fingerprints are batch-computed
     *     into @p strong_fps in the same AES slot instead.
     * Purely host-side: simulated timing, energy, and metadata state
     * are untouched, so results are byte-identical with or without it.
     * @p strong_fps/@p strong_ready (arrays of @p count, may be null)
     * return the precomputed strong fingerprints; pass each flagged
     * member's back to detect() as @p precomputed_strong.
     */
    void prepareBatch(const CtrlWriteRequest *requests, std::size_t count,
                      std::uint64_t *hashes,
                      StrongFp *strong_fps = nullptr,
                      std::uint8_t *strong_ready = nullptr);

    /**
     * Commits a write whose content detect() confirmed at
     * @p detect.dupSlot: bumps the reference, remaps @p init_addr,
     * releases whatever @p init_addr referenced before. No data line is
     * written.
     */
    WriteCommit commitDuplicate(LineAddr init_addr,
                                const DetectOutcome &detect, Time now);

    /**
     * Commits a unique (or prediction-missed) write: chooses a slot
     * (in place when @p init_addr owns its slot exclusively, otherwise
     * allocated), bumps the slot counter, encrypts, writes the line,
     * and installs the metadata.
     *
     * @param encrypt_ready Absolute time the controller's schedule made
     *        the optimistic ciphertext available (encryption overlapped
     *        with detection uses the line's own slot and counter; if
     *        the commit lands elsewhere the engine re-encrypts and
     *        charges the extra latency and energy).
     */
    WriteCommit commitUnique(LineAddr init_addr, const Line &plaintext,
                             std::uint64_t hash, Time now,
                             Time encrypt_ready);

    /** Reads logical line @p init_addr through the mapping (Figure 11). */
    /**
     * Reads logical line @p init_addr. With @p want_data false only
     * the timing/energy/stat effects are produced (identically) and
     * the outcome's data stays zero — the host-side decrypt (pad
     * lookup plus line XOR) is skipped for callers that discard it.
     */
    ReadOutcome read(LineAddr init_addr, Time now, bool want_data = true);

    /** @{ Structure access for tests and benches. */
    const HashStore &hashStore() const { return hashStore_; }
    const AddressMappingTable &mapping() const { return mapping_; }
    const InvertedHashTable &invertedHash() const { return invHash_; }
    const FreeSpaceTable &freeSpace() const { return fsm_; }
    /** @} */

    /** Slots whose counter had to spill outside both tables. */
    std::size_t overflowCounters() const { return overflow_.size(); }

    /**
     * Where slot @p slot's encryption counter is currently embedded
     * (Section III-C colocation) — the per-write trace records this.
     */
    obs::CounterHome counterHome(LineAddr slot) const;

    /**
     * Registers the engine's event counters and derived gauges under
     * @p scope (canonically "controller.dedup"). Legacy names preserve
     * the historical DeWrite StatSet keys.
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const;

    /** The fingerprint function in use. */
    const Fingerprinter &fingerprinter() const { return fingerprinter_; }

    /** Functional encryption counter of slot @p slot (tests). */
    std::uint64_t counterOf(LineAddr slot) const;

    /** Energy consumed by dedup logic and engine-issued AES work. */
    Energy totalEnergy() const { return energy_; }

    /** @{ Event counters. */
    std::uint64_t duplicateCommits() const { return dupCommits_.value(); }
    std::uint64_t uniqueCommits() const { return uniqueCommits_.value(); }
    std::uint64_t silentStores() const { return silentStores_.value(); }
    std::uint64_t collisionMismatches() const
    {
        return collisionMismatches_.value();
    }
    std::uint64_t reencryptions() const { return reencryptions_.value(); }
    std::uint64_t unsafeCorruptions() const
    {
        return unsafeCorruptions_.value();
    }
    std::uint64_t missedByPna() const { return missedByPna_.value(); }
    std::uint64_t counterWraps() const { return counterWraps_.value(); }
    std::uint64_t missedBySaturation() const
    {
        return missedBySaturation_.value();
    }
    std::uint64_t confirmReads() const { return confirmReads_.value(); }
    std::uint64_t confirmReadsAvoided() const
    {
        return confirmReadsAvoided_.value();
    }
    std::uint64_t strongFpComputes() const
    {
        return strongFpComputes_.value();
    }
    std::uint64_t strongFpHits() const { return strongFpHits_.value(); }
    std::uint64_t strongFpCaches() const
    {
        return strongFpCaches_.value();
    }
    std::uint64_t detectModeSwitches() const
    {
        return detectModeSwitches_.value();
    }
    /** @} */

    /**
     * The detection mode writes currently run under: the configured
     * policy, resolved per epoch when that policy is Adaptive (never
     * Adaptive itself).
     */
    DetectPolicy operationalDetectMode() const
    {
        return options_.detect == DetectPolicy::Adaptive ? adaptiveMode_
                                                         : options_.detect;
    }

    /** Sentinel realAddr: "remapped to nothing" (see DESIGN.md §5). */
    static constexpr LineAddr kNoData = kInvalidAddr;

  private:
    /** Recovery rebuilds the derived structures in place. */
    friend class RecoveryManager;

    /** The audit layer reads written_/overflow_ (DESIGN.md §5e); the
     *  test peer corrupts tables deliberately to prove the auditor
     *  names the right invariant. */
    friend class MetadataAuditor;
    friend class MetadataAuditorTestPeer;

    /**
     * Bumps slot @p slot's minor counter (wrapping into the major
     * counter) and returns the *effective* counter fed to the OTP:
     * major ‖ minor, which never repeats for one slot.
     */
    std::uint64_t bumpCounter(LineAddr slot);

    /** Effective OTP counter of @p slot (major ‖ stored minor). */
    std::uint64_t effectiveCounter(LineAddr slot) const;

    /** Stores @p counter at slot @p slot's current colocation home. */
    void setCounterOf(LineAddr slot, std::uint64_t counter);

    /**
     * Charges the metadata access that fetches slot @p slot's counter
     * and returns the access latency. @p now is the issue time.
     */
    Time chargeCounterAccess(LineAddr slot, Time now);

    /**
     * Drops logical @p init_addr's reference to whatever it currently
     * points at, reclaiming the slot and cleaning the stale hash if the
     * last reference died. Returns the time metadata work finished.
     * The caller must subsequently rewrite mapping[init_addr].
     */
    Time releaseOld(LineAddr init_addr, Time now);

    /** True iff logical @p init_addr currently references @p slot. */
    bool references(LineAddr init_addr, LineAddr slot) const;

    /** Hash-store index used for metadata-cache block placement. */
    std::uint64_t hashIndex(std::uint64_t hash) const;

    /**
     * The OTP pad for (@p slot, @p counter), served from the host-side
     * pad cache (exact-keyed, so hits are always correct). Charges
     * nothing; simulated AES time/energy stay with the callers.
     */
    const Line &padFor(LineAddr slot, std::uint64_t counter);

    /**
     * True iff slot @p slot's stored (decrypted) content equals
     * @p plaintext — the confirm compare, fused over the ciphertext,
     * plaintext, and pad so no decrypted line is materialized.
     */
    bool storedEquals(LineAddr slot, const Line &plaintext);

    /**
     * The effective counter bumpCounter(@p slot) *would* return,
     * without mutating anything — used to pre-generate likely commit
     * pads for a batch.
     */
    std::uint64_t peekBumpedCounter(LineAddr slot) const;

    /**
     * Adaptive-policy epoch accounting: every commit feeds the
     * duplicate ratio; on epoch end the operational mode is
     * re-evaluated with hysteresis (DESIGN.md §5j).
     */
    void noteCommitForEpoch(bool duplicate);

    /** Re-evaluates adaptiveMode_ from the closing epoch's ratio. */
    void rollDetectEpoch();

    /**
     * The slot's stored content, decrypted host-side (an unwritten
     * slot reads as zero, whose decryption is the pad itself) — for
     * caching a mismatching candidate's strong fingerprint.
     */
    Line decryptStored(LineAddr slot);

    /** Stage-cycle sink for @p cycles, or null when profiling is off. */
    std::uint64_t *
    stageSink(std::uint64_t &cycles)
    {
        return stageProfile_ ? &cycles : nullptr;
    }

    const SystemConfig &config_;
    NvmDevice &device_;
    MetadataCache &metadata_;
    CounterModeEngine &cme_;
    Options options_;
    FastDiv hashIndexDiv_; //!< hash % numLines on every store probe.

    Fingerprinter fingerprinter_;
    HashStore hashStore_;
    AddressMappingTable mapping_;
    InvertedHashTable invHash_;
    FreeSpaceTable fsm_;

    /** Counters homeless in both tables (rare corner; see DESIGN.md). */
    FlatMap<LineAddr, std::uint64_t> overflow_;

    /**
     * Per-line major counters (split-counter overflow handling). Only
     * lines whose minor counter has wrapped appear here; real designs
     * hold the shared major alongside the page's counters.
     */
    FlatMap<LineAddr, std::uint64_t> majors_;

    /** Logical lines ever written (functional validity only). */
    DenseAddrSet written_;

    /** Host-side memo of generated OTPs (pure optimization). */
    PadCache padCache_;

    /** Host-cycle stage attribution (DEWRITE_STAGE_PROFILE=1 only). */
    obs::StageCycles stageCycles_;
    const bool stageProfile_ = obs::stageProfileEnabled();

    Energy energy_ = 0;

    Counter dupCommits_;
    Counter uniqueCommits_;
    Counter silentStores_;
    Counter collisionMismatches_;
    Counter reencryptions_;
    Counter unsafeCorruptions_;
    Counter missedByPna_;
    Counter missedBySaturation_;
    Counter counterWraps_;

    /** @{ Two-tier detection state and telemetry (DESIGN.md §5j). */
    /** Adaptive enter-WeakStrong threshold on the epoch dup ratio. */
    static constexpr double kEnterStrongRatio = 0.30;
    /** Adaptive exit-WeakStrong threshold (hysteresis band below). */
    static constexpr double kExitStrongRatio = 0.20;

    DetectPolicy adaptiveMode_ = DetectPolicy::ConfirmRead;
    std::uint64_t epochWrites_ = 0;
    std::uint64_t epochDups_ = 0;

    Counter confirmReads_;
    Counter confirmReadsAvoided_;
    Counter strongFpComputes_;
    Counter strongFpHits_;
    Counter strongFpCaches_;
    Counter detectModeSwitches_;
    Counter detects_;
    std::uint64_t detectPicoseconds_ = 0;
    /** @} */
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_DEDUP_ENGINE_HH
