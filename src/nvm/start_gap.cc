/**
 * @file
 * StartGapLeveler implementation.
 */

#include "nvm/start_gap.hh"

#include "common/logging.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

StartGapLeveler::StartGapLeveler(std::uint64_t lines,
                                 std::uint64_t interval)
    : lines_(lines), linesDiv_(lines ? lines : 1), interval_(interval),
      gap_(lines)
{
    if (lines == 0)
        fatal("start-gap needs at least one line");
    if (interval == 0)
        fatal("start-gap movement interval must be nonzero");
}

LineAddr
StartGapLeveler::translate(LineAddr logical) const
{
    // The MICRO'09 formulation: rotate within the N *logical* lines,
    // then skip over the gap slot. The result lies in [0, N] and never
    // equals the gap.
    std::uint64_t physical = linesDiv_.mod(logical + start_);
    if (physical >= gap_)
        ++physical;
    return physical;
}

bool
StartGapLeveler::recordWrite()
{
    if (++sinceMove_ < interval_)
        return false;
    sinceMove_ = 0;
    return true;
}

void
StartGapLeveler::performGapMove(NvmDevice &device, Time now)
{
    const std::uint64_t physical_lines = lines_ + 1;
    const std::uint64_t source = (gap_ + lines_) % physical_lines;

    // Copy the gap's neighbour into the gap slot: one read plus one
    // full-line write of leveling overhead.
    const NvmAccess read = device.read(source, now);
    device.write(gap_, read.data, read.complete);

    gap_ = source;
    if (gap_ == lines_) {
        // The gap wrapped around: the whole mapping has rotated by one
        // line.
        start_ = (start_ + 1) % lines_;
    }
    gapMoves_.increment();
}

double
StartGapLeveler::overheadFraction() const
{
    return 1.0 / static_cast<double>(interval_);
}

} // namespace dewrite
