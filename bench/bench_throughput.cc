/**
 * @file
 * End-to-end simulation throughput of the experiment matrix.
 *
 * Runs the full Figure 12 workload matrix (every catalog app under the
 * secure baseline and all three DeWrite modes) and reports host-side
 * events per second — the number the flat-container and crypto-kernel
 * work optimizes. Results go to stdout as a table and to
 * BENCH_throughput.json (in the working directory) for tracking across
 * commits.
 *
 * Events per cell come from DEWRITE_EVENTS (default 120000); pass
 * --quick for a 20x shorter run with the same shape.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

struct SchemeTiming
{
    std::string name;
    std::size_t cells = 0;
    std::uint64_t events = 0;
    double seconds = 0.0;

    double eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const std::uint64_t events =
        quick ? experimentEvents() / 20 : experimentEvents();

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<std::pair<std::string, SchemeOptions>> schemes = {
        { "secure-baseline", secureBaselineScheme() },
        { "dewrite-direct", dewriteScheme(DedupMode::Direct) },
        { "dewrite-parallel", dewriteScheme(DedupMode::Parallel) },
        { "dewrite-predicted", dewriteScheme(DedupMode::Predicted) },
    };

    std::printf("End-to-end throughput: %zu apps x %zu schemes, "
                "%llu events/cell\n\n",
                apps.size(), schemes.size(),
                static_cast<unsigned long long>(events));

    std::vector<SchemeTiming> timings;
    std::uint64_t total_events = 0;
    double total_seconds = 0.0;
    for (const auto &[name, scheme] : schemes) {
        SchemeTiming timing;
        timing.name = name;
        const auto t0 = std::chrono::steady_clock::now();
        const auto cells = runMatrix(apps, { scheme }, config, events, 0);
        const auto t1 = std::chrono::steady_clock::now();
        timing.seconds = std::chrono::duration<double>(t1 - t0).count();
        timing.cells = cells.size();
        for (const auto &cell : cells)
            timing.events += cell.run.events;
        total_events += timing.events;
        total_seconds += timing.seconds;
        timings.push_back(timing);
    }

    TablePrinter table({ "scheme", "cells", "events", "wall (s)",
                         "events/sec" });
    for (const SchemeTiming &t : timings) {
        table.addRow({ t.name, std::to_string(t.cells),
                       std::to_string(t.events),
                       TablePrinter::num(t.seconds),
                       TablePrinter::num(t.eventsPerSec(), 0) });
    }
    const double overall =
        total_seconds > 0 ? static_cast<double>(total_events) /
                                total_seconds
                          : 0.0;
    table.addRow({ "TOTAL", "-", std::to_string(total_events),
                   TablePrinter::num(total_seconds),
                   TablePrinter::num(overall, 0) });
    table.print();

    std::FILE *json = std::fopen("BENCH_throughput.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_throughput.json\n");
        return 1;
    }
    std::fprintf(json, "{\n  \"events_per_cell\": %llu,\n",
                 static_cast<unsigned long long>(events));
    std::fprintf(json, "  \"schemes\": [\n");
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const SchemeTiming &t = timings[i];
        std::fprintf(json,
                     "    {\"scheme\": \"%s\", \"cells\": %zu, "
                     "\"events\": %llu, \"wall_seconds\": %.6f, "
                     "\"events_per_sec\": %.0f}%s\n",
                     t.name.c_str(), t.cells,
                     static_cast<unsigned long long>(t.events), t.seconds,
                     t.eventsPerSec(), i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"total_events\": %llu,\n  \"total_wall_seconds\": "
                 "%.6f,\n  \"events_per_sec\": %.0f\n}\n",
                 static_cast<unsigned long long>(total_events),
                 total_seconds, overall);
    std::fclose(json);
    std::printf("\nwrote BENCH_throughput.json\n");
    return 0;
}
