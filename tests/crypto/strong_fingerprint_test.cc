/**
 * @file
 * Strong-fingerprint kernel tests: the AES-NI fast path must be
 * bit-identical to the software reference, and the function must
 * behave like a 128-bit mixer — single-bit avalanche, CRC-forged
 * collisions separated, determinism across calls.
 */

#include <gtest/gtest.h>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "crypto/strong_fingerprint.hh"
#include "trace/collision_trace.hh"

namespace dewrite {
namespace {

TEST(StrongFingerprintTest, MatchesSoftwareReference)
{
    Rng rng(901);
    for (int i = 0; i < 256; ++i) {
        const Line line = Line::random(rng);
        const StrongFp fast = strongFingerprint(line);
        const StrongFp ref = strongFingerprintReference(line);
        ASSERT_EQ(fast.lo, ref.lo) << "iteration " << i;
        ASSERT_EQ(fast.hi, ref.hi) << "iteration " << i;
    }
}

TEST(StrongFingerprintTest, StructuredLinesMatchReference)
{
    // Degenerate contents (all-zero, all-ones, single set bit) are the
    // lines real workloads write most; the kernels must agree there too.
    const Line zero;
    EXPECT_EQ(strongFingerprint(zero), strongFingerprintReference(zero));

    const Line ones = Line::filled(0xff);
    EXPECT_EQ(strongFingerprint(ones), strongFingerprintReference(ones));

    for (std::size_t byte = 0; byte < kLineSize; byte += 17) {
        Line one_bit;
        one_bit.setByte(byte, 0x80);
        EXPECT_EQ(strongFingerprint(one_bit),
                  strongFingerprintReference(one_bit));
    }
}

TEST(StrongFingerprintTest, DeterministicAcrossCalls)
{
    Rng rng(902);
    const Line line = Line::random(rng);
    const StrongFp first = strongFingerprint(line);
    const StrongFp second = strongFingerprint(line);
    EXPECT_EQ(first, second);
}

TEST(StrongFingerprintTest, SingleBitFlipChangesFingerprint)
{
    Rng rng(903);
    const Line base = Line::random(rng);
    const StrongFp fp = strongFingerprint(base);
    for (std::size_t byte = 0; byte < kLineSize; byte += 13) {
        Line flipped = base;
        flipped.setByte(byte, flipped.byte(byte) ^ 1);
        EXPECT_NE(strongFingerprint(flipped), fp)
            << "flip at byte " << byte;
    }
}

TEST(StrongFingerprintTest, SeparatesForgedCrcCollisions)
{
    // The whole point of the second tier: lines forged to share a
    // CRC-32 must still split on the 128-bit fingerprint, otherwise
    // the weak+strong mode would merge them exactly like weak-only.
    Rng rng(904);
    for (int i = 0; i < 64; ++i) {
        const Line base = Line::random(rng);
        const Line forged = forgeCrc32Collision(base, rng);
        ASSERT_EQ(crc32(base), crc32(forged));
        ASSERT_NE(base, forged);
        EXPECT_NE(strongFingerprint(base), strongFingerprint(forged));
    }
}

TEST(StrongFingerprintTest, ZeroLineFingerprintIsNonZero)
{
    // The all-zero line is the single most duplicated content in the
    // paper's workloads; its fingerprint must not be the all-zero
    // sentinel a buggy kernel would produce.
    const StrongFp fp = strongFingerprint(Line());
    EXPECT_TRUE(fp.lo != 0 || fp.hi != 0);
}

TEST(StrongFingerprintTest, DispatchReportsConsistently)
{
    // Whichever path the CPU dispatched to, it already matched the
    // reference above; this just pins the introspection hook so the
    // bench provenance can record which kernel produced its numbers.
    const bool aesni = strongFingerprintUsesAesni();
    SUCCEED() << "aesni=" << aesni;
}

} // namespace
} // namespace dewrite
