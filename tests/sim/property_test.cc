/**
 * @file
 * Property-based tests: invariants that must hold for any workload,
 * swept with parameterized seeds and schemes.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "controller/dewrite_controller.hh"
#include "sim/system.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

/** Random mixed workload against a reference map, any scheme. */
struct PropertyCase
{
    SchemeKind kind;
    DedupMode mode;       //!< Only for DeWrite.
    BitTechnique technique;
    std::uint64_t seed;
};

class RoundTripProperty : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(RoundTripProperty, EveryReadReturnsLastWrite)
{
    const PropertyCase &param = GetParam();
    SchemeOptions scheme;
    scheme.kind = param.kind;
    scheme.dewrite.mode = param.mode;
    scheme.dewrite.technique = param.technique;
    scheme.baseline.technique = param.technique;

    System system(smallConfig(), scheme);
    Rng rng(param.seed);
    std::unordered_map<LineAddr, Line> reference;
    std::vector<Line> pool;

    for (int op = 0; op < 600; ++op) {
        const LineAddr addr = rng.nextBelow(96);
        if (reference.empty() || rng.chance(0.6)) {
            Line data;
            const double selector = rng.nextDouble();
            if (!pool.empty() && selector < 0.4) {
                data = pool[rng.nextBelow(pool.size())]; // Duplicate.
            } else if (selector < 0.5) {
                data = Line(); // Zero line.
            } else if (selector < 0.7 && reference.contains(addr)) {
                data = reference[addr]; // Silent store or mutation base.
                data.setWord64(rng.nextBelow(32), rng.next64());
            } else {
                data = Line::random(rng);
            }
            pool.push_back(data);
            system.write(addr, data);
            reference[addr] = data;
        } else {
            auto it = reference.begin();
            std::advance(it, rng.nextBelow(reference.size()));
            const CtrlReadResult read = system.read(it->first);
            ASSERT_TRUE(read.valid);
            ASSERT_EQ(read.data, it->second)
                << "addr " << it->first << " op " << op;
        }
    }
    // Final sweep: every line readable and exact.
    for (const auto &[addr, expected] : reference) {
        const CtrlReadResult read = system.read(addr);
        ASSERT_TRUE(read.valid);
        ASSERT_EQ(read.data, expected) << "addr " << addr;
    }
}

std::vector<PropertyCase>
roundTripCases()
{
    std::vector<PropertyCase> cases;
    for (std::uint64_t seed : { 1ULL, 2ULL, 3ULL }) {
        cases.push_back({ SchemeKind::Plain, DedupMode::Predicted,
                          BitTechnique::None, seed });
        cases.push_back({ SchemeKind::SecureBaseline,
                          DedupMode::Predicted, BitTechnique::None,
                          seed });
        for (DedupMode mode : { DedupMode::Direct, DedupMode::Parallel,
                                DedupMode::Predicted }) {
            cases.push_back({ SchemeKind::DeWrite, mode,
                              BitTechnique::None, seed });
        }
        cases.push_back({ SchemeKind::DeWrite, DedupMode::Predicted,
                          BitTechnique::Deuce, seed });
        cases.push_back({ SchemeKind::SecureBaseline,
                          DedupMode::Predicted, BitTechnique::Fnw,
                          seed });
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Schemes, RoundTripProperty,
                         ::testing::ValuesIn(roundTripCases()));

class EngineInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineInvariants, StructuralConsistencyAfterRandomWorkload)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    DeWriteController ctrl(config, device, defaultAesKey(), {});
    Rng rng(GetParam());

    std::vector<Line> pool;
    for (int op = 0; op < 800; ++op) {
        const LineAddr addr = rng.nextBelow(128);
        Line data;
        if (!pool.empty() && rng.chance(0.5)) {
            data = pool[rng.nextBelow(pool.size())];
        } else {
            data = Line::random(rng);
            pool.push_back(data);
        }
        ctrl.write(addr, data, 0);
    }

    const DedupEngine &engine = ctrl.engine();

    // Invariant 1: total hash-store references equal the number of
    // logical lines with live data (each references exactly one slot),
    // unless saturation pinned something (not reachable in 800 ops
    // over this pool size).
    std::uint64_t total_refs = 0;
    engine.hashStore().forEach(
        [&](std::uint32_t, const HashEntry &entry) {
            total_refs += entry.reference;
        });

    std::uint64_t live_logicals = 0;
    for (LineAddr addr = 0; addr < 128; ++addr)
        live_logicals += ctrl.read(addr, 0).valid;
    EXPECT_EQ(total_refs, live_logicals);

    // Invariant 2: every hash-store record's slot holds data and its
    // inverted-hash entry matches the record's hash.
    engine.hashStore().forEach(
        [&](std::uint32_t hash, const HashEntry &entry) {
            EXPECT_TRUE(engine.invertedHash().holdsData(entry.realAddr));
            EXPECT_EQ(engine.invertedHash().hash(entry.realAddr), hash);
            EXPECT_FALSE(engine.freeSpace().isFree(entry.realAddr));
        });

    // Invariant 3: data-slot count agrees between the inverted hash
    // table and the hash store.
    EXPECT_EQ(engine.invertedHash().dataSlots(),
              engine.hashStore().size());

    // Invariant 4: allocated slot count equals data slots (every
    // allocation holds live data once the write committed).
    EXPECT_EQ(engine.freeSpace().capacity() -
                  engine.freeSpace().freeCount(),
              engine.invertedHash().dataSlots());

    // Invariant 5: counter colocation overflow is bounded (tiny
    // relative to traffic; see DESIGN.md Section 5).
    EXPECT_LT(engine.overflowCounters(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariants,
                         ::testing::Values(11, 22, 33, 44, 55));

class PredictorSweep : public ::testing::TestWithParam<unsigned>
{
};

namespace {

double
stickyStreamAccuracy(unsigned window_bits)
{
    DupPredictor predictor(window_bits);
    Rng rng(7);
    bool phase = false;
    for (int i = 0; i < 20000; ++i) {
        if (!rng.chance(0.99))
            phase = !phase;
        const bool state = rng.chance(0.04) ? !phase : phase;
        predictor.recordAndScore(state);
    }
    return predictor.accuracy();
}

} // namespace

TEST_P(PredictorSweep, SmallWindowsTrackStickyStreams)
{
    // The paper's operating range (k <= 5): well above chance.
    EXPECT_GT(stickyStreamAccuracy(GetParam()), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Windows, PredictorSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(PredictorSweepTest, OversizedWindowsLagPhaseChanges)
{
    // Why the paper stops at 3 bits: a long window smooths glitches
    // but pays ~k/2 errors on every phase flip, so accuracy falls off.
    EXPECT_LT(stickyStreamAccuracy(32), stickyStreamAccuracy(3));
}

} // namespace
} // namespace dewrite
