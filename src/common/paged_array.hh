/**
 * @file
 * PagedArray / DenseAddrSet — direct-indexed per-line state.
 *
 * Most per-line simulator state (mapping entries, inverted-hash
 * entries, wear counts, written flags, encryption counters) is keyed by
 * a LineAddr that SystemConfig bounds: data lines live below
 * memory.numLines and the metadata region occupies a small multiple
 * above it. Hashing such keys is wasted work — the address *is* the
 * index. PagedArray stores entries in lazily allocated fixed-size pages
 * behind a flat page directory, so a lookup is two shifts and two
 * indexed loads, untouched regions cost nothing, and iteration walks
 * addresses in ascending order (the ordered-iteration contract of
 * DESIGN.md §5) with no sort step.
 *
 * Addresses beyond a sanity bound (kMaxDirectEntries) fall back to a
 * FlatMap overflow so a stray huge address can never balloon the
 * directory; in practice the overflow stays empty.
 */

#ifndef DEWRITE_COMMON_PAGED_ARRAY_HH
#define DEWRITE_COMMON_PAGED_ARRAY_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hh"
#include "common/huge_pages.hh"

namespace dewrite {

/**
 * Default entries per page: sized so one page spans one transparent
 * huge page (see huge_pages.hh), clamped to at least 4096 entries so
 * arrays of large T still amortize the directory indirection.
 */
constexpr std::size_t
pagedArrayDefaultEntries(std::size_t entry_bytes)
{
    const std::size_t per_huge_page =
        std::bit_floor(kHugePageBytes / entry_bytes);
    return per_huge_page < 4096 ? 4096 : per_huge_page;
}

template <typename T,
          std::size_t kPageEntries = pagedArrayDefaultEntries(sizeof(T))>
class PagedArray
{
    static_assert((kPageEntries & (kPageEntries - 1)) == 0,
                  "page size must be a power of two");

  public:
    /** Largest directly indexed address; higher keys spill to a map. */
    static constexpr std::uint64_t kMaxDirectEntries = 1ULL << 26;

    PagedArray() = default;

    /** Pre-sizes the page directory for addresses below @p capacity. */
    explicit PagedArray(std::uint64_t capacity) { reserve(capacity); }

    void
    reserve(std::uint64_t capacity)
    {
        const std::uint64_t bounded =
            std::min(capacity, kMaxDirectEntries);
        const std::size_t dirs =
            static_cast<std::size_t>((bounded + kPageEntries - 1) /
                                     kPageEntries);
        if (dirs > pages_.size())
            // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
            // the hot edge is a member-name over-approximation
            pages_.resize(dirs);
    }

    /** Entry at @p index, or null if its page was never touched. */
    const T *
    find(std::uint64_t index) const
    {
        if (index >= kMaxDirectEntries)
            return overflow_.find(index);
        const std::size_t page = index / kPageEntries;
        if (page >= pages_.size() || !pages_[page])
            return nullptr;
        return &(*pages_[page])[index % kPageEntries];
    }

    T *
    find(std::uint64_t index)
    {
        return const_cast<T *>(
            static_cast<const PagedArray *>(this)->find(index));
    }

    /**
     * Warms the cache line holding entry @p index (if its page exists).
     * A pure hint — mirrors find() without materializing the result.
     */
    // dewrite-lint: hot
    void
    prefetch(std::uint64_t index) const
    {
        if (index >= kMaxDirectEntries) {
            overflow_.prefetch(index);
            return;
        }
        const std::size_t page = index / kPageEntries;
        if (page < pages_.size() && pages_[page])
            hostPrefetchRead(&(*pages_[page])[index % kPageEntries]);
    }

    /** Entry value at @p index; untouched entries read as T{}. */
    T
    get(std::uint64_t index) const
    {
        const T *entry = find(index);
        return entry ? *entry : T{};
    }

    /** Writable entry at @p index, allocating its page on demand. */
    T &
    ref(std::uint64_t index)
    {
        if (index >= kMaxDirectEntries)
            return overflow_[index];
        const std::size_t page = index / kPageEntries;
        if (page >= pages_.size())
            // dewrite-analyze: allow(hot-path-purity) amortized page-directory growth
            pages_.resize(page + 1);
        if (!pages_[page])
            pages_[page] = makeHuge<Page>();
        return (*pages_[page])[index % kPageEntries];
    }

    /**
     * Visits every entry of every allocated page — including entries
     * still holding T{} — in ascending index order, then the overflow
     * in ascending key order. Callers filter on their own
     * validity flag, exactly as they would for absent map keys.
     */
    template <typename Visitor>
    void
    forEach(Visitor &&visit) const
    {
        for (std::size_t page = 0; page < pages_.size(); ++page) {
            if (!pages_[page])
                continue;
            const std::uint64_t base = page * kPageEntries;
            for (std::size_t i = 0; i < kPageEntries; ++i)
                visit(base + i, (*pages_[page])[i]);
        }
        overflow_.forEachSorted(
            [&](std::uint64_t index, const T &entry) {
                visit(index, entry);
            });
    }

    /** Entries living beyond the direct range (expected zero). */
    std::size_t overflowSize() const { return overflow_.size(); }

  private:
    using Page = std::array<T, kPageEntries>;

    std::vector<HugeUniquePtr<Page>> pages_;
    FlatMap<std::uint64_t, T> overflow_;
};

/**
 * A set of line addresses over PagedArray storage: one byte per
 * possible member, so insert/contains/erase are direct loads with no
 * hashing and no allocation after the first touch of a page.
 */
class DenseAddrSet
{
  public:
    DenseAddrSet() = default;
    explicit DenseAddrSet(std::uint64_t capacity) : flags_(capacity) {}

    // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
    // the hot edge is a member-name over-approximation
    void reserve(std::uint64_t capacity) { flags_.reserve(capacity); }

    bool
    contains(std::uint64_t index) const
    {
        const std::uint8_t *flag = flags_.find(index);
        return flag && *flag;
    }

    /** Pure cache-warming hint for the flag byte of @p index. */
    void prefetch(std::uint64_t index) const { flags_.prefetch(index); }

    /** @return true iff @p index was newly added. */
    bool
    insert(std::uint64_t index)
    {
        std::uint8_t &flag = flags_.ref(index);
        if (flag)
            return false;
        flag = 1;
        ++size_;
        return true;
    }

    /** @return true iff @p index was present. */
    bool
    erase(std::uint64_t index)
    {
        std::uint8_t *flag = flags_.find(index);
        if (!flag || !*flag)
            return false;
        *flag = 0;
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }

    /** Visits members in ascending order. */
    template <typename Visitor>
    void
    forEachSorted(Visitor &&visit) const
    {
        // dewrite-lint: allow(unsorted-iteration) index-ascending
        flags_.forEach([&](std::uint64_t index, std::uint8_t flag) {
            if (flag)
                visit(index);
        });
    }

  private:
    PagedArray<std::uint8_t> flags_;
    std::size_t size_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_PAGED_ARRAY_HH
