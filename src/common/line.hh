/**
 * @file
 * The 256 B memory-line value type used throughout DeWrite.
 *
 * The paper deduplicates at a 256 B granularity (Section III-B1), matching
 * the cache-line size of the simulated hierarchy. A Line is a plain value
 * type: cheap to copy, hashable, comparable, with helpers for the bit-flip
 * accounting the bit-level write-reduction baselines need.
 */

#ifndef DEWRITE_COMMON_LINE_HH
#define DEWRITE_COMMON_LINE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/types.hh"

namespace dewrite {

class Rng;

/**
 * A 256-byte memory line.
 *
 * Value semantics; equality is full byte-wise comparison (the dedup engine
 * confirms CRC-32 matches with exactly this comparison, Section III-B1).
 */
class Line
{
  public:
    /** Constructs an all-zero line. */
    Line() { bytes_.fill(0); }

    /** Constructs a line from a raw 256 B buffer. */
    static Line
    fromBytes(const std::uint8_t *data)
    {
        Line line;
        std::memcpy(line.bytes_.data(), data, kLineSize);
        return line;
    }

    /** Constructs a line whose every byte equals @p value. */
    static Line filled(std::uint8_t value);

    /** Constructs a line with uniformly random content from @p rng. */
    static Line random(Rng &rng);

    /**
     * Constructs a line holding a 64-bit pattern repeated across the line.
     * Useful for tests and for synthesizing "popular" duplicate contents.
     */
    static Line pattern(std::uint64_t word);

    /** Raw byte access. */
    const std::uint8_t *data() const { return bytes_.data(); }
    std::uint8_t *data() { return bytes_.data(); }

    std::uint8_t byte(std::size_t i) const { return bytes_[i]; }
    void setByte(std::size_t i, std::uint8_t v) { bytes_[i] = v; }

    /** Reads the @p i-th little-endian 64-bit word (i in [0, 32)). */
    std::uint64_t word64(std::size_t i) const;

    /** Writes the @p i-th little-endian 64-bit word. */
    void setWord64(std::size_t i, std::uint64_t value);

    /** Reads the @p i-th little-endian 16-bit word (DEUCE's word size). */
    std::uint16_t word16(std::size_t i) const;

    /** Writes the @p i-th little-endian 16-bit word. */
    void setWord16(std::size_t i, std::uint16_t value);

    /** True iff every byte is zero (Silent Shredder's target lines). */
    bool isZero() const;

    /** XORs this line with @p other, returning the result. */
    Line operator^(const Line &other) const;

    /** Inverts every bit (used by Flip-N-Write). */
    Line inverted() const;

    /**
     * Number of differing bits between this line and @p other: the bit
     * flips a rewrite of this line with @p other's content would cause.
     */
    std::size_t bitDistance(const Line &other) const;

    /** Number of set bits in the line. */
    std::size_t popcount() const;

    /**
     * Full-content equality, scanned eight bytes at a time — the
     * confirm-by-read compare the dedup engine runs on every
     * fingerprint match, so it is a simulator hot path.
     */
    // dewrite-lint: hot
    bool
    operator==(const Line &other) const
    {
        for (std::size_t i = 0; i < kLineSize; i += 8) {
            std::uint64_t a, b;
            std::memcpy(&a, bytes_.data() + i, 8);
            std::memcpy(&b, other.bytes_.data() + i, 8);
            if (a != b)
                return false;
        }
        return true;
    }

    /** Short hex digest of the first bytes, for debugging output. */
    std::string debugString() const;

    /**
     * 64-bit content digest for hash-map keys: CRC-32C of each half
     * line, concatenated. CRC-32C is hardware-accelerated on SSE4.2
     * hosts and the portable fallback computes the same polynomial,
     * so digests are identical everywhere. Not the paper's
     * fingerprint — that is crc32() — just host-side keying.
     */
    std::uint64_t contentDigest() const;

  private:
    std::array<std::uint8_t, kLineSize> bytes_;
};

/**
 * True iff @p ciphertext equals @p plaintext XOR @p pad, scanned eight
 * bytes at a time with no temporary Line. Exactly equivalent to
 * `plaintext == (ciphertext ^ pad)` — i.e. the confirm-by-read compare
 * after counter-mode decryption — but fuses decrypt and compare so the
 * batched write path never materializes the decrypted line.
 */
// dewrite-lint: hot
inline bool
equalsXor(const Line &ciphertext, const Line &plaintext, const Line &pad)
{
    for (std::size_t i = 0; i < kLineSize; i += 8) {
        std::uint64_t c, p, o;
        std::memcpy(&c, ciphertext.data() + i, 8);
        std::memcpy(&p, plaintext.data() + i, 8);
        std::memcpy(&o, pad.data() + i, 8);
        if (c != (p ^ o))
            return false;
    }
    return true;
}

/** Hash functor so Line can key unordered containers. */
struct LineHash
{
    std::size_t
    operator()(const Line &line) const
    {
        return static_cast<std::size_t>(line.contentDigest());
    }
};

} // namespace dewrite

#endif // DEWRITE_COMMON_LINE_HH
