# Empty compiler generated dependencies file for bench_tab1_detection_latency.
# This may be replaced when dependencies are built.
