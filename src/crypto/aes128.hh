/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from scratch.
 *
 * DeWrite's memory encryption is built on AES in two modes: counter mode
 * for data lines (the OTP generator of Figure 1) and direct block
 * encryption for the metadata region (Section III-B1). This is a
 * straightforward table-free byte-oriented implementation — the simulator
 * charges AES *time* from TimingConfig, so software speed only matters
 * for simulation throughput, and correctness is what the tests verify
 * (FIPS-197 Appendix C vectors).
 */

#ifndef DEWRITE_CRYPTO_AES128_HH
#define DEWRITE_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace dewrite {

/** A 16-byte AES block. */
using AesBlock = std::array<std::uint8_t, 16>;

/** A 16-byte AES-128 key. */
using AesKey = std::array<std::uint8_t, 16>;

/**
 * AES-128 with a fixed key; the round keys are expanded once at
 * construction, both as bytes (for the reference path and AES-NI
 * loads) and as pre-swapped column words (for the T-table path, so
 * encryptBlock never re-derives them per call).
 */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /**
     * Encrypts one 16-byte block — the simulator's hottest function:
     * every line encryption, OTP, and dedup confirmation runs 16 of
     * these. Dispatches once at startup to hardware AES-NI where the
     * CPU has it, and to a four-T-table software kernel otherwise;
     * both are property-tested against encryptBlockReference.
     */
    AesBlock encryptBlock(const AesBlock &plaintext) const;

    /**
     * Byte-oriented straight-from-the-spec encryption, kept as the
     * reference the fast paths are property-tested against.
     */
    AesBlock encryptBlockReference(const AesBlock &plaintext) const;

    /**
     * Encrypts @p count independent blocks in one call. On AES-NI the
     * blocks are interleaved eight-wide so the aesenc pipeline stays
     * full — counter-mode pads (16 independent seed blocks per line)
     * run several times faster than 16 serial encryptBlock() calls.
     * Produces byte-identical output to per-block encryption.
     */
    void encryptBlocks(const AesBlock *in, AesBlock *out,
                       std::size_t count) const;

    /** Decrypts one 16-byte block (AES-NI when available). */
    AesBlock decryptBlock(const AesBlock &ciphertext) const;

    /** Straight-from-the-spec decryption, the cross-check oracle. */
    AesBlock decryptBlockReference(const AesBlock &ciphertext) const;

    /** True when encrypt/decrypt dispatch to hardware AES-NI. */
    static bool usesAesni();

  private:
    static constexpr int kRounds = 10;

    /** Expanded round keys: (kRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (kRounds + 1)> roundKeys_;

    /** The same keys as big-endian column words for the T-table path. */
    std::array<std::uint32_t, 4 * (kRounds + 1)> encKeys_;

    /**
     * InvMixColumns-transformed middle round keys (rounds 1..9) for the
     * AES-NI equivalent-inverse-cipher decrypt; filled only when AES-NI
     * is available.
     */
    std::array<std::uint8_t, 16 * (kRounds - 1)> imcKeys_;

    void expandKey(const AesKey &key);

    AesBlock encryptBlockTables(const AesBlock &plaintext) const;
    AesBlock encryptBlockAesni(const AesBlock &plaintext) const;
    void encryptBlocksAesni(const AesBlock *in, AesBlock *out,
                            std::size_t count) const;
    AesBlock decryptBlockAesni(const AesBlock &ciphertext) const;
};

} // namespace dewrite

#endif // DEWRITE_CRYPTO_AES128_HH
