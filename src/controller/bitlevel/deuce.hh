/**
 * @file
 * DEUCE reducer — dual-counter word-level partial re-encryption.
 *
 * DEUCE [Young et al., HPCA'15] observes that only a few 16-bit words
 * of a cache line typically change per write-back, yet counter-mode
 * re-encryption flips ~half of *all* bits. It therefore keeps two
 * counters per line: a trailing counter (TCTR, advanced once per
 * 32-write epoch) encrypting the words untouched this epoch, and a
 * leading counter (LCTR, the current write counter) re-encrypting the
 * words modified since the epoch began. Untouched words keep their
 * stale-epoch ciphertext — zero flips — while the modified set pays
 * diffusion. At each epoch boundary the whole line re-encrypts and the
 * modified set clears.
 */

#ifndef DEWRITE_CONTROLLER_BITLEVEL_DEUCE_HH
#define DEWRITE_CONTROLLER_BITLEVEL_DEUCE_HH

#include <bitset>

#include "common/paged_array.hh"
#include "controller/bitlevel/bitflip.hh"
#include "crypto/counter_mode.hh"

namespace dewrite {

class DeuceReducer : public BitLevelReducer
{
  public:
    /** Epoch interval in writes (DEUCE's published setting). */
    static constexpr std::uint64_t kEpochInterval = 32;

    explicit DeuceReducer(const CounterModeEngine &cme) : cme_(cme) {}

    std::size_t onWrite(LineAddr slot, const Line &new_pt,
                        std::uint64_t counter) override;

    BitTechnique technique() const override { return BitTechnique::Deuce; }

    void reserveSlots(std::uint64_t expected) override
    {
        state_.reserve(expected);
    }

  private:
    static constexpr std::size_t kWordBits = 16;
    static constexpr std::size_t kWordsPerLine = kLineBits / kWordBits;

    struct SlotState
    {
        bool initialized = false;
        std::uint64_t epochCounter = 0;       //!< TCTR value.
        Line plainImage;                      //!< Last written plaintext.
        Line cellImage;                       //!< Stored cell values.
        std::bitset<kWordsPerLine> modified;  //!< LCTR-encrypted words.
    };

    const CounterModeEngine &cme_;
    PagedArray<SlotState, 1024> state_;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_BITLEVEL_DEUCE_HH
