/**
 * @file
 * Workload measurement tests with hand-built traces.
 */

#include "trace/workload_stats.hh"

#include <gtest/gtest.h>

#include <vector>

namespace dewrite {
namespace {

/** A scripted trace for exact-value tests. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<MemEvent> events)
        : events_(std::move(events))
    {
    }

    bool
    next(MemEvent &event) override
    {
        if (position_ >= events_.size())
            return false;
        event = events_[position_++];
        return true;
    }

  private:
    std::vector<MemEvent> events_;
    std::size_t position_ = 0;
};

MemEvent
writeEvent(LineAddr addr, const Line &data)
{
    MemEvent event;
    event.isWrite = true;
    event.addr = addr;
    event.data = data;
    return event;
}

MemEvent
readEvent(LineAddr addr)
{
    MemEvent event;
    event.addr = addr;
    return event;
}

TEST(WorkloadStatsTest, CountsDuplicatesAgainstLiveImage)
{
    const Line a = Line::filled(1);
    const Line b = Line::filled(2);
    ScriptedTrace trace({
        writeEvent(0, a), // Unique.
        writeEvent(1, a), // Duplicate of line 0.
        writeEvent(2, b), // Unique.
        writeEvent(0, b), // Duplicate of line 2.
        readEvent(1),
    });
    const WorkloadStats stats = measureWorkload(trace, 100);
    EXPECT_EQ(stats.writes, 4u);
    EXPECT_EQ(stats.duplicateWrites, 2u);
    EXPECT_EQ(stats.reads, 1u);
    EXPECT_DOUBLE_EQ(stats.dupFraction(), 0.5);
}

TEST(WorkloadStatsTest, OverwrittenContentIsNoLongerDuplicate)
{
    const Line a = Line::filled(1);
    const Line b = Line::filled(2);
    ScriptedTrace trace({
        writeEvent(0, a),
        writeEvent(0, b), // 'a' vanishes from memory.
        writeEvent(1, a), // NOT a duplicate anymore.
    });
    const WorkloadStats stats = measureWorkload(trace, 100);
    EXPECT_EQ(stats.duplicateWrites, 0u);
}

TEST(WorkloadStatsTest, SilentStoreCountsAsDuplicate)
{
    const Line a = Line::filled(3);
    ScriptedTrace trace({
        writeEvent(0, a),
        writeEvent(0, a), // Identical to the content at its own line.
    });
    const WorkloadStats stats = measureWorkload(trace, 100);
    EXPECT_EQ(stats.duplicateWrites, 1u);
}

TEST(WorkloadStatsTest, ZeroWritesCounted)
{
    ScriptedTrace trace({
        writeEvent(0, Line()),
        writeEvent(1, Line::filled(1)),
        writeEvent(2, Line()),
    });
    const WorkloadStats stats = measureWorkload(trace, 100);
    EXPECT_EQ(stats.zeroWrites, 2u);
    // The second zero write is also a duplicate of the first.
    EXPECT_EQ(stats.duplicateWrites, 1u);
}

TEST(WorkloadStatsTest, StatePersistenceOverWrites)
{
    const Line a = Line::filled(1);
    ScriptedTrace trace({
        writeEvent(0, a),              // unique (state U)
        writeEvent(1, a),              // dup    (state D) - change
        writeEvent(2, a),              // dup    (state D) - same
        writeEvent(3, Line::filled(9)),// unique (state U) - change
    });
    const WorkloadStats stats = measureWorkload(trace, 100);
    EXPECT_EQ(stats.sameStateAsPrev, 1u);
    EXPECT_DOUBLE_EQ(stats.statePersistence(), 1.0 / 3.0);
}

TEST(WorkloadStatsTest, MaxEventsTruncates)
{
    const Line a = Line::filled(1);
    ScriptedTrace trace({
        writeEvent(0, a),
        writeEvent(1, a),
        writeEvent(2, a),
    });
    const WorkloadStats stats = measureWorkload(trace, 2);
    EXPECT_EQ(stats.writes, 2u);
}

TEST(WorkloadStatsTest, EmptyTrace)
{
    ScriptedTrace trace({});
    const WorkloadStats stats = measureWorkload(trace, 100);
    EXPECT_EQ(stats.writes, 0u);
    EXPECT_DOUBLE_EQ(stats.dupFraction(), 0.0);
    EXPECT_DOUBLE_EQ(stats.statePersistence(), 0.0);
}

} // namespace
} // namespace dewrite
