/**
 * @file
 * Fail-fast access to the DEWRITE_* environment contract.
 *
 * Every configuration knob the simulator reads from the environment
 * goes through these helpers so that a typo'd value dies loudly with
 * the variable name and the accepted range instead of being silently
 * misparsed (strtoull happily reads "12k" as 12). dewrite-lint's
 * env-validation rule enforces the funnel: std::getenv may appear only
 * in this module, so a new DEWRITE_* variable cannot ship without
 * strict parsing.
 *
 * All helpers latch nothing: they re-read the environment on every
 * call, which keeps them testable with setenv/unsetenv. Callers that
 * want latch-once semantics (e.g. logLevel()) wrap them in a static.
 */

#ifndef DEWRITE_COMMON_ENV_HH
#define DEWRITE_COMMON_ENV_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dewrite {

/**
 * Raw variable lookup (nullptr when unset). Only for callers that
 * apply their own strict validation, e.g. the DEWRITE_LOG enum parse;
 * prefer envFlag()/envUint() everywhere else.
 */
const char *envRaw(const char *name);

/**
 * Strict boolean switch: unset returns @p fallback; "0" and "1" parse;
 * anything else is rejected with fatal(). The 0/1-only contract keeps
 * shell typos ("yes", "ture") from silently disabling an audit the
 * user asked for.
 */
bool envFlag(const char *name, bool fallback);

/**
 * Strict unsigned integer in [@p min, @p max]: unset returns
 * @p fallback; malformed, negative, trailing-garbage, overflowing, or
 * out-of-range values are rejected with fatal() naming the variable
 * and the accepted range.
 */
std::uint64_t envUint(const char *name, std::uint64_t fallback,
                      std::uint64_t min, std::uint64_t max);

/**
 * Strict enumerated choice: unset returns @p fallback; a value equal
 * to one of the @p count strings in @p names parses to its index;
 * anything else is rejected with fatal() listing every accepted name.
 */
std::size_t envChoice(const char *name, std::size_t fallback,
                      const char *const *names, std::size_t count);

/**
 * Every DEWRITE_* environment knob the simulator recognizes, sorted.
 * Mirrors (and is cross-checked by dewrite-lint against) the
 * KNOWN_KNOBS catalogue in tools/dewrite_lint.py; bench provenance
 * stamps the live value of each so a BENCH_*.json is reproducible
 * from its own header.
 */
const std::vector<const char *> &knownKnobs();

} // namespace dewrite

#endif // DEWRITE_COMMON_ENV_HH
