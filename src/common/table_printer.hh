/**
 * @file
 * Console table formatting for experiment output.
 *
 * Every bench binary prints rows in the shape of the paper's tables and
 * figures; TablePrinter keeps columns aligned so the output is directly
 * readable and diffable.
 */

#ifndef DEWRITE_COMMON_TABLE_PRINTER_HH
#define DEWRITE_COMMON_TABLE_PRINTER_HH

#include <cstdio>
#include <string>
#include <vector>

namespace dewrite {

/**
 * Collects rows of string cells and prints them with computed column
 * widths. Numeric convenience formatters are provided.
 */
class TablePrinter
{
  public:
    /** Creates a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Appends a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Prints to @p out with a separator under the header. */
    void print(std::FILE *out = stdout) const;

    /** Formats a double with @p decimals fraction digits. */
    static std::string num(double value, int decimals = 2);

    /** Formats a fraction as a percentage string, e.g. "54.2%". */
    static std::string percent(double fraction, int decimals = 1);

    /** Formats a ratio as a multiplier string, e.g. "4.2x". */
    static std::string times(double ratio, int decimals = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_TABLE_PRINTER_HH
