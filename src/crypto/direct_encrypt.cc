/**
 * @file
 * Direct encryption implementation.
 */

#include "crypto/direct_encrypt.hh"

#include <cstring>

namespace dewrite {

DirectEncryptEngine::DirectEncryptEngine(const AesKey &key) : cipher_(key)
{
}

AesBlock
DirectEncryptEngine::tweak(LineAddr addr, std::size_t block) const
{
    // Encrypt (addr, block index) to derive a whitening mask; reuses the
    // same AES core the data path has.
    AesBlock seed{};
    std::memcpy(seed.data(), &addr, 8);
    seed[8] = static_cast<std::uint8_t>(block);
    seed[15] = 0xa5; // Domain separator vs the CME seed layout.
    return cipher_.encryptBlock(seed);
}

Line
DirectEncryptEngine::encryptLine(const Line &plaintext, LineAddr addr) const
{
    Line out;
    for (std::size_t block = 0; block < kAesBlocksPerLine; ++block) {
        const AesBlock mask = tweak(addr, block);
        AesBlock in;
        std::memcpy(in.data(), plaintext.data() + block * kAesBlockSize,
                    kAesBlockSize);
        for (std::size_t i = 0; i < kAesBlockSize; ++i)
            in[i] ^= mask[i];
        AesBlock enc = cipher_.encryptBlock(in);
        for (std::size_t i = 0; i < kAesBlockSize; ++i)
            enc[i] ^= mask[i];
        std::memcpy(out.data() + block * kAesBlockSize, enc.data(),
                    kAesBlockSize);
    }
    return out;
}

Line
DirectEncryptEngine::decryptLine(const Line &ciphertext, LineAddr addr) const
{
    Line out;
    for (std::size_t block = 0; block < kAesBlocksPerLine; ++block) {
        const AesBlock mask = tweak(addr, block);
        AesBlock in;
        std::memcpy(in.data(), ciphertext.data() + block * kAesBlockSize,
                    kAesBlockSize);
        for (std::size_t i = 0; i < kAesBlockSize; ++i)
            in[i] ^= mask[i];
        AesBlock dec = cipher_.decryptBlock(in);
        for (std::size_t i = 0; i < kAesBlockSize; ++i)
            dec[i] ^= mask[i];
        std::memcpy(out.data() + block * kAesBlockSize, dec.data(),
                    kAesBlockSize);
    }
    return out;
}

} // namespace dewrite
