/**
 * @file
 * Trace tool: record catalog workloads to trace files and replay trace
 * files through any controller scheme — the bridge for driving this
 * repository's experiments with your own (e.g. gem5-derived) traces.
 *
 * Usage:
 *   trace_tool record <app> <file> [events]
 *   trace_tool replay <file> <plain|baseline|dewrite>
 *   trace_tool info <file>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/experiment.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_file.hh"

using namespace dewrite;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool record <app> <file> [events]\n"
                 "  trace_tool replay <file> <plain|baseline|dewrite>\n"
                 "  trace_tool info <file>\n");
    return 1;
}

int
record(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const AppProfile &app = appByName(argv[2]);
    const std::uint64_t events =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 100000;

    SyntheticWorkload source(app, appSeed(app));
    TraceFileWriter writer(argv[3]);
    const std::uint64_t written = writer.record(source, events);
    std::printf("recorded %llu events of '%s' to %s\n",
                static_cast<unsigned long long>(written),
                app.name.c_str(), argv[3]);
    return 0;
}

int
replay(int argc, char **argv)
{
    if (argc < 4)
        return usage();

    SchemeOptions scheme;
    if (std::strcmp(argv[3], "plain") == 0)
        scheme = plainScheme();
    else if (std::strcmp(argv[3], "baseline") == 0)
        scheme = secureBaselineScheme();
    else if (std::strcmp(argv[3], "dewrite") == 0)
        scheme = dewriteScheme(DedupMode::Predicted);
    else
        return usage();

    TraceFileSource trace(argv[2]);
    SystemConfig config;
    System system(config, scheme);
    const RunResult result = system.run(trace, trace.eventCount());

    std::printf("replayed %llu events through %s:\n",
                static_cast<unsigned long long>(result.events),
                system.controller().name().c_str());
    std::printf("  writes %llu (eliminated %llu), reads %llu\n",
                static_cast<unsigned long long>(result.writes),
                static_cast<unsigned long long>(result.writesEliminated),
                static_cast<unsigned long long>(result.reads));
    std::printf("  avg write %.1f ns, avg read %.1f ns, IPC %.3f\n",
                result.avgWriteLatencyNs, result.avgReadLatencyNs,
                result.ipc);
    std::printf("  NVM line writes %llu, energy %.1f uJ\n",
                static_cast<unsigned long long>(result.nvmLineWrites),
                static_cast<double>(result.totalEnergy) / 1e6);
    return 0;
}

int
info(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    TraceFileSource trace(argv[2]);
    std::uint64_t writes = 0, reads = 0;
    MemEvent event;
    while (trace.next(event))
        (event.isWrite ? writes : reads) += 1;
    std::printf("%s: %llu events (%llu writes, %llu reads)\n", argv[2],
                static_cast<unsigned long long>(trace.eventCount()),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(reads));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "record") == 0)
        return record(argc, argv);
    if (std::strcmp(argv[1], "replay") == 0)
        return replay(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return info(argc, argv);
    return usage();
}
