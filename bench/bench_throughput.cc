/**
 * @file
 * End-to-end simulation throughput of the experiment matrix.
 *
 * Runs the full Figure 12 workload matrix (every catalog app under the
 * secure baseline and all three DeWrite modes) and reports host-side
 * events per second — the number the flat-container and crypto-kernel
 * work optimizes. Results go to stdout as a table and to
 * BENCH_throughput.json (in the working directory) for tracking across
 * commits; the JSON includes each scheme's runner profile (per-cell
 * wall time, queue wait, per-worker busy time) so scaling regressions
 * show up alongside the throughput number.
 *
 * Events per cell come from DEWRITE_EVENTS (default 120000); pass
 * --quick for a 20x shorter run with the same shape.
 *
 * The JSON additionally carries the write-batch size (DEWRITE_BATCH),
 * a per-scheme parity fingerprint (CRC-32 over every cell's canonical
 * result signature — identical across batch sizes by the batching
 * strict-equivalence contract), the per-stage host-cycle breakdown
 * (digest/probe/pad/confirm-read/commit, from DEWRITE_STAGE_PROFILE,
 * which this bench enables unless the environment overrides it), and
 * an events/sec ratio of each dewrite mode against the secure
 * baseline — the tentpole's ≥0.8 target for dewrite-predicted.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "common/table_printer.hh"
#include "cpu/core_model.hh"
#include "obs/bench_report.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

/** The per-stage gauges DedupEngine registers under stage profiling. */
constexpr const char *kStageNames[] = { "digest", "probe", "pad",
                                        "confirm_read", "commit" };

struct SchemeTiming
{
    std::string name;
    std::size_t cells = 0;
    std::uint64_t events = 0;
    double seconds = 0.0;
    RunnerProfile profile;

    std::uint32_t fingerprint = 0;    //!< CRC-32 over cell signatures.
    double stageCycles[5] = { 0.0 };  //!< Summed over cells.
    bool hasStageCycles = false;      //!< Any stage sample observed.

    double eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    // Stage attribution is this bench's whole point; keep it on by
    // default but let the environment force it off (overwrite=0).
    // NOLINTNEXTLINE(concurrency-mt-unsafe): first line of main, no
    // threads exist yet.
    setenv("DEWRITE_STAGE_PROFILE", "1", 0);

    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const std::uint64_t events =
        quick ? experimentEvents() / 20 : experimentEvents();

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<std::pair<std::string, SchemeOptions>> schemes = {
        { "secure-baseline", secureBaselineScheme() },
        { "dewrite-direct", dewriteScheme(DedupMode::Direct) },
        { "dewrite-parallel", dewriteScheme(DedupMode::Parallel) },
        { "dewrite-predicted", dewriteScheme(DedupMode::Predicted) },
    };

    std::printf("End-to-end throughput: %zu apps x %zu schemes, "
                "%llu events/cell\n\n",
                apps.size(), schemes.size(),
                static_cast<unsigned long long>(events));

    std::vector<SchemeTiming> timings;
    std::uint64_t total_events = 0;
    double total_seconds = 0.0;
    for (const auto &[name, scheme] : schemes) {
        SchemeTiming timing;
        timing.name = name;
        const auto cells = runMatrixProfiled(apps, { scheme }, config,
                                             timing.profile, events, 0);
        timing.seconds = timing.profile.wallSeconds;
        timing.cells = cells.size();
        std::string signatures;
        for (const auto &cell : cells) {
            timing.events += cell.run.events;
            signatures += resultSignature(cell);
            for (const obs::MetricSample &sample : cell.metrics) {
                for (std::size_t s = 0; s < 5; ++s) {
                    if (sample.path == std::string("controller.dedup."
                                                   "stage.") +
                                           kStageNames[s] + "_cycles") {
                        timing.stageCycles[s] += sample.value;
                        timing.hasStageCycles = true;
                    }
                }
            }
        }
        timing.fingerprint = crc32(
            reinterpret_cast<const std::uint8_t *>(signatures.data()),
            signatures.size());
        total_events += timing.events;
        total_seconds += timing.seconds;
        timings.push_back(std::move(timing));
    }

    const double table_baseline =
        timings.empty() ? 0.0 : timings.front().eventsPerSec();
    TablePrinter table({ "scheme", "cells", "events", "wall (s)",
                         "events/sec", "vs base", "util" });
    for (const SchemeTiming &t : timings) {
        table.addRow({ t.name, std::to_string(t.cells),
                       std::to_string(t.events),
                       TablePrinter::num(t.seconds),
                       TablePrinter::num(t.eventsPerSec(), 0),
                       table_baseline > 0
                           ? TablePrinter::num(
                                 t.eventsPerSec() / table_baseline, 2)
                           : "-",
                       TablePrinter::num(t.profile.utilization(), 2) });
    }
    const double overall =
        total_seconds > 0 ? static_cast<double>(total_events) /
                                total_seconds
                          : 0.0;
    table.addRow({ "TOTAL", "-", std::to_string(total_events),
                   TablePrinter::num(total_seconds),
                   TablePrinter::num(overall, 0), "-", "-" });
    table.print();

    obs::BenchReport report("throughput", events, runnerThreads());
    if (!report.opened())
        return 1;
    obs::JsonWriter &w = report.json();
    w.field("write_batch",
            static_cast<std::uint64_t>(writeBatchSize()));
    w.key("schemes");
    w.beginArray();
    for (const SchemeTiming &t : timings) {
        w.beginObject();
        w.field("scheme", t.name);
        w.field("cells", static_cast<std::uint64_t>(t.cells));
        w.field("events", t.events);
        w.field("wall_seconds", t.seconds);
        w.field("events_per_sec", t.eventsPerSec());
        w.field("result_fingerprint",
                static_cast<std::uint64_t>(t.fingerprint));
        // Only schemes that registered stage gauges (dedup modes under
        // DEWRITE_STAGE_PROFILE) carry the block; an all-zero block
        // for the secure baseline would read as "profiled, free".
        if (t.hasStageCycles) {
            w.key("stage_cycles");
            w.beginObject();
            for (std::size_t s = 0; s < 5; ++s)
                w.field(kStageNames[s], t.stageCycles[s]);
            w.endObject();
        }
        w.key("profile");
        t.profile.writeJson(w);
        w.endObject();
    }
    w.endArray();

    // Each dewrite mode's host throughput relative to the secure
    // baseline (the tentpole tracks dewrite-predicted ≥ 0.8).
    const double baseline_eps = timings.empty()
        ? 0.0
        : timings.front().eventsPerSec();
    w.key("ratios");
    w.beginObject();
    for (const SchemeTiming &t : timings) {
        if (t.name == "secure-baseline")
            continue;
        w.field(t.name,
                baseline_eps > 0 ? t.eventsPerSec() / baseline_eps
                                 : 0.0);
    }
    w.endObject();

    w.field("total_events", total_events);
    w.field("total_wall_seconds", total_seconds);
    w.field("events_per_sec", overall);
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", report.path().c_str());
    return 0;
}
