
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dedup/dedup_engine_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/dedup_engine_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/dedup_engine_test.cc.o.d"
  "/root/repo/tests/dedup/free_space_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/free_space_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/free_space_test.cc.o.d"
  "/root/repo/tests/dedup/hash_store_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/hash_store_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/hash_store_test.cc.o.d"
  "/root/repo/tests/dedup/predictor_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/predictor_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/predictor_test.cc.o.d"
  "/root/repo/tests/dedup/recovery_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/recovery_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/recovery_test.cc.o.d"
  "/root/repo/tests/dedup/tables_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/tables_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/tables_test.cc.o.d"
  "/root/repo/tests/dedup/traditional_dedup_test.cc" "tests/CMakeFiles/test_dedup.dir/dedup/traditional_dedup_test.cc.o" "gcc" "tests/CMakeFiles/test_dedup.dir/dedup/traditional_dedup_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dewrite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
