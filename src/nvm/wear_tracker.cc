/**
 * @file
 * Wear tracker implementation.
 */

#include "nvm/wear_tracker.hh"

#include <algorithm>

namespace dewrite {

void
WearTracker::recordWrite(LineAddr addr, std::size_t bits_written)
{
    std::uint64_t &writes = lineWrites_.ref(addr);
    linesTouched_ += writes == 0 ? 1 : 0;
    const std::uint64_t count = ++writes;
    maxLineWrites_ = std::max(maxLineWrites_, count);
    ++totalWrites_;
    totalBits_ += bits_written;
}

std::uint64_t
WearTracker::lineWrites(LineAddr addr) const
{
    return lineWrites_.get(addr);
}

double
WearTracker::relativeLifetime(std::uint64_t cell_endurance,
                              std::uint64_t leveled_lines) const
{
    if (totalWrites_ == 0)
        return 0.0;
    const double budget = static_cast<double>(cell_endurance) *
                          static_cast<double>(leveled_lines);
    return budget / static_cast<double>(totalWrites_);
}

} // namespace dewrite
