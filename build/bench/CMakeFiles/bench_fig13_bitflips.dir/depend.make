# Empty dependencies file for bench_fig13_bitflips.
# This may be replaced when dependencies are built.
