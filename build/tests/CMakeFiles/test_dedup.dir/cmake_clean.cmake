file(REMOVE_RECURSE
  "CMakeFiles/test_dedup.dir/dedup/dedup_engine_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/dedup_engine_test.cc.o.d"
  "CMakeFiles/test_dedup.dir/dedup/free_space_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/free_space_test.cc.o.d"
  "CMakeFiles/test_dedup.dir/dedup/hash_store_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/hash_store_test.cc.o.d"
  "CMakeFiles/test_dedup.dir/dedup/predictor_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/predictor_test.cc.o.d"
  "CMakeFiles/test_dedup.dir/dedup/recovery_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/recovery_test.cc.o.d"
  "CMakeFiles/test_dedup.dir/dedup/tables_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/tables_test.cc.o.d"
  "CMakeFiles/test_dedup.dir/dedup/traditional_dedup_test.cc.o"
  "CMakeFiles/test_dedup.dir/dedup/traditional_dedup_test.cc.o.d"
  "test_dedup"
  "test_dedup.pdb"
  "test_dedup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
