/**
 * @file
 * MetadataCache implementation.
 */

#include "cache/metadata_cache.hh"

#include <algorithm>

#include "common/logging.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

namespace {

constexpr std::uint64_t kBitsPerLine = kLineBits;

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Entry width in bits for each table (Section IV-E1). */
std::uint64_t
entryBitsFor(MetadataTable table, const MemoryConfig &memory)
{
    switch (table) {
      case MetadataTable::Mapping:
      case MetadataTable::InvertedHash:
        return 33; // 4 B realAddr/hash-or-counter + 1 flag bit.
      case MetadataTable::HashStore:
        // Digest + 32-bit realAddr + 8-bit refcount (72 bits for
        // DeWrite's CRC-32; wider for cryptographic fingerprints).
        return memory.hashDigestBits + 32 + 8;
      case MetadataTable::Fsm:
        return 1;
    }
    panic("bad metadata table");
}

} // namespace

MetadataCache::MetadataCache(const SystemConfig &config, NvmDevice &device,
                             LineAddr region_base)
    : config_(config), device_(device),
      partitions_{
          // Placeholder construction; the body below lays the tables out
          // properly. std::array needs all four elements up front.
          Partition(1, 1, 1, 1, 0, 0), Partition(1, 1, 1, 1, 0, 0),
          Partition(1, 1, 1, 1, 0, 0), Partition(1, 1, 1, 1, 0, 0),
      }
{
    const std::uint64_t lines = config.memory.numLines;
    const std::size_t capacities[kNumMetadataTables] = {
        config.memory.mappingCacheBytes,
        config.memory.invHashCacheBytes,
        config.memory.hashCacheBytes,
        config.memory.fsmCacheBytes,
    };

    LineAddr base = region_base;
    for (unsigned t = 0; t < kNumMetadataTables; ++t) {
        const auto table = static_cast<MetadataTable>(t);
        const std::uint64_t entry_bits =
            entryBitsFor(table, config.memory);

        // Sequential tables honor the configured prefetch granularity;
        // the hash-indexed store fetches exactly one NVM line's worth of
        // entries, and the FSM bitmap a full line of flags.
        std::uint64_t block_entries;
        switch (table) {
          case MetadataTable::Mapping:
          case MetadataTable::InvertedHash:
            block_entries = config.memory.prefetchEntries;
            break;
          case MetadataTable::HashStore:
            block_entries = kBitsPerLine / entry_bits;
            break;
          case MetadataTable::Fsm:
            block_entries = kBitsPerLine;
            break;
          default:
            panic("bad metadata table");
        }

        const std::uint64_t lines_per_block =
            ceilDiv(block_entries * entry_bits, kBitsPerLine);
        const std::uint64_t span = ceilDiv(lines * entry_bits, kBitsPerLine);
        const std::size_t num_blocks = std::max<std::size_t>(
            1, capacities[t] / (lines_per_block * kLineSize));

        partitions_[t] = Partition(num_blocks, entry_bits, block_entries,
                                   lines_per_block, base, span);
        base += span;
    }
}

MetadataCache::Partition &
MetadataCache::partition(MetadataTable table)
{
    return partitions_[static_cast<unsigned>(table)];
}

const MetadataCache::Partition &
MetadataCache::partition(MetadataTable table) const
{
    return partitions_[static_cast<unsigned>(table)];
}

Time
MetadataCache::fillBlock(Partition &part, std::uint64_t block, Time now,
                         MetadataAccessResult &result)
{
    // Consecutive lines map to consecutive banks, so the fill reads
    // proceed in parallel; the fill completes when the slowest returns.
    Time done = now;
    // Step the wrapped offset incrementally instead of dividing per
    // line: ((block * linesPerBlock + i) % lines) for consecutive i.
    std::uint64_t offset = part.lineDiv.mod(block * part.linesPerBlock);
    for (std::uint64_t i = 0; i < part.linesPerBlock;
         ++i, offset = offset + 1 == part.lines ? 0 : offset + 1) {
        const LineAddr addr = part.base + offset;
        // The filled content lives functionally in the owning table;
        // only the read's completion time matters here.
        const NvmTiming access = device_.readTimed(addr, now);
        done = std::max(done, access.complete);
        fillReads_.increment();
        ++result.nvmReads;
        // Metadata is directly encrypted per 128-bit block, so the
        // fill decrypts only the blocks it needs; unlike CME the
        // decryption cannot overlap the read.
        energy_ += config_.energy.aesBlock;
    }
    return done + config_.timing.aesBlock;
}

void
MetadataCache::writebackBlock(Partition &part, std::uint64_t block, Time now,
                              MetadataAccessResult &result)
{
    std::uint64_t offset = part.lineDiv.mod(block * part.linesPerBlock);
    for (std::uint64_t i = 0; i < part.linesPerBlock;
         ++i, offset = offset + 1 == part.lines ? 0 : offset + 1) {
        const LineAddr addr = part.base + offset;
        // Content is held functionally by the owning table. The
        // metadata cache is battery-backed (Section V), so writebacks
        // drain lazily into idle bank slots; a typical writeback
        // dirtied a few entries, i.e. one re-encrypted 128-bit block
        // of cells per line.
        (void)now;
        device_.writeBackgroundZero(addr, kAesBlockSize * 8);
        writebacks_.increment();
        ++result.nvmWrites;
        energy_ += config_.energy.aesBlock; // Direct re-encryption.
    }
}

MetadataAccessResult
MetadataCache::access(MetadataTable table, std::uint64_t index, bool is_write,
                      Time now, bool allow_fill)
{
    Partition &part = partition(table);
    const std::uint64_t block = part.entryDiv.div(index);

    MetadataAccessResult result;
    result.latency = config_.timing.metadataCacheAccess;
    energy_ += config_.energy.metadataCacheAccess;

    const bool write_through =
        config_.memory.metadataWritePolicy ==
        MetadataWritePolicy::WriteThrough;

    if (part.directory.access(block, is_write && !write_through)) {
        result.hit = true;
        if (is_write && write_through)
            writebackBlock(part, block, now, result);
        return result;
    }

    if (!allow_fill)
        return result;

    const Time filled = fillBlock(part, block, now, result);
    result.latency += filled - now;

    const CacheEviction eviction =
        part.directory.insert(block, is_write && !write_through);
    if (eviction.valid && eviction.dirty)
        writebackBlock(part, eviction.key, filled, result);
    if (is_write && write_through)
        writebackBlock(part, block, filled, result);

    return result;
}

MetadataAccessResult
MetadataCache::insertEntry(MetadataTable table, std::uint64_t index,
                           Time now)
{
    Partition &part = partition(table);
    const std::uint64_t block = part.entryDiv.div(index);

    MetadataAccessResult result;
    result.latency = config_.timing.metadataCacheAccess;
    energy_ += config_.energy.metadataCacheAccess;

    const bool write_through =
        config_.memory.metadataWritePolicy ==
        MetadataWritePolicy::WriteThrough;

    if (part.directory.access(block, /*make_dirty=*/!write_through)) {
        result.hit = true;
        if (write_through)
            writebackBlock(part, block, now, result);
        return result;
    }

    const CacheEviction eviction =
        part.directory.insert(block, /*dirty=*/!write_through);
    if (eviction.valid && eviction.dirty)
        writebackBlock(part, eviction.key, now, result);
    if (write_through)
        writebackBlock(part, block, now, result);
    return result;
}

MetadataAccessResult
MetadataCache::postUpdate(MetadataTable table, std::uint64_t index,
                          Time now)
{
    Partition &part = partition(table);
    const std::uint64_t block = part.entryDiv.div(index);

    MetadataAccessResult result;
    result.latency = config_.timing.metadataCacheAccess;
    energy_ += config_.energy.metadataCacheAccess;

    const bool write_through =
        config_.memory.metadataWritePolicy ==
        MetadataWritePolicy::WriteThrough;

    if (part.directory.access(block, /*make_dirty=*/!write_through)) {
        result.hit = true;
        if (write_through)
            writebackBlock(part, block, now, result);
        return result;
    }

    // Miss: the update drains as a background read-modify-write of the
    // entry's home block; nothing is brought on chip and nothing
    // stalls.
    writebackBlock(part, block, now, result);
    return result;
}

double
MetadataCache::hitRate(MetadataTable table) const
{
    return partition(table).directory.hitRate();
}

std::uint64_t
MetadataCache::dirtyEvictions(MetadataTable table) const
{
    return partition(table).directory.dirtyEvictions();
}

void
MetadataCache::flushAll(Time now)
{
    for (auto &part : partitions_) {
        for (std::uint64_t block : part.directory.dirtyKeys()) {
            MetadataAccessResult scratch;
            writebackBlock(part, block, now, scratch);
        }
        part.directory.cleanAll();
    }
}

LineAddr
MetadataCache::regionLines() const
{
    LineAddr total = 0;
    for (const auto &part : partitions_)
        total += part.lines;
    return total;
}

void
MetadataCache::registerMetrics(obs::MetricRegistry::Scope scope) const
{
    scope.counter("fill_reads", fillReads_,
                  "NVM line reads issued for metadata fills",
                  "metadata_fill_reads");
    scope.counter("writebacks", writebacks_,
                  "NVM line writes issued for metadata writebacks",
                  "metadata_writebacks");
    scope.gauge("energy_pj",
                [this] { return static_cast<double>(totalEnergy()); },
                "SRAM accesses plus metadata AES energy");
    scope.gauge("region_lines",
                [this] { return static_cast<double>(regionLines()); },
                "NVM lines the metadata region occupies");

    struct TableName
    {
        MetadataTable table;
        const char *name;
        const char *legacyHit;
    };
    static constexpr TableName kTables[] = {
        { MetadataTable::Mapping, "mapping", "hit_rate_mapping" },
        { MetadataTable::InvertedHash, "inverted_hash",
          "hit_rate_inverted_hash" },
        { MetadataTable::HashStore, "hash_store", "hit_rate_hash_store" },
        { MetadataTable::Fsm, "fsm", "hit_rate_fsm" },
    };
    for (const TableName &t : kTables) {
        obs::MetricRegistry::Scope part = scope.scope(t.name);
        part.gauge("hit_rate",
                   [this, table = t.table] { return hitRate(table); },
                   "partition hit rate", t.legacyHit);
        part.gauge("dirty_evictions",
                   [this, table = t.table] {
                       return static_cast<double>(dirtyEvictions(table));
                   },
                   "dirty blocks written back on eviction");
    }
}

} // namespace dewrite
