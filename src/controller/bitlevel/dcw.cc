/**
 * @file
 * NoneReducer and DcwReducer implementation.
 */

#include "controller/bitlevel/dcw.hh"

namespace dewrite {

namespace {
const Line kZeroLine;
}

const Line &
CipherImageReducer::image(LineAddr slot) const
{
    const Line *stored = images_.find(slot);
    return stored ? *stored : kZeroLine; // Unwritten cells read as zero.
}

std::size_t
NoneReducer::onWrite(LineAddr slot, const Line &new_pt,
                     std::uint64_t counter)
{
    setImage(slot, cme_.encryptLine(new_pt, slot, counter));
    return kLineBits;
}

std::size_t
DcwReducer::onWrite(LineAddr slot, const Line &new_pt, std::uint64_t counter)
{
    const Line new_ct = cme_.encryptLine(new_pt, slot, counter);
    const std::size_t flips = image(slot).bitDistance(new_ct);
    setImage(slot, new_ct);
    return flips;
}

} // namespace dewrite
