/**
 * @file
 * Logging implementation.
 *
 * Thread safety: the old implementation issued three fprintf calls per
 * report, so two runner workers warning at once could interleave
 * fragments. Each report is now formatted into a private buffer and
 * handed to fwrite once, with a process-wide mutex serializing the
 * write (stdio's own locking only covers single calls).
 */

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "common/env.hh"

namespace dewrite {

namespace {

// dewrite-owned: sync(reportMutex) serializes stderr writes;
// never touched per-event on shard drain paths
std::mutex reportMutex;

void
vreport(const char *prefix, const char *fmt, std::va_list args)
{
    // Probe pass sizes the message (va_list must be copied — the
    // second vsnprintf needs a fresh traversal).
    std::va_list sizing;
    va_copy(sizing, args);
    const int body = std::vsnprintf(nullptr, 0, fmt, sizing);
    va_end(sizing);
    if (body < 0)
        return;

    // dewrite-analyze: allow(hot-path-purity) failure/diagnostic path; the process is reporting, not
    // simulating
    std::string line(prefix);
    line += ": ";
    const std::size_t head = line.size();
    // dewrite-analyze: allow(hot-path-purity) failure/diagnostic path
    line.resize(head + static_cast<std::size_t>(body) + 1);
    std::vsnprintf(line.data() + head,
                   static_cast<std::size_t>(body) + 1, fmt, args);
    line.back() = '\n';

    std::lock_guard lock(reportMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

bool
parseLogLevel(const char *text, LogLevel &out)
{
    if (!text)
        return false;
    if (std::strcmp(text, "quiet") == 0)
        out = LogLevel::Quiet;
    else if (std::strcmp(text, "normal") == 0)
        out = LogLevel::Normal;
    else if (std::strcmp(text, "verbose") == 0)
        out = LogLevel::Verbose;
    else
        return false;
    return true;
}

LogLevel
logLevel()
{
    // Latched on first use; fatal() on a malformed value rather than
    // silently running at the wrong verbosity (same contract as
    // DEWRITE_EVENTS / DEWRITE_THREADS).
    static const LogLevel level = [] {
        LogLevel parsed = LogLevel::Normal;
        if (const char *env = envRaw("DEWRITE_LOG")) {
            if (!parseLogLevel(env, parsed)) {
                fatal("DEWRITE_LOG=\"%s\" is not one of "
                      "quiet/normal/verbose",
                      env);
            }
        }
        return parsed;
    }();
    return level;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace dewrite
