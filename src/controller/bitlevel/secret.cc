/**
 * @file
 * SecretReducer implementation.
 */

#include "controller/bitlevel/secret.hh"

#include <bit>

namespace dewrite {

std::size_t
SecretReducer::flipCost(std::uint16_t stored, std::uint16_t target)
{
    return std::popcount(static_cast<unsigned>(stored ^ target));
}

std::size_t
SecretReducer::onWrite(LineAddr slot, const Line &new_pt,
                       std::uint64_t counter)
{
    SlotState &st = state_.ref(slot);
    const bool epoch = !st.initialized || (counter % kEpochInterval == 0);

    std::size_t flips = 0;
    const Line pad_lead = cme_.makePad(slot, counter);

    if (epoch) {
        // Epoch boundary: every non-zero word re-encrypts under the
        // new counter; zero words are stored raw and flagged.
        Line new_cell;
        st.zeroed.reset();
        for (std::size_t w = 0; w < kWordsPerLine; ++w) {
            const std::uint16_t pt = new_pt.word16(w);
            std::uint16_t cell;
            if (pt == 0) {
                cell = 0;
                st.zeroed.set(w);
                ++flips; // The zero-flag cell itself.
            } else {
                cell = static_cast<std::uint16_t>(pt ^
                                                  pad_lead.word16(w));
            }
            flips += flipCost(st.cellImage.word16(w), cell);
            new_cell.setWord16(w, cell);
        }
        st.cellImage = new_cell;
        st.epochCounter = counter;
        st.modified.reset();
        st.initialized = true;
    } else {
        Line new_cell = st.cellImage;
        for (std::size_t w = 0; w < kWordsPerLine; ++w) {
            const std::uint16_t pt = new_pt.word16(w);
            const bool changed = pt != st.plainImage.word16(w);
            if (changed)
                st.modified.set(w);
            if (!st.modified.test(w))
                continue; // Untouched this epoch.

            std::uint16_t cell;
            if (pt == 0) {
                // Zero word: stored raw; repeated zeros are free.
                cell = 0;
                if (!st.zeroed.test(w)) {
                    st.zeroed.set(w);
                    ++flips; // Flag flip.
                }
            } else {
                cell = static_cast<std::uint16_t>(pt ^
                                                  pad_lead.word16(w));
                if (st.zeroed.test(w)) {
                    st.zeroed.reset(w);
                    ++flips; // Flag flip back.
                }
            }
            flips += flipCost(st.cellImage.word16(w), cell);
            new_cell.setWord16(w, cell);
        }
        st.cellImage = new_cell;
    }
    st.plainImage = new_pt;
    return flips;
}

} // namespace dewrite
