/**
 * @file
 * BenchReport implementation.
 */

#include "obs/bench_report.hh"

#include "common/logging.hh"

namespace dewrite::obs {

BenchReport::BenchReport(const std::string &name,
                         std::uint64_t events_per_cell, unsigned threads)
    : path_("BENCH_" + name + ".json")
{
    file_ = std::fopen(path_.c_str(), "w");
    if (!file_) {
        warn("cannot open %s for writing", path_.c_str());
        // Writers keep working against a scratch sink so benches can
        // stream unconditionally; close() still reports the failure.
        writer_ = std::make_unique<JsonWriter>(&scratch_);
        writer_->beginObject();
        return;
    }
    writer_ = std::make_unique<JsonWriter>(file_);
    writer_->beginObject();
    writer_->field("bench", name);
    writer_->field("schema_version", kBenchSchemaVersion);
    writer_->field("events_per_cell", events_per_cell);
    writer_->field("threads", threads);
}

BenchReport::~BenchReport()
{
    if (file_)
        close();
}

bool
BenchReport::close()
{
    if (!file_) {
        writer_.reset();
        return false;
    }
    writer_->endObject();
    const bool wrote_ok = writer_->ok() && writer_->depth() == 0;
    writer_.reset();
    const bool closed_ok = std::fclose(file_) == 0;
    file_ = nullptr;
    return wrote_ok && closed_ok;
}

} // namespace dewrite::obs
