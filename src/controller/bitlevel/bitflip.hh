/**
 * @file
 * Bit-level write-reduction techniques (Figure 13's comparison set).
 *
 * These techniques decide how many PCM cells a line write actually
 * programs. They are orthogonal to DeWrite (which eliminates whole-line
 * writes) and compose with it: DeWrite handles duplicate lines, a
 * bit-level reducer handles the residual bit flips of unique lines.
 *
 * Each reducer maintains its own image of what the cells contain under
 * its scheme (FNW stores words inverted, DEUCE keeps stale-epoch
 * ciphertext in untouched words), decoupled from the device's
 * functional store, so flip counts are exact without entangling the
 * schemes' storage formats.
 */

#ifndef DEWRITE_CONTROLLER_BITLEVEL_BITFLIP_HH
#define DEWRITE_CONTROLLER_BITLEVEL_BITFLIP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/line.hh"
#include "common/types.hh"

namespace dewrite {

class CounterModeEngine;

/** Which bit-level technique a controller applies to unique writes. */
enum class BitTechnique
{
    None,  //!< Program every cell (baseline full-line write).
    Dcw,   //!< Data Comparison Write: program only differing cells.
    Fnw,   //!< Flip-N-Write: DCW plus per-word inversion.
    Deuce, //!< DEUCE: word-level partial re-encryption.
    Secret,//!< SECRET: DEUCE plus zero-word avoidance.
};

/** Parses/prints technique names for harness output. */
std::string bitTechniqueName(BitTechnique technique);

/**
 * Computes the cells programmed by one line write and tracks the cell
 * image its scheme leaves behind.
 */
class BitLevelReducer
{
  public:
    virtual ~BitLevelReducer() = default;

    /**
     * Accounts the write of plaintext @p new_pt to slot @p slot whose
     * counter-mode counter is now @p counter.
     * @return the number of cell bits programmed.
     */
    virtual std::size_t onWrite(LineAddr slot, const Line &new_pt,
                                std::uint64_t counter) = 0;

    virtual BitTechnique technique() const = 0;

    /**
     * Sizing hint: expected distinct slots the reducer will track,
     * passed down at controller construction so per-slot state never
     * rehashes mid-run. Stateless reducers ignore it.
     */
    virtual void reserveSlots(std::uint64_t /*expected*/) {}
};

/**
 * Builds a reducer. @p cme supplies the pads that turn plaintext into
 * the cell image (all Figure 13 techniques operate on encrypted NVMM).
 */
std::unique_ptr<BitLevelReducer> makeReducer(BitTechnique technique,
                                             const CounterModeEngine &cme);

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_BITLEVEL_BITFLIP_HH
