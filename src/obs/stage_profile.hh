/**
 * @file
 * Host-cycle attribution for the batched write pipeline (DESIGN.md
 * §5f).
 *
 * With DEWRITE_STAGE_PROFILE=1, the dedup engine timestamps each write
 * pipeline stage — digest, metadata probe, pad generation, confirm
 * read, commit — with the host TSC and accumulates cycles per stage;
 * the sums surface as registry gauges under "controller.dedup.stage.*"
 * and bench_throughput records them per scheme, so the dewrite /
 * secure-baseline throughput gap is attributable to a stage instead of
 * a guess.
 *
 * Off by default for two reasons: the timestamps cost a pair of rdtsc
 * per stage entry, and — more importantly — leaving the stage gauges
 * unregistered keeps the default MetricRegistry snapshot byte-identical
 * to an unprofiled build (the batching parity contract).
 *
 * Stages attribute *work*, not disjoint wall time: a pad generated
 * lazily inside a confirm-read compare accrues to both "pad" and
 * "confirm_read", so the per-stage sums can exceed the end-to-end
 * total.
 */

#ifndef DEWRITE_OBS_STAGE_PROFILE_HH
#define DEWRITE_OBS_STAGE_PROFILE_HH

#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace dewrite {
namespace obs {

/**
 * Whether stage profiling is on (DEWRITE_STAGE_PROFILE, strict 0/1,
 * default off). Latched on first call so a run cannot change its mind
 * mid-flight.
 */
bool stageProfileEnabled();

/** Per-stage accumulated host cycles of one engine's write pipeline. */
struct StageCycles
{
    std::uint64_t digest = 0;      //!< CRC fingerprinting.
    std::uint64_t probe = 0;       //!< Hash-store / metadata probes.
    std::uint64_t pad = 0;         //!< AES-NI OTP generation.
    std::uint64_t confirmRead = 0; //!< Candidate reads + compares.
    std::uint64_t commit = 0;      //!< Metadata installs + line write.
};

/** Monotonic host cycle counter (TSC; ns-granular fallback). */
inline std::uint64_t
stageClock()
{
#if defined(__x86_64__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/**
 * RAII stage timer: accumulates the scope's cycles into @p sink, or
 * does nothing when @p sink is null (profiling off — the hot path pays
 * one branch).
 */
class StageTimer
{
  public:
    explicit StageTimer(std::uint64_t *sink)
        : sink_(sink), start_(sink ? stageClock() : 0)
    {
    }

    ~StageTimer()
    {
        if (sink_)
            *sink_ += stageClock() - start_;
    }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    std::uint64_t *sink_;
    std::uint64_t start_;
};

} // namespace obs
} // namespace dewrite

#endif // DEWRITE_OBS_STAGE_PROFILE_HH
