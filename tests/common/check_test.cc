/**
 * @file
 * DEWRITE_CHECK / DEWRITE_DCHECK tests: passing checks are free and
 * side-effect-exact, failing checks abort with file, line, condition
 * text, and the formatted context.
 */

#include "common/check.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(CheckTest, PassingCheckIsSilent)
{
    DEWRITE_CHECK(1 + 1 == 2, "arithmetic broke");
    DEWRITE_DCHECK(true, "never printed");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    DEWRITE_CHECK(++calls > 0, "calls=%d", calls);
    EXPECT_EQ(calls, 1);
}

TEST(CheckTest, MessageArgsNotEvaluatedOnSuccess)
{
    int calls = 0;
    auto expensive = [&calls] { return ++calls; };
    DEWRITE_CHECK(true, "value=%d", expensive());
    EXPECT_EQ(calls, 0);
}

TEST(CheckDeathTest, FailureReportsConditionAndContext)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const int slot = 17;
    EXPECT_DEATH(DEWRITE_CHECK(slot == 0, "slot %d is not home", slot),
                 "DEWRITE_CHECK failed.*check_test.*slot == 0.*"
                 "slot 17 is not home");
}

#if !defined(NDEBUG) || defined(DEWRITE_FORCE_DCHECKS)
TEST(CheckDeathTest, DcheckActiveInDebugBuilds)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(DEWRITE_DCHECK(false, "debug invariant"),
                 "debug invariant");
}
#else
TEST(CheckTest, DcheckCompiledOutInOptimizedBuilds)
{
    // The condition must not even be evaluated.
    int calls = 0;
    DEWRITE_DCHECK(++calls != 0, "never");
    EXPECT_EQ(calls, 0);
}
#endif

} // namespace
} // namespace dewrite
