/**
 * @file
 * The traditional secure-NVM controller (the paper's baseline).
 *
 * Counter-mode encryption with an on-chip counter cache and no
 * deduplication: every write bumps the line's counter, encrypts, and
 * programs the line; every read fetches the counter (OTP generation
 * overlaps the array read on a counter-cache hit) and XORs.
 *
 * Options compose the Figure 13 comparison points: a bit-level
 * reduction technique for the cells actually programmed, and Silent
 * Shredder's zero-line elimination.
 */

#ifndef DEWRITE_CONTROLLER_SECURE_BASELINE_HH
#define DEWRITE_CONTROLLER_SECURE_BASELINE_HH

#include <memory>

#include "cache/counter_cache.hh"
#include "common/paged_array.hh"
#include "common/timing.hh"
#include "controller/bitlevel/bitflip.hh"
#include "controller/bitlevel/shredder.hh"
#include "controller/mem_controller.hh"
#include "crypto/counter_mode.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

class SecureBaselineController : public MemController
{
  public:
    struct Options
    {
        BitTechnique technique = BitTechnique::None;
        bool shredZeroLines = false; //!< Silent Shredder composition.
    };

    SecureBaselineController(const SystemConfig &config, NvmDevice &device,
                             const AesKey &key, Options options);

    SecureBaselineController(const SystemConfig &config, NvmDevice &device,
                             const AesKey &key);

    CtrlWriteResult write(LineAddr addr, const Line &data,
                          Time now) override;
    CtrlReadResult read(LineAddr addr, Time now) override;
    CtrlReadResult readTiming(LineAddr addr, Time now) override;

    /**
     * Batched entry point: prefetches counter/written metadata and
     * pre-generates the (fully predictable) per-member pads 8-wide
     * before replaying the members through write() in order.
     */
    void writeBatch(const CtrlWriteRequest *requests,
                    CtrlWriteResult *results, std::size_t count) override;

    std::string name() const override;
    Energy controllerEnergy() const override;

    double counterCacheHitRate() const { return counterCache_.hitRate(); }
    const ZeroLineDirectory &zeroDirectory() const { return zeros_; }

  protected:
    void registerSchemeMetrics(obs::MetricRegistry &registry)
        const override;

  private:
    /** Shared read body; @p want_data false skips the host decrypt. */
    CtrlReadResult readImpl(LineAddr addr, Time now, bool want_data);

    const SystemConfig &config_;
    NvmDevice &device_;
    CounterModeEngine cme_;
    CounterCache counterCache_;
    Options options_;
    std::unique_ptr<BitLevelReducer> reducer_;
    ZeroLineDirectory zeros_;

    PagedArray<std::uint64_t> counters_;
    DenseAddrSet written_;
    PadCache padCache_;
    Energy aesEnergy_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_SECURE_BASELINE_HH
