/**
 * @file
 * Statistics implementation.
 */

#include "common/stats.hh"

#include <algorithm>

namespace dewrite {

void
Accumulator::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(std::size_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), bucketWidth_(bucket_width)
{
}

void
Histogram::add(double sample)
{
    ++total_;
    if (sample < 0) {
        ++overflow_;
        return;
    }
    const auto index = static_cast<std::size_t>(sample / bucketWidth_);
    if (index >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[index];
}

double
Histogram::fractionBelow(double threshold) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double upper = (i + 1) * bucketWidth_;
        if (upper <= threshold)
            below += buckets_[i];
    }
    return static_cast<double>(below) / static_cast<double>(total_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.contains(name);
}

} // namespace dewrite
