/**
 * @file
 * Fixed-size log2-bucketed latency histogram (HDR-style).
 *
 * The telemetry plane needs percentiles over millions of per-request
 * latencies without allocating on the hot path or shipping raw samples
 * around. A LatencyHistogram covers the full uint64 range with 64
 * power-of-two rows of 4 linear sub-buckets each (256 counters, ~2 KiB,
 * plus exact count/min/max/sum), so record() is a handful of ALU ops
 * and one increment, and relative quantile error is bounded by the
 * sub-bucket resolution (< 25%, typically ~12%).
 *
 * Histograms are plain mergeable value types: merge() adds bucket
 * counts, which is exact, associative, and commutative — the property
 * the service leans on when it folds shard-local histograms into
 * per-tenant aggregates at round boundaries without any hot-path
 * sharing. All state is host-side observability; nothing here may feed
 * back into simulated results (the fingerprint-invariance tests pin
 * that).
 */

#ifndef DEWRITE_OBS_LATENCY_HISTOGRAM_HH
#define DEWRITE_OBS_LATENCY_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

namespace dewrite::obs {

class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2 bits → 4 linear buckets per row. */
    static constexpr unsigned kSubBits = 2;
    static constexpr std::size_t kSubBuckets = std::size_t{ 1 }
                                               << kSubBits;
    /** One row per possible most-significant-bit position. */
    static constexpr std::size_t kRows = 64;
    static constexpr std::size_t kBuckets = kRows * kSubBuckets;

    /** Records one sample. Allocation-free; any uint64 is in range. */
    // dewrite-lint: hot
    void
    record(std::uint64_t value)
    {
        ++buckets_[bucketIndex(value)];
        ++count_;
        sum_ += value;
        if (value > max_)
            max_ = value;
        if (value < min_)
            min_ = value;
    }

    /**
     * Folds @p other in: bucket-exact, associative, and commutative
     * (all state is integer sums / extrema), so shard-local histograms
     * can be merged in any grouping with identical results.
     */
    void merge(const LatencyHistogram &other);

    void reset() { *this = LatencyHistogram(); }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                static_cast<double>(count_)
                      : 0.0;
    }

    std::uint64_t bucket(std::size_t index) const
    {
        return buckets_[index];
    }

    /** Bucket a value lands in. Total order: higher value, same-or-
     * higher index. */
    static std::size_t
    bucketIndex(std::uint64_t value)
    {
        if (value < kSubBuckets)
            return static_cast<std::size_t>(value);
        const unsigned msb =
            63u - static_cast<unsigned>(std::countl_zero(value));
        const unsigned shift = msb - kSubBits;
        const std::uint64_t top = value >> shift; // [4, 8)
        return (static_cast<std::size_t>(msb) - kSubBits + 1) *
                   kSubBuckets +
               static_cast<std::size_t>(top - kSubBuckets);
    }

    /** Smallest value mapping to @p index. */
    static std::uint64_t bucketLowerBound(std::size_t index);

    /**
     * Largest value mapping to @p index. The top occupied row cannot
     * be widened past the integer range, so the final buckets saturate
     * at UINT64_MAX — the overflow region every huge sample collapses
     * into (tested explicitly).
     */
    static std::uint64_t bucketUpperBound(std::size_t index);

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * holding the ceil(q * count)-th smallest sample, clamped to the
     * exact observed maximum (so percentile(1.0) == max()). Returns 0
     * on an empty histogram. Reported values land in the same bucket
     * as the true order statistic — the oracle property tests pin it.
     */
    std::uint64_t percentile(double q) const;

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p90() const { return percentile(0.90); }
    std::uint64_t p99() const { return percentile(0.99); }
    std::uint64_t p999() const { return percentile(0.999); }

    /** Bucket-exact equality (distribution, count, sum, extrema). */
    bool operator==(const LatencyHistogram &other) const = default;

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = ~std::uint64_t{ 0 };
};

} // namespace dewrite::obs

#endif // DEWRITE_OBS_LATENCY_HISTOGRAM_HH
