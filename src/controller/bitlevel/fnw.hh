/**
 * @file
 * Flip-N-Write reducer.
 *
 * FNW [Cho & Lee] extends DCW: each 16-bit word carries one flip flag;
 * when more than half of a word's cells would change, the word is
 * stored inverted instead, bounding the programmed cells per word to
 * ceil((n+1)/2). On random (encrypted) data this yields the ~43%
 * expected flip rate the paper reports.
 */

#ifndef DEWRITE_CONTROLLER_BITLEVEL_FNW_HH
#define DEWRITE_CONTROLLER_BITLEVEL_FNW_HH

#include <bitset>

#include "common/paged_array.hh"
#include "controller/bitlevel/bitflip.hh"
#include "crypto/counter_mode.hh"

namespace dewrite {

class FnwReducer : public BitLevelReducer
{
  public:
    explicit FnwReducer(const CounterModeEngine &cme) : cme_(cme) {}

    std::size_t onWrite(LineAddr slot, const Line &new_pt,
                        std::uint64_t counter) override;

    BitTechnique technique() const override { return BitTechnique::Fnw; }

    void reserveSlots(std::uint64_t expected) override
    {
        state_.reserve(expected);
    }

  private:
    static constexpr std::size_t kWordBits = 16;
    static constexpr std::size_t kWordsPerLine = kLineBits / kWordBits;

    struct SlotState
    {
        Line image;                        //!< Stored cell values.
        std::bitset<kWordsPerLine> flags;  //!< Word stored inverted.
    };

    const CounterModeEngine &cme_;
    PagedArray<SlotState, 1024> state_;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_BITLEVEL_FNW_HH
