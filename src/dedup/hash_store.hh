/**
 * @file
 * The hash table for duplication detection (Section III-B2).
 *
 * Maps the CRC-32 fingerprint of every valid line in memory to the slot
 * holding that line and an 8-bit reference count (how many logical
 * addresses map to the slot). CRC-32 collides, so one hash can chain
 * several slots whose contents differ; the engine confirms candidates
 * with a read-and-compare. Reference counts saturate at 255: a line that
 * reaches 255 references is pinned as "highly referenced" and further
 * duplicates of it are written normally rather than deduplicated, which
 * bounds the field width at the cost of a few missed eliminations.
 */

#ifndef DEWRITE_DEDUP_HASH_STORE_HH
#define DEWRITE_DEDUP_HASH_STORE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dewrite {

/** One <hash, realAddr, reference> record. */
struct HashEntry
{
    LineAddr realAddr;
    std::uint8_t reference;
};

class HashStore
{
  public:
    /** Saturation limit of the 8-bit reference field. */
    static constexpr std::uint8_t kMaxReference = 255;

    /**
     * Returns the chain of slots fingerprinted by @p hash (possibly
     * empty; more than one entry means a CRC collision is live).
     */
    const std::vector<HashEntry> &lookup(std::uint64_t hash) const;

    /** Inserts a new record with reference 1. The pair must be absent. */
    void insert(std::uint64_t hash, LineAddr real_addr);

    /**
     * Increments the reference of (@p hash, @p real_addr).
     * @return false if the count is saturated (caller must then treat
     *         the write as non-duplicate), true otherwise.
     */
    bool addReference(std::uint64_t hash, LineAddr real_addr);

    /**
     * Decrements the reference of (@p hash, @p real_addr).
     * @return true if the count reached zero and the record was removed
     *         (the slot no longer holds live data).
     */
    bool dropReference(std::uint64_t hash, LineAddr real_addr);

    /** Current reference count, or 0 if the record is absent. */
    std::uint8_t reference(std::uint64_t hash, LineAddr real_addr) const;

    /**
     * Recovery-only: installs a record with an explicit reference
     * count (clamped to the saturation cap). The pair must be absent.
     */
    void restore(std::uint64_t hash, LineAddr real_addr,
                 std::uint64_t references);

    /** Number of live records. */
    std::size_t size() const { return size_; }

    /** Number of distinct hash values with at least one record. */
    std::size_t distinctHashes() const { return chains_.size(); }

    /**
     * Live records whose hash is shared with another live record — the
     * measure behind Figure 6's collision probability.
     */
    std::size_t collidingEntries() const;

    /** Longest live collision chain. */
    std::size_t maxChainLength() const;

    /** Cumulative saturation refusals (for the Figure 12 miss budget). */
    std::uint64_t saturationRefusals() const
    {
        return saturationRefusals_.value();
    }

    /** Visits every record (testing / refcount histograms). */
    template <typename Visitor>
    void
    forEach(Visitor &&visit) const
    {
        for (const auto &[hash, chain] : chains_) {
            for (const auto &entry : chain)
                visit(hash, entry);
        }
    }

  private:
    std::unordered_map<std::uint64_t, std::vector<HashEntry>> chains_;
    std::size_t size_ = 0;
    Counter saturationRefusals_;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_HASH_STORE_HH
