/**
 * @file
 * Single-cell observability smoke: trace + time series + registry.
 *
 * Simulates one (application, scheme) cell with the write-pipeline
 * tracer attached and emits every observability artifact the stack
 * produces:
 *
 *  - TRACE_cell.json — Chrome/Perfetto trace of the retained event
 *    tail (load it at https://ui.perfetto.dev);
 *  - BENCH_trace_cell.json — uniform bench JSON with the epoch time
 *    series (write reduction / prediction accuracy per epoch), the
 *    full registry snapshot, and the tracer's own accounting.
 *
 * The binary is also a consistency check: the tracer's aggregates and
 * the registry snapshot are cross-checked against the authoritative
 * ExperimentResult counters, and any mismatch exits non-zero — CI runs
 * this as the end-to-end proof that the three reporting paths agree.
 *
 * Usage: bench_trace_cell [app-name] (default: first catalog app).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/bench_report.hh"
#include "obs/trace_export.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

int
fail(const char *what)
{
    std::fprintf(stderr, "trace-cell consistency FAILED: %s\n", what);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<AppProfile> &apps = appCatalog();
    const AppProfile *app = &apps.front();
    if (argc > 1) {
        app = nullptr;
        for (const AppProfile &candidate : apps) {
            if (candidate.name == argv[1])
                app = &candidate;
        }
        if (!app) {
            std::fprintf(stderr, "unknown app \"%s\"\n", argv[1]);
            return 1;
        }
    }

    SystemConfig config;
    const SchemeOptions scheme = dewriteScheme(DedupMode::Predicted);
    const std::uint64_t events = experimentEvents();

    obs::TraceConfig trace_config;
    const DetailedExperiment cell = runAppTraced(
        *app, config, scheme, events, appSeed(*app), trace_config);
    const obs::WriteTracer *tracer = cell.system->tracer();
    if (!tracer)
        return fail("tracer not attached");

    const ExperimentResult &r = cell.result;
    std::printf("%s under %s: %llu events, %zu trace events retained "
                "(%llu recorded), %zu epochs\n",
                r.app.c_str(), r.scheme.c_str(),
                static_cast<unsigned long long>(r.run.events),
                tracer->size(),
                static_cast<unsigned long long>(tracer->recorded()),
                tracer->epochs().size());

    // --- Consistency: tracer aggregates vs the authoritative run. ---
    if (obs::WriteTracer::compiledIn()) {
        if (tracer->recorded() != r.run.writes)
            return fail("recorded events != write requests");

        std::uint64_t dup_total = tracer->currentEpoch().duplicates;
        for (const obs::EpochSnapshot &epoch : tracer->epochs())
            dup_total += epoch.duplicates;
        if (dup_total != r.run.writesEliminated)
            return fail("epoch duplicates != writes eliminated");
    }

    // --- Consistency: live registry vs the snapshot in the result. ---
    const obs::MetricRegistry &registry = cell.system->registry();
    if (registry.snapshot() != r.metrics)
        return fail("registry snapshot is not reproducible");
    const obs::MetricRegistry::Entry *writes =
        registry.find("controller.write_requests");
    const obs::MetricRegistry::Entry *eliminated =
        registry.find("controller.writes_eliminated");
    if (!writes || !eliminated)
        return fail("canonical controller paths missing");
    if (writes->read() != static_cast<double>(r.run.writes))
        return fail("controller.write_requests != run counter");
    if (eliminated->read() !=
        static_cast<double>(r.run.writesEliminated)) {
        return fail("controller.writes_eliminated != run counter");
    }

    // --- Consistency: legacy StatSet view vs the registry. ---
    StatSet from_registry;
    registry.fillStatSet(from_registry);
    for (const auto &[name, value] : r.stats.all()) {
        if (from_registry.get(name) != value)
            return fail("legacy StatSet view diverged");
    }

    // --- Artifacts. ---
    {
        std::FILE *out = std::fopen("TRACE_cell.json", "w");
        if (!out) {
            std::fprintf(stderr, "cannot write TRACE_cell.json\n");
            return 1;
        }
        obs::JsonWriter w(out);
        obs::writeChromeTrace(*tracer, w, r.app + "/" + r.scheme);
        const bool ok = w.ok() && w.depth() == 0;
        if (std::fclose(out) != 0 || !ok) {
            std::fprintf(stderr, "failed writing TRACE_cell.json\n");
            return 1;
        }
        std::printf("wrote TRACE_cell.json\n");
    }

    obs::BenchReport report("trace_cell", events, 1);
    obs::JsonWriter &w = report.json();
    w.field("app", r.app);
    w.field("scheme", r.scheme);
    w.field("trace_compiled_in", obs::WriteTracer::compiledIn());
    w.field("events_recorded", tracer->recorded());
    w.field("events_retained",
            static_cast<std::uint64_t>(tracer->size()));
    w.field("epoch_events", tracer->epochEvents());
    w.field("host_seconds", r.hostSeconds);
    w.key("epochs");
    obs::writeEpochSeries(*tracer, w);
    w.key("registry");
    registry.writeJson(w);
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    std::printf("wrote %s\nconsistency OK\n", report.path().c_str());
    return 0;
}
