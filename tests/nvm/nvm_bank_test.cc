/**
 * @file
 * Bank timing tests — the serialization behind the paper's
 * read/write interference argument.
 */

#include "nvm/nvm_bank.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(NvmBankTest, IdleBankStartsImmediately)
{
    NvmBank bank;
    const BankService svc = bank.service(1000, 300);
    EXPECT_EQ(svc.start, 1000u);
    EXPECT_EQ(svc.complete, 1300u);
    EXPECT_EQ(svc.queueDelay, 0u);
}

TEST(NvmBankTest, BusyBankQueuesFollower)
{
    NvmBank bank;
    bank.service(0, 300);
    const BankService second = bank.service(100, 75);
    EXPECT_EQ(second.start, 300u);
    EXPECT_EQ(second.complete, 375u);
    EXPECT_EQ(second.queueDelay, 200u);
}

TEST(NvmBankTest, WriteBlocksSubsequentRead)
{
    // The core effect DeWrite exploits (Section I): one long write
    // delays every later request to the bank; eliminating it removes
    // both its own latency and the follower's wait.
    NvmBank with_write;
    with_write.service(0, 300000); // A 300 ns write.
    const Time read_after_write =
        with_write.service(1000, 75000).complete - 1000;

    NvmBank without_write;
    const Time read_alone =
        without_write.service(1000, 75000).complete - 1000;

    EXPECT_EQ(read_alone, 75000u);
    EXPECT_EQ(read_after_write, 299000u + 75000u);
}

TEST(NvmBankTest, StatisticsAccumulate)
{
    NvmBank bank;
    bank.service(0, 100);
    bank.service(0, 100);
    bank.service(500, 100);
    EXPECT_EQ(bank.accesses(), 3u);
    EXPECT_EQ(bank.totalBusyTime(), 300u);
    EXPECT_EQ(bank.totalQueueDelay(), 100u); // Only the second waited.
    EXPECT_EQ(bank.busyUntil(), 600u);
}

TEST(NvmBankTest, GapLeavesIdleTime)
{
    NvmBank bank;
    bank.service(0, 100);
    const BankService late = bank.service(10000, 100);
    EXPECT_EQ(late.start, 10000u);
    EXPECT_EQ(late.queueDelay, 0u);
}

} // namespace
} // namespace dewrite
