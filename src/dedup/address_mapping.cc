/**
 * @file
 * AddressMappingTable implementation.
 */

#include "dedup/address_mapping.hh"

#include "common/logging.hh"

namespace dewrite {

bool
AddressMappingTable::isRemapped(LineAddr init_addr) const
{
    const Entry *entry = entries_.find(init_addr);
    return entry && entry->remapped;
}

LineAddr
AddressMappingTable::realAddr(LineAddr init_addr) const
{
    const Entry *entry = entries_.find(init_addr);
    if (!entry || !entry->remapped)
        panic("mapping table: realAddr of non-remapped line %llu",
              static_cast<unsigned long long>(init_addr));
    return entry->value;
}

void
AddressMappingTable::remap(LineAddr init_addr, LineAddr real_addr)
{
    Entry &entry = entries_.ref(init_addr);
    if (!entry.remapped)
        ++remapped_;
    entry.remapped = true;
    entry.value = real_addr;
}

void
AddressMappingTable::clearRemap(LineAddr init_addr)
{
    Entry &entry = entries_.ref(init_addr);
    if (entry.remapped)
        --remapped_;
    entry.remapped = false;
    entry.value = 0;
}

std::uint64_t
AddressMappingTable::counter(LineAddr init_addr) const
{
    const Entry *entry = entries_.find(init_addr);
    if (!entry)
        return 0;
    if (entry->remapped)
        panic("mapping table: counter read from remapped line %llu",
              static_cast<unsigned long long>(init_addr));
    return entry->value;
}

void
AddressMappingTable::setCounter(LineAddr init_addr, std::uint64_t counter)
{
    Entry &entry = entries_.ref(init_addr);
    if (entry.remapped)
        panic("mapping table: counter write to remapped line %llu",
              static_cast<unsigned long long>(init_addr));
    entry.value = counter;
}

bool
AddressMappingTable::counterIfNotRemapped(LineAddr init_addr,
                                          std::uint64_t &counter) const
{
    const Entry *entry = entries_.find(init_addr);
    if (!entry) {
        counter = 0;
        return true;
    }
    if (entry->remapped)
        return false;
    counter = entry->value;
    return true;
}

bool
AddressMappingTable::trySetCounter(LineAddr init_addr,
                                   std::uint64_t counter)
{
    Entry &entry = entries_.ref(init_addr);
    if (entry.remapped)
        return false;
    entry.value = counter;
    return true;
}

} // namespace dewrite
