/**
 * @file
 * CRC-32 unit tests, anchored to published check values.
 */

#include "common/crc32.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"

namespace dewrite {
namespace {

TEST(Crc32Test, StandardCheckValue)
{
    // The canonical CRC-32 check: crc32("123456789") == 0xcbf43926.
    const char *msg = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(msg),
                    std::strlen(msg)),
              0xcbf43926u);
}

TEST(Crc32Test, EmptyInput)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, KnownSingleByte)
{
    const std::uint8_t byte = 0x00;
    EXPECT_EQ(crc32(&byte, 1), 0xd202ef8du);
}

TEST(Crc32Test, LineOverloadMatchesBufferOverload)
{
    Rng rng(11);
    const Line line = Line::random(rng);
    EXPECT_EQ(crc32(line), crc32(line.data(), kLineSize));
}

TEST(Crc32Test, SensitiveToEveryBytePosition)
{
    Line base;
    const std::uint32_t h0 = crc32(base);
    for (std::size_t i = 0; i < kLineSize; i += 17) {
        Line tweaked = base;
        tweaked.setByte(i, 1);
        EXPECT_NE(crc32(tweaked), h0) << "byte " << i;
    }
}

TEST(Crc32Test, DeterministicAcrossCalls)
{
    Rng rng(12);
    const Line line = Line::random(rng);
    EXPECT_EQ(crc32(line), crc32(line));
}

TEST(Crc32Test, FastPathMatchesReferenceAtEverySizeAndAlignment)
{
    // The dispatcher switches strategies on size (bytewise tail,
    // slice-by-8, PCLMULQDQ folding above 64 bytes) and the folded
    // kernel loads 16-byte chunks from arbitrary offsets, so sweep
    // both axes against the bit-for-bit reference.
    Rng rng(13);
    std::vector<std::uint8_t> buffer(600);
    for (auto &byte : buffer)
        byte = static_cast<std::uint8_t>(rng.next64());
    for (std::size_t size = 0; size <= 520; ++size) {
        for (std::size_t offset = 0; offset < 3; ++offset) {
            const std::uint8_t *p = buffer.data() + offset;
            EXPECT_EQ(crc32(p, size), crc32Reference(p, size))
                << "size " << size << " offset " << offset;
        }
    }
}

TEST(Crc32cTest, StandardCheckValue)
{
    // The canonical CRC-32C check: crc32c("123456789") == 0xe3069283.
    const char *msg = "123456789";
    EXPECT_EQ(crc32c(reinterpret_cast<const std::uint8_t *>(msg),
                     std::strlen(msg)),
              0xe3069283u);
}

TEST(Crc32cTest, DiffersFromIeeePolynomial)
{
    const char *msg = "123456789";
    EXPECT_NE(crc32c(reinterpret_cast<const std::uint8_t *>(msg),
                     std::strlen(msg)),
              crc32(reinterpret_cast<const std::uint8_t *>(msg),
                    std::strlen(msg)));
}

TEST(Crc32cTest, HardwarePathMatchesReferenceAtEverySizeAndAlignment)
{
    Rng rng(14);
    std::vector<std::uint8_t> buffer(600);
    for (auto &byte : buffer)
        byte = static_cast<std::uint8_t>(rng.next64());
    for (std::size_t size = 0; size <= 520; ++size) {
        for (std::size_t offset = 0; offset < 3; ++offset) {
            const std::uint8_t *p = buffer.data() + offset;
            EXPECT_EQ(crc32c(p, size), crc32cReference(p, size))
                << "size " << size << " offset " << offset;
        }
    }
}

TEST(Crc32cTest, LineOverloadMatchesBufferOverload)
{
    Rng rng(15);
    const Line line = Line::random(rng);
    EXPECT_EQ(crc32c(line), crc32c(line.data(), kLineSize));
}

} // namespace
} // namespace dewrite
