/**
 * @file
 * InvertedHashTable implementation.
 */

#include "dedup/inverted_hash.hh"

#include "common/logging.hh"

namespace dewrite {

bool
InvertedHashTable::holdsData(LineAddr real_addr) const
{
    const Entry *entry = entries_.find(real_addr);
    return entry && entry->hasHash;
}

std::uint64_t
InvertedHashTable::hash(LineAddr real_addr) const
{
    const Entry *entry = entries_.find(real_addr);
    if (!entry || !entry->hasHash)
        panic("inverted hash: hash of empty slot %llu",
              static_cast<unsigned long long>(real_addr));
    return entry->value;
}

void
InvertedHashTable::setHash(LineAddr real_addr, std::uint64_t hash)
{
    Entry &entry = entries_.ref(real_addr);
    if (!entry.hasHash)
        ++dataSlots_;
    entry.hasHash = true;
    entry.value = hash;
}

void
InvertedHashTable::clearHash(LineAddr real_addr)
{
    Entry &entry = entries_.ref(real_addr);
    if (entry.hasHash)
        --dataSlots_;
    entry.hasHash = false;
    entry.value = 0;
}

std::uint64_t
InvertedHashTable::counter(LineAddr real_addr) const
{
    const Entry *entry = entries_.find(real_addr);
    if (!entry)
        return 0;
    if (entry->hasHash)
        panic("inverted hash: counter read from data slot %llu",
              static_cast<unsigned long long>(real_addr));
    return entry->value;
}

void
InvertedHashTable::setCounter(LineAddr real_addr, std::uint64_t counter)
{
    Entry &entry = entries_.ref(real_addr);
    if (entry.hasHash)
        panic("inverted hash: counter write to data slot %llu",
              static_cast<unsigned long long>(real_addr));
    entry.value = counter;
}

bool
InvertedHashTable::counterIfNoData(LineAddr real_addr,
                                   std::uint64_t &counter) const
{
    const Entry *entry = entries_.find(real_addr);
    if (!entry) {
        counter = 0;
        return true;
    }
    if (entry->hasHash)
        return false;
    counter = entry->value;
    return true;
}

bool
InvertedHashTable::trySetCounter(LineAddr real_addr, std::uint64_t counter)
{
    Entry &entry = entries_.ref(real_addr);
    if (entry.hasHash)
        return false;
    entry.value = counter;
    return true;
}

} // namespace dewrite
