/**
 * @file
 * MD5 (RFC 1321) — the cryptographic fingerprint of "traditional"
 * deduplication.
 *
 * DeWrite's core comparison (Table I) is against storage-style
 * deduplication that fingerprints data with MD5/SHA-1 and trusts the
 * digest outright. This implementation makes that comparator
 * *functional*: the TraditionalDedup configuration really fingerprints
 * lines with it. MD5 is long broken for security; here it only plays
 * its historical role as a dedup fingerprint.
 */

#ifndef DEWRITE_CRYPTO_MD5_HH
#define DEWRITE_CRYPTO_MD5_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace dewrite {

/** A 128-bit MD5 digest. */
using Md5Digest = std::array<std::uint8_t, 16>;

/** MD5 of an arbitrary buffer. */
Md5Digest md5(const std::uint8_t *data, std::size_t size);

} // namespace dewrite

#endif // DEWRITE_CRYPTO_MD5_HH
