/**
 * @file
 * DedupEngine tests: the full write/read semantics of Section III-B,
 * including reference lifecycles, relocation, counter colocation, and
 * real CRC-32 collision handling.
 */

#include "dedup/dedup_engine.hh"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "nvm/nvm_device.hh"
#include "sim/system.hh"

namespace dewrite {
namespace {

class DedupEngineTest : public ::testing::Test
{
  protected:
    DedupEngineTest()
        : device_(config()), cme_(key()),
          metadata_(config(), device_, config().memory.numLines),
          engine_(config(), device_, metadata_, cme_)
    {
    }

    static const SystemConfig &
    config()
    {
        static SystemConfig instance = [] {
            SystemConfig c;
            c.memory.numLines = 1 << 16;
            return c;
        }();
        return instance;
    }

    static AesKey
    key()
    {
        AesKey k{};
        k[3] = 0x42;
        return k;
    }

    /** Full write through detect + commit, like the controller does. */
    WriteCommit
    writeLine(LineAddr addr, const Line &data, bool allow_fill = true)
    {
        const DetectOutcome det = engine_.detect(data, now_, allow_fill);
        WriteCommit commit;
        if (det.duplicate) {
            commit = engine_.commitDuplicate(addr, det, det.done);
        } else {
            commit = engine_.commitUnique(
                addr, data, det.hash, det.done,
                det.done + config().timing.aesLine);
        }
        now_ = commit.done;
        return commit;
    }

    Line
    readLine(LineAddr addr, bool expect_valid = true)
    {
        const ReadOutcome out = engine_.read(addr, now_);
        now_ = out.done;
        EXPECT_EQ(out.valid, expect_valid) << "addr " << addr;
        return out.data;
    }

    NvmDevice device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    DedupEngine engine_;
    Time now_ = 0;
};

TEST_F(DedupEngineTest, UniqueWriteRoundTrips)
{
    Rng rng(71);
    const Line data = Line::random(rng);
    const WriteCommit commit = writeLine(1, data);
    EXPECT_TRUE(commit.wroteLine);
    EXPECT_EQ(commit.slot, 1u); // Own slot preferred.
    EXPECT_EQ(readLine(1), data);
    EXPECT_EQ(engine_.uniqueCommits(), 1u);
}

TEST_F(DedupEngineTest, StoredCiphertextDiffersFromPlaintext)
{
    Rng rng(72);
    const Line data = Line::random(rng);
    writeLine(1, data);
    EXPECT_NE(device_.peek(1), data); // Encrypted at rest.
}

TEST_F(DedupEngineTest, DuplicateWriteIsEliminated)
{
    Rng rng(73);
    const Line data = Line::random(rng);
    writeLine(1, data);
    const DetectOutcome det = engine_.detect(data, now_, true);
    EXPECT_TRUE(det.authoritative);
    EXPECT_TRUE(det.duplicate);
    EXPECT_EQ(det.dupSlot, 1u);
    EXPECT_GT(det.confirmReads, 0u);

    const WriteCommit commit = writeLine(2, data);
    EXPECT_FALSE(commit.wroteLine);
    EXPECT_EQ(commit.slot, 1u);
    EXPECT_EQ(engine_.duplicateCommits(), 1u);
    EXPECT_EQ(engine_.hashStore().reference(crc32(data), 1), 2u);
    EXPECT_TRUE(engine_.mapping().isRemapped(2));
    EXPECT_EQ(engine_.mapping().realAddr(2), 1u);

    // Both logical lines read the same content; only one device line
    // was ever written.
    EXPECT_EQ(readLine(1), data);
    EXPECT_EQ(readLine(2), data);
    EXPECT_FALSE(device_.isWritten(2));
}

TEST_F(DedupEngineTest, SilentStoreLeavesStateUntouched)
{
    Rng rng(74);
    const Line data = Line::random(rng);
    writeLine(1, data);
    const std::uint64_t device_writes = device_.numWrites();
    writeLine(1, data); // Same content, same address.
    EXPECT_EQ(engine_.silentStores(), 1u);
    EXPECT_EQ(device_.numWrites(), device_writes);
    EXPECT_EQ(engine_.hashStore().reference(crc32(data), 1), 1u);
    EXPECT_EQ(readLine(1), data);
}

TEST_F(DedupEngineTest, ExclusiveRewriteStaysInPlace)
{
    Rng rng(75);
    const Line first = Line::random(rng);
    const Line second = Line::random(rng);
    writeLine(1, first);
    const std::uint64_t counter_before = engine_.counterOf(1);
    const WriteCommit commit = writeLine(1, second);
    EXPECT_EQ(commit.slot, 1u);
    EXPECT_FALSE(commit.reencrypted);
    EXPECT_EQ(engine_.counterOf(1), counter_before + 1);
    // The stale fingerprint is gone, the new one is live.
    EXPECT_TRUE(engine_.hashStore().lookup(crc32(first)).empty());
    EXPECT_EQ(engine_.hashStore().reference(crc32(second), 1), 1u);
    EXPECT_EQ(readLine(1), second);
}

TEST_F(DedupEngineTest, RewriteOfSharedSlotRelocates)
{
    Rng rng(76);
    const Line shared = Line::random(rng);
    const Line fresh = Line::random(rng);
    writeLine(1, shared);
    writeLine(2, shared); // Slot 1 now referenced by lines 1 and 2.

    const WriteCommit commit = writeLine(1, fresh);
    EXPECT_TRUE(commit.wroteLine);
    EXPECT_NE(commit.slot, 1u); // Old data still referenced by line 2.
    EXPECT_TRUE(commit.reencrypted);
    EXPECT_EQ(engine_.reencryptions(), 1u);

    EXPECT_EQ(readLine(1), fresh);
    EXPECT_EQ(readLine(2), shared);
    EXPECT_EQ(engine_.hashStore().reference(crc32(shared), 1), 1u);
}

TEST_F(DedupEngineTest, LastReferenceFreesSlot)
{
    Rng rng(77);
    const Line shared = Line::random(rng);
    writeLine(1, shared);
    writeLine(2, shared);
    // Overwrite both references with unique lines.
    writeLine(1, Line::random(rng));
    EXPECT_FALSE(engine_.freeSpace().isFree(1)); // Line 2 still there.
    writeLine(2, Line::random(rng));
    EXPECT_TRUE(engine_.freeSpace().isFree(1));
    EXPECT_TRUE(engine_.hashStore().lookup(crc32(shared)).empty());
    EXPECT_FALSE(engine_.invertedHash().holdsData(1));
}

TEST_F(DedupEngineTest, ZeroLinesAllDeduplicateToOneSlot)
{
    const Line zero;
    writeLine(10, zero);
    for (LineAddr addr = 11; addr < 30; ++addr)
        writeLine(addr, zero);
    EXPECT_EQ(engine_.duplicateCommits(), 19u);
    EXPECT_EQ(engine_.hashStore().reference(crc32(zero), 10), 20u);
    for (LineAddr addr = 10; addr < 30; ++addr)
        EXPECT_EQ(readLine(addr), zero);
}

TEST_F(DedupEngineTest, CrcCollisionIsNotMistakenForDuplicate)
{
    // Find a real CRC-32 collision among sparse lines (first word
    // random, rest zero). The 32-bit birthday bound makes this quick.
    std::unordered_map<std::uint32_t, std::uint64_t> seen;
    Rng rng(78);
    std::uint64_t seed_a = 0, seed_b = 0;
    for (;;) {
        const std::uint64_t candidate = rng.next64();
        Line line;
        line.setWord64(0, candidate);
        const std::uint32_t hash = crc32(line);
        auto [it, inserted] = seen.emplace(hash, candidate);
        if (!inserted && it->second != candidate) {
            seed_a = it->second;
            seed_b = candidate;
            break;
        }
    }
    Line line_a;
    line_a.setWord64(0, seed_a);
    Line line_b;
    line_b.setWord64(0, seed_b);
    ASSERT_EQ(crc32(line_a), crc32(line_b));
    ASSERT_NE(line_a, line_b);

    writeLine(1, line_a);
    const DetectOutcome det = engine_.detect(line_b, now_, true);
    EXPECT_FALSE(det.duplicate); // Read-and-compare rejected it.
    EXPECT_GE(engine_.collisionMismatches(), 1u);

    writeLine(2, line_b);
    EXPECT_EQ(readLine(1), line_a);
    EXPECT_EQ(readLine(2), line_b);
    // Both live under one hash: a two-entry chain.
    EXPECT_EQ(engine_.hashStore().lookup(crc32(line_a)).size(), 2u);
}

TEST_F(DedupEngineTest, PnaSkipMissesDuplicateButStaysCorrect)
{
    Rng rng(79);
    const Line data = Line::random(rng);
    writeLine(1, data);

    // Evict the hash-store block from the metadata cache so the probe
    // misses, then detect with fills disallowed (predicted non-dup).
    for (int i = 0; i < 40000; ++i) {
        Line filler;
        filler.setWord64(0, rng.next64());
        engine_.detect(filler, now_, true);
    }
    const DetectOutcome det = engine_.detect(data, now_, false);
    if (!det.authoritative) {
        EXPECT_FALSE(det.duplicate);
        EXPECT_GE(engine_.missedByPna(), 1u);
        // Writing it as unique is functionally safe.
        writeLine(2, data, false);
        EXPECT_EQ(readLine(2), data);
        EXPECT_EQ(readLine(1), data);
    } else {
        // The block survived in cache; the hit path must confirm.
        EXPECT_TRUE(det.duplicate);
    }
}

TEST_F(DedupEngineTest, ReadOfUnwrittenLineIsInvalidZero)
{
    const Line data = readLine(999, /*expect_valid=*/false);
    EXPECT_TRUE(data.isZero());
}

TEST_F(DedupEngineTest, ForeignSlotAllocationDoesNotAliasReads)
{
    Rng rng(80);
    // Fill a shared slot, then force relocations until some
    // never-written logical line's slot gets foreign data.
    const Line shared = Line::random(rng);
    writeLine(1, shared);
    writeLine(2, shared);
    writeLine(1, Line::random(rng)); // Relocates to a foreign slot F.
    // Whatever slot was chosen, reading that logical line must still
    // report "never written", not the foreign data.
    const LineAddr foreign = engine_.mapping().realAddr(1);
    ASSERT_NE(foreign, 1u);
    if (foreign != 2) {
        const ReadOutcome out = engine_.read(foreign, now_);
        EXPECT_FALSE(out.valid);
        EXPECT_TRUE(out.data.isZero());
    }
}

TEST_F(DedupEngineTest, CountersNeverRegress)
{
    Rng rng(81);
    std::uint64_t last = engine_.counterOf(1);
    for (int i = 0; i < 10; ++i) {
        writeLine(1, Line::random(rng));
        const std::uint64_t current = engine_.counterOf(1);
        EXPECT_GE(current, last);
        last = current;
    }
}

TEST_F(DedupEngineTest, DetectLatencyReflectsAsymmetricCost)
{
    Rng rng(82);
    const Line data = Line::random(rng);
    writeLine(1, data);

    // Duplicate detection pays CRC + confirmation read; unique
    // detection of an unseen hash pays only CRC + metadata probing.
    const DetectOutcome dup = engine_.detect(data, now_, true);
    ASSERT_TRUE(dup.duplicate);
    EXPECT_GE(dup.done - now_,
              config().timing.crc32Line + config().timing.nvmRead);

    Line unseen;
    unseen.setWord64(0, rng.next64());
    // Warm the hash-store block first: the steady-state unique path is
    // CRC + an on-chip probe, far below the duplicate's confirm read.
    engine_.detect(unseen, now_, true);
    const DetectOutcome unique = engine_.detect(unseen, now_, true);
    EXPECT_FALSE(unique.duplicate);
    EXPECT_LT(unique.done - now_, dup.done - now_);
}

TEST_F(DedupEngineTest, DuplicateOfRemappedLineChainsCorrectly)
{
    Rng rng(83);
    const Line a = Line::random(rng);
    const Line b = Line::random(rng);
    writeLine(1, a);
    writeLine(2, a);  // 2 -> slot 1.
    writeLine(3, b);
    writeLine(2, b);  // 2 drops slot 1, joins slot 3.
    EXPECT_EQ(engine_.mapping().realAddr(2), 3u);
    EXPECT_EQ(engine_.hashStore().reference(crc32(a), 1), 1u);
    EXPECT_EQ(engine_.hashStore().reference(crc32(b), 3), 2u);
    EXPECT_EQ(readLine(1), a);
    EXPECT_EQ(readLine(2), b);
    EXPECT_EQ(readLine(3), b);
}

TEST_F(DedupEngineTest, SaturatedLineRefusesFurtherDedup)
{
    const Line popular = Line::pattern(0x1111111111111111ULL);
    writeLine(0, popular);
    for (LineAddr addr = 1; addr < 255; ++addr)
        writeLine(addr, popular);
    EXPECT_EQ(engine_.hashStore().reference(crc32(popular), 0), 255u);
    // The 256th logical copy is written as unique data.
    const WriteCommit commit = writeLine(300, popular);
    EXPECT_TRUE(commit.wroteLine);
    EXPECT_EQ(readLine(300), popular);
    EXPECT_GE(engine_.missedBySaturation(), 1u);
}

TEST_F(DedupEngineTest, HighestAddressRoundTrips)
{
    Rng rng(88);
    const LineAddr last = config().memory.numLines - 1;
    const Line data = Line::random(rng);
    writeLine(last, data);
    EXPECT_EQ(readLine(last), data);
}

TEST(DedupEngineFullMemoryTest, ExhaustionIsFatal)
{
    // A memory with very few slots fills up once unique lines exceed
    // capacity; the engine reports it as a user-visible fatal, not
    // silent corruption.
    SystemConfig config;
    config.memory.numLines = 4;
    NvmDevice device(config);
    CounterModeEngine cme(defaultAesKey());
    MetadataCache metadata(config, device, config.memory.numLines);
    DedupEngine engine(config, device, metadata, cme);

    EXPECT_EXIT(
        {
            Rng rng(89);
            Time now = 0;
            for (LineAddr addr = 0; addr < 10; ++addr) {
                const Line data = Line::random(rng);
                const DetectOutcome det = engine.detect(data, now, true);
                const WriteCommit commit = engine.commitUnique(
                    addr, data, det.hash, det.done, det.done);
                now = commit.done;
            }
        },
        testing::ExitedWithCode(1), "full");
}

TEST_F(DedupEngineTest, CountersNeverWrapAtPaperWidth)
{
    Rng rng(85);
    for (int i = 0; i < 20; ++i)
        writeLine(5, Line::random(rng));
    EXPECT_EQ(engine_.counterWraps(), 0u);
}

class TinyCounterTest : public DedupEngineTest
{
  protected:
    TinyCounterTest()
        : tinyEngine_(config(), device_, metadata_, cme_,
                      DedupEngine::Options{ DetectPolicy::ConfirmRead,
                                            nullptr, 4,
                                            HashFunction::Crc32,
                                            /*counterBits=*/4 })
    {
    }

    void
    writeTiny(LineAddr addr, const Line &data)
    {
        const DetectOutcome det = tinyEngine_.detect(data, tnow_, true);
        const WriteCommit commit = det.duplicate
            ? tinyEngine_.commitDuplicate(addr, det, det.done)
            : tinyEngine_.commitUnique(addr, data, det.hash, det.done,
                                       det.done);
        tnow_ = commit.done;
    }

    DedupEngine tinyEngine_;
    Time tnow_ = 0;
};

TEST_F(TinyCounterTest, MinorWrapRollsIntoMajorCounter)
{
    // A 4-bit minor counter wraps every 16 writes; the split-counter
    // discipline must keep every OTP fresh, so data remains readable
    // across wraps.
    Rng rng(86);
    Line last;
    for (int i = 0; i < 40; ++i) {
        last = Line::random(rng);
        writeTiny(3, last);
    }
    EXPECT_GE(tinyEngine_.counterWraps(), 2u);
    EXPECT_EQ(tinyEngine_.read(3, tnow_).data, last);
    // The stored (colocated) counter stays within its field width.
    EXPECT_LT(tinyEngine_.counterOf(3), 16u);
}

TEST_F(TinyCounterTest, DedupAcrossWrappedLinesStillWorks)
{
    Rng rng(87);
    const Line shared = Line::random(rng);
    for (int i = 0; i < 20; ++i)
        writeTiny(1, Line::random(rng)); // Wrap line 1's counter.
    writeTiny(1, shared);
    writeTiny(2, shared); // Must dedup against the wrapped line.
    EXPECT_EQ(tinyEngine_.duplicateCommits(), 1u);
    EXPECT_EQ(tinyEngine_.read(2, tnow_).data, shared);
}

class UnsafeDedupTest : public DedupEngineTest
{
  protected:
    UnsafeDedupTest()
        : unsafeEngine_(config(), device_, metadata_, cme_,
                        DedupEngine::Options{ DetectPolicy::WeakOnly,
                                              nullptr })
    {
    }

    DedupEngine unsafeEngine_;
};

TEST_F(UnsafeDedupTest, TrustingTheHashSkipsConfirmReads)
{
    Rng rng(84);
    const Line data = Line::random(rng);
    DetectOutcome det = unsafeEngine_.detect(data, 0, true);
    const WriteCommit first =
        unsafeEngine_.commitUnique(1, data, det.hash, det.done, det.done);

    det = unsafeEngine_.detect(data, first.done, true);
    EXPECT_TRUE(det.duplicate);
    EXPECT_EQ(det.confirmReads, 0u);
    EXPECT_EQ(unsafeEngine_.unsafeCorruptions(), 0u);
}

} // namespace
} // namespace dewrite
