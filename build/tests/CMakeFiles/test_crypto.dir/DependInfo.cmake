
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aes128_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/aes128_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/aes128_test.cc.o.d"
  "/root/repo/tests/crypto/counter_mode_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/counter_mode_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/counter_mode_test.cc.o.d"
  "/root/repo/tests/crypto/digest_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/digest_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/digest_test.cc.o.d"
  "/root/repo/tests/crypto/direct_encrypt_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/direct_encrypt_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/direct_encrypt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dewrite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
