/**
 * @file
 * Global timing and energy model parameters (the paper's Table II plus
 * the latency/energy constants quoted in Sections III-B and IV-A).
 *
 * Latencies are modelled as constants exactly the way the paper configures
 * NVMain: NVM read 75 ns, NVM write 300 ns, AES 96 ns per 256 B line,
 * CRC-32 15 ns, line compare 1 core cycle, SHA-1 321 ns / MD5 312 ns for
 * the Table I comparison. Energy: AES 5.9 nJ per 128-bit block; PCM cell
 * energies use published per-bit figures chosen so that write energy
 * dominates read energy, matching the paper's energy shapes (see
 * DESIGN.md Section 2).
 */

#ifndef DEWRITE_COMMON_TIMING_HH
#define DEWRITE_COMMON_TIMING_HH

#include <algorithm>

#include "common/types.hh"

namespace dewrite {

/**
 * Timing parameters of the simulated system. All values in picoseconds.
 */
struct TimingConfig
{
    /** Core clock period (2 GHz). */
    Time cyclePeriod = 500;

    /** PCM array read latency for one 256 B line (75 ns). */
    Time nvmRead = 75 * kNanoSecond;

    /**
     * Read served from an open row buffer (no array access). Repeated
     * reads of a hot line — e.g. dedup confirmations against a popular
     * slot — hit the row buffer, as NVMain models.
     */
    Time nvmRowHit = 15 * kNanoSecond;

    /** Consecutive same-bank lines sharing one row buffer. */
    unsigned linesPerRow = 8;

    /**
     * Bank interleaving: false = line-interleaved (consecutive lines
     * rotate across banks, NVMain's default), true = row-interleaved
     * (a row buffer's worth of lines per bank before rotating).
     */
    bool rowInterleave = false;

    /** PCM array write latency for one 256 B line (300 ns). */
    Time nvmWrite = 300 * kNanoSecond;

    /** AES pipeline latency to encrypt/decrypt one 256 B line (96 ns). */
    Time aesLine = 96 * kNanoSecond;

    /**
     * AES latency for a single 128-bit block (one pipeline pass).
     * Metadata is directly encrypted per block, so a metadata access
     * decrypts only the block holding its entry.
     */
    Time aesBlock = 6 * kNanoSecond;

    /** CRC-32 of a 256 B line in dedicated hardware (15 ns). */
    Time crc32Line = 15 * kNanoSecond;

    /**
     * 128-bit strong fingerprint of a 256 B line (DESIGN.md §5j): the
     * line streams through a handful of pipelined AES rounds, so the
     * latency sits between the CRC (15 ns) and a full AES line
     * encryption (96 ns, ten rounds per block).
     */
    Time strongFpLine = 40 * kNanoSecond;

    /** SHA-1 of a line in hardware — Table Ia comparison point (321 ns). */
    Time sha1Line = 321 * kNanoSecond;

    /** MD5 of a line in hardware — Table Ia comparison point (312 ns). */
    Time md5Line = 312 * kNanoSecond;

    /** Byte-wise compare of two 256 B lines in logic (1 cycle). */
    Time lineCompare = 500;

    /** XOR of line with OTP — the only serial step of CME reads. */
    Time otpXor = 500;

    /** On-chip metadata/counter cache (SRAM) access latency. */
    Time metadataCacheAccess = 2 * kNanoSecond;

    /** Number of independently schedulable NVM banks (NVMain PCM: 8). */
    unsigned numBanks = 8;

    /**
     * Per-core persist write-queue depth. Writes are admitted to an
     * ADR-backed queue and drain in order; the core stalls only when
     * the queue is full, so slow writes back-pressure the core and
     * fast (eliminated) writes let it run ahead. Depth 1 models the
     * strictest flush+fence-per-store discipline.
     */
    unsigned storeQueueDepth = 8;

    /** Convert a count of cycles to picoseconds. */
    Time cycles(std::uint64_t n) const { return n * cyclePeriod; }
};

/**
 * Energy parameters. All values in picojoules.
 */
struct EnergyConfig
{
    /** AES engine energy per 128-bit block (5.9 nJ). */
    Energy aesBlock = 5900;

    /** CRC-32 engine energy per line (negligible vs AES; ~30 pJ). */
    Energy crcLine = 30;

    /**
     * Cryptographic hashing (MD5/SHA-1) energy per line — comparable
     * to running the line through an AES-class datapath.
     */
    Energy cryptoHashLine = 50000;

    /** Line comparison logic per line. */
    Energy compareLine = 20;

    /**
     * Strong-fingerprint engine energy per line — a few AES-round
     * passes over 16 blocks, about a quarter of a full line encryption
     * (EnergyConfig::aesLine() = 94.4 nJ).
     */
    Energy strongFpLine = 20000;

    /** PCM read energy per bit (5 pJ/bit -> 10.24 nJ per line). */
    Energy nvmReadPerBit = 5;

    /** Row-buffer hit energy per bit (sense amps only, 1 pJ/bit). */
    Energy nvmRowHitPerBit = 1;

    /** PCM write energy per written bit (100 pJ/bit -> 204.8 nJ/line). */
    Energy nvmWritePerBit = 100;

    /** On-chip metadata cache access energy (per access). */
    Energy metadataCacheAccess = 50;

    /** AES energy for one full 256 B line (16 blocks). */
    Energy aesLine() const { return aesBlock * kAesBlocksPerLine; }

    /** PCM read energy for one full line. */
    Energy nvmReadLine() const { return nvmReadPerBit * kLineBits; }

    /** PCM write energy for one full line. */
    Energy nvmWriteLine() const { return nvmWritePerBit * kLineBits; }
};

/**
 * How dirty metadata reaches NVM (the paper's Section V options).
 */
enum class MetadataWritePolicy
{
    /**
     * Battery-backed write-back cache (Silent Shredder): dirty blocks
     * drain lazily on eviction into idle bank slots. Cheapest traffic;
     * crash-safe only thanks to the battery.
     */
    LazyBattery,

    /**
     * Write-through (SecPM): every metadata update is propagated to
     * NVM immediately via the write queue. No loss window and no
     * battery, at the cost of one background NVM write per update.
     */
    WriteThrough,
};

/**
 * Capacity and structural parameters.
 */
struct MemoryConfig
{
    /**
     * Number of addressable 256 B lines. The paper simulates a 16 GB
     * module; workloads touch a working set far below capacity, so the
     * default here (1 GB worth of lines) keeps table footprints small
     * without changing behaviour. All structures scale with this value.
     */
    std::uint64_t numLines = (1ULL << 30) / kLineSize;

    /** Metadata cache capacities, in bytes (Section IV-E2). */
    std::size_t hashCacheBytes = 512 * 1024;
    std::size_t mappingCacheBytes = 512 * 1024;
    std::size_t invHashCacheBytes = 512 * 1024;
    std::size_t fsmCacheBytes = 128 * 1024;

    /** Counter cache of the non-dedup secure baseline (2 MB). */
    std::size_t counterCacheBytes = 2 * 1024 * 1024;

    /**
     * Prefetch granularity for the sequential metadata tables (entries
     * fetched per NVM access); the paper settles on 256 (Fig. 21).
     */
    unsigned prefetchEntries = 256;

    /**
     * Fingerprint width stored per hash-table entry: 32 for DeWrite's
     * CRC-32; set to 128 (MD5) or 160 (SHA-1) when configuring the
     * traditional cryptographic-fingerprint comparator, so the space
     * and cache models account for the fatter entries.
     */
    unsigned hashDigestBits = 32;

    /** Metadata durability policy (Section V). */
    MetadataWritePolicy metadataWritePolicy =
        MetadataWritePolicy::LazyBattery;

    /**
     * Expected distinct lines a workload touches, used purely as a
     * reserve() sizing hint so the hashed hot-path tables (hash store,
     * counter overflow, trace image) never rehash mid-run. Behaviour is
     * identical whatever the value; 0 derives a default from numLines.
     */
    std::uint64_t workingSetHintLines = 0;

    /** The sizing hint, with the numLines-derived default applied. */
    std::uint64_t
    workingSetHint() const
    {
        return workingSetHintLines ? workingSetHintLines
                                   : std::max<std::uint64_t>(
                                         numLines / 16, 4096);
    }
};

/** Bundle of every model parameter, passed to controllers and devices. */
struct SystemConfig
{
    TimingConfig timing;
    EnergyConfig energy;
    MemoryConfig memory;

    /**
     * Cores driving the shared memory controller (Table II: 4). Bank
     * contention — and with it the paper's read-speedup effect — only
     * exists when several cores' requests overlap in time.
     */
    unsigned numCores = 4;
};

/**
 * Cross-checks that a configuration is self-consistent; calls fatal()
 * on user-level parameter errors. Invoked when a System is built.
 */
void validateConfig(const SystemConfig &config);

} // namespace dewrite

#endif // DEWRITE_COMMON_TIMING_HH
