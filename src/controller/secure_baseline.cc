/**
 * @file
 * SecureBaselineController implementation.
 */

#include "controller/secure_baseline.hh"

#include <algorithm>
#include <array>

#include "common/check.hh"

#include "obs/trace_ring.hh"

namespace dewrite {

SecureBaselineController::SecureBaselineController(
    const SystemConfig &config, NvmDevice &device, const AesKey &key,
    Options options)
    : config_(config), device_(device), cme_(key),
      counterCache_(config, device, /*region_base=*/config.memory.numLines),
      options_(options),
      reducer_(makeReducer(options.technique, cme_))
{
    counters_.reserve(config.memory.numLines);
    written_.reserve(config.memory.numLines);
    reducer_->reserveSlots(config.memory.workingSetHint());
}

SecureBaselineController::SecureBaselineController(
    const SystemConfig &config, NvmDevice &device, const AesKey &key)
    : SecureBaselineController(config, device, key, Options())
{
}

std::string
SecureBaselineController::name() const
{
    std::string label = "secure-baseline";
    if (options_.technique != BitTechnique::None) {
        // Appended in two steps: GCC 12's -Wrestrict false-positives
        // on operator+(const char *, std::string &&) here.
        label += "+";
        label += bitTechniqueName(options_.technique);
    }
    if (options_.shredZeroLines)
        label += "+shredder";
    return label;
}

CtrlWriteResult
SecureBaselineController::write(LineAddr addr, const Line &data, Time now)
{
    // The counter must be fetched (and bumped) before the OTP can be
    // generated, so the counter access heads the write's critical path.
    const MetadataAccessResult counter_access =
        counterCache_.access(addr, true, now);
    const Time counter_ready = now + counter_access.latency;
    const std::uint64_t counter = ++counters_.ref(addr);
    written_.insert(addr);

    if (options_.shredZeroLines && data.isZero()) {
        // Shredding: a zero-line write completes in metadata only.
        zeros_.markZeroed(addr);
        const Time latency = counter_ready - now;
        if (tracer_) [[unlikely]] {
            obs::WriteEvent ev;
            ev.issue = now;
            ev.done = counter_ready;
            ev.addr = addr;
            ev.duplicate = true; //!< Eliminated (shredded) write.
            tracer_->record(ev);
        }
        noteWrite(latency, true, 0);
        return { latency, true };
    }
    zeros_.clearZeroed(addr);

    aesEnergy_ += config_.energy.aesLine();
    const Time ciphertext_ready = counter_ready + config_.timing.aesLine;

    const Line ciphertext = data ^ padCache_.get(cme_, addr, counter);
    const std::size_t bits = reducer_->onWrite(addr, data, counter);
    const NvmTiming access =
        device_.write(addr, ciphertext, ciphertext_ready, bits);

    const Time latency = access.complete - now;
    if (tracer_) [[unlikely]] {
        obs::WriteEvent ev;
        ev.issue = now;
        ev.done = access.complete;
        ev.addr = addr;
        ev.wroteLine = true;
        tracer_->record(ev);
    }
    noteWrite(latency, false, bits);
    return { latency, false };
}

// dewrite-lint: hot
void
SecureBaselineController::writeBatch(const CtrlWriteRequest *requests,
                                     CtrlWriteResult *results,
                                     std::size_t count)
{
    DEWRITE_DCHECK(count <= kMaxWriteBatch,
                   "writeBatch of %zu exceeds kMaxWriteBatch", count);
    if (count < 2) {
        MemController::writeBatch(requests, results, count);
        return;
    }

    // Warm the counter/written tables and the NVM store for every batch
    // member before consuming any of them.
    for (std::size_t i = 0; i < count; ++i) {
        counters_.prefetch(requests[i].addr);
        written_.prefetch(requests[i].addr);
        device_.prefetchForWrite(requests[i].addr);
    }

    // Each member's pad key is fully predictable here: the write bumps
    // the counter to current+1. A repeated address inside the batch
    // (counter bumped twice) simply misses the exact-keyed cache and
    // regenerates serially — correctness never depends on the guess.
    std::array<PadRequest, kMaxWriteBatch> pad_requests;
    std::size_t num_pads = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (options_.shredZeroLines && requests[i].data->isZero())
            continue; // Shredded in metadata; no pad is generated.
        const std::uint64_t *counter = counters_.find(requests[i].addr);
        pad_requests[num_pads++] = { requests[i].addr,
                                     (counter ? *counter : 0) + 1 };
    }
    padCache_.fill(cme_, pad_requests.data(), num_pads);

    for (std::size_t i = 0; i < count; ++i) {
        results[i] =
            write(requests[i].addr, *requests[i].data, requests[i].now);
    }
}

CtrlReadResult
SecureBaselineController::read(LineAddr addr, Time now)
{
    return readImpl(addr, now, /*want_data=*/true);
}

CtrlReadResult
SecureBaselineController::readTiming(LineAddr addr, Time now)
{
    return readImpl(addr, now, /*want_data=*/false);
}

CtrlReadResult
SecureBaselineController::readImpl(LineAddr addr, Time now, bool want_data)
{
    CtrlReadResult result;
    result.valid = written_.contains(addr);

    const MetadataAccessResult counter_access =
        counterCache_.access(addr, false, now);

    if (options_.shredZeroLines && zeros_.isZeroed(addr)) {
        // A shredded line is answered from the counter state alone.
        result.latency = counter_access.latency;
        noteRead(result.latency);
        return result;
    }

    // The array read launches immediately; OTP generation waits for the
    // counter and overlaps the read (the CME latency-hiding of Fig. 1).
    const NvmTiming access = device_.readTimed(addr, now);
    const Time otp_ready =
        now + counter_access.latency + config_.timing.aesLine;
    aesEnergy_ += config_.energy.aesLine();

    if (const std::uint64_t *counter =
            want_data ? counters_.find(addr) : nullptr) {
        if (*counter) {
            // An unwritten slot reads as zero, so its decryption is the
            // pad itself — same value the eager Line copy used to give.
            const Line *ciphertext = device_.peekPtr(addr);
            const Line &pad = padCache_.get(cme_, addr, *counter);
            result.data = ciphertext ? (*ciphertext ^ pad) : pad;
        }
    }

    result.latency = std::max(access.complete, otp_ready) +
                     config_.timing.otpXor - now;
    noteRead(result.latency);
    return result;
}

Energy
SecureBaselineController::controllerEnergy() const
{
    return aesEnergy_ + counterCache_.totalEnergy();
}

void
SecureBaselineController::registerSchemeMetrics(
    obs::MetricRegistry &registry) const
{
    counterCache_.registerMetrics(registry.scope("cache.counter"));

    obs::MetricRegistry::Scope pad =
        registry.scope("controller.pad_cache");
    pad.counter("hits", padCache_.hitCounter(),
                "pad lookups served from the host-side memo");
    pad.counter("misses", padCache_.missCounter(),
                "pad lookups that regenerated through AES");
    pad.counter("prefills", padCache_.prefillCounter(),
                "pads speculatively batch-installed by fill()");

    obs::MetricRegistry::Scope shredder =
        registry.scope("controller.shredder");
    shredder.gauge("shredded_writes",
                   [this] {
                       return static_cast<double>(
                           zeros_.eliminatedWrites());
                   },
                   "zero-line writes eliminated in metadata",
                   "shredded_writes");
}

} // namespace dewrite
