/**
 * @file
 * Figure 20 — energy of the direct way, DeWrite, and the parallel
 * way, normalized to the parallel way.
 *
 * The parallel way encrypts every write (wasting AES energy on each
 * duplicate); the direct way encrypts only confirmed uniques; DeWrite
 * wastes encryption only on mispredictions.
 *
 * Paper's shape: DeWrite ~= direct, ~32% below the parallel way on
 * average.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 20: energy by scheduling scheme "
                "(normalized to the parallel way)\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { dewriteScheme(DedupMode::Direct),
                          dewriteScheme(DedupMode::Parallel),
                          dewriteScheme(DedupMode::Predicted) },
                  config);

    TablePrinter table({ "app", "parallel (uJ)", "direct/parallel",
                         "DeWrite/parallel", "wasted AES (DeWrite)" });
    double direct_sum = 0.0, dewrite_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult &direct = cells[3 * a];
        const ExperimentResult &parallel = cells[3 * a + 1];
        const ExperimentResult &predicted = cells[3 * a + 2];

        const double dir_rel =
            static_cast<double>(direct.run.totalEnergy) /
            static_cast<double>(parallel.run.totalEnergy);
        const double dw_rel =
            static_cast<double>(predicted.run.totalEnergy) /
            static_cast<double>(parallel.run.totalEnergy);
        direct_sum += dir_rel;
        dewrite_sum += dw_rel;
        table.addRow(
            { apps[a].name,
              TablePrinter::num(
                  static_cast<double>(parallel.run.totalEnergy) / 1e6,
                  1),
              TablePrinter::percent(dir_rel),
              TablePrinter::percent(dw_rel),
              TablePrinter::num(
                  predicted.stats.get("wasted_encryptions"), 0) });
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", "-",
                   TablePrinter::percent(direct_sum / n),
                   TablePrinter::percent(dewrite_sum / n), "-" });
    table.print();

    std::printf("\npaper: DeWrite ~= direct way, ~32%% below the "
                "parallel way on average\n");
    return 0;
}
