/**
 * @file
 * BatchFormer implementation.
 */

#include "cpu/batch_former.hh"

#include "common/check.hh"

namespace dewrite {

void
BatchFormer::reset(std::size_t capacity)
{
    DEWRITE_CHECK(capacity >= 1 && capacity <= kMaxWriteBatch,
                  "batch capacity %zu outside 1..%zu", capacity,
                  kMaxWriteBatch);
    capacity_ = capacity;
    size_ = 0;
}

std::size_t
BatchFormer::stage(LineAddr addr, const Line &data, Time now)
{
    DEWRITE_DCHECK(size_ < capacity_, "batch overflow");
    slots_[size_] = { addr, now, data };
    writesStaged_.increment();
    return size_++;
}

std::size_t
BatchFormer::flush(MemController &controller, CtrlWriteResult *results,
                   FlushReason reason)
{
    if (size_ == 0)
        return 0;
    std::array<CtrlWriteRequest, kMaxWriteBatch> requests;
    for (std::size_t i = 0; i < size_; ++i)
        requests[i] = { slots_[i].addr, &slots_[i].data, slots_[i].now };
    controller.writeBatch(requests.data(), results, size_);

    switch (reason) {
      case FlushReason::Read:
        flushRead_.increment();
        break;
      case FlushReason::QueueFull:
        flushQueueFull_.increment();
        break;
      case FlushReason::BatchFull:
        flushBatchFull_.increment();
        break;
      case FlushReason::TraceEnd:
        flushTraceEnd_.increment();
        break;
    }

    const std::size_t flushed = size_;
    size_ = 0;
    return flushed;
}

std::uint64_t
BatchFormer::flushes() const
{
    return flushRead_.value() + flushQueueFull_.value() +
           flushBatchFull_.value() + flushTraceEnd_.value();
}

void
BatchFormer::registerMetrics(obs::MetricRegistry::Scope scope) const
{
    scope.counter("writes_staged", writesStaged_,
                  "writes staged into the batch former");
    scope.counter("flush_read", flushRead_,
                  "batches flushed because a read must observe them");
    scope.counter("flush_queue_full", flushQueueFull_,
                  "batches flushed by a full store queue");
    scope.counter("flush_batch_full", flushBatchFull_,
                  "batches flushed at DEWRITE_BATCH staged writes");
    scope.counter("flush_trace_end", flushTraceEnd_,
                  "batch tails drained at end of trace");
}

} // namespace dewrite
