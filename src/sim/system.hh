/**
 * @file
 * System assembly: device + controller + core, behind one facade.
 *
 * A System owns everything one simulated configuration needs and is
 * the primary entry point of the library: construct it with a scheme
 * (plain / secure baseline / DeWrite in any mode), feed it a trace —
 * or use the direct write()/read() API as a storage substrate, the way
 * the examples do.
 */

#ifndef DEWRITE_SIM_SYSTEM_HH
#define DEWRITE_SIM_SYSTEM_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timing.hh"
#include "controller/dewrite_controller.hh"
#include "controller/secure_baseline.hh"
#include "cpu/core_model.hh"
#include "crypto/aes128.hh"
#include "nvm/nvm_device.hh"
#include "obs/metric_registry.hh"
#include "obs/trace_ring.hh"

namespace dewrite {

class TraceSource;

/** Which controller a System instantiates. */
enum class SchemeKind
{
    Plain,          //!< No encryption, no dedup.
    SecureBaseline, //!< CME + counter cache (the paper's baseline).
    DeWrite,        //!< The full scheme.
};

/** Complete description of one simulated configuration. */
struct SchemeOptions
{
    SchemeKind kind = SchemeKind::DeWrite;
    SecureBaselineController::Options baseline{};
    DeWriteController::Options dewrite{};
};

class System
{
  public:
    System(const SystemConfig &config, const SchemeOptions &scheme);

    System(const SystemConfig &config, const SchemeOptions &scheme,
           const AesKey &key);

    /** Runs @p max_events trace events and returns full accounting. */
    RunResult run(TraceSource &trace, std::uint64_t max_events);

    /**
     * Multi-core run: one trace per core, requests interleaved by
     * simulated time (see CoreModel::runMulti).
     */
    RunResult run(const std::vector<TraceSource *> &traces,
                  std::uint64_t max_events);

    /** @{ Direct substrate API (absolute simulated time advances). */
    CtrlWriteResult write(LineAddr addr, const Line &data);
    CtrlReadResult read(LineAddr addr);
    /** @} */

    MemController &controller() { return *controller_; }
    const MemController &controller() const { return *controller_; }
    NvmDevice &device() { return device_; }
    const NvmDevice &device() const { return device_; }
    const SystemConfig &config() const { return config_; }

    /** Device + controller energy so far, pJ. */
    Energy totalEnergy() const;

    /** Current simulated time of the direct API. */
    Time now() const { return now_; }

    /**
     * The hierarchical metric registry covering every component
     * ("device.*", "controller.*", "cache.*", "system.*"). Built once
     * at construction; reading it is always safe and allocation-free
     * on the simulated hot path.
     */
    const obs::MetricRegistry &registry() const { return registry_; }

    /**
     * Allocates the write-pipeline event tracer (if not already on)
     * and attaches it to the controller. Per-write events land in a
     * fixed ring (see obs/trace_ring.hh); export them with
     * obs::writeChromeTrace / obs::writeEpochSeries. When the tracer
     * is compiled out (DEWRITE_TRACE=0) the ring records nothing but
     * the call remains valid.
     */
    obs::WriteTracer &enableTracing(
        const obs::TraceConfig &config = obs::TraceConfig());

    /** The attached tracer, or nullptr when tracing is off. */
    const obs::WriteTracer *tracer() const { return tracer_.get(); }

    /**
     * Dumps every component's statistics in a gem5-style flat text
     * format ("name value # description"), for diffing runs and for
     * tooling that already parses stats.txt files. Canonical registry
     * paths come first; the legacy flat StatSet view follows under a
     * "controller." prefix so historical key names stay greppable.
     */
    void dumpStats(std::FILE *out) const;

  private:
    /** Runs the DEWRITE_AUDIT=1 end-of-run metadata audit, if any. */
    void auditRunEnd() const;

    SystemConfig config_;
    NvmDevice device_;
    std::unique_ptr<MemController> controller_;
    CoreModel core_;
    obs::MetricRegistry registry_;
    std::unique_ptr<obs::WriteTracer> tracer_;
    Time now_ = 0;
};

/** Well-known deterministic key for simulations and tests. */
AesKey defaultAesKey();

} // namespace dewrite

#endif // DEWRITE_SIM_SYSTEM_HH
