/**
 * @file
 * SHA-1 implementation (FIPS 180-1), single-shot.
 */

#include "crypto/sha1.hh"

#include <bit>
#include <cstring>

namespace dewrite {

namespace {

void
processBlock(std::uint32_t state[5], const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
               (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = state[0], b = state[1], c = state[2];
    std::uint32_t d = state[3], e = state[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        const std::uint32_t temp = std::rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = std::rotl(b, 30);
        b = a;
        a = temp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
}

} // namespace

Sha1Digest
sha1(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t state[5] = { 0x67452301u, 0xefcdab89u, 0x98badcfeu,
                               0x10325476u, 0xc3d2e1f0u };

    std::size_t offset = 0;
    for (; offset + 64 <= size; offset += 64)
        processBlock(state, data + offset);

    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    std::uint8_t tail[128] = {};
    const std::size_t rest = size - offset;
    std::memcpy(tail, data + offset, rest);
    tail[rest] = 0x80;
    const std::size_t padded = rest + 1 <= 56 ? 64 : 128;
    const std::uint64_t bit_length =
        static_cast<std::uint64_t>(size) * 8;
    for (int i = 0; i < 8; ++i) {
        tail[padded - 1 - i] =
            static_cast<std::uint8_t>(bit_length >> (8 * i));
    }
    processBlock(state, tail);
    if (padded == 128)
        processBlock(state, tail + 64);

    Sha1Digest digest;
    for (int i = 0; i < 5; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return digest;
}

} // namespace dewrite
