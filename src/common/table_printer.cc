/**
 * @file
 * TablePrinter implementation.
 */

#include "common/table_printer.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace dewrite {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("table row has %zu cells, expected %zu",
              cells.size(), headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::FILE *out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::fprintf(out, "%s%-*s", c ? "  " : "",
                         static_cast<int>(widths[c]), cells[c].c_str());
        }
        std::fprintf(out, "\n");
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    std::string rule(total, '-');
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
TablePrinter::num(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TablePrinter::percent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
TablePrinter::times(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, ratio);
    return buf;
}

} // namespace dewrite
