/**
 * @file
 * Collision-adversarial workload: CRC-32 collisions by construction.
 *
 * The synthetic app catalog never produces a genuine CRC-32 collision
 * (the per-app streams are too short for a 2^-32 event), so the unsafe
 * weak-only detection mode looks harmless in every ordinary experiment.
 * This generator manufactures the failure: CRC-32 is linear over GF(2),
 * so for any line A one can forge a different line B with
 * crc32(B) == crc32(A) by XORing in a difference D whose raw (init 0,
 * no final XOR) CRC register is zero. Such a D is built directly —
 * 252 arbitrary bytes followed by the little-endian register value they
 * leave, which the reflected CRC update then cancels to zero.
 *
 * The stream writes a set of immutable anchor lines, then interleaves
 * unique writes with forged-collision writes aimed at random anchors.
 * A detection mode that confirms matches (by read or by strong
 * fingerprint) stores the forged content correctly; weak-only merges it
 * into the anchor's slot and the read-back is silently wrong. The
 * generator mirrors the expected image so harnesses can prove either
 * outcome (DESIGN.md §5j).
 */

#ifndef DEWRITE_TRACE_COLLISION_TRACE_HH
#define DEWRITE_TRACE_COLLISION_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/line.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace dewrite {

/**
 * Forges a line different from @p base with the same CRC-32, using
 * @p rng for the arbitrary body of the difference. The forged line
 * differs from @p base in at least one byte, always.
 */
Line forgeCrc32Collision(const Line &base, Rng &rng);

/** Tunables of the adversarial stream. */
struct CollisionTraceConfig
{
    /** Immutable victim lines written before the attack begins. */
    std::uint64_t anchorLines = 64;

    /** Total addressable working set (anchors live at its base). */
    std::uint64_t workingSetLines = 1024;

    /** Fraction of post-anchor writes that are forged collisions. */
    double collisionFraction = 0.25;
};

class CollisionWorkload : public TraceSource
{
  public:
    CollisionWorkload(const CollisionTraceConfig &config,
                      std::uint64_t seed);

    /** Unbounded: anchors first, then the adversarial mix. */
    bool next(MemEvent &event) override;

    /**
     * The content a correct system must return for @p addr, or nullptr
     * if the stream has not written it. Harnesses compare controller
     * read-backs against this to detect silent weak-only corruption.
     */
    const Line *expected(LineAddr addr) const;

    /** Addresses the stream has written so far, in first-write order. */
    const std::vector<LineAddr> &writtenAddrs() const
    {
        return writtenAddrs_;
    }

    /** Forged-collision writes emitted so far. */
    std::uint64_t collisionsForged() const { return collisionsForged_; }

  private:
    CollisionTraceConfig config_;
    Rng rng_;
    std::vector<Line> image_;
    std::vector<std::uint8_t> valid_;
    std::vector<LineAddr> writtenAddrs_;
    std::uint64_t emitted_ = 0;
    std::uint64_t nextFreshAddr_ = 0;
    std::uint64_t uniqueStamp_ = 0;
    std::uint64_t collisionsForged_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_TRACE_COLLISION_TRACE_HH
