/**
 * @file
 * Offline workload content analysis (Figure 2's measurement).
 *
 * Replays a trace against a reference memory image and classifies each
 * write-back as duplicate (its content already lives somewhere in
 * memory at write time) and/or zero, independent of any deduplication
 * machinery — ground truth the dedup engine's results are compared
 * against.
 */

#ifndef DEWRITE_TRACE_WORKLOAD_STATS_HH
#define DEWRITE_TRACE_WORKLOAD_STATS_HH

#include <cstdint>

#include "trace/trace.hh"

namespace dewrite {

/** Content statistics of one trace prefix. */
struct WorkloadStats
{
    std::uint64_t writes = 0;
    std::uint64_t duplicateWrites = 0; //!< Content already in memory.
    std::uint64_t zeroWrites = 0;      //!< All-zero content.
    std::uint64_t reads = 0;
    std::uint64_t sameStateAsPrev = 0; //!< Dup-state temporal locality.

    double dupFraction() const;
    double zeroFraction() const;
    /** P(write's dup-state == previous write's) — Figure 4's basis. */
    double statePersistence() const;
};

/** Replays up to @p max_events events of @p trace. */
WorkloadStats measureWorkload(TraceSource &trace, std::uint64_t max_events);

} // namespace dewrite

#endif // DEWRITE_TRACE_WORKLOAD_STATS_HH
