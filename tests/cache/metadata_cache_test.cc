/**
 * @file
 * MetadataCache tests: partitioning, fills, writebacks, prefetch.
 */

#include "cache/metadata_cache.hh"

#include <gtest/gtest.h>

#include "nvm/nvm_device.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(MetadataCacheTest, MissFillsThenHits)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    const MetadataAccessResult miss =
        cache.access(MetadataTable::Mapping, 0, false, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GT(miss.nvmReads, 0u);
    EXPECT_GT(miss.latency, config.timing.metadataCacheAccess);

    const MetadataAccessResult hit =
        cache.access(MetadataTable::Mapping, 0, false, 0);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.nvmReads, 0u);
    EXPECT_EQ(hit.latency, config.timing.metadataCacheAccess);
}

TEST(MetadataCacheTest, PrefetchCoversNeighbors)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    cache.access(MetadataTable::Mapping, 0, false, 0);
    // All entries of the same prefetch block hit without new fills.
    for (std::uint64_t i = 1; i < config.memory.prefetchEntries; ++i) {
        EXPECT_TRUE(
            cache.access(MetadataTable::Mapping, i, false, 0).hit)
            << "entry " << i;
    }
    // The next block misses.
    EXPECT_FALSE(cache
                     .access(MetadataTable::Mapping,
                             config.memory.prefetchEntries, false, 0)
                     .hit);
}

TEST(MetadataCacheTest, DenyFillLeavesCacheCold)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    const MetadataAccessResult skipped = cache.access(
        MetadataTable::HashStore, 5, false, 0, /*allow_fill=*/false);
    EXPECT_FALSE(skipped.hit);
    EXPECT_EQ(skipped.nvmReads, 0u);
    EXPECT_EQ(skipped.latency, config.timing.metadataCacheAccess);
    // Still cold: a later allowed access must fill.
    EXPECT_FALSE(
        cache.access(MetadataTable::HashStore, 5, false, 0).hit);
    EXPECT_EQ(device.numReads(), 1u);
}

TEST(MetadataCacheTest, PartitionsAreIndependent)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    cache.access(MetadataTable::Mapping, 0, false, 0);
    // Same index in a different table is a distinct block.
    EXPECT_FALSE(
        cache.access(MetadataTable::InvertedHash, 0, false, 0).hit);
    EXPECT_TRUE(
        cache.access(MetadataTable::Mapping, 0, false, 0).hit);
}

TEST(MetadataCacheTest, DirtyEvictionWritesBack)
{
    SystemConfig config = smallConfig();
    // Shrink the mapping partition to one block so a second distinct
    // block evicts the first.
    config.memory.mappingCacheBytes = 512;
    config.memory.prefetchEntries = 64; // 64 x 33 bits -> 2 lines? 1.03 -> 2.
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    cache.access(MetadataTable::Mapping, 0, /*is_write=*/true, 0);
    const std::uint64_t before = device.numWrites();

    // Touch distinct blocks until the dirty one is evicted.
    MetadataAccessResult last;
    for (std::uint64_t block = 1; block < 64; ++block) {
        last = cache.access(MetadataTable::Mapping,
                            block * config.memory.prefetchEntries, false,
                            0);
        if (last.nvmWrites > 0)
            break;
    }
    EXPECT_GT(device.numWrites(), before);
    EXPECT_GT(cache.nvmWritebacks(), 0u);
}

TEST(MetadataCacheTest, FsmPacksManyEntriesPerBlock)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    cache.access(MetadataTable::Fsm, 0, false, 0);
    // 2048 one-bit flags share one NVM line.
    EXPECT_TRUE(cache.access(MetadataTable::Fsm, 2047, false, 0).hit);
    EXPECT_FALSE(cache.access(MetadataTable::Fsm, 2048, false, 0).hit);
}

TEST(MetadataCacheTest, FlushAllWritesDirtyBlocks)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    cache.access(MetadataTable::Mapping, 0, true, 0);
    cache.access(MetadataTable::Fsm, 0, true, 0);
    const std::uint64_t before = device.numWrites();
    cache.flushAll(0);
    EXPECT_GT(device.numWrites(), before);
    // A second flush writes nothing: everything is clean.
    const std::uint64_t after = device.numWrites();
    cache.flushAll(0);
    EXPECT_EQ(device.numWrites(), after);
}

TEST(MetadataCacheTest, InsertEntryAllocatesWithoutFill)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    const MetadataAccessResult insert =
        cache.insertEntry(MetadataTable::HashStore, 1234, 0);
    EXPECT_FALSE(insert.hit);
    EXPECT_EQ(insert.nvmReads, 0u);
    EXPECT_EQ(device.numReads(), 0u);
    EXPECT_EQ(insert.latency, config.timing.metadataCacheAccess);

    // The block is now resident (and dirty).
    EXPECT_TRUE(
        cache.access(MetadataTable::HashStore, 1234, false, 0).hit);
}

TEST(MetadataCacheTest, InsertEntryEvictionWritesBackInBackground)
{
    SystemConfig config = smallConfig();
    config.memory.hashCacheBytes = kLineSize; // One block only.
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    // The smallest cache still holds one 8-way set; enough distinct
    // dirty blocks displace the early ones.
    const std::uint64_t entries_per_block = kLineBits / 72;
    for (std::uint64_t block = 0; block < 20; ++block) {
        cache.insertEntry(MetadataTable::HashStore,
                          entries_per_block * block, 0);
    }
    EXPECT_GE(cache.nvmWritebacks(), 1u);
    EXPECT_GE(device.numBackgroundWrites(), 1u);
}

TEST(MetadataCacheTest, WriteThroughPropagatesEveryUpdate)
{
    SystemConfig config = smallConfig();
    config.memory.metadataWritePolicy =
        MetadataWritePolicy::WriteThrough;
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    cache.access(MetadataTable::Mapping, 0, /*is_write=*/true, 0);
    const std::uint64_t after_first = device.numBackgroundWrites();
    EXPECT_GE(after_first, 1u);
    // Every further write re-propagates; no dirty state accumulates.
    cache.access(MetadataTable::Mapping, 0, true, 0);
    EXPECT_GT(device.numBackgroundWrites(), after_first);
    cache.flushAll(0);
    EXPECT_EQ(cache.dirtyEvictions(MetadataTable::Mapping), 0u);
}

TEST(MetadataCacheTest, LazyPolicyCoalescesWrites)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);

    // Many writes to one resident block: no NVM write until eviction
    // or flush.
    cache.access(MetadataTable::Mapping, 0, true, 0);
    for (int i = 0; i < 50; ++i)
        cache.access(MetadataTable::Mapping, i % 8, true, 0);
    EXPECT_EQ(device.numBackgroundWrites(), 0u);
    cache.flushAll(0);
    EXPECT_GE(device.numBackgroundWrites(), 1u);
}

TEST(MetadataCacheTest, RegionSpansScaleWithMemory)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);
    // 33+33+72+1 = 139 bits per line of metadata over 2048-bit lines:
    // ~6.8% of the line count.
    const double ratio = static_cast<double>(cache.regionLines()) /
                         static_cast<double>(config.memory.numLines);
    EXPECT_NEAR(ratio, 139.0 / 2048.0, 0.01);
}

TEST(MetadataCacheTest, HitRatePerTable)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    MetadataCache cache(config, device, config.memory.numLines);
    cache.access(MetadataTable::Mapping, 0, false, 0);
    cache.access(MetadataTable::Mapping, 1, false, 0);
    cache.access(MetadataTable::Mapping, 2, false, 0);
    EXPECT_NEAR(cache.hitRate(MetadataTable::Mapping), 2.0 / 3.0, 1e-9);
    EXPECT_EQ(cache.hitRate(MetadataTable::Fsm), 0.0);
}

} // namespace
} // namespace dewrite
