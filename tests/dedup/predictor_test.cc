/**
 * @file
 * DupPredictor tests (the Section III-A history window).
 */

#include "dedup/predictor.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

TEST(PredictorTest, ColdStartPredictsNonDuplicate)
{
    DupPredictor predictor(3);
    EXPECT_FALSE(predictor.predictDuplicate());
}

TEST(PredictorTest, MajorityOfThree)
{
    DupPredictor predictor(3);
    predictor.record(true);
    predictor.record(true);
    predictor.record(false);
    EXPECT_TRUE(predictor.predictDuplicate()); // Two of three.
    predictor.record(false);
    // Window now {true, false, false}.
    EXPECT_FALSE(predictor.predictDuplicate());
}

TEST(PredictorTest, SingleBitFollowsLastState)
{
    DupPredictor predictor(1);
    predictor.record(true);
    EXPECT_TRUE(predictor.predictDuplicate());
    predictor.record(false);
    EXPECT_FALSE(predictor.predictDuplicate());
}

TEST(PredictorTest, TieBreaksTowardMostRecent)
{
    DupPredictor predictor(2);
    predictor.record(true);
    predictor.record(false); // One each: follow the most recent.
    EXPECT_FALSE(predictor.predictDuplicate());
    predictor.record(true);
    // Window {false, true}: most recent is true.
    EXPECT_TRUE(predictor.predictDuplicate());
}

TEST(PredictorTest, WindowForgetsOldHistory)
{
    DupPredictor predictor(3);
    for (int i = 0; i < 10; ++i)
        predictor.record(true);
    predictor.record(false);
    predictor.record(false);
    predictor.record(false);
    EXPECT_FALSE(predictor.predictDuplicate());
}

TEST(PredictorTest, AccuracyOnStickyStream)
{
    // The stream shape behind Figure 4: long phases with occasional
    // flips plus isolated one-write glitches. Last-state prediction
    // pays two errors per glitch; majority-of-3 smooths glitches and
    // comes out ahead — the paper's 92.1% -> 93.6% effect.
    Rng rng(61);
    DupPredictor one(1);
    DupPredictor three(3);
    bool phase = false;
    for (int i = 0; i < 50000; ++i) {
        if (!rng.chance(0.985))
            phase = !phase; // Phase flip.
        const bool state = rng.chance(0.04) ? !phase : phase;
        one.recordAndScore(state);
        three.recordAndScore(state);
    }
    EXPECT_GT(one.accuracy(), 0.85);
    EXPECT_LT(one.accuracy(), 0.97);
    EXPECT_GT(three.accuracy(), one.accuracy());
}

TEST(PredictorTest, AccuracyCountsOnlyScoredCalls)
{
    DupPredictor predictor(3);
    predictor.record(true); // Unscored.
    EXPECT_EQ(predictor.predictions(), 0u);
    predictor.recordAndScore(true);
    EXPECT_EQ(predictor.predictions(), 1u);
    EXPECT_EQ(predictor.correct(), 1u);
    EXPECT_DOUBLE_EQ(predictor.accuracy(), 1.0);
}

TEST(PredictorDeathTest, RejectsZeroHistory)
{
    EXPECT_EXIT(DupPredictor(0), testing::ExitedWithCode(1), "history");
}

TEST(PredictorDeathTest, RejectsOversizedHistory)
{
    EXPECT_EXIT(DupPredictor(65), testing::ExitedWithCode(1), "history");
}

TEST(PredictorTest, LargeWindowStillFunctions)
{
    DupPredictor predictor(64);
    for (int i = 0; i < 100; ++i)
        predictor.record(i % 3 == 0);
    EXPECT_FALSE(predictor.predictDuplicate()); // 1/3 duplicates.
}

} // namespace
} // namespace dewrite
