/**
 * @file
 * Wear leveling × write reduction — an endurance extension experiment.
 *
 * The paper's lifetime argument is about writing *less*; Start-Gap
 * wear leveling is the orthogonal standard for writing *evenly*. This
 * bench quantifies both axes on a hot-spot workload: maximum per-line
 * wear (the lifetime limiter under imperfect leveling) for the secure
 * baseline and DeWrite, each with and without Start-Gap underneath.
 */

#include <cstdio>

#include <memory>

#include "common/rng.hh"
#include "common/table_printer.hh"
#include "nvm/start_gap.hh"
#include "sim/parallel_runner.hh"

using namespace dewrite;

namespace {

constexpr std::uint64_t kLines = 64;
constexpr std::uint64_t kWrites = 60000;

/**
 * Hot-spot stream: 80% of writes hammer a few hot lines, with enough
 * duplicate content for dedup to matter.
 */
struct Outcome
{
    std::uint64_t lineWrites;
    std::uint64_t eliminated;
    std::uint64_t maxWear;
};

Outcome
run(bool dedup, bool leveling)
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    NvmDevice device(config);

    std::unique_ptr<MemController> ctrl;
    if (dedup) {
        ctrl = std::make_unique<DeWriteController>(
            config, device, defaultAesKey(),
            DeWriteController::Options{});
    } else {
        ctrl = std::make_unique<SecureBaselineController>(
            config, device, defaultAesKey(),
            SecureBaselineController::Options{});
    }

    // The leveler sits below the controller conceptually; here it
    // pre-translates the hot-spot address stream the controller sees,
    // which is equivalent for wear accounting.
    StartGapLeveler leveler(kLines, 4);

    Rng rng(181);
    std::vector<Line> pool;
    Time now = 0;
    for (std::uint64_t i = 0; i < kWrites; ++i) {
        LineAddr addr = rng.chance(0.8)
            ? rng.nextBelow(kLines / 20)            // The hot 5%.
            : kLines / 20 + rng.nextBelow(kLines - kLines / 20);
        if (leveling)
            addr = leveler.translate(addr);

        Line data;
        if (!pool.empty() && rng.chance(0.55)) {
            data = pool[rng.nextBelow(pool.size())];
        } else {
            data = Line::random(rng);
            if (pool.size() < 24)
                pool.push_back(data);
        }
        now += ctrl->write(addr, data, now).latency;

        if (leveling && leveler.recordWrite())
            leveler.performGapMove(device, now);
    }

    std::uint64_t max_wear = 0;
    for (LineAddr line = 0; line <= kLines; ++line)
        max_wear = std::max(max_wear, device.wear().lineWrites(line));
    return { device.numWrites(), ctrl->writesEliminated(), max_wear };
}

} // namespace

int
main()
{
    std::printf("Wear leveling x write reduction (endurance "
                "extension)\n\n");
    std::printf("hot-spot stream: %llu writes, 80%% to 5%% of %llu "
                "lines\n\n",
                static_cast<unsigned long long>(kWrites),
                static_cast<unsigned long long>(kLines));

    TablePrinter table({ "scheme", "writes eliminated",
                         "NVM line writes", "max line wear",
                         "max-wear vs worst" });
    std::vector<Outcome> outcomes(4);
    parallelFor(outcomes.size(), [&](std::size_t i) {
        outcomes[i] = run(i / 2 != 0, i % 2 != 0);
    });
    // Normalize against the plain secure baseline (no dedup, no
    // leveling), the worst performer.
    const double worst = static_cast<double>(outcomes[0].maxWear);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Outcome &outcome = outcomes[i];
        std::string label = i / 2 != 0 ? "DeWrite" : "secure baseline";
        label += i % 2 != 0 ? " + Start-Gap" : "";
        table.addRow(
            { label, TablePrinter::num(outcome.eliminated, 0),
              TablePrinter::num(outcome.lineWrites, 0),
              TablePrinter::num(outcome.maxWear, 0),
              TablePrinter::times(
                  worst / static_cast<double>(outcome.maxWear)) });
    }
    table.print();

    std::printf("\nThe two techniques address different limiters: "
                "DeWrite eliminates duplicate write traffic (total cell "
                "wear), while Start-Gap smears the remaining hot-line "
                "rewrites across the module (max per-line wear). "
                "Combined, both axes improve.\n");
    return 0;
}
