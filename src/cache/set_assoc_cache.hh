/**
 * @file
 * A generic set-associative write-back cache directory with LRU.
 *
 * The metadata structures themselves are held functionally by their
 * owners (hash store, mapping tables); this class models only *presence*:
 * which blocks are resident on chip, which are dirty, and what gets
 * evicted. That is exactly what the timing and traffic models need.
 */

#ifndef DEWRITE_CACHE_SET_ASSOC_CACHE_HH
#define DEWRITE_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/fast_div.hh"
#include "common/stats.hh"

namespace dewrite {

/** A victim pushed out by an insertion. */
struct CacheEviction
{
    bool valid = false;    //!< An entry was actually evicted.
    std::uint64_t key = 0; //!< Its block key.
    bool dirty = false;    //!< It had unwritten modifications.
};

class SetAssocCache
{
  public:
    /**
     * @param num_blocks Total capacity in blocks (rounded down to a
     *                   multiple of associativity; minimum one set).
     * @param associativity Ways per set.
     */
    SetAssocCache(std::size_t num_blocks, unsigned associativity = 8);

    /**
     * Looks up @p key; on a hit, refreshes LRU and optionally marks the
     * block dirty. Returns true on hit.
     */
    bool access(std::uint64_t key, bool make_dirty);

    /**
     * Inserts @p key (which must not be resident), evicting the set's
     * LRU victim if the set is full.
     */
    CacheEviction insert(std::uint64_t key, bool dirty);

    /** True iff @p key is resident (no LRU update, no stats). */
    bool contains(std::uint64_t key) const;

    /** Invalidates @p key if resident; returns its eviction record. */
    CacheEviction invalidate(std::uint64_t key);

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_.value(); }

    double hitRate() const;

    std::size_t numBlocks() const { return numBlocks_; }
    std::size_t numSets() const { return numSets_; }

    /** Clears contents but keeps statistics. */
    void flush();

    /** Keys of all dirty resident blocks (for shutdown writeback). */
    std::vector<std::uint64_t> dirtyKeys() const;

    /** Clears every dirty bit (after a bulk writeback). */
    void cleanAll();

  private:
    std::size_t setIndex(std::uint64_t key) const;

    std::size_t numBlocks_;
    unsigned associativity_;
    std::size_t numSets_;
    FastDiv setDiv_; //!< Reciprocal for the hot mixKey % numSets_.

    /**
     * Way state as struct-of-arrays, each numSets_ x associativity_
     * row-major. keys_ holds the tags (an 8-way set's tags fit one
     * cache line); use_[w] packs the whole way state into one word:
     * 0 means invalid, otherwise (useClock << 1) | dirty. The LRU
     * comparison works on the packed value because the clock is
     * strictly increasing, so a probe touches exactly two arrays.
     */
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> use_;
    std::uint64_t useClock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter dirtyEvictions_;
};

} // namespace dewrite

#endif // DEWRITE_CACHE_SET_ASSOC_CACHE_HH
