/**
 * @file
 * Two-tier detection tests (DESIGN.md §5j): fingerprint caching and
 * invalidation through the record lifecycle, confirm-read elimination,
 * decision parity with the paper's confirm-read mode, the adaptive
 * per-epoch controller, and fingerprint rewarming through recovery.
 */

#include "dedup/dedup_engine.hh"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "dedup/metadata_auditor.hh"
#include "dedup/recovery.hh"
#include "nvm/nvm_device.hh"
#include "trace/collision_trace.hh"

namespace dewrite {
namespace {

const SystemConfig &
config()
{
    static SystemConfig instance = [] {
        SystemConfig c;
        c.memory.numLines = 1 << 16;
        return c;
    }();
    return instance;
}

AesKey
key()
{
    AesKey k{};
    k[5] = 0x77;
    return k;
}

/** An engine stack under one detection policy, with a write helper. */
class PolicyEngine
{
  public:
    explicit PolicyEngine(DedupEngine::Options options)
        : device_(config()), cme_(key()),
          metadata_(config(), device_, config().memory.numLines),
          engine_(config(), device_, metadata_, cme_, options)
    {
    }

    explicit PolicyEngine(DetectPolicy policy)
        : PolicyEngine(DedupEngine::Options{ policy, nullptr, 4,
                                             HashFunction::Crc32 })
    {
    }

    /** Full write; returns the detection outcome for assertions. */
    DetectOutcome
    write(LineAddr addr, const Line &data)
    {
        const DetectOutcome det = engine_.detect(data, now_, true);
        const WriteCommit commit = det.duplicate
            ? engine_.commitDuplicate(addr, det, det.done)
            : engine_.commitUnique(addr, data, det.hash, det.done,
                                   det.done + config().timing.aesLine);
        now_ = commit.done;
        return det;
    }

    Line
    read(LineAddr addr)
    {
        const ReadOutcome out = engine_.read(addr, now_);
        now_ = out.done;
        return out.data;
    }

    DedupEngine &engine() { return engine_; }

  private:
    NvmDevice device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    DedupEngine engine_;
    Time now_ = 0;
};

TEST(DetectPolicyTest, NamesRoundTrip)
{
    EXPECT_STREQ(detectPolicyName(DetectPolicy::ConfirmRead),
                 "confirm-read");
    EXPECT_STREQ(detectPolicyName(DetectPolicy::WeakOnly), "weak-only");
    EXPECT_STREQ(detectPolicyName(DetectPolicy::WeakStrong),
                 "weak-strong");
    EXPECT_STREQ(detectPolicyName(DetectPolicy::Adaptive), "adaptive");
}

TEST(WeakStrongTest, FirstConfirmationCachesTheFingerprint)
{
    PolicyEngine pe(DetectPolicy::WeakStrong);
    Rng rng(501);
    const Line data = Line::random(rng);

    // Unique insert: no candidate, nothing cached yet.
    const DetectOutcome first = pe.write(1, data);
    EXPECT_FALSE(first.duplicate);
    EXPECT_EQ(pe.engine().strongFpCaches(), 0u);

    // First weak match: the fingerprint is not cached, so this pays
    // the confirmation read — and installs the fingerprint.
    const DetectOutcome second = pe.write(2, data);
    EXPECT_TRUE(second.duplicate);
    EXPECT_EQ(second.confirmReads, 1u);
    EXPECT_EQ(pe.engine().strongFpCaches(), 1u);
    EXPECT_NE(pe.engine().hashStore().strongFpOf(second.hash, 1), nullptr);

    // From now on the cached fingerprint answers: no more reads.
    const DetectOutcome third = pe.write(3, data);
    EXPECT_TRUE(third.duplicate);
    EXPECT_EQ(third.confirmReads, 0u);
    EXPECT_GE(pe.engine().confirmReadsAvoided(), 1u);
    EXPECT_GE(pe.engine().strongFpHits(), 1u);
}

TEST(WeakStrongTest, ForgedCollisionCachesTheStoredFingerprint)
{
    PolicyEngine pe(DetectPolicy::WeakStrong);
    Rng rng(502);
    const Line base = Line::random(rng);
    const Line forged = forgeCrc32Collision(base, rng);

    pe.write(1, base);
    // The forged line weak-matches slot 1 but the confirmation read
    // refutes it; the mismatch still warms the victim's fingerprint
    // (computed from the stored content, not the incoming line).
    const DetectOutcome det = pe.write(2, forged);
    EXPECT_FALSE(det.duplicate);
    EXPECT_EQ(pe.engine().collisionMismatches(), 1u);
    EXPECT_EQ(pe.engine().strongFpCaches(), 1u);
    const StrongFp *cached =
        pe.engine().hashStore().strongFpOf(det.hash, 1);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(*cached, strongFingerprint(base));

    // A later probe of the same chain resolves both candidates by
    // fingerprint: the forged content dedups against slot 2, the
    // victim's cached fingerprint rejects without a read.
    const DetectOutcome again = pe.write(3, forged);
    EXPECT_TRUE(again.duplicate);
    EXPECT_EQ(pe.read(3), forged);
    EXPECT_EQ(pe.read(1), base);
    EXPECT_EQ(pe.engine().unsafeCorruptions(), 0u);
}

TEST(WeakStrongTest, RewriteInvalidatesTheCachedFingerprint)
{
    PolicyEngine pe(DetectPolicy::WeakStrong);
    Rng rng(503);
    const Line old_data = Line::random(rng);
    const Line new_data = Line::random(rng);

    pe.write(1, old_data);
    pe.write(2, old_data); // Caches the fingerprint for slot 1.
    ASSERT_NE(pe.engine().hashStore().strongFpOf(
                  pe.engine().fingerprinter().fingerprint(old_data), 1),
              nullptr);

    // Rewriting both referents drops the record entirely; the content's
    // next appearance starts from an invalid fingerprint again (slot
    // contents are immutable while a record lives, so a cache can only
    // die with its record — never go stale).
    pe.write(1, new_data);
    pe.write(2, new_data);
    const std::uint64_t old_hash =
        pe.engine().fingerprinter().fingerprint(old_data);
    EXPECT_EQ(pe.engine().hashStore().strongFpOf(old_hash, 1), nullptr);

    const DetectOutcome det = pe.write(3, old_data);
    EXPECT_FALSE(det.duplicate);
    EXPECT_EQ(pe.read(1), new_data);
    EXPECT_EQ(pe.read(3), old_data);
}

TEST(WeakStrongTest, DecisionsMatchConfirmReadOnMixedStream)
{
    // The two confirming modes must produce byte-identical functional
    // results on any collision-free stream; timing may differ, the
    // dedup decisions and stored data may not.
    PolicyEngine confirm(DetectPolicy::ConfirmRead);
    PolicyEngine strong(DetectPolicy::WeakStrong);
    Rng rng(504);
    std::vector<Line> pool;
    for (int i = 0; i < 600; ++i) {
        const LineAddr addr = rng.nextBelow(96);
        Line data;
        if (!pool.empty() && rng.chance(0.55)) {
            data = pool[rng.nextBelow(pool.size())];
        } else {
            data = Line::random(rng);
            pool.push_back(data);
        }
        const DetectOutcome a = confirm.write(addr, data);
        const DetectOutcome b = strong.write(addr, data);
        ASSERT_EQ(a.duplicate, b.duplicate) << "write " << i;
        ASSERT_EQ(a.dupSlot, b.dupSlot) << "write " << i;
    }
    EXPECT_EQ(confirm.engine().duplicateCommits(),
              strong.engine().duplicateCommits());
    EXPECT_EQ(confirm.engine().uniqueCommits(),
              strong.engine().uniqueCommits());
    for (LineAddr addr = 0; addr < 96; ++addr)
        ASSERT_EQ(confirm.read(addr), strong.read(addr)) << addr;
    // And the point of the tier: the strong engine confirmed far less.
    EXPECT_LT(strong.engine().confirmReads(),
              confirm.engine().confirmReads());
    EXPECT_GT(strong.engine().confirmReadsAvoided(), 0u);
}

TEST(AdaptiveTest, DuplicateHeavyEpochsEnterStrongMode)
{
    PolicyEngine pe(DedupEngine::Options{ DetectPolicy::Adaptive, nullptr,
                                          4, HashFunction::Crc32,
                                          /*counterBits=*/28,
                                          /*detectEpochWrites=*/64 });
    EXPECT_EQ(pe.engine().operationalDetectMode(),
              DetectPolicy::ConfirmRead);

    Rng rng(505);
    const Line popular = Line::random(rng);
    pe.write(0, popular);
    for (LineAddr addr = 1; addr < 130; ++addr)
        pe.write(addr, popular);

    // Nearly every commit was a duplicate, so the first epoch roll
    // switches the operational mode to the strong tier...
    EXPECT_EQ(pe.engine().operationalDetectMode(),
              DetectPolicy::WeakStrong);
    EXPECT_GE(pe.engine().detectModeSwitches(), 1u);
    EXPECT_GT(pe.engine().confirmReadsAvoided(), 0u);

    // ...and a duplicate-free phase drops it back (hysteresis: the
    // ratio fell below the exit threshold).
    for (LineAddr addr = 200; addr < 330; ++addr)
        pe.write(addr, Line::random(rng));
    EXPECT_EQ(pe.engine().operationalDetectMode(),
              DetectPolicy::ConfirmRead);
    EXPECT_GE(pe.engine().detectModeSwitches(), 2u);

    // Adaptive only ever alternates between the two safe modes, so
    // nothing can have been silently merged.
    EXPECT_EQ(pe.engine().unsafeCorruptions(), 0u);
}

TEST(AdaptiveTest, ModeStaysPutInsideTheHysteresisBand)
{
    PolicyEngine pe(DedupEngine::Options{ DetectPolicy::Adaptive, nullptr,
                                          4, HashFunction::Crc32,
                                          /*counterBits=*/28,
                                          /*detectEpochWrites=*/64 });
    Rng rng(506);
    const Line popular = Line::random(rng);
    pe.write(0, popular);
    for (LineAddr addr = 1; addr < 130; ++addr)
        pe.write(addr, popular);
    ASSERT_EQ(pe.engine().operationalDetectMode(),
              DetectPolicy::WeakStrong);
    const std::uint64_t switches = pe.engine().detectModeSwitches();

    // A ~25% duplicate ratio sits between exit (20%) and entry (30%):
    // the mode must not thrash.
    LineAddr next = 1000;
    for (int epoch = 0; epoch < 4; ++epoch) {
        for (int i = 0; i < 64; ++i) {
            if (i % 4 == 0)
                pe.write(next++, popular);
            else
                pe.write(next++, Line::random(rng));
        }
        ASSERT_EQ(pe.engine().operationalDetectMode(),
                  DetectPolicy::WeakStrong);
    }
    EXPECT_EQ(pe.engine().detectModeSwitches(), switches);
}

TEST(WeakStrongTest, RecoveryRewarmsTheFingerprintCaches)
{
    PolicyEngine pe(DetectPolicy::WeakStrong);
    Rng rng(507);
    std::vector<Line> contents;
    for (LineAddr addr = 0; addr < 24; ++addr) {
        const Line data = Line::random(rng);
        contents.push_back(data);
        pe.write(addr, data);
    }

    RecoveryManager recovery(pe.engine());
    recovery.simulateCrashDamage();
    const RecoveryReport report = recovery.rebuild();
    EXPECT_EQ(report.recordsRebuilt, 24u);
    EXPECT_EQ(report.strongFpsRebuilt, 24u);
    EXPECT_FALSE(MetadataAuditor(pe.engine()).check().has_value());

    // The rebuilt caches are live: the very first duplicate probe after
    // recovery resolves by fingerprint, with no confirmation read.
    const DetectOutcome det = pe.write(100, contents[5]);
    EXPECT_TRUE(det.duplicate);
    EXPECT_EQ(det.confirmReads, 0u);
    EXPECT_GT(pe.engine().confirmReadsAvoided(), 0u);
    for (LineAddr addr = 0; addr < 24; ++addr)
        ASSERT_EQ(pe.read(addr), contents[addr]);
}

TEST(WeakStrongTest, ConfirmReadRecoveryLeavesCachesCold)
{
    PolicyEngine pe(DetectPolicy::ConfirmRead);
    Rng rng(508);
    for (LineAddr addr = 0; addr < 8; ++addr)
        pe.write(addr, Line::random(rng));
    RecoveryManager recovery(pe.engine());
    recovery.simulateCrashDamage();
    const RecoveryReport report = recovery.rebuild();
    EXPECT_EQ(report.recordsRebuilt, 8u);
    EXPECT_EQ(report.strongFpsRebuilt, 0u);
}

} // namespace
} // namespace dewrite
