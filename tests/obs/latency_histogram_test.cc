/**
 * @file
 * Property tests for the log2-bucketed latency histogram, checked
 * against a sorted-vector oracle: reported percentiles must land in
 * the same bucket as the true order statistic and never undershoot
 * it, merge must be exact/associative/commutative, and the overflow
 * row must saturate instead of widening past the uint64 range.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "obs/latency_histogram.hh"

namespace dewrite::obs {
namespace {

/** Exact order statistic percentile over the raw samples. */
std::uint64_t
oraclePercentile(std::vector<std::uint64_t> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::uint64_t count = sorted.size();
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    rank = std::clamp<std::uint64_t>(rank, 1, count);
    return sorted[rank - 1];
}

std::vector<std::uint64_t>
sampleMix(std::uint64_t seed, std::size_t n)
{
    // Latency-shaped mix: a tight common-case band, a heavy tail, and
    // occasional full-range outliers to cross many rows.
    Rng rng(seed);
    std::vector<std::uint64_t> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double pick = rng.nextDouble();
        if (pick < 0.80)
            samples.push_back(50'000 + rng.nextBelow(20'000));
        else if (pick < 0.97)
            samples.push_back(200'000 + rng.nextBelow(4'000'000));
        else
            samples.push_back(rng.next64() >>
                              (rng.nextBelow(40) + 1));
    }
    return samples;
}

TEST(LatencyHistogram, EmptyReportsZeroes)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(LatencyHistogram, BucketIndexIsMonotoneAndBoundsRoundTrip)
{
    // Probe every row boundary and its neighbours: index is
    // non-decreasing in value, and each bucket's bounds map back to
    // the bucket itself.
    std::size_t last_index = 0;
    std::uint64_t probe = 0;
    for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t base = std::uint64_t{ 1 } << bit;
        for (const std::uint64_t v :
             { base - 1, base, base + 1, base + (base >> 1) }) {
            if (v < probe)
                continue; // wrapped or out of order probes
            probe = v;
            const std::size_t index = LatencyHistogram::bucketIndex(v);
            EXPECT_GE(index, last_index) << "value " << v;
            last_index = std::max(last_index, index);
            EXPECT_GE(v, LatencyHistogram::bucketLowerBound(index));
            EXPECT_LE(v, LatencyHistogram::bucketUpperBound(index));
        }
    }
    // Indices past bucketIndex(UINT64_MAX) are unreachable — no value
    // has a most-significant bit beyond 63 — so bounds are only
    // meaningful up to the last reachable bucket.
    const std::size_t last = LatencyHistogram::bucketIndex(
        std::numeric_limits<std::uint64_t>::max());
    for (std::size_t index = 0; index <= last; ++index) {
        const std::uint64_t lo =
            LatencyHistogram::bucketLowerBound(index);
        const std::uint64_t hi =
            LatencyHistogram::bucketUpperBound(index);
        EXPECT_LE(lo, hi) << "bucket " << index;
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), index);
        if (hi != std::numeric_limits<std::uint64_t>::max()) {
            EXPECT_EQ(LatencyHistogram::bucketIndex(hi), index);
        }
    }
}

TEST(LatencyHistogram, PercentilesMatchOracleBucket)
{
    const std::vector<std::uint64_t> samples = sampleMix(0xFEED, 20000);
    LatencyHistogram h;
    for (const std::uint64_t v : samples)
        h.record(v);

    std::vector<std::uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    EXPECT_EQ(h.count(), samples.size());
    EXPECT_EQ(h.min(), sorted.front());
    EXPECT_EQ(h.max(), sorted.back());

    for (const double q : { 0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999,
                            1.0 }) {
        const std::uint64_t truth = oraclePercentile(sorted, q);
        const std::uint64_t reported = h.percentile(q);
        // Same bucket as the true order statistic, and never an
        // undershoot (reported value is the bucket's upper bound,
        // clamped to the observed max).
        EXPECT_EQ(LatencyHistogram::bucketIndex(reported),
                  LatencyHistogram::bucketIndex(truth))
            << "q=" << q;
        EXPECT_GE(reported, truth) << "q=" << q;
        EXPECT_LE(reported, h.max()) << "q=" << q;
    }
    EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(LatencyHistogram, MeanSumAreExact)
{
    const std::vector<std::uint64_t> samples = sampleMix(0xBEEF, 5000);
    LatencyHistogram h;
    std::uint64_t sum = 0;
    for (const std::uint64_t v : samples) {
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.sum(), sum);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) /
                                   static_cast<double>(samples.size()));
}

TEST(LatencyHistogram, MergeEqualsRecordingEverything)
{
    const std::vector<std::uint64_t> a = sampleMix(1, 4000);
    const std::vector<std::uint64_t> b = sampleMix(2, 3000);

    LatencyHistogram ha, hb, hall;
    for (const std::uint64_t v : a) {
        ha.record(v);
        hall.record(v);
    }
    for (const std::uint64_t v : b) {
        hb.record(v);
        hall.record(v);
    }
    LatencyHistogram merged = ha;
    merged.merge(hb);
    EXPECT_EQ(merged, hall);
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative)
{
    LatencyHistogram parts[3];
    for (int k = 0; k < 3; ++k)
        for (const std::uint64_t v :
             sampleMix(static_cast<std::uint64_t>(100 + k), 2000))
            parts[k].record(v);

    // (a + b) + c
    LatencyHistogram left = parts[0];
    left.merge(parts[1]);
    left.merge(parts[2]);
    // a + (b + c)
    LatencyHistogram bc = parts[1];
    bc.merge(parts[2]);
    LatencyHistogram right = parts[0];
    right.merge(bc);
    EXPECT_EQ(left, right);

    // c + b + a
    LatencyHistogram reversed = parts[2];
    reversed.merge(parts[1]);
    reversed.merge(parts[0]);
    EXPECT_EQ(left, reversed);

    // Merging an empty histogram is an identity in both directions.
    LatencyHistogram empty;
    LatencyHistogram with_empty = left;
    with_empty.merge(empty);
    EXPECT_EQ(with_empty, left);
    LatencyHistogram from_empty;
    from_empty.merge(left);
    EXPECT_EQ(from_empty, left);
}

TEST(LatencyHistogram, OverflowRegionSaturates)
{
    const std::uint64_t huge =
        std::numeric_limits<std::uint64_t>::max();
    LatencyHistogram h;
    h.record(huge);
    h.record(huge - 1);
    h.record(huge / 2 + 1);

    // All three land in the top reachable buckets whose upper bound
    // saturates at UINT64_MAX rather than widening past the range.
    const std::size_t top = LatencyHistogram::bucketIndex(huge);
    EXPECT_LT(top, LatencyHistogram::kBuckets);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(top), huge);
    EXPECT_EQ(h.max(), huge);
    EXPECT_EQ(h.percentile(1.0), huge);
    // Sum wraps modulo 2^64 by design; count stays exact.
    EXPECT_EQ(h.count(), 3u);
}

TEST(LatencyHistogram, ResetRestoresEmptyState)
{
    LatencyHistogram h;
    for (const std::uint64_t v : sampleMix(7, 1000))
        h.record(v);
    ASSERT_GT(h.count(), 0u);
    h.reset();
    EXPECT_EQ(h, LatencyHistogram());
    EXPECT_EQ(h.percentile(0.99), 0u);
}

} // namespace
} // namespace dewrite::obs
