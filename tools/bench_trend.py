#!/usr/bin/env python3
"""Tracks BENCH_*.json runs over time and gates perf regressions.

Every invocation appends one JSONL record per report to the history
file (default BENCH_history.jsonl): the report's provenance block
(git sha, dirty flag, host_cpus, DEWRITE_* knobs), its events/sec
figures, and its parity fingerprints — the cross-commit perf
trajectory that BENCH_*.json files alone never provided.

With --check, the newest reports are compared against the committed
baseline (default tools/bench_baseline.json):

  * any parity-fingerprint change fails, unconditionally — the
    simulation is deterministic, so fingerprints are host-portable
    and a drift is a correctness change, not noise;
  * an events/sec drop beyond --tolerance (default 15%) fails, but
    only when the baseline was recorded on a host with the same CPU
    count — raw throughput is not comparable across host shapes, and
    a cross-host gate would flap;
  * an events_per_cell mismatch fails — different workloads are not
    comparable at all.

--update-baseline rewrites the baseline from the given reports (run
it on the reference CI host after an intentional perf change).

--validate-telemetry FILE parses a DEWRITE_TELEMETRY JSONL stream and
verifies every snapshot line parses, the stream ends with a final
frame, and (with --tenants N) the final frame carries a per-tenant
write-latency p99 for every tenant.

Exit codes: 0 ok, 1 regression/parity/validation failure, 2 usage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


class TrendError(Exception):
    """A gate or validation failed; str() is the diagnostic."""


def fail(message: str) -> None:
    raise TrendError(message)


def load_json(path: str) -> object:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: unreadable or invalid JSON: {error}")


def extract_metrics(path: str, report: object) -> dict:
    """One report -> the comparable slice the history and gate use."""
    if not isinstance(report, dict):
        fail(f"{path}: top level must be a JSON object")
    for key in ("bench", "schema_version", "events_per_cell",
                "provenance"):
        if key not in report:
            fail(f"{path}: missing {key!r} (schema v2 required; "
                 "re-run the bench)")
    provenance = report["provenance"]
    if not isinstance(provenance, dict) \
            or "host_cpus" not in provenance:
        fail(f"{path}: provenance block missing 'host_cpus'")

    throughputs: dict[str, float] = {}
    fingerprints: dict[str, int] = {}
    bench = report["bench"]
    if bench == "throughput":
        for entry in report.get("schemes", []):
            scheme = entry["scheme"]
            throughputs[scheme] = float(entry["events_per_sec"])
            fingerprints[scheme] = int(entry["result_fingerprint"])
        if "events_per_sec" in report:
            throughputs["overall"] = float(report["events_per_sec"])
    elif bench == "service":
        for entry in report.get("configs", []):
            key = f"shards{entry['shards']}"
            throughputs[key] = float(entry["events_per_sec"])
            for shard in entry.get("shards_detail", []):
                fingerprints[f"{key}/shard{shard['shard']}"] = \
                    int(shard["service_fingerprint"])
    elif bench == "detection":
        for entry in report.get("policies", []):
            policy = entry["policy"]
            throughputs[policy] = float(entry["events_per_sec"])
            fingerprints[policy] = int(entry["detection_fingerprint"])
    elif "events_per_sec" in report:
        throughputs["overall"] = float(report["events_per_sec"])

    return {
        "bench": bench,
        "events_per_cell": report["events_per_cell"],
        "host_cpus": provenance["host_cpus"],
        "provenance": provenance,
        "throughputs": throughputs,
        "fingerprints": fingerprints,
    }


def append_history(history_path: str, metrics: dict) -> None:
    record = dict(metrics)
    record["recorded_unix"] = int(time.time())
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def check_against_baseline(path: str, metrics: dict, baseline: dict,
                           tolerance: float) -> list[str]:
    """-> human-readable notes; raises TrendError on a gate failure."""
    benches = baseline.get("benches")
    if not isinstance(benches, dict):
        fail(f"baseline has no 'benches' object")
    base = benches.get(metrics["bench"])
    if base is None:
        fail(f"{path}: bench {metrics['bench']!r} has no baseline "
             "entry; record one with --update-baseline")

    if base["events_per_cell"] != metrics["events_per_cell"]:
        fail(f"{path}: events_per_cell {metrics['events_per_cell']} "
             f"differs from baseline {base['events_per_cell']}; runs "
             "are not comparable (use the same DEWRITE_EVENTS/--quick "
             "shape as the baseline)")

    # Fingerprints: deterministic, therefore host-portable, therefore
    # hard-gated. Every baseline key must still exist and match.
    for key, fingerprint in sorted(base.get("fingerprints",
                                            {}).items()):
        current = metrics["fingerprints"].get(key)
        if current is None:
            fail(f"{path}: fingerprint {key!r} present in baseline "
                 "but missing from this run")
        if int(current) != int(fingerprint):
            fail(f"{path}: parity fingerprint changed for {key!r}: "
                 f"baseline {fingerprint} vs current {current} — "
                 "simulated results drifted")

    # Throughput: gated only on a like-for-like host shape.
    notes = []
    if base["host_cpus"] != metrics["host_cpus"]:
        notes.append(
            f"{path}: baseline host_cpus={base['host_cpus']} vs "
            f"current {metrics['host_cpus']}; events/sec gate skipped "
            "(raw throughput is not host-portable)")
        return notes
    for key, base_eps in sorted(base.get("throughputs", {}).items()):
        current = metrics["throughputs"].get(key)
        if current is None:
            fail(f"{path}: throughput series {key!r} present in "
                 "baseline but missing from this run")
        floor = float(base_eps) * (1.0 - tolerance)
        if float(current) < floor:
            fail(f"{path}: events/sec regression in {key!r}: "
                 f"{current:.0f} < {floor:.0f} "
                 f"(baseline {float(base_eps):.0f}, tolerance "
                 f"{tolerance:.0%})")
        notes.append(f"{path}: {key} {float(current):.0f} ev/s vs "
                     f"baseline {float(base_eps):.0f} (ok)")
    return notes


def build_baseline(all_metrics: list[dict]) -> dict:
    benches = {}
    for metrics in all_metrics:
        benches[metrics["bench"]] = {
            "events_per_cell": metrics["events_per_cell"],
            "host_cpus": metrics["host_cpus"],
            "git_sha": metrics["provenance"].get("git_sha", "unknown"),
            "throughputs": metrics["throughputs"],
            "fingerprints": metrics["fingerprints"],
        }
    return {"benches": benches}


def validate_telemetry(path: str, tenants: int | None) -> None:
    """A DEWRITE_TELEMETRY JSONL stream: every line parses, the stream
    ends with a final frame, and the final frame has a per-tenant
    write-latency p99 for every expected tenant."""
    frames = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                if not line.strip():
                    continue
                try:
                    frame = json.loads(line)
                except json.JSONDecodeError as error:
                    fail(f"{path}:{lineno}: invalid JSONL: {error}")
                if frame.get("type") != "telemetry":
                    fail(f"{path}:{lineno}: unexpected record type "
                         f"{frame.get('type')!r}")
                frames.append(frame)
    except OSError as error:
        fail(f"{path}: {error}")
    if not frames:
        fail(f"{path}: no telemetry snapshots")
    final = frames[-1]
    if final.get("final") is not True:
        fail(f"{path}: last snapshot is not a final frame")

    per_tenant = final.get("per_tenant")
    if not isinstance(per_tenant, list) or not per_tenant:
        fail(f"{path}: final frame has no 'per_tenant' array")
    expected = tenants if tenants is not None else len(per_tenant)
    seen = set()
    for entry in per_tenant:
        tenant = entry.get("tenant")
        hist = entry.get("write_latency_ps")
        if not isinstance(hist, dict) or "p99" not in hist:
            fail(f"{path}: tenant {tenant} lacks a write-latency p99")
        seen.add(tenant)
    if seen != set(range(expected)):
        fail(f"{path}: per-tenant p99s cover {sorted(seen)}, expected "
             f"tenants 0..{expected - 1}")


def self_test() -> int:
    """Seeded checks: the gate must pass a faithful re-run, fail a 20%
    regression and any fingerprint drift, and skip the throughput gate
    across host shapes."""
    import tempfile

    def throughput_report(eps: float = 10000.0, fingerprint: int = 7,
                          host_cpus: int = 4) -> dict:
        return {"bench": "throughput", "schema_version": 2,
                "events_per_cell": 6000, "threads": 1,
                "provenance": {"git_sha": "abc", "git_dirty": False,
                               "host_cpus": host_cpus,
                               "knobs": {"DEWRITE_EVENTS": None}},
                "schemes": [{"scheme": "secure-baseline",
                             "events_per_sec": eps,
                             "result_fingerprint": fingerprint}],
                "events_per_sec": eps}

    good = extract_metrics("a.json", throughput_report())
    baseline = build_baseline([good])

    # A faithful re-run and a small (in-tolerance) dip both pass.
    check_against_baseline("a.json", good, baseline, 0.15)
    check_against_baseline(
        "a.json", extract_metrics("a.json",
                                  throughput_report(eps=9000.0)),
        baseline, 0.15)

    # A 20% regression fails the gate.
    try:
        check_against_baseline(
            "a.json", extract_metrics("a.json",
                                      throughput_report(eps=8000.0)),
            baseline, 0.15)
    except TrendError as error:
        assert "events/sec regression" in str(error), str(error)
    else:
        raise AssertionError("accepted a 20% events/sec regression")

    # A fingerprint drift fails even when the host shape differs.
    try:
        check_against_baseline(
            "a.json",
            extract_metrics("a.json",
                            throughput_report(fingerprint=8,
                                              host_cpus=64)),
            baseline, 0.15)
    except TrendError as error:
        assert "parity fingerprint changed" in str(error), str(error)
    else:
        raise AssertionError("accepted a fingerprint drift")

    # A different host shape skips the throughput gate (same 20%
    # regression passes with a note).
    notes = check_against_baseline(
        "a.json",
        extract_metrics("a.json", throughput_report(eps=8000.0,
                                                    host_cpus=64)),
        baseline, 0.15)
    assert any("gate skipped" in note for note in notes), notes

    # A different workload shape is not comparable.
    wrong_shape = extract_metrics("a.json", throughput_report())
    wrong_shape["events_per_cell"] = 120000
    try:
        check_against_baseline("a.json", wrong_shape, baseline, 0.15)
    except TrendError as error:
        assert "events_per_cell" in str(error), str(error)
    else:
        raise AssertionError("compared incomparable workload shapes")

    # Service reports gate per-config throughput and per-shard
    # fingerprints.
    service = {"bench": "service", "schema_version": 2,
               "events_per_cell": 6000, "threads": 1,
               "provenance": {"git_sha": "abc", "git_dirty": False,
                              "host_cpus": 4, "knobs": {}},
               "configs": [{"shards": 2, "threads": 2, "events": 6000,
                            "events_per_sec": 20000.0,
                            "shards_detail": [
                                {"shard": 0, "service_fingerprint": 1},
                                {"shard": 1,
                                 "service_fingerprint": 2}]}]}
    service_metrics = extract_metrics("s.json", service)
    assert service_metrics["throughputs"] == {"shards2": 20000.0}
    assert service_metrics["fingerprints"] == {"shards2/shard0": 1,
                                               "shards2/shard1": 2}
    service_baseline = build_baseline([service_metrics])
    check_against_baseline("s.json", service_metrics,
                           service_baseline, 0.15)

    # Detection reports gate per-policy throughput and the decision
    # parity fingerprints.
    detection = {"bench": "detection", "schema_version": 2,
                 "events_per_cell": 6000, "threads": 1,
                 "provenance": {"git_sha": "abc", "git_dirty": False,
                                "host_cpus": 4, "knobs": {}},
                 "policies": [{"policy": "confirm-read",
                               "events_per_sec": 30000.0,
                               "detection_fingerprint": 7},
                              {"policy": "weak-strong",
                               "events_per_sec": 40000.0,
                               "detection_fingerprint": 7}]}
    detection_metrics = extract_metrics("d.json", detection)
    assert detection_metrics["throughputs"] == {"confirm-read": 30000.0,
                                                "weak-strong": 40000.0}
    assert detection_metrics["fingerprints"] == {"confirm-read": 7,
                                                 "weak-strong": 7}
    check_against_baseline("d.json", detection_metrics,
                           build_baseline([detection_metrics]), 0.15)

    # History append-and-parse round trip.
    with tempfile.TemporaryDirectory() as tmp:
        history = os.path.join(tmp, "BENCH_history.jsonl")
        append_history(history, good)
        append_history(history, service_metrics)
        with open(history, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == 2 and records[0]["bench"] == "throughput"
        assert all("recorded_unix" in r and "provenance" in r
                   for r in records)

        # Telemetry stream validation: a good stream passes; a stream
        # missing a tenant, or without a final frame, is rejected.
        stream = os.path.join(tmp, "telemetry.jsonl")

        def tenant(t: int) -> dict:
            return {"tenant": t, "write_latency_ps": {"p99": 5}}

        def write_stream(lines: list[dict]) -> None:
            with open(stream, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(json.dumps(line) + "\n")

        write_stream([
            {"type": "telemetry", "round": 4, "final": False,
             "per_tenant": [tenant(0), tenant(1)]},
            {"type": "telemetry", "round": 8, "final": True,
             "per_tenant": [tenant(0), tenant(1)]},
        ])
        validate_telemetry(stream, tenants=2)
        try:
            validate_telemetry(stream, tenants=3)
        except TrendError as error:
            assert "expected tenants 0..2" in str(error), str(error)
        else:
            raise AssertionError("accepted a missing tenant")
        write_stream([{"type": "telemetry", "round": 4,
                       "final": False,
                       "per_tenant": [tenant(0)]}])
        try:
            validate_telemetry(stream, tenants=1)
        except TrendError as error:
            assert "not a final frame" in str(error), str(error)
        else:
            raise AssertionError("accepted a stream with no final "
                                 "frame")

    # End-to-end through main(): a host-shape mismatch must skip the
    # events/sec gate (exit 0, skip note printed) yet still hard-fail
    # a fingerprint drift (exit 1) — the CI contract for runs recorded
    # on a differently-sized host than the baseline machine.
    import contextlib
    import io

    with tempfile.TemporaryDirectory() as tmp:
        baseline_path = os.path.join(tmp, "bench_baseline.json")
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle)
        report_path = os.path.join(tmp, "BENCH_throughput.json")
        history = os.path.join(tmp, "BENCH_history.jsonl")

        def run_check(report: dict) -> tuple[int, str]:
            with open(report_path, "w", encoding="utf-8") as handle:
                json.dump(report, handle)
            out = io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(out):
                code = main(["--check", "--baseline", baseline_path,
                             "--history", history, report_path])
            return code, out.getvalue()

        # A 20% regression on a different host shape passes, with the
        # skip note on stdout; the identical regression on the
        # baseline's own shape fails.
        code, output = run_check(throughput_report(eps=8000.0,
                                                   host_cpus=64))
        assert code == 0 and "gate skipped" in output, (code, output)
        code, output = run_check(throughput_report(eps=8000.0))
        assert code == 1 and "events/sec regression" in output, \
            (code, output)

        # A fingerprint drift is host-portable: it fails even when the
        # host shape differs and the throughput gate is skipped.
        code, output = run_check(throughput_report(fingerprint=9,
                                                   host_cpus=64))
        assert code == 1 and "parity fingerprint changed" in output, \
            (code, output)

    print("bench_trend self-test: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json reports to record/check")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="JSONL trajectory file to append to "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "bench_baseline.json"),
                        help="committed baseline (default: "
                             "%(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="gate the reports against the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the reports")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed events/sec drop before --check "
                             "fails (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-regression self-test")
    parser.add_argument("--validate-telemetry", metavar="FILE",
                        help="validate a DEWRITE_TELEMETRY JSONL "
                             "stream instead of bench reports")
    parser.add_argument("--tenants", type=int, default=None,
                        help="expected tenant count for "
                             "--validate-telemetry")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    try:
        if args.validate_telemetry:
            validate_telemetry(args.validate_telemetry, args.tenants)
            print(f"{args.validate_telemetry}: telemetry stream OK")
            return 0

        if not args.files:
            parser.error("no report files given")
        all_metrics = [extract_metrics(path, load_json(path))
                       for path in args.files]
        for metrics in all_metrics:
            append_history(args.history, metrics)
        print(f"recorded {len(all_metrics)} report(s) in "
              f"{args.history}")

        if args.update_baseline:
            with open(args.baseline, "w", encoding="utf-8") as handle:
                json.dump(build_baseline(all_metrics), handle,
                          indent=2, sort_keys=True)
                handle.write("\n")
            print(f"baseline updated: {args.baseline}")
            return 0

        if args.check:
            baseline = load_json(args.baseline)
            for path, metrics in zip(args.files, all_metrics):
                for note in check_against_baseline(
                        path, metrics, baseline, args.tolerance):
                    print(note)
            print("bench trend: within baseline tolerances")
    except TrendError as error:
        print(error, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
