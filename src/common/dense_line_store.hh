/**
 * @file
 * DenseLineStore — direct-indexed storage for 256 B line content.
 *
 * NvmDevice, TraceGen's reference image, and the cipher-image reducers
 * all map LineAddr → Line. The addresses are bounded by SystemConfig
 * (data region plus a small metadata region above it), so a hash map
 * pays mixing, probing, and per-node allocation for a key that is
 * already an array index. DenseLineStore keeps lines in lazily
 * allocated pages sized to exactly one transparent huge page (8192
 * lines = 2 MiB, allocated through hugeAlloc so random probes stay
 * TLB-resident), with the per-page written-bitmaps packed side by side
 * in one small vector: a read is two indexed loads plus one bit test,
 * a first write allocates the page once, and iteration over written
 * lines walks addresses in ascending order — sorted for free, per the
 * ordered-iteration contract of DESIGN.md §5.
 *
 * Addresses beyond kMaxDirectLines (stray or synthetic) spill into a
 * FlatMap so correctness never depends on the bound; in practice the
 * overflow stays empty.
 */

#ifndef DEWRITE_COMMON_DENSE_LINE_STORE_HH
#define DEWRITE_COMMON_DENSE_LINE_STORE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hh"
#include "common/huge_pages.hh"
#include "common/line.hh"
#include "common/types.hh"

namespace dewrite {

class DenseLineStore
{
  public:
    /** Lines per page: one 2 MiB huge page of content. */
    static constexpr std::size_t kPageLines =
        kHugePageBytes / sizeof(Line);

    /** Largest directly indexed address; higher keys spill to a map. */
    static constexpr std::uint64_t kMaxDirectLines = 1ULL << 26;

    DenseLineStore() = default;

    /** Pre-sizes the page directory for addresses below @p numLines. */
    explicit DenseLineStore(std::uint64_t numLines) { reserve(numLines); }

    void
    reserve(std::uint64_t numLines)
    {
        const std::uint64_t bounded = std::min(numLines, kMaxDirectLines);
        const std::size_t dirs = static_cast<std::size_t>(
            (bounded + kPageLines - 1) / kPageLines);
        if (dirs > pages_.size()) {
            // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
            // the hot edge is a member-name over-approximation
            pages_.resize(dirs);
            // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing
            written_.resize(dirs);
        }
    }

    /** The line at @p addr, or null if it was never written. */
    const Line *
    find(LineAddr addr) const
    {
        if (addr >= kMaxDirectLines)
            return overflow_.find(addr);
        const std::size_t page = addr / kPageLines;
        if (page >= pages_.size() || !pages_[page])
            return nullptr;
        const std::size_t slot = addr % kPageLines;
        if (!isWritten(page, slot))
            return nullptr;
        return &(*pages_[page])[slot];
    }

    bool isWritten(LineAddr addr) const { return find(addr) != nullptr; }

    /**
     * Warms the cache lines a subsequent find()/refForWrite() of
     * @p addr will touch: the page's written-bitmap word and the first
     * bytes of the line content. Pure hint, never allocates a page.
     */
    // dewrite-lint: hot
    void
    prefetch(LineAddr addr) const
    {
        if (addr >= kMaxDirectLines) {
            overflow_.prefetch(addr);
            return;
        }
        const std::size_t page = addr / kPageLines;
        if (page >= pages_.size() || !pages_[page])
            return;
        const std::size_t slot = addr % kPageLines;
        hostPrefetchRead(&written_[page][slot / 64]);
        hostPrefetchRead(&(*pages_[page])[slot]);
    }

    /**
     * Writable slot for @p addr, allocating its page on demand and
     * marking the address written. The caller overwrites the full line.
     */
    Line &
    refForWrite(LineAddr addr)
    {
        if (addr >= kMaxDirectLines) {
            auto [line, inserted] = overflow_.tryEmplace(addr);
            writtenCount_ += inserted ? 1 : 0;
            return *line;
        }
        const std::size_t page = addr / kPageLines;
        if (page >= pages_.size()) {
            // dewrite-analyze: allow(hot-path-purity) amortized page-directory growth
            pages_.resize(page + 1);
            // dewrite-analyze: allow(hot-path-purity) amortized page-directory growth
            written_.resize(page + 1);
        }
        if (!pages_[page])
            pages_[page] = makeHuge<PageLines>();
        const std::size_t slot = addr % kPageLines;
        writtenCount_ += markWritten(page, slot) ? 1 : 0;
        return (*pages_[page])[slot];
    }

    /** Number of distinct addresses ever written. */
    std::size_t writtenCount() const { return writtenCount_; }

    /** Visits written lines in ascending address order. */
    template <typename Visitor>
    void
    forEachWritten(Visitor &&visit) const
    {
        for (std::size_t page = 0; page < pages_.size(); ++page) {
            if (!pages_[page])
                continue;
            const PageLines &lines = *pages_[page];
            const std::uint64_t base = page * kPageLines;
            for (std::size_t word = 0; word < kBitmapWords; ++word) {
                std::uint64_t bits = written_[page][word];
                while (bits) {
                    const int bit = std::countr_zero(bits);
                    bits &= bits - 1;
                    const std::size_t slot = word * 64 + bit;
                    visit(base + slot, lines[slot]);
                }
            }
        }
        overflow_.forEachSorted([&](LineAddr addr, const Line &line) {
            visit(addr, line);
        });
    }

    /** Addresses stored beyond the direct range (expected zero). */
    std::size_t overflowSize() const { return overflow_.size(); }

  private:
    static constexpr std::size_t kBitmapWords = kPageLines / 64;

    /** Pure line content, exactly one huge page per allocation. */
    using PageLines = std::array<Line, kPageLines>;

    /** One written-bitmap per page, packed contiguously. */
    using PageBitmap = std::array<std::uint64_t, kBitmapWords>;

    bool
    isWritten(std::size_t page, std::size_t slot) const
    {
        return (written_[page][slot / 64] >> (slot % 64)) & 1;
    }

    /** @return true iff @p slot was previously unwritten. */
    bool
    markWritten(std::size_t page, std::size_t slot)
    {
        std::uint64_t &word = written_[page][slot / 64];
        const std::uint64_t bit = 1ULL << (slot % 64);
        const bool fresh = !(word & bit);
        word |= bit;
        return fresh;
    }

    std::vector<HugeUniquePtr<PageLines>> pages_;
    std::vector<PageBitmap> written_;
    FlatMap<LineAddr, Line> overflow_;
    std::size_t writtenCount_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_DENSE_LINE_STORE_HH
