/**
 * @file
 * Aggregate throughput of the sharded multi-tenant dedup service.
 *
 * Runs the DedupService over a bursty 16-tenant mix at shard counts
 * {1, 2, 4, 8} — each with as many worker threads as shards — and
 * reports aggregate host events/sec per configuration, plus the
 * speedup of every configuration over the 1-shard/1-thread baseline.
 * When DEWRITE_SHARDS is set, only that one configuration runs.
 *
 * Every configuration is also parity-checked in-process: each shard's
 * result fingerprint must equal an independent single-shard System run
 * over the same trace partition (DedupService::runShardReference). A
 * parity mismatch is a correctness bug and exits non-zero; a low
 * speedup is not — the container CI host exposes a single CPU, where
 * no parallel speedup is attainable, so the JSON records host_cpus
 * alongside the measured ratios and the ≥3x goal at 8 shards is
 * asserted only by eye on multi-core hosts (see ROADMAP.md).
 *
 * Results go to BENCH_service.json; `check_bench_schema.py --parity
 * BENCH_service.json` re-verifies the recorded fingerprints offline.
 * Events come from DEWRITE_EVENTS (default 120000); --quick runs 20x
 * shorter with the same shape.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/table_printer.hh"
#include "cpu/core_model.hh"
#include "obs/bench_report.hh"
#include "service/dedup_service.hh"
#include "sim/parallel_runner.hh"

using namespace dewrite;

namespace {

struct ShardRow
{
    std::uint64_t events = 0;
    std::uint32_t serviceFingerprint = 0;
    std::uint32_t referenceFingerprint = 0;
};

struct ConfigRow
{
    std::size_t shards = 0;
    unsigned threads = 0;
    std::uint64_t totalEvents = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    std::vector<ShardRow> perShard;

    bool
    parityOk() const
    {
        for (const ShardRow &row : perShard)
            if (row.serviceFingerprint != row.referenceFingerprint)
                return false;
        return true;
    }
};

ServiceOptions
benchOptions(std::size_t shards, std::uint64_t events)
{
    ServiceOptions options;
    options.shards = shards;
    options.threads = static_cast<unsigned>(shards);
    options.tenants = 16;
    options.linesPerTenant = 4096;
    options.burstMax = 32;
    options.roundEvents = 4096;
    options.totalEvents = events;
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const std::uint64_t events =
        quick ? experimentEvents() / 20 : experimentEvents();

    // DEWRITE_SHARDS pins a single configuration; otherwise sweep the
    // scaling shape the tentpole tracks.
    std::vector<std::size_t> counts = { 1, 2, 4, 8 };
    // Presence check only; the value itself still parses fail-fast
    // through serviceShards().
    // dewrite-lint: allow(env-fail-fast)
    if (envRaw("DEWRITE_SHARDS"))
        counts = { serviceShards() };

    std::printf("Sharded dedup service: %llu events, 16 tenants, "
                "shards x threads sweep\n\n",
                static_cast<unsigned long long>(events));

    std::vector<ConfigRow> rows;
    bool parity_ok = true;
    for (const std::size_t shards : counts) {
        const ServiceOptions options = benchOptions(shards, events);
        DedupService service(options);
        const ServiceResult result = service.run();

        ConfigRow row;
        row.shards = shards;
        row.threads = result.threads;
        row.totalEvents = result.totalEvents;
        row.wallSeconds = result.hostSeconds;
        row.eventsPerSec = result.eventsPerSecond;
        for (std::size_t k = 0; k < result.shards.size(); ++k) {
            ShardRow shard;
            shard.events = result.shards[k].events;
            shard.serviceFingerprint = result.shards[k].fingerprint;
            shard.referenceFingerprint = resultFingerprint(
                DedupService::runShardReference(options, k,
                                                shard.events));
            row.perShard.push_back(shard);
        }
        parity_ok = parity_ok && row.parityOk();
        rows.push_back(std::move(row));

        if (service.telemetrySink().enabled()) {
            std::printf("telemetry: %llu snapshot(s) -> %s (+ %s)\n",
                        static_cast<unsigned long long>(
                            service.telemetrySnapshots()),
                        service.telemetrySink().jsonlPath().c_str(),
                        service.telemetrySink().promPath().c_str());
        }
    }

    const double base_eps = rows.front().eventsPerSec;
    TablePrinter table({ "shards", "threads", "events", "wall (s)",
                         "events/sec", "speedup", "parity" });
    for (const ConfigRow &row : rows) {
        table.addRow({ std::to_string(row.shards),
                       std::to_string(row.threads),
                       std::to_string(row.totalEvents),
                       TablePrinter::num(row.wallSeconds),
                       TablePrinter::num(row.eventsPerSec, 0),
                       base_eps > 0
                           ? TablePrinter::num(row.eventsPerSec /
                                                   base_eps,
                                               2)
                           : "-",
                       row.parityOk() ? "ok" : "MISMATCH" });
    }
    table.print();
    std::printf("\nhost CPUs: %u (speedup needs as many cores as "
                "threads)\n",
                std::thread::hardware_concurrency());

    obs::BenchReport report("service", events, runnerThreads());
    if (!report.opened())
        return 1;
    obs::JsonWriter &w = report.json();
    w.field("write_batch", static_cast<std::uint64_t>(writeBatchSize()));
    w.field("host_cpus", static_cast<std::uint64_t>(
                             std::thread::hardware_concurrency()));
    w.field("tenants", std::uint64_t{ 16 });
    w.key("configs");
    w.beginArray();
    for (const ConfigRow &row : rows) {
        w.beginObject();
        w.field("shards", static_cast<std::uint64_t>(row.shards));
        w.field("threads", static_cast<std::uint64_t>(row.threads));
        w.field("events", row.totalEvents);
        w.field("wall_seconds", row.wallSeconds);
        w.field("events_per_sec", row.eventsPerSec);
        w.field("speedup_vs_1shard",
                base_eps > 0 ? row.eventsPerSec / base_eps : 0.0);
        w.key("shards_detail");
        w.beginArray();
        for (std::size_t k = 0; k < row.perShard.size(); ++k) {
            const ShardRow &shard = row.perShard[k];
            w.beginObject();
            w.field("shard", static_cast<std::uint64_t>(k));
            w.field("events", shard.events);
            w.field("service_fingerprint",
                    static_cast<std::uint64_t>(
                        shard.serviceFingerprint));
            w.field("reference_fingerprint",
                    static_cast<std::uint64_t>(
                        shard.referenceFingerprint));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.field("parity_ok", parity_ok);
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    std::printf("wrote %s\n", report.path().c_str());

    if (!parity_ok) {
        std::fprintf(stderr,
                     "PARITY MISMATCH: a shard diverged from its "
                     "independent reference run\n");
        return 1;
    }
    return 0;
}
