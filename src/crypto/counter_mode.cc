/**
 * @file
 * Counter-mode engine implementation.
 */

#include "crypto/counter_mode.hh"

#include <cstring>

namespace dewrite {

CounterModeEngine::CounterModeEngine(const AesKey &key) : cipher_(key)
{
}

Line
CounterModeEngine::makePad(LineAddr addr, std::uint64_t counter) const
{
    Line pad;
    for (std::size_t block = 0; block < kAesBlocksPerLine; ++block) {
        // Seed block: | addr (8B) | counter (7B) | block index (1B) |.
        // The counter is at most 28 bits in the stored metadata, so
        // seven bytes never truncate it.
        AesBlock seed{};
        std::memcpy(seed.data(), &addr, 8);
        std::memcpy(seed.data() + 8, &counter, 7);
        seed[15] = static_cast<std::uint8_t>(block);
        const AesBlock otp = cipher_.encryptBlock(seed);
        std::memcpy(pad.data() + block * kAesBlockSize, otp.data(),
                    kAesBlockSize);
    }
    return pad;
}

Line
CounterModeEngine::encryptLine(const Line &plaintext, LineAddr addr,
                               std::uint64_t counter) const
{
    return plaintext ^ makePad(addr, counter);
}

Line
CounterModeEngine::decryptLine(const Line &ciphertext, LineAddr addr,
                               std::uint64_t counter) const
{
    // XOR is an involution: decryption is encryption with the same pad.
    return ciphertext ^ makePad(addr, counter);
}

} // namespace dewrite
