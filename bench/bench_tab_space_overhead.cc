/**
 * @file
 * Section IV-E1 — metadata storage overhead.
 *
 * Computes the NVM space each metadata structure occupies relative to
 * the data capacity, compares with DEUCE's metadata, and reports the
 * counter-colocation outcome: how many counters actually needed the
 * overflow store (the corner the paper's "one of the two entries is
 * null" observation misses; see DESIGN.md Section 5).
 *
 * Paper's shape: ~6.25% total for DeWrite (and no separate counter
 * table); DEUCE pays 6.25% flags + 28 bits/line of counters.
 */

#include <cstdio>

#include "cache/metadata_cache.hh"
#include "common/table_printer.hh"
#include "controller/dewrite_controller.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Metadata storage overhead (Section IV-E1)\n\n");

    // Static layout: bits per 256 B (2048-bit) line of data.
    TablePrinter layout({ "structure", "per line", "fraction" });
    const double line_bits = kLineBits;
    const struct
    {
        const char *name;
        double bits;
    } rows[] = {
        { "address mapping (4B + flag)", 33 },
        { "inverted hash (4B + flag)", 33 },
        { "hash store (9B entry)", 72 },
        { "FSM bitmap", 1 },
    };
    double total_bits = 0;
    for (const auto &row : rows) {
        total_bits += row.bits;
        layout.addRow({ row.name,
                        TablePrinter::num(row.bits, 0) + " bits",
                        TablePrinter::percent(row.bits / line_bits) });
    }
    layout.addRow({ "DeWrite total (counters colocated)",
                    TablePrinter::num(total_bits, 0) + " bits",
                    TablePrinter::percent(total_bits / line_bits) });
    layout.addRow({ "DEUCE (word flags + 28-bit counters)",
                    TablePrinter::num(128 + 28, 0) + " bits",
                    TablePrinter::percent((128 + 28) / line_bits) });
    layout.addRow({ "baseline CME (28-bit counters)", "28 bits",
                    TablePrinter::percent(28 / line_bits) });
    layout.print();

    // Measured region footprint from the live system.
    SystemConfig config;
    DetailedExperiment detailed = runAppDetailed(
        appByName("gcc"), config, dewriteScheme(DedupMode::Predicted),
        experimentEvents() / 2, 1);
    const auto &ctrl = dynamic_cast<const DeWriteController &>(
        detailed.system->controller());
    const double region_ratio =
        static_cast<double>(ctrl.metadataCache().regionLines()) /
        static_cast<double>(config.memory.numLines);

    std::printf("\nmeasured metadata region: %s of data lines\n",
                TablePrinter::percent(region_ratio).c_str());
    std::printf("counter-colocation overflow after a gcc run: %zu "
                "counters (of %llu lines) — %s\n",
                ctrl.engine().overflowCounters(),
                static_cast<unsigned long long>(config.memory.numLines),
                TablePrinter::percent(
                    static_cast<double>(ctrl.engine().overflowCounters()) /
                    static_cast<double>(config.memory.numLines), 4)
                    .c_str());
    std::printf("\npaper: ~6.25%% metadata overhead, counter table "
                "eliminated by colocation\n");
    return 0;
}
