/**
 * @file
 * Cross-module integration tests: the paper's headline effects must
 * emerge from the assembled system (directions, not exact numbers).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"
#include "trace/workload_stats.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 18;
    return config;
}

constexpr std::uint64_t kEvents = 8000;

RunResult
simulate(const char *app, const SchemeOptions &scheme)
{
    return runApp(appByName(app), smallConfig(), scheme, kEvents, 99).run;
}

TEST(IntegrationTest, DeWriteEliminatesRoughlyTheDupFraction)
{
    const RunResult result =
        simulate("lbm", dewriteScheme(DedupMode::Predicted));
    const double eliminated = static_cast<double>(result.writesEliminated) /
                              static_cast<double>(result.writes);
    EXPECT_NEAR(eliminated, appByName("lbm").dupTarget, 0.1);
}

TEST(IntegrationTest, WriteSpeedupOnDupHeavyApp)
{
    const RunResult baseline = simulate("lbm", secureBaselineScheme());
    const RunResult dewrite =
        simulate("lbm", dewriteScheme(DedupMode::Predicted));
    // Figure 14's direction: several-fold write speedup on a >90%
    // duplicate application.
    EXPECT_GT(baseline.avgWriteLatencyNs / dewrite.avgWriteLatencyNs,
              2.0);
}

TEST(IntegrationTest, ReadSpeedupFromRemovedBankContention)
{
    const RunResult baseline = simulate("lbm", secureBaselineScheme());
    const RunResult dewrite =
        simulate("lbm", dewriteScheme(DedupMode::Predicted));
    // Figure 16's direction: reads also win because eliminated writes
    // stop blocking banks.
    EXPECT_GT(baseline.avgReadLatencyNs, dewrite.avgReadLatencyNs);
}

TEST(IntegrationTest, IpcImprovesOnDupHeavyApp)
{
    const RunResult baseline = simulate("cactusADM",
                                        secureBaselineScheme());
    const RunResult dewrite =
        simulate("cactusADM", dewriteScheme(DedupMode::Predicted));
    EXPECT_GT(dewrite.ipc, baseline.ipc * 1.2);
}

TEST(IntegrationTest, EnergyDropsOnDupHeavyApp)
{
    const RunResult baseline = simulate("lbm", secureBaselineScheme());
    const RunResult dewrite =
        simulate("lbm", dewriteScheme(DedupMode::Predicted));
    EXPECT_LT(dewrite.totalEnergy, baseline.totalEnergy);
}

TEST(IntegrationTest, LowDupAppGainsAreModest)
{
    const RunResult baseline = simulate("vips", secureBaselineScheme());
    const RunResult dewrite =
        simulate("vips", dewriteScheme(DedupMode::Predicted));
    const double speedup =
        baseline.avgWriteLatencyNs / dewrite.avgWriteLatencyNs;
    // vips is the paper's low end (18.6% duplicates): some gain, but
    // nowhere near the dup-heavy apps.
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 2.5);
}

TEST(IntegrationTest, ModeLatencyOrdering)
{
    // Figure 15: direct >= DeWrite ~= parallel in write latency.
    const RunResult direct =
        simulate("gcc", dewriteScheme(DedupMode::Direct));
    const RunResult predicted =
        simulate("gcc", dewriteScheme(DedupMode::Predicted));
    const RunResult parallel =
        simulate("gcc", dewriteScheme(DedupMode::Parallel));
    EXPECT_GE(direct.avgWriteLatencyNs, predicted.avgWriteLatencyNs);
    EXPECT_GE(direct.avgWriteLatencyNs, parallel.avgWriteLatencyNs);
    // "Nearly the same" as the parallel way (the gap is the serial
    // AES the mispredicted-duplicate writes pay).
    EXPECT_LE(predicted.avgWriteLatencyNs,
              1.15 * parallel.avgWriteLatencyNs);
}

TEST(IntegrationTest, ModeEnergyOrdering)
{
    // Figure 20: parallel >= DeWrite ~= direct in energy.
    const RunResult direct =
        simulate("lbm", dewriteScheme(DedupMode::Direct));
    const RunResult predicted =
        simulate("lbm", dewriteScheme(DedupMode::Predicted));
    const RunResult parallel =
        simulate("lbm", dewriteScheme(DedupMode::Parallel));
    EXPECT_GE(parallel.totalEnergy, predicted.totalEnergy);
    EXPECT_LE(
        static_cast<double>(predicted.totalEnergy),
        1.15 * static_cast<double>(direct.totalEnergy));
}

TEST(IntegrationTest, WorstCasePenaltyIsSmall)
{
    // Figure 18: on an all-unique workload DeWrite stays within a few
    // percent of the secure baseline.
    SystemConfig config = smallConfig();

    WorstCaseWorkload trace_base(4096, 100.0, 5);
    System baseline(config, secureBaselineScheme());
    const RunResult base = baseline.run(trace_base, kEvents);

    WorstCaseWorkload trace_dw(4096, 100.0, 5);
    System dewrite(config, dewriteScheme(DedupMode::Predicted));
    const RunResult dw = dewrite.run(trace_dw, kEvents);

    EXPECT_EQ(dw.writesEliminated, 0u);
    EXPECT_GT(dw.ipc, base.ipc * 0.9);
}

TEST(IntegrationTest, ShredderCapturesOnlyZeroLines)
{
    SchemeOptions shredder = secureBaselineScheme();
    shredder.baseline.shredZeroLines = true;

    // On sjeng — the one zero-dominated app (Figure 2) — shredding is
    // competitive with full dedup.
    const RunResult shred_sjeng = simulate("sjeng", shredder);
    const RunResult dewrite_sjeng =
        simulate("sjeng", dewriteScheme(DedupMode::Predicted));
    EXPECT_GT(shred_sjeng.writesEliminated, 0u);
    EXPECT_GT(dewrite_sjeng.writesEliminated,
              shred_sjeng.writesEliminated * 8 / 10);

    // On a typical app, most duplicates are non-zero and dedup clearly
    // wins (the paper's 58% vs 16% average comparison).
    const RunResult shred_zeusmp = simulate("zeusmp", shredder);
    const RunResult dewrite_zeusmp =
        simulate("zeusmp", dewriteScheme(DedupMode::Predicted));
    EXPECT_GT(dewrite_zeusmp.writesEliminated,
              2 * shred_zeusmp.writesEliminated);

    const RunResult baseline = simulate("sjeng", secureBaselineScheme());
    EXPECT_EQ(baseline.writesEliminated, 0u);
}

TEST(IntegrationTest, MeasuredDupMatchesEngineElimination)
{
    // The dedup engine should find nearly all duplicates the offline
    // scanner counts (the small gap is PNA + saturation, Figure 12).
    const AppProfile &app = appByName("milc");
    SyntheticWorkload measure_trace(app, 42);
    const WorkloadStats truth = measureWorkload(measure_trace, kEvents);

    SyntheticWorkload sim_trace(app, 42);
    System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
    const RunResult run = system.run(sim_trace, kEvents);

    const double truth_dup = truth.dupFraction();
    const double eliminated = static_cast<double>(run.writesEliminated) /
                              static_cast<double>(run.writes);
    EXPECT_LE(eliminated, truth_dup + 0.01);
    EXPECT_GT(eliminated, truth_dup - 0.06);
}

} // namespace
} // namespace dewrite
