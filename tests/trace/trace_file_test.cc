/**
 * @file
 * Trace file round-trip and robustness tests.
 */

#include "trace/trace_file.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"

namespace dewrite {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::string(::testing::TempDir()) + "/dewrite_trace_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->line()) +
                ".dwtr";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    SyntheticWorkload source(appByName("gcc"), 9);
    std::vector<MemEvent> original;
    {
        TraceFileWriter writer(path_);
        MemEvent event;
        for (int i = 0; i < 500; ++i) {
            ASSERT_TRUE(source.next(event));
            writer.append(event);
            original.push_back(event);
        }
        EXPECT_EQ(writer.eventsWritten(), 500u);
    }

    TraceFileSource replay(path_);
    EXPECT_EQ(replay.eventCount(), 500u);
    MemEvent event;
    for (const MemEvent &expected : original) {
        ASSERT_TRUE(replay.next(event));
        EXPECT_EQ(event.isWrite, expected.isWrite);
        EXPECT_EQ(event.addr, expected.addr);
        EXPECT_EQ(event.instGap, expected.instGap);
        if (expected.isWrite) {
            EXPECT_EQ(event.data, expected.data);
        }
    }
    EXPECT_FALSE(replay.next(event)); // Exhausted.
}

TEST_F(TraceFileTest, RecordHelperBoundsEvents)
{
    SyntheticWorkload source(appByName("mcf"), 10);
    {
        TraceFileWriter writer(path_);
        EXPECT_EQ(writer.record(source, 123), 123u);
    }
    TraceFileSource replay(path_);
    EXPECT_EQ(replay.eventCount(), 123u);
}

TEST_F(TraceFileTest, RewindReplaysFromStart)
{
    {
        TraceFileWriter writer(path_);
        MemEvent event;
        event.isWrite = true;
        event.addr = 42;
        event.data = Line::filled(0xcd);
        writer.append(event);
    }
    TraceFileSource replay(path_);
    MemEvent event;
    ASSERT_TRUE(replay.next(event));
    ASSERT_FALSE(replay.next(event));
    replay.rewind();
    ASSERT_TRUE(replay.next(event));
    EXPECT_EQ(event.addr, 42u);
    EXPECT_EQ(event.data, Line::filled(0xcd));
}

TEST_F(TraceFileTest, ReadsCarryZeroPayload)
{
    {
        TraceFileWriter writer(path_);
        MemEvent event;
        event.addr = 7;
        event.instGap = 99;
        writer.append(event);
    }
    TraceFileSource replay(path_);
    MemEvent event;
    ASSERT_TRUE(replay.next(event));
    EXPECT_FALSE(event.isWrite);
    EXPECT_EQ(event.instGap, 99u);
    EXPECT_TRUE(event.data.isZero());
}

TEST_F(TraceFileTest, TruncatedPayloadStopsCleanly)
{
    {
        TraceFileWriter writer(path_);
        MemEvent event;
        event.isWrite = true;
        event.addr = 1;
        event.data = Line::filled(1);
        writer.append(event);
        writer.append(event);
    }
    // Chop the file mid-payload of the second event.
    std::FILE *file = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fclose(file);
    ASSERT_EQ(truncate(path_.c_str(), size - 100), 0);

    TraceFileSource replay(path_);
    MemEvent event;
    EXPECT_TRUE(replay.next(event));
    EXPECT_FALSE(replay.next(event)); // Stops, does not crash.
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    std::FILE *file = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite("NOPE000000000000", 1, 16, file);
    std::fclose(file);
    EXPECT_EXIT(TraceFileSource replay(path_),
                testing::ExitedWithCode(1), "bad magic");
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceFileSource replay("/nonexistent/nope.dwtr"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace dewrite
