/**
 * @file
 * Figure 17 — IPC normalized to the traditional secure NVM.
 *
 * Writes stall the cores (persist ordering), so the write latency each
 * scheme achieves translates directly into instruction throughput.
 *
 * Paper's shape: +82% mean IPC; dup-heavy applications gain the most.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 17: IPC relative to the secure baseline\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { secureBaselineScheme(),
                          dewriteScheme(DedupMode::Predicted) },
                  config);

    TablePrinter table({ "app", "baseline IPC", "DeWrite IPC",
                         "relative" });
    double rel_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult &base = cells[2 * a];
        const ExperimentResult &dewrite = cells[2 * a + 1];
        const double relative = dewrite.run.ipc / base.run.ipc;
        rel_sum += relative;
        table.addRow({ apps[a].name, TablePrinter::num(base.run.ipc, 3),
                       TablePrinter::num(dewrite.run.ipc, 3),
                       TablePrinter::times(relative) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::times(
                       rel_sum /
                       static_cast<double>(appCatalog().size())) });
    table.print();

    std::printf("\npaper: +82%% mean IPC improvement\n");
    return 0;
}
