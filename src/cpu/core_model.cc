/**
 * @file
 * CoreModel implementation.
 */

#include "cpu/core_model.hh"

#include <algorithm>

#include "controller/mem_controller.hh"
#include "trace/trace.hh"

namespace dewrite {

RunResult
CoreModel::run(TraceSource &trace, MemController &controller,
               std::uint64_t max_events)
{
    std::vector<TraceSource *> traces{ &trace };
    return runMulti(traces, controller, max_events);
}

RunResult
CoreModel::runMulti(const std::vector<TraceSource *> &traces,
                    MemController &controller, std::uint64_t max_events)
{
    struct CoreState
    {
        TraceSource *trace;
        Time now = 0;
        MemEvent pending;
        Time issueAt = 0; //!< now + pending compute phase.
        bool alive = false;
        std::vector<Time> storeQueue; //!< In-flight write completions.
    };

    // The +1 cycle per event is the memory instruction's own issue
    // slot, so IPC can reach but not exceed one per core.
    std::vector<CoreState> cores(traces.size());
    for (std::size_t c = 0; c < traces.size(); ++c) {
        cores[c].trace = traces[c];
        cores[c].alive = traces[c]->next(cores[c].pending);
        cores[c].issueAt = timing_.cycles(cores[c].pending.instGap + 1);
    }

    RunResult result;
    for (std::uint64_t issued = 0; issued < max_events; ++issued) {
        // Issue the globally earliest pending event.
        CoreState *core = nullptr;
        for (auto &candidate : cores) {
            if (candidate.alive &&
                (!core || candidate.issueAt < core->issueAt)) {
                core = &candidate;
            }
        }
        if (!core)
            break; // All traces exhausted.

        core->now = core->issueAt;
        result.instructions += core->pending.instGap + 1;
        ++result.events;

        if (core->pending.isWrite) {
            const CtrlWriteResult write = controller.write(
                core->pending.addr, core->pending.data, core->now);
            // The write drains from the persist queue; the core stalls
            // only when the queue is at capacity (ordering is kept by
            // queue FIFO order plus per-bank serialization).
            core->storeQueue.push_back(core->now + write.latency);
            const unsigned depth = std::max(1u, timing_.storeQueueDepth);
            while (core->storeQueue.size() >= depth) {
                core->now = std::max(core->now, core->storeQueue.front());
                core->storeQueue.erase(core->storeQueue.begin());
            }
            ++result.writes;
            if (write.eliminated)
                ++result.writesEliminated;
        } else {
            const CtrlReadResult read =
                controller.read(core->pending.addr, core->now);
            // Loads block the in-order core until the data returns;
            // persist ordering constrains stores only, so the queue
            // keeps draining underneath.
            core->now += read.latency;
            ++result.reads;
        }

        core->alive = core->trace->next(core->pending);
        core->issueAt =
            core->now + timing_.cycles(core->pending.instGap + 1);
    }

    Time slowest = 0;
    for (const auto &core : cores)
        slowest = std::max(slowest, core.now);
    result.cycles = slowest / timing_.cyclePeriod;
    result.ipc = result.cycles
        ? static_cast<double>(result.instructions) / result.cycles
        : 0.0;
    result.avgWriteLatencyNs =
        controller.avgWriteLatency() / kNanoSecond;
    result.avgReadLatencyNs = controller.avgReadLatency() / kNanoSecond;
    return result;
}

} // namespace dewrite
