/**
 * @file
 * ZeroLineDirectory is header-only; this translation unit anchors the
 * component in the build so future out-of-line growth has a home.
 */

#include "controller/bitlevel/shredder.hh"
