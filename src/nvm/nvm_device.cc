/**
 * @file
 * NVM device implementation.
 */

#include "nvm/nvm_device.hh"

#include <algorithm>

#include "common/check.hh"

namespace dewrite {

NvmDevice::NvmDevice(const SystemConfig &config)
    : config_(config),
      decoder_(config.timing.numBanks, config.timing.linesPerRow,
               config.timing.rowInterleave ? InterleavePolicy::Row
                                           : InterleavePolicy::Line),
      banks_(config.timing.numBanks),
      openRow_(config.timing.numBanks, ~0ULL)
{
    // Data region plus the metadata region the controllers place above
    // it; the store's page directory never reallocates mid-run.
    store_.reserve(config.memory.numLines + config.memory.numLines / 8);
    wear_.reserve(config.memory.numLines + config.memory.numLines / 8);
}

std::uint64_t
NvmDevice::rowOf(const DecodedAddr &where) const
{
    return where.row / std::max(1u, config_.timing.linesPerRow);
}

NvmTiming
NvmDevice::readTimed(LineAddr addr, Time now)
{
    const DecodedAddr where = decoder_.decode(addr);
    const bool row_hit = openRow_[where.bank] == rowOf(where);
    const BankService svc = banks_[where.bank].service(
        now, row_hit ? config_.timing.nvmRowHit : config_.timing.nvmRead);
    openRow_[where.bank] = rowOf(where);

    numReads_.increment();
    if (row_hit) {
        rowHits_.increment();
        energy_ += config_.energy.nvmRowHitPerBit * kLineBits;
    } else {
        energy_ += config_.energy.nvmReadLine();
    }
    return { svc.start, svc.complete, svc.queueDelay };
}

NvmAccess
NvmDevice::read(LineAddr addr, Time now)
{
    const NvmTiming timing = readTimed(addr, now);
    NvmAccess access;
    if (const Line *line = store_.find(addr))
        access.data = *line;
    access.start = timing.start;
    access.complete = timing.complete;
    access.queueDelay = timing.queueDelay;
    return access;
}

NvmTiming
NvmDevice::write(LineAddr addr, const Line &data, Time now,
                 std::size_t bits_written)
{
    const DecodedAddr where = decoder_.decode(addr);
    const BankService svc =
        banks_[where.bank].service(now, config_.timing.nvmWrite);
    openRow_[where.bank] = rowOf(where);

    numWrites_.increment();
    energy_ += config_.energy.nvmWritePerBit * bits_written;
    wear_.recordWrite(addr, bits_written);
    store_.refForWrite(addr) = data;
    return { svc.start, svc.complete, svc.queueDelay };
}

void
NvmDevice::writeBackground(LineAddr addr, const Line &data,
                           std::size_t bits_written)
{
    numWrites_.increment();
    numBackgroundWrites_.increment();
    energy_ += config_.energy.nvmWritePerBit * bits_written;
    wear_.recordWrite(addr, bits_written);
    store_.refForWrite(addr) = data;
}

void
NvmDevice::writeBackgroundZero(LineAddr addr, std::size_t bits_written)
{
    numWrites_.increment();
    numBackgroundWrites_.increment();
    energy_ += config_.energy.nvmWritePerBit * bits_written;
    wear_.recordWrite(addr, bits_written);
#if !defined(NDEBUG) || defined(DEWRITE_FORCE_DCHECKS)
    // Materializing the line exists only to feed the zero check; in
    // checked builds keep it, elsewhere skip the page allocation — an
    // untouched metadata line reads back as zero either way.
    const Line &slot = store_.refForWrite(addr);
    DEWRITE_DCHECK(slot.isZero(),
                   "writeBackgroundZero over non-zero line %llu",
                   static_cast<unsigned long long>(addr));
#endif
}

Line
NvmDevice::peek(LineAddr addr) const
{
    const Line *line = store_.find(addr);
    return line ? *line : Line();
}

const Line *
NvmDevice::peekPtr(LineAddr addr) const
{
    return store_.find(addr);
}

void
NvmDevice::prefetchLine(LineAddr addr) const
{
    store_.prefetch(addr);
}

void
NvmDevice::prefetchForWrite(LineAddr addr) const
{
    store_.prefetch(addr);
    wear_.prefetch(addr);
}

bool
NvmDevice::isWritten(LineAddr addr) const
{
    return store_.isWritten(addr);
}

Time
NvmDevice::totalQueueDelay() const
{
    Time total = 0;
    for (const auto &bank : banks_)
        total += bank.totalQueueDelay();
    return total;
}

unsigned
NvmDevice::numBanks() const
{
    return static_cast<unsigned>(banks_.size());
}

void
NvmDevice::registerMetrics(obs::MetricRegistry::Scope scope) const
{
    scope.counter("num_reads", numReads_, "NVM line reads serviced");
    scope.counter("num_writes", numWrites_,
                  "NVM line writes serviced (incl. background)");
    scope.counter("background_writes", numBackgroundWrites_,
                  "lazily scheduled metadata writes");
    scope.counter("row_buffer_hits", rowHits_,
                  "reads served from an open row");
    scope.gauge("total_energy_pj",
                [this] { return static_cast<double>(totalEnergy()); },
                "array energy");
    scope.gauge("queue_delay_ps",
                [this] {
                    return static_cast<double>(totalQueueDelay());
                },
                "cumulative bank waiting time");
    wear_.registerMetrics(scope.scope("wear"));
}

} // namespace dewrite
