/**
 * @file
 * Statistics primitives tests.
 */

#include "common/stats.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(CounterTest, IncrementAndReset)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.increment();
    counter.increment(5);
    EXPECT_EQ(counter.value(), 6u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(AccumulatorTest, EmptyIsAllZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);
}

TEST(AccumulatorTest, TracksMoments)
{
    Accumulator acc;
    acc.add(2.0);
    acc.add(4.0);
    acc.add(9.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, SingleNegativeSample)
{
    Accumulator acc;
    acc.add(-3.0);
    EXPECT_DOUBLE_EQ(acc.min(), -3.0);
    EXPECT_DOUBLE_EQ(acc.max(), -3.0);
}

TEST(AccumulatorTest, AllNegativeSamplesKeepSignedMinMax)
{
    Accumulator acc;
    acc.add(-5.0);
    acc.add(-1.0);
    acc.add(-9.0);
    EXPECT_DOUBLE_EQ(acc.min(), -9.0);
    EXPECT_DOUBLE_EQ(acc.max(), -1.0);
    EXPECT_DOUBLE_EQ(acc.mean(), -5.0);
}

TEST(AccumulatorTest, ResetClearsAndNextSampleReseedsMinMax)
{
    Accumulator acc;
    acc.add(-7.0);
    acc.add(100.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.sum(), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);

    // Stale extremes must not leak into the fresh window.
    acc.add(5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 5.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram hist(4, 10.0); // [0,10) [10,20) [20,30) [30,40).
    hist.add(0.0);
    hist.add(9.999);
    hist.add(10.0);
    hist.add(39.0);
    hist.add(40.0); // Overflow.
    hist.add(1000.0);

    EXPECT_EQ(hist.bucket(0), 2u);
    EXPECT_EQ(hist.bucket(1), 1u);
    EXPECT_EQ(hist.bucket(2), 0u);
    EXPECT_EQ(hist.bucket(3), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.total(), 6u);
}

TEST(HistogramTest, FractionBelow)
{
    Histogram hist(10, 1.0);
    for (int i = 0; i < 10; ++i)
        hist.add(i + 0.5);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(5.0), 0.5);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(10.0), 1.0);
}

TEST(HistogramTest, FractionBelowOfEmptyIsZero)
{
    Histogram hist(10, 1.0);
    EXPECT_EQ(hist.fractionBelow(5.0), 0.0);
    EXPECT_EQ(hist.fractionBelow(0.0), 0.0);
}

TEST(HistogramTest, FractionBelowBucketBoundaries)
{
    Histogram hist(4, 10.0);
    hist.add(5.0);  // Bucket 0.
    hist.add(15.0); // Bucket 1.

    // A threshold inside a bucket excludes that whole bucket: only
    // fully covered buckets count as "below".
    EXPECT_DOUBLE_EQ(hist.fractionBelow(9.999), 0.0);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(10.0), 0.5);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(19.0), 0.5);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(20.0), 1.0);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(1e9), 1.0);
}

TEST(HistogramTest, OverflowSamplesNeverCountAsBelow)
{
    Histogram hist(2, 10.0);
    hist.add(5.0);
    hist.add(100.0); // Overflow bucket.
    hist.add(-1.0);  // Negative samples land in overflow too.
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_DOUBLE_EQ(hist.fractionBelow(1e12), 1.0 / 3.0);
}

TEST(HistogramTest, ResetClearsBucketsOverflowAndTotal)
{
    Histogram hist(2, 1.0);
    hist.add(0.5);
    hist.add(99.0);
    hist.reset();
    EXPECT_EQ(hist.bucket(0), 0u);
    EXPECT_EQ(hist.bucket(1), 0u);
    EXPECT_EQ(hist.overflow(), 0u);
    EXPECT_EQ(hist.total(), 0u);
}

TEST(StatSetTest, SetGetHasAdd)
{
    StatSet stats;
    EXPECT_FALSE(stats.has("x"));
    EXPECT_EQ(stats.get("x"), 0.0);
    stats.set("x", 3.5);
    EXPECT_TRUE(stats.has("x"));
    EXPECT_DOUBLE_EQ(stats.get("x"), 3.5);
    stats.add("x", 1.5);
    EXPECT_DOUBLE_EQ(stats.get("x"), 5.0);
    stats.add("fresh", 2.0);
    EXPECT_DOUBLE_EQ(stats.get("fresh"), 2.0);
}

TEST(StatSetTest, MissingKeysReadZeroWithoutCreatingEntries)
{
    StatSet stats;
    stats.set("present", 1.0);
    EXPECT_EQ(stats.get("absent"), 0.0);
    EXPECT_FALSE(stats.has("absent"));
    // get() must not insert: the golden fingerprint hashes all().
    EXPECT_EQ(stats.all().size(), 1u);
    EXPECT_EQ(stats.get(""), 0.0);
    EXPECT_EQ(stats.all().size(), 1u);
}

} // namespace
} // namespace dewrite
