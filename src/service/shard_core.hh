/**
 * @file
 * The resumable per-shard core loop of the dedup service.
 *
 * A ShardCore replays CoreModel::runMulti for a single core, but in
 * push style: the service feeds it events in arbitrary-sized chunks
 * (whatever one ingest round routed to the shard) and the core carries
 * its clock, store queue, and half-formed write batch across feed()
 * boundaries. Because every flush is event-driven — a read, a full
 * store queue, a full batch, or finish() — and never chunk-driven, the
 * chunking is invisible to the simulation: feeding a sequence in any
 * chunk sizes produces results bit-identical to CoreModel consuming the
 * same sequence as one trace. That equivalence is what lets an N-shard
 * service run be checked against N independent System::run calls
 * (service_parity_test pins it).
 */

#ifndef DEWRITE_SERVICE_SHARD_CORE_HH
#define DEWRITE_SERVICE_SHARD_CORE_HH

#include <array>
#include <cstdint>
#include <deque>

#include "common/timing.hh"
#include "cpu/batch_former.hh"
#include "cpu/core_model.hh"
#include "obs/telemetry.hh"
#include "trace/trace.hh"

namespace dewrite {

class ShardCore
{
  public:
    /**
     * Binds the core to its shard's @p controller (which it drives
     * exclusively) with @p timing. @p batch_capacity is normally
     * writeBatchSize(); the caller resolves it once so every shard of
     * a service run agrees even if the environment changes mid-run.
     */
    ShardCore(const TimingConfig &timing, MemController &controller,
              std::size_t batch_capacity);

    /** Feeds @p count events in canonical shard order. */
    void feed(const MemEvent *events, std::size_t count);

    /** Feeds one event. */
    void feed(const MemEvent &event);

    /**
     * Drains the staged tail and returns the core-side accounting,
     * exactly as CoreModel::run reports it (memory-side fields are
     * zero; the service completes them like System::run does). The
     * core may keep being fed afterwards; results are cumulative.
     */
    RunResult finish();

    std::uint64_t events() const { return events_; }

    /** The shard's batch former (flush-reason accounting). */
    const BatchFormer &former() const { return former_; }

    /**
     * Attaches the shard's telemetry (owned by the service, written
     * only from this core's drain task — the zero-sharing discipline).
     * Recording is pure host-side observation of latencies the core
     * computes anyway; it never feeds back into timing or results.
     */
    void setTelemetry(obs::ShardTelemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

  private:
    void flush(BatchFormer::FlushReason reason);

    /** By value: a ShardCore outlives whatever config built it. */
    const TimingConfig timing_;
    MemController &controller_;
    BatchFormer former_;
    obs::ShardTelemetry *telemetry_ = nullptr;

    /** One in-flight write; batchSlot -1 once its completion is known. */
    struct StoreEntry
    {
        Time complete = 0;
        std::int32_t batchSlot = -1;
    };

    std::deque<StoreEntry> storeQueue_;
    std::array<CtrlWriteResult, kMaxWriteBatch> responses_;

    Time now_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writesEliminated_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_SERVICE_SHARD_CORE_HH
