/**
 * @file
 * FreeSpaceTable tests.
 */

#include "dedup/free_space.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(FreeSpaceTest, StartsAllFree)
{
    FreeSpaceTable fsm(100);
    EXPECT_EQ(fsm.freeCount(), 100u);
    EXPECT_EQ(fsm.capacity(), 100u);
    for (LineAddr slot = 0; slot < 100; ++slot)
        EXPECT_TRUE(fsm.isFree(slot));
}

TEST(FreeSpaceTest, AllocateAndRelease)
{
    FreeSpaceTable fsm(10);
    fsm.allocate(3);
    EXPECT_FALSE(fsm.isFree(3));
    EXPECT_EQ(fsm.freeCount(), 9u);
    fsm.release(3);
    EXPECT_TRUE(fsm.isFree(3));
    EXPECT_EQ(fsm.freeCount(), 10u);
}

TEST(FreeSpaceTest, PreferredSlotWins)
{
    FreeSpaceTable fsm(10);
    EXPECT_EQ(fsm.allocatePreferring(7), 7u);
    EXPECT_FALSE(fsm.isFree(7));
}

TEST(FreeSpaceTest, FallsBackWhenPreferredTaken)
{
    FreeSpaceTable fsm(10);
    fsm.allocate(7);
    const LineAddr slot = fsm.allocatePreferring(7);
    EXPECT_NE(slot, 7u);
    EXPECT_NE(slot, kInvalidAddr);
    EXPECT_FALSE(fsm.isFree(slot));
}

TEST(FreeSpaceTest, ExhaustionReturnsInvalid)
{
    FreeSpaceTable fsm(3);
    for (int i = 0; i < 3; ++i)
        EXPECT_NE(fsm.allocatePreferring(0), kInvalidAddr);
    EXPECT_EQ(fsm.allocatePreferring(0), kInvalidAddr);
    EXPECT_EQ(fsm.freeCount(), 0u);
}

TEST(FreeSpaceTest, ReleaseMakesSlotAllocatableAgain)
{
    FreeSpaceTable fsm(2);
    fsm.allocate(0);
    fsm.allocate(1);
    fsm.release(0);
    EXPECT_EQ(fsm.allocatePreferring(0), 0u);
}

TEST(FreeSpaceTest, NextFitDistributesSlots)
{
    FreeSpaceTable fsm(8);
    fsm.allocate(0);
    // Repeated non-preferred allocations walk the bitmap rather than
    // always returning the lowest free slot.
    const LineAddr a = fsm.allocatePreferring(0);
    const LineAddr b = fsm.allocatePreferring(0);
    EXPECT_NE(a, b);
}

TEST(FreeSpaceDeathTest, DoubleAllocatePanics)
{
    FreeSpaceTable fsm(4);
    fsm.allocate(2);
    EXPECT_DEATH(fsm.allocate(2), "already-used");
}

TEST(FreeSpaceDeathTest, DoubleReleasePanics)
{
    FreeSpaceTable fsm(4);
    EXPECT_DEATH(fsm.release(1), "already-free");
}

} // namespace
} // namespace dewrite
