/**
 * @file
 * Catalog of hash-function hardware characteristics (Table Ia).
 *
 * DeWrite's core argument against traditional fingerprint deduplication
 * is quantitative: a cryptographic hash costs more than an NVM read and
 * approaches an NVM write, while CRC-32 costs a fifth of a read. This
 * catalog carries those published figures so the Table I bench and the
 * dedup engine share one source of truth.
 */

#ifndef DEWRITE_COMMON_HASH_LATENCY_HH
#define DEWRITE_COMMON_HASH_LATENCY_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace dewrite {

/** Which fingerprint function a dedup configuration uses. */
enum class HashFunction
{
    Crc32,   //!< Light-weight; requires read-and-compare confirmation.
    Md5,     //!< Cryptographic; collision-free in practice.
    Sha1,    //!< Cryptographic; collision-free in practice.
};

/** Hardware characteristics of one fingerprint function. */
struct HashSpec
{
    HashFunction function;
    std::string_view name;
    Time latency;          //!< Hardware latency to hash one 256 B line.
    unsigned digestBits;   //!< Fingerprint width.
    bool cryptographic;    //!< Whether matches need no confirmation read.
};

/** Returns the spec for @p function (latencies from Table Ia). */
const HashSpec &hashSpec(HashFunction function);

/** All catalogued functions, for sweeps and the Table I bench. */
const std::vector<HashSpec> &allHashSpecs();

} // namespace dewrite

#endif // DEWRITE_COMMON_HASH_LATENCY_HH
