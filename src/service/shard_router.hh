/**
 * @file
 * Deterministic address→shard routing for the sharded dedup service.
 *
 * The service partitions the multi-tenant address space and *all* dedup
 * metadata into DEWRITE_SHARDS fully independent shards. The unit of
 * partitioning is the global line key
 *
 *     g = tenant * linesPerTenant + addr
 *
 * which folds every tenant's private namespace into one flat space;
 * shard ownership is g mod S and the line's address inside its shard is
 * g div S (a modulo-interleaved partition, so every shard sees a
 * representative slice of every tenant rather than whole tenants — the
 * same reason NVM banks line-interleave). Both operations go through
 * FastDiv, so routing is two multiplies on the ingest hot path.
 *
 * Because a shard's metadata (hash store, mapping, counters, caches) is
 * keyed only by local addresses, two shards share no mutable state at
 * all: no locks, no false sharing, and per-shard results that are
 * bit-identical to N independent single-shard systems — the parity
 * contract the service tests pin.
 */

#ifndef DEWRITE_SERVICE_SHARD_ROUTER_HH
#define DEWRITE_SERVICE_SHARD_ROUTER_HH

#include <cstdint>

#include "common/fast_div.hh"
#include "common/timing.hh"
#include "common/types.hh"

namespace dewrite {

/** Most shards a service will split into (DEWRITE_SHARDS upper bound). */
constexpr std::size_t kMaxShards = 64;

/**
 * Shard count of the service: DEWRITE_SHARDS (envUint, 1..kMaxShards,
 * default 1). Read per call — the env.hh no-latch contract keeps it
 * testable with setenv.
 */
std::size_t serviceShards();

class ShardRouter
{
  public:
    /**
     * Routes @p tenants namespaces of @p lines_per_tenant lines each
     * across @p shards shards.
     */
    ShardRouter(std::size_t shards, std::uint64_t tenants,
                std::uint64_t lines_per_tenant);

    std::size_t shards() const { return shards_; }
    std::uint64_t tenants() const { return tenants_; }
    std::uint64_t linesPerTenant() const { return linesPerTenant_; }

    /** Total lines of the folded multi-tenant space. */
    std::uint64_t globalLines() const { return globalLines_; }

    /** Lines each shard must address (ceil(globalLines / shards)). */
    std::uint64_t shardLines() const { return shardLines_; }

    /** Folds a tenant-local address into the global key. */
    // dewrite-lint: hot
    std::uint64_t
    globalKey(std::uint64_t tenant, LineAddr addr) const
    {
        return tenant * linesPerTenant_ + addr;
    }

    /** Which shard owns global key @p g. */
    // dewrite-lint: hot
    std::size_t
    shardOf(std::uint64_t g) const
    {
        return static_cast<std::size_t>(div_.mod(g));
    }

    /** @p g's line address inside its owning shard. */
    // dewrite-lint: hot
    LineAddr
    localAddr(std::uint64_t g) const
    {
        return static_cast<LineAddr>(div_.div(g));
    }

    /**
     * The SystemConfig one shard runs with: @p base resized so the
     * shard addresses exactly shardLines() lines, with the working-set
     * hint capped by @p max_events the same way runAppImpl caps it.
     * Service shards and reference single-shard runs both size through
     * here, so their metadata geometry is byte-identical — a
     * precondition of the parity contract.
     */
    SystemConfig shardConfig(const SystemConfig &base,
                             std::uint64_t max_events) const;

  private:
    std::size_t shards_;
    std::uint64_t tenants_;
    std::uint64_t linesPerTenant_;
    std::uint64_t globalLines_;
    std::uint64_t shardLines_;
    FastDiv div_; //!< Divides by the shard count.
};

} // namespace dewrite

#endif // DEWRITE_SERVICE_SHARD_ROUTER_HH
