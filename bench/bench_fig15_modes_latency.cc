/**
 * @file
 * Figure 15 — write latency of the direct way, the parallel way, and
 * DeWrite's prediction-based hybrid, normalized to the direct way.
 *
 * Paper's shape: parallel lowest, DeWrite within a hair of parallel
 * (high prediction accuracy), direct highest; DeWrite ~27% below
 * direct on average. In this reproduction DeWrite can dip *below*
 * parallel because the PNA scheme also removes in-NVM hash queries
 * from the unique-write path.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 15: write latency by scheduling scheme "
                "(normalized to the direct way)\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { dewriteScheme(DedupMode::Direct),
                          dewriteScheme(DedupMode::Parallel),
                          dewriteScheme(DedupMode::Predicted) },
                  config);

    TablePrinter table({ "app", "direct (ns)", "parallel/direct",
                         "DeWrite/direct" });
    double parallel_sum = 0.0, dewrite_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult &direct = cells[3 * a];
        const ExperimentResult &parallel = cells[3 * a + 1];
        const ExperimentResult &predicted = cells[3 * a + 2];

        const double par_rel = parallel.run.avgWriteLatencyNs /
                               direct.run.avgWriteLatencyNs;
        const double dw_rel = predicted.run.avgWriteLatencyNs /
                              direct.run.avgWriteLatencyNs;
        parallel_sum += par_rel;
        dewrite_sum += dw_rel;
        table.addRow(
            { apps[a].name,
              TablePrinter::num(direct.run.avgWriteLatencyNs, 1),
              TablePrinter::percent(par_rel),
              TablePrinter::percent(dw_rel) });
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", "-",
                   TablePrinter::percent(parallel_sum / n),
                   TablePrinter::percent(dewrite_sum / n) });
    table.print();

    std::printf("\npaper: DeWrite ~= parallel, ~27%% below the direct "
                "way on average\n");
    return 0;
}
