/**
 * @file
 * BenchReport tests: uniform header, close semantics, and failure
 * behavior when the output file cannot be created.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/bench_report.hh"

namespace dewrite::obs {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(BenchReportTest, WritesUniformHeaderAndPayload)
{
    {
        BenchReport report("unit_smoke", 1234, 8);
        ASSERT_TRUE(report.opened());
        EXPECT_EQ(report.path(), "BENCH_unit_smoke.json");
        report.json().field("payload", 7);
        EXPECT_TRUE(report.close());
    }
    const std::string text = slurp("BENCH_unit_smoke.json");
    EXPECT_NE(text.find("\"bench\": \"unit_smoke\""),
              std::string::npos);
    EXPECT_NE(text.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(text.find("\"events_per_cell\": 1234"),
              std::string::npos);
    EXPECT_NE(text.find("\"threads\": 8"), std::string::npos);
    // Schema v2: every header carries the provenance block.
    EXPECT_NE(text.find("\"provenance\""), std::string::npos);
    EXPECT_NE(text.find("\"git_sha\""), std::string::npos);
    EXPECT_NE(text.find("\"git_dirty\""), std::string::npos);
    EXPECT_NE(text.find("\"host_cpus\""), std::string::npos);
    EXPECT_NE(text.find("\"knobs\""), std::string::npos);
    EXPECT_NE(text.find("\"DEWRITE_BATCH\""), std::string::npos);
    EXPECT_NE(text.find("\"payload\": 7"), std::string::npos);
    std::remove("BENCH_unit_smoke.json");
}

TEST(BenchReportTest, DoubleCloseReportsFalseSecondTime)
{
    BenchReport report("unit_double_close", 1, 1);
    ASSERT_TRUE(report.opened());
    EXPECT_TRUE(report.close());
    EXPECT_FALSE(report.close());
    std::remove("BENCH_unit_double_close.json");
}

TEST(BenchReportTest, UnopenableFileStaysUsableButCloseFails)
{
    // A name with a path separator lands in a directory that does not
    // exist, so the fopen fails; the writer must stay valid.
    BenchReport report("no_such_dir/x", 1, 1);
    EXPECT_FALSE(report.opened());
    report.json().field("still", "usable");
    EXPECT_TRUE(report.json().ok());
    EXPECT_FALSE(report.close());
}

} // namespace
} // namespace dewrite::obs
