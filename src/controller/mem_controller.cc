/**
 * @file
 * MemController shared metric registration.
 *
 * The common request accounting registers under "controller.*"; each
 * scheme adds its own metrics (and the legacy StatSet aliases that
 * keep the historical flat names stable) in registerSchemeMetrics().
 */

#include "controller/mem_controller.hh"

namespace dewrite {

void
MemController::writeBatch(const CtrlWriteRequest *requests,
                          CtrlWriteResult *results, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        results[i] =
            write(requests[i].addr, *requests[i].data, requests[i].now);
    }
}

void
MemController::registerMetrics(obs::MetricRegistry &registry) const
{
    obs::MetricRegistry::Scope c = registry.scope("controller");
    c.counter("write_requests", writeRequests_, "write-backs received",
              "writes");
    c.counter("read_requests", readRequests_, "fetches received",
              "reads");
    c.counter("writes_eliminated", writesEliminated_,
              "duplicate writes never programmed");
    c.counter("data_bits_programmed", dataBitsProgrammed_,
              "cells programmed by data writes");
    c.accumulator("write_latency_ps", writeLatency_,
                  "write-back latency (mean)");
    c.accumulator("read_latency_ps", readLatency_,
                  "fetch latency (mean)");

    // Quantile views over the base-class histograms. Registered here
    // so every scheme exposes identical paths (scheme-comparable);
    // deliberately no legacy StatSet names — host-side observability
    // must stay out of the golden result fingerprints.
    const auto quantiles = [](obs::MetricRegistry::Scope scope,
                              const obs::LatencyHistogram &hist) {
        const obs::LatencyHistogram *h = &hist;
        scope.gauge("p50_ps",
                    [h] { return static_cast<double>(h->p50()); },
                    "median request latency (ps)");
        scope.gauge("p99_ps",
                    [h] { return static_cast<double>(h->p99()); },
                    "p99 request latency (ps)");
        scope.gauge("p999_ps",
                    [h] { return static_cast<double>(h->p999()); },
                    "p99.9 request latency (ps)");
        scope.gauge("max_ps",
                    [h] { return static_cast<double>(h->max()); },
                    "maximum request latency (ps)");
    };
    quantiles(c.scope("write_latency"), writeLatencyHist_);
    quantiles(c.scope("read_latency"), readLatencyHist_);
    c.gauge("energy_pj",
            [this] { return static_cast<double>(controllerEnergy()); },
            "controller-side energy");
    registerSchemeMetrics(registry);
}

void
MemController::registerSchemeMetrics(obs::MetricRegistry &) const
{
}

void
MemController::fillStats(StatSet &stats) const
{
    obs::MetricRegistry registry;
    registerMetrics(registry);
    registry.fillStatSet(stats);
}

} // namespace dewrite
