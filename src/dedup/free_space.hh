/**
 * @file
 * Free-space management table (Section III-B2).
 *
 * Deduplication decouples logical lines from storage slots, so a
 * rewrite whose old slot is still referenced by other logical lines
 * needs a fresh slot. The FSM table is a one-bit-per-line bitmap of
 * free slots with a next-fit allocator. The allocator exposes a
 * preferred-slot fast path so the engine can keep a logical line in
 * its own slot whenever possible, which both preserves locality and
 * keeps the counter-colocation "one of the two entries is null"
 * invariant (DESIGN.md Section 5) true in the overwhelming majority of
 * cases.
 */

#ifndef DEWRITE_DEDUP_FREE_SPACE_HH
#define DEWRITE_DEDUP_FREE_SPACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dewrite {

class FreeSpaceTable
{
  public:
    /** All @p num_lines slots start free (fresh module). */
    explicit FreeSpaceTable(std::uint64_t num_lines);

    bool isFree(LineAddr slot) const;

    /** Marks @p slot allocated; it must be free. */
    void allocate(LineAddr slot);

    /** Marks @p slot free; it must be allocated. */
    void release(LineAddr slot);

    /**
     * Allocates a slot, preferring @p preferred if free, otherwise the
     * next free slot from a roving next-fit cursor.
     * @return the allocated slot, or kInvalidAddr if memory is full.
     */
    LineAddr allocatePreferring(LineAddr preferred);

    std::uint64_t freeCount() const { return freeCount_; }
    std::uint64_t capacity() const { return bits_.size(); }

  private:
    std::vector<bool> bits_; //!< true = free.
    std::uint64_t freeCount_;
    LineAddr cursor_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_FREE_SPACE_HH
