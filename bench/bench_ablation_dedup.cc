/**
 * @file
 * Ablations of DeWrite's design choices (DESIGN.md Section 5).
 *
 * On three representative applications (dup-heavy lbm, mid-range gcc,
 * dup-poor vips):
 *
 *  (a) PNA on/off — prediction-gated in-NVM hash queries trade a few
 *      missed duplicates for far fewer metadata fills on the write
 *      path;
 *  (b) confirm-by-read vs trusting the CRC — the unsafe mode saves the
 *      confirmation read but corrupts data on real collisions (counted
 *      functionally);
 *  (c) history-window depth — Figure 4's knob, measured end-to-end;
 *  (d) persist-queue depth — how much the store queue hides write
 *      latency.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

const char *const kApps[] = { "lbm", "gcc", "vips" };

ExperimentResult
run(const char *app, const SystemConfig &config,
    const DeWriteController::Options &options)
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::DeWrite;
    scheme.dewrite = options;
    return runApp(appByName(app), config, scheme,
                  experimentEvents() / 2, appSeed(appByName(app)));
}

} // namespace

int
main()
{
    SystemConfig config;

    std::printf("(a) prediction-gated NVM hash access (PNA)\n\n");
    {
        TablePrinter table({ "app", "PNA", "write lat (ns)",
                             "eliminated", "missed by PNA",
                             "metadata fills" });
        for (const char *app : kApps) {
            for (bool pna : { true, false }) {
                DeWriteController::Options options;
                options.pnaEnabled = pna;
                const ExperimentResult r = run(app, config, options);
                table.addRow(
                    { app, pna ? "on" : "off",
                      TablePrinter::num(r.run.avgWriteLatencyNs, 1),
                      TablePrinter::percent(
                          static_cast<double>(r.run.writesEliminated) /
                          r.run.writes),
                      TablePrinter::num(r.stats.get("missed_by_pna"), 0),
                      TablePrinter::num(
                          r.stats.get("metadata_fill_reads"), 0) });
            }
        }
        table.print();
    }

    std::printf("\n(b) confirm-by-read vs trusting the fingerprint\n\n");
    {
        TablePrinter table({ "app", "confirm", "write lat (ns)",
                             "eliminated", "silent corruptions" });
        for (const char *app : kApps) {
            for (bool confirm : { true, false }) {
                DeWriteController::Options options;
                options.confirmByRead = confirm;
                const ExperimentResult r = run(app, config, options);
                table.addRow(
                    { app, confirm ? "read+compare" : "trust hash",
                      TablePrinter::num(r.run.avgWriteLatencyNs, 1),
                      TablePrinter::percent(
                          static_cast<double>(r.run.writesEliminated) /
                          r.run.writes),
                      TablePrinter::num(
                          r.stats.get("unsafe_corruptions"), 0) });
            }
        }
        table.print();
        std::printf("\n(zero corruptions here only means no collision "
                    "occurred in this sample; the engine tests construct "
                    "real CRC-32 collisions that the unsafe mode "
                    "silently merges)\n");
    }

    std::printf("\n(c) history-window depth\n\n");
    {
        TablePrinter table({ "app", "bits", "accuracy",
                             "write lat (ns)", "wasted AES" });
        for (const char *app : kApps) {
            for (unsigned bits : { 1u, 3u, 8u }) {
                DeWriteController::Options options;
                options.historyBits = bits;
                const ExperimentResult r = run(app, config, options);
                table.addRow(
                    { app, TablePrinter::num(bits, 0),
                      TablePrinter::percent(
                          r.stats.get("prediction_accuracy")),
                      TablePrinter::num(r.run.avgWriteLatencyNs, 1),
                      TablePrinter::num(
                          r.stats.get("wasted_encryptions"), 0) });
            }
        }
        table.print();
    }

    std::printf("\n(d-pre) bank interleaving policy\n\n");
    {
        TablePrinter table({ "app", "interleave", "write lat (ns)",
                             "read lat (ns)", "IPC" });
        for (const char *app : kApps) {
            for (bool row : { false, true }) {
                SystemConfig swept = config;
                swept.timing.rowInterleave = row;
                const ExperimentResult r =
                    run(app, swept, DeWriteController::Options{});
                table.addRow({ app, row ? "row" : "line",
                               TablePrinter::num(
                                   r.run.avgWriteLatencyNs, 1),
                               TablePrinter::num(
                                   r.run.avgReadLatencyNs, 1),
                               TablePrinter::num(r.run.ipc, 3) });
            }
        }
        table.print();
    }

    std::printf("\n(d) persist write-queue depth\n\n");
    {
        TablePrinter table({ "app", "depth", "baseline IPC",
                             "DeWrite IPC", "relative" });
        for (const char *app : kApps) {
            for (unsigned depth : { 1u, 4u, 8u }) {
                SystemConfig swept = config;
                swept.timing.storeQueueDepth = depth;
                const ExperimentResult base =
                    runApp(appByName(app), swept,
                           secureBaselineScheme(),
                           experimentEvents() / 2,
                           appSeed(appByName(app)));
                const ExperimentResult dewrite =
                    run(app, swept, DeWriteController::Options{});
                table.addRow({ app, TablePrinter::num(depth, 0),
                               TablePrinter::num(base.run.ipc, 3),
                               TablePrinter::num(dewrite.run.ipc, 3),
                               TablePrinter::times(dewrite.run.ipc /
                                                   base.run.ipc) });
            }
        }
        table.print();
    }
    return 0;
}
