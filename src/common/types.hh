/**
 * @file
 * Fundamental scalar types shared by every DeWrite module.
 *
 * All simulated time is carried in integer picoseconds so that a 2 GHz
 * core cycle (500 ps) and all the paper's nanosecond-granularity device
 * latencies are exactly representable without floating point drift.
 */

#ifndef DEWRITE_COMMON_TYPES_HH
#define DEWRITE_COMMON_TYPES_HH

#include <cstdint>

namespace dewrite {

/** Line-granularity memory address: the index of a 256 B memory line. */
using LineAddr = std::uint64_t;

/** Simulated time in picoseconds. */
using Time = std::uint64_t;

/** Energy in picojoules (integer; all model constants are >= 1 pJ). */
using Energy = std::uint64_t;

/** One nanosecond in Time units. */
inline constexpr Time kNanoSecond = 1000;

/** One microsecond in Time units. */
inline constexpr Time kMicroSecond = 1000 * kNanoSecond;

/** One millisecond in Time units. */
inline constexpr Time kMilliSecond = 1000 * kMicroSecond;

/** Bytes per memory line / LLC cache line (fixed by the paper: 256 B). */
inline constexpr std::size_t kLineSize = 256;

/** Bits per memory line. */
inline constexpr std::size_t kLineBits = kLineSize * 8;

/** AES block size in bytes; a line holds kLineSize / 16 = 16 blocks. */
inline constexpr std::size_t kAesBlockSize = 16;

/** Number of AES blocks per 256 B line. */
inline constexpr std::size_t kAesBlocksPerLine = kLineSize / kAesBlockSize;

/** Sentinel for "no line address". */
inline constexpr LineAddr kInvalidAddr = ~static_cast<LineAddr>(0);

} // namespace dewrite

#endif // DEWRITE_COMMON_TYPES_HH
