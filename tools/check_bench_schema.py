#!/usr/bin/env python3
"""Validates the uniform BENCH_*.json schema every bench binary emits.

Every report written through obs::BenchReport starts with the same
header block; figure-regression tooling keys off it, so CI fails fast
when a bench drifts from the contract:

    {
      "bench": "<name>",          # string, matches the file name
      "schema_version": 2,        # integer, bumped on breaking change
      "events_per_cell": <uint>,  # 0 when not event-driven
      "threads": <uint>,          # worker count used for the run
      "provenance": {             # v2: run reproducibility block
        "git_sha": "<sha>",       # build-time commit ("unknown" ok)
        "git_dirty": <bool>,      # tree had uncommitted changes
        "host_cpus": <uint>,      # hardware concurrency of the host
        "knobs": {"DEWRITE_*": "<value>" | null, ...}
      },
      ...                         # bench-specific payload
    }

With no FILES arguments, checks every BENCH_*.json in the current
directory (override with --glob-dir).

Exit codes: 0 all reports valid, 1 malformed report or none found,
2 usage error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

SCHEMA_VERSION = 2
HEADER = ("bench", "schema_version", "events_per_cell", "threads",
          "provenance")

# The per-stage host-cycle breakdown the throughput bench emits per
# scheme (matches DedupEngine's stage gauges).
STAGES = ("digest", "probe", "pad", "confirm_read", "commit")


class SchemaError(Exception):
    """One report violated the contract; str() is the diagnostic."""


def fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def _is_uint(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_provenance(path: str, report: dict) -> None:
    """The v2 provenance block: commit, dirty flag, host shape, and a
    verbatim capture of every DEWRITE_* knob (null = unset)."""
    prov = report.get("provenance")
    if not isinstance(prov, dict):
        fail(path, "'provenance' must be an object")
    sha = prov.get("git_sha")
    if not isinstance(sha, str) or not sha:
        fail(path, "provenance 'git_sha' must be a non-empty string")
    if not isinstance(prov.get("git_dirty"), bool):
        fail(path, "provenance 'git_dirty' must be a boolean")
    if not _is_uint(prov.get("host_cpus")):
        fail(path, "provenance 'host_cpus' must be a non-negative "
                   "integer")
    knobs = prov.get("knobs")
    if not isinstance(knobs, dict):
        fail(path, "provenance 'knobs' must be an object")
    for name, value in knobs.items():
        if not name.startswith("DEWRITE_"):
            fail(path, f"provenance knob {name!r} is not a DEWRITE_* "
                       "name")
        if value is not None and not isinstance(value, str):
            fail(path, f"provenance knobs[{name!r}] must be a string "
                       "or null")


def check_throughput_payload(path: str, report: dict) -> None:
    """BENCH_throughput carries batching, parity, and stage fields."""
    if not _is_uint(report.get("write_batch")) \
            or report.get("write_batch") < 1:
        fail(path, "'write_batch' must be a positive integer")

    schemes = report.get("schemes")
    if not isinstance(schemes, list) or not schemes:
        fail(path, "'schemes' must be a non-empty array")
    for entry in schemes:
        if not isinstance(entry, dict):
            fail(path, "'schemes' entries must be objects")
        name = entry.get("scheme")
        if not isinstance(name, str) or not name:
            fail(path, "scheme entry missing 'scheme' name")
        if not _is_uint(entry.get("result_fingerprint")):
            fail(path, f"scheme {name!r}: 'result_fingerprint' must be "
                       "a non-negative integer")
        # stage_cycles is optional: schemes without stage gauges
        # (e.g. secure-baseline, or runs without DEWRITE_STAGE_PROFILE)
        # omit the block rather than writing all zeros.
        stage_cycles = entry.get("stage_cycles")
        if stage_cycles is not None:
            if not isinstance(stage_cycles, dict):
                fail(path, f"scheme {name!r}: 'stage_cycles' must be "
                           "an object when present")
            for stage in STAGES:
                if not _is_number(stage_cycles.get(stage)) \
                        or stage_cycles.get(stage) < 0:
                    fail(path, f"scheme {name!r}: "
                               f"stage_cycles[{stage!r}] must be a "
                               "non-negative number")

    ratios = report.get("ratios")
    if not isinstance(ratios, dict):
        fail(path, "'ratios' must be an object")
    for name, value in ratios.items():
        if not _is_number(value) or value < 0:
            fail(path, f"ratios[{name!r}] must be a non-negative number")


def check_detection_payload(path: str, report: dict) -> None:
    """BENCH_detection carries the per-policy sweep plus the decision
    parity block pinning the confirming policies to confirm-read."""
    if not _is_uint(report.get("adaptive_epoch_writes")) \
            or report.get("adaptive_epoch_writes") < 1:
        fail(path, "'adaptive_epoch_writes' must be a positive integer")

    policies = report.get("policies")
    if not isinstance(policies, list) or not policies:
        fail(path, "'policies' must be a non-empty array")
    names = set()
    for entry in policies:
        if not isinstance(entry, dict):
            fail(path, "'policies' entries must be objects")
        name = entry.get("policy")
        if not isinstance(name, str) or not name:
            fail(path, "policy entry missing 'policy' name")
        names.add(name)
        if not _is_uint(entry.get("detection_fingerprint")):
            fail(path, f"policy {name!r}: 'detection_fingerprint' must "
                       "be a non-negative integer")
        for key in ("wall_seconds", "events_per_sec", "avg_detect_ns",
                    "confirm_reads", "confirm_reads_avoided",
                    "strong_fp_computes", "write_reduction"):
            if not _is_number(entry.get(key)) or entry.get(key) < 0:
                fail(path, f"policy {name!r}: {key!r} must be a "
                           "non-negative number")
    for required in ("confirm-read", "weak-only", "weak-strong",
                     "adaptive"):
        if required not in names:
            fail(path, f"'policies' is missing the {required!r} sweep")

    parity = report.get("parity")
    if not isinstance(parity, dict):
        fail(path, "'parity' must be an object")
    if parity.get("reference") != "confirm-read":
        fail(path, "parity 'reference' must be 'confirm-read'")
    for key in ("weak_strong_matches", "adaptive_matches"):
        if not isinstance(parity.get(key), bool):
            fail(path, f"parity {key!r} must be a boolean")


def check_detection_parity(path: str) -> None:
    """One detection report: the weak+strong and adaptive policies must
    have recorded the same decision fingerprint as confirm-read — the
    two-tier scheme changes timing, never verdicts, on collision-free
    traces."""
    report = load_file(path)
    check_report(path, report, check_name=False)
    if report["bench"] != "detection":
        fail(path, "single-file --parity expects a service or "
                   "detection report")
    prints = {e["policy"]: e["detection_fingerprint"]
              for e in report["policies"]}
    for policy in ("weak-strong", "adaptive"):
        if prints[policy] != prints["confirm-read"]:
            fail(path, f"parity mismatch for {policy!r}: "
                       f"{prints[policy]} vs confirm-read "
                       f"{prints['confirm-read']}")
    parity = report["parity"]
    for key in ("weak_strong_matches", "adaptive_matches"):
        if not parity[key]:
            fail(path, f"report flags {key}=false")


def check_service_payload(path: str, report: dict) -> None:
    """BENCH_service carries the shard-scaling sweep plus the per-shard
    service/reference fingerprint pairs the parity mode verifies."""
    if not _is_uint(report.get("write_batch")) \
            or report.get("write_batch") < 1:
        fail(path, "'write_batch' must be a positive integer")
    if not _is_uint(report.get("host_cpus")) \
            or report.get("host_cpus") < 1:
        fail(path, "'host_cpus' must be a positive integer")

    configs = report.get("configs")
    if not isinstance(configs, list) or not configs:
        fail(path, "'configs' must be a non-empty array")
    for entry in configs:
        if not isinstance(entry, dict):
            fail(path, "'configs' entries must be objects")
        shards = entry.get("shards")
        if not _is_uint(shards) or shards < 1:
            fail(path, "config missing a positive 'shards' count")
        for key in ("threads", "events"):
            if not _is_uint(entry.get(key)):
                fail(path, f"config shards={shards}: {key!r} must be a "
                           "non-negative integer")
        for key in ("wall_seconds", "events_per_sec",
                    "speedup_vs_1shard"):
            if not _is_number(entry.get(key)) or entry.get(key) < 0:
                fail(path, f"config shards={shards}: {key!r} must be a "
                           "non-negative number")
        detail = entry.get("shards_detail")
        if not isinstance(detail, list) or len(detail) != shards:
            fail(path, f"config shards={shards}: 'shards_detail' must "
                       f"be an array of exactly {shards} entries")
        for shard in detail:
            if not isinstance(shard, dict) \
                    or not _is_uint(shard.get("shard")) \
                    or not _is_uint(shard.get("events")) \
                    or not _is_uint(shard.get("service_fingerprint")) \
                    or not _is_uint(shard.get("reference_fingerprint")):
                fail(path, f"config shards={shards}: shards_detail "
                           "entries need uint shard/events/"
                           "service_fingerprint/reference_fingerprint")

    if not isinstance(report.get("parity_ok"), bool):
        fail(path, "'parity_ok' must be a boolean")


def check_report(path: str, report: object,
                 check_name: bool = True) -> None:
    """Validate one parsed report; raises SchemaError on violation."""
    if not isinstance(report, dict):
        fail(path, "top level must be a JSON object")
    for key in HEADER:
        if key not in report:
            fail(path, f"missing required header key {key!r}")

    # The first keys must be the header, in order, so that a human
    # opening any report sees the provenance block first.
    if list(report)[: len(HEADER)] != list(HEADER):
        fail(path, f"header keys must lead the report, in order {HEADER}")

    bench = report["bench"]
    if not isinstance(bench, str) or not bench:
        fail(path, "'bench' must be a non-empty string")
    if check_name and os.path.basename(path) != f"BENCH_{bench}.json":
        fail(path, f"file name does not match bench name {bench!r}")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(path, f"schema_version must be {SCHEMA_VERSION}")
    for key in ("events_per_cell", "threads"):
        value = report[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            fail(path, f"{key!r} must be a non-negative integer")
    if report["threads"] < 1:
        fail(path, "'threads' must be at least 1")
    check_provenance(path, report)

    if bench == "throughput":
        check_throughput_payload(path, report)
    elif bench == "service":
        check_service_payload(path, report)
    elif bench == "detection":
        check_detection_payload(path, report)


def check_service_parity(path: str) -> None:
    """One service report: every shard of every configuration must have
    recorded identical service and reference fingerprints — the sharded
    run is bit-equivalent to N independent single-shard runs."""
    report = load_file(path)
    check_report(path, report, check_name=False)
    if report["bench"] != "service":
        fail(path, "single-file --parity expects a service or "
                   "detection report")
    for entry in report["configs"]:
        for shard in entry["shards_detail"]:
            if shard["service_fingerprint"] \
                    != shard["reference_fingerprint"]:
                fail(path, f"parity mismatch at shards="
                           f"{entry['shards']} shard {shard['shard']}: "
                           f"service {shard['service_fingerprint']} vs "
                           f"reference {shard['reference_fingerprint']}")
    if not report["parity_ok"]:
        fail(path, "report flags parity_ok=false")


def check_parity(path_a: str, path_b: str) -> None:
    """Two throughput reports (e.g. different DEWRITE_BATCH values)
    must carry identical per-scheme result fingerprints — the batching
    strict-equivalence contract. Renamed copies are expected here, so
    the file-name check is skipped."""
    reports = []
    for path in (path_a, path_b):
        report = load_file(path)
        check_report(path, report, check_name=False)
        if report["bench"] != "throughput":
            fail(path, "--parity expects throughput reports")
        reports.append(report)

    prints = [{e["scheme"]: e["result_fingerprint"]
               for e in r["schemes"]} for r in reports]
    if set(prints[0]) != set(prints[1]):
        fail(path_b, f"scheme sets differ: {sorted(prints[0])} vs "
                     f"{sorted(prints[1])}")
    for scheme, fingerprint in prints[0].items():
        if prints[1][scheme] != fingerprint:
            fail(path_b, f"parity mismatch for {scheme!r}: "
                         f"{fingerprint} (in {path_a}) vs "
                         f"{prints[1][scheme]}")


def load_file(path: str) -> object:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(path, f"unreadable or invalid JSON: {error}")


def check_file(path: str) -> None:
    check_report(path, load_file(path))


def _provenance() -> dict:
    return {"git_sha": "abc123", "git_dirty": False, "host_cpus": 4,
            "knobs": {"DEWRITE_EVENTS": "6000", "DEWRITE_LOG": None}}


def self_test() -> int:
    """Seeded-violation check: the validator must accept a conforming
    report and name the defect in each broken variant."""
    good = {"bench": "fig04", "schema_version": SCHEMA_VERSION,
            "events_per_cell": 120000, "threads": 4,
            "provenance": _provenance(), "extra": [1, 2]}
    check_report("BENCH_fig04.json", good)

    def fig04(**overrides: object) -> dict:
        report = {"bench": "fig04", "schema_version": SCHEMA_VERSION,
                  "events_per_cell": 0, "threads": 1,
                  "provenance": _provenance()}
        report.update(overrides)
        return report

    broken = [
        ("missing required header key",
         {"bench": "fig04", "schema_version": SCHEMA_VERSION,
          "threads": 1, "provenance": _provenance()}),
        ("header keys must lead",
         {"extra": 1, **fig04()}),
        ("file name does not match", fig04(bench="other")),
        ("schema_version must be", fig04(schema_version=99)),
        ("non-negative integer", fig04(events_per_cell=True)),
        ("'threads' must be at least 1", fig04(threads=0)),
        ("'provenance' must be an object", fig04(provenance=[1])),
        ("'git_sha' must be a non-empty string",
         fig04(provenance={**_provenance(), "git_sha": ""})),
        ("'git_dirty' must be a boolean",
         fig04(provenance={**_provenance(), "git_dirty": "no"})),
        ("'host_cpus' must be a non-negative integer",
         fig04(provenance={**_provenance(), "host_cpus": -1})),
        ("'knobs' must be an object",
         fig04(provenance={**_provenance(), "knobs": None})),
        ("is not a DEWRITE_* name",
         fig04(provenance={**_provenance(),
                           "knobs": {"PATH": "/bin"}})),
        ("must be a string or null",
         fig04(provenance={**_provenance(),
                           "knobs": {"DEWRITE_EVENTS": 6000}})),
        ("top level must be a JSON object", [1, 2, 3]),
    ]
    for expect, report in broken:
        try:
            check_report("BENCH_fig04.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")

    def throughput(fingerprint: int = 7, write_batch: int = 16) -> dict:
        return {"bench": "throughput", "schema_version": SCHEMA_VERSION,
                "events_per_cell": 6000, "threads": 1,
                "provenance": _provenance(),
                "write_batch": write_batch,
                "schemes": [{"scheme": "secure-baseline",
                             "result_fingerprint": fingerprint},
                            {"scheme": "dewrite-direct",
                             "result_fingerprint": fingerprint,
                             "stage_cycles": {s: 0 for s in STAGES}}],
                "ratios": {"dewrite-predicted": 0.85}}

    # Both shapes must pass: a scheme with the stage block and one
    # without it (secure-baseline omits stage_cycles entirely).
    check_report("BENCH_throughput.json", throughput())

    broken_throughput = [
        ("'write_batch' must be a positive integer",
         throughput(write_batch=0)),
        ("'schemes' must be a non-empty array",
         {**throughput(), "schemes": []}),
        ("'result_fingerprint' must be",
         {**throughput(),
          "schemes": [{"scheme": "x", "result_fingerprint": -1,
                       "stage_cycles": {s: 0 for s in STAGES}}]}),
        ("'stage_cycles' must be an object when present",
         {**throughput(),
          "schemes": [{"scheme": "x", "result_fingerprint": 1,
                       "stage_cycles": [0, 1]}]}),
        ("stage_cycles['commit'] must be",
         {**throughput(),
          "schemes": [{"scheme": "x", "result_fingerprint": 1,
                       "stage_cycles": {s: 0 for s in STAGES
                                        if s != "commit"}}]}),
        ("'ratios' must be an object",
         {**throughput(), "ratios": [1.0]}),
    ]
    for expect, report in broken_throughput:
        try:
            check_report("BENCH_throughput.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")

    def service(reference: int = 7, parity_ok: bool = True) -> dict:
        return {"bench": "service", "schema_version": SCHEMA_VERSION,
                "events_per_cell": 6000, "threads": 1,
                "provenance": _provenance(),
                "write_batch": 16, "host_cpus": 1, "tenants": 16,
                "configs": [{"shards": 1, "threads": 1, "events": 6000,
                             "wall_seconds": 0.5,
                             "events_per_sec": 12000.0,
                             "speedup_vs_1shard": 1.0,
                             "shards_detail": [
                                 {"shard": 0, "events": 6000,
                                  "service_fingerprint": 7,
                                  "reference_fingerprint": reference}]}],
                "parity_ok": parity_ok}

    check_report("BENCH_service.json", service())

    broken_service = [
        ("'host_cpus' must be a positive integer",
         {**service(), "host_cpus": 0}),
        ("'configs' must be a non-empty array",
         {**service(), "configs": []}),
        ("missing a positive 'shards' count",
         {**service(),
          "configs": [{**service()["configs"][0], "shards": 0}]}),
        ("'speedup_vs_1shard' must be a non-negative number",
         {**service(),
          "configs": [{**service()["configs"][0],
                       "speedup_vs_1shard": -1.0}]}),
        ("'shards_detail' must be an array of exactly",
         {**service(),
          "configs": [{**service()["configs"][0],
                       "shards_detail": []}]}),
        ("shards_detail entries need uint",
         {**service(),
          "configs": [{**service()["configs"][0],
                       "shards_detail": [{"shard": 0, "events": 1,
                                          "service_fingerprint": 7}]}]}),
        ("'parity_ok' must be a boolean",
         {**service(), "parity_ok": "yes"}),
    ]
    for expect, report in broken_service:
        try:
            check_report("BENCH_service.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")

    def detection(strong: int = 7, adaptive: int = 7,
                  strong_flag: bool = True) -> dict:
        def policy(name: str, fingerprint: int) -> dict:
            return {"policy": name, "cells": 20, "events": 120000,
                    "wall_seconds": 0.5, "events_per_sec": 240000.0,
                    "avg_detect_ns": 40.0, "confirm_reads": 100.0,
                    "confirm_reads_avoided": 50.0,
                    "strong_fp_computes": 60.0,
                    "write_reduction": 0.4,
                    "detection_fingerprint": fingerprint}
        return {"bench": "detection", "schema_version": SCHEMA_VERSION,
                "events_per_cell": 6000, "threads": 1,
                "provenance": _provenance(),
                "adaptive_epoch_writes": 512,
                "policies": [policy("confirm-read", 7),
                             policy("weak-only", 9),
                             policy("weak-strong", strong),
                             policy("adaptive", adaptive)],
                "parity": {"reference": "confirm-read",
                           "weak_strong_matches": strong_flag,
                           "adaptive_matches": True,
                           "weak_only_fingerprint": 9}}

    check_report("BENCH_detection.json", detection())

    broken_detection = [
        ("'adaptive_epoch_writes' must be a positive integer",
         {**detection(), "adaptive_epoch_writes": 0}),
        ("'policies' must be a non-empty array",
         {**detection(), "policies": []}),
        ("missing 'policy' name",
         {**detection(),
          "policies": [{**detection()["policies"][0], "policy": ""}]}),
        ("'detection_fingerprint' must be",
         {**detection(),
          "policies": [{**detection()["policies"][0],
                        "detection_fingerprint": -1}]}),
        ("'confirm_reads' must be a non-negative number",
         {**detection(),
          "policies": [{**p, "confirm_reads": -1.0}
                       for p in detection()["policies"]]}),
        ("missing the 'adaptive' sweep",
         {**detection(),
          "policies": detection()["policies"][:3]}),
        ("'parity' must be an object",
         {**detection(), "parity": None}),
        ("parity 'reference' must be 'confirm-read'",
         {**detection(),
          "parity": {**detection()["parity"],
                     "reference": "weak-only"}}),
        ("parity 'adaptive_matches' must be a boolean",
         {**detection(),
          "parity": {**detection()["parity"],
                     "adaptive_matches": "yes"}}),
    ]
    for expect, report in broken_detection:
        try:
            check_report("BENCH_detection.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")

    # Parity comparison: identical fingerprints pass, a drifted one is
    # named in the diagnostic.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        def dump(name: str, report: dict) -> str:
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(report, handle)
            return path

        a = dump("BENCH_throughput.batch1.json", throughput())
        b = dump("BENCH_throughput.json", throughput())
        check_parity(a, b)
        c = dump("BENCH_throughput.drift.json", throughput(fingerprint=8))
        try:
            check_parity(a, c)
        except SchemaError as error:
            assert "parity mismatch" in str(error), str(error)
        else:
            raise AssertionError("accepted drifted parity fingerprints")

        # Single-file service parity: matching fingerprints pass, a
        # shard that diverged from its reference is named.
        check_service_parity(dump("BENCH_service.json", service()))
        try:
            check_service_parity(
                dump("BENCH_service.drift.json", service(reference=8)))
        except SchemaError as error:
            assert "parity mismatch at shards=1 shard 0" in str(error), \
                str(error)
        else:
            raise AssertionError("accepted drifted service parity")
        try:
            check_service_parity(
                dump("BENCH_service.flag.json", service(parity_ok=False)))
        except SchemaError as error:
            assert "parity_ok=false" in str(error), str(error)
        else:
            raise AssertionError("accepted parity_ok=false report")

        # Single-file detection parity: the confirming policies must
        # match confirm-read, and the report's own flags must agree.
        check_detection_parity(
            dump("BENCH_detection.json", detection()))
        try:
            check_detection_parity(
                dump("BENCH_detection.drift.json", detection(adaptive=8)))
        except SchemaError as error:
            assert "parity mismatch for 'adaptive'" in str(error), \
                str(error)
        else:
            raise AssertionError("accepted drifted detection parity")
        try:
            check_detection_parity(
                dump("BENCH_detection.flag.json",
                     detection(strong_flag=False)))
        except SchemaError as error:
            assert "weak_strong_matches=false" in str(error), str(error)
        else:
            raise AssertionError("accepted weak_strong_matches=false")
        try:
            check_detection_parity(
                dump("BENCH_throughput.json", throughput()))
        except SchemaError as error:
            assert "expects a service or detection report" in str(error), \
                str(error)
        else:
            raise AssertionError("accepted a throughput report in "
                                 "single-file parity mode")

    print("check_bench_schema self-test: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("files", nargs="*",
                        help="report files to validate (default: "
                             "BENCH_*.json in --glob-dir)")
    parser.add_argument("--glob-dir", default=".",
                        help="directory scanned when no files are "
                             "given (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-test and "
                             "exit")
    parser.add_argument("--parity", nargs="+", metavar="REPORT",
                        help="with two throughput reports, compare "
                             "their per-scheme result fingerprints "
                             "(the batching strict-equivalence check); "
                             "with one service report, verify each "
                             "shard's service fingerprint against its "
                             "recorded independent reference; with one "
                             "detection report, verify the weak+strong "
                             "and adaptive decision fingerprints against "
                             "confirm-read")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if args.parity:
        if len(args.parity) > 2:
            parser.error("--parity takes one service or detection "
                         "report, or two throughput reports")
        try:
            if len(args.parity) == 1:
                report = load_file(args.parity[0])
                if isinstance(report, dict) \
                        and report.get("bench") == "detection":
                    check_detection_parity(args.parity[0])
                else:
                    check_service_parity(args.parity[0])
            else:
                check_parity(args.parity[0], args.parity[1])
        except SchemaError as error:
            print(error, file=sys.stderr)
            return 1
        print("parity fingerprints match")
        return 0

    paths = args.files or sorted(
        glob.glob(os.path.join(args.glob_dir, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json reports found", file=sys.stderr)
        return 1
    for path in paths:
        try:
            check_file(path)
        except SchemaError as error:
            print(error, file=sys.stderr)
            return 1
    print(f"checked {len(paths)} report(s): schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
