/**
 * @file
 * ShardCore implementation.
 *
 * Every numbered step here mirrors CoreModel::runMulti specialized to
 * one core; the two must stay in lockstep or the service/reference
 * parity fingerprints diverge. The shared BatchFormer keeps the
 * trickiest piece — staging and flush attribution — literally the same
 * code.
 */

#include "service/shard_core.hh"

#include <algorithm>

#include "controller/mem_controller.hh"

namespace dewrite {

ShardCore::ShardCore(const TimingConfig &timing,
                     MemController &controller,
                     std::size_t batch_capacity)
    : timing_(timing), controller_(controller)
{
    former_.reset(batch_capacity);
}

// dewrite-analyze: root(shard-isolation)
void
ShardCore::flush(BatchFormer::FlushReason reason)
{
    const std::size_t flushed =
        former_.flush(controller_, responses_.data(), reason);
    if (flushed == 0)
        return;
    if (telemetry_) {
        // Slot data stays readable after flush() (BatchFormer
        // contract), so attribute each response to its address here.
        Time first_issue = former_.slotNow(0);
        Time last_commit = 0;
        for (std::size_t s = 0; s < flushed; ++s) {
            const Time issue = former_.slotNow(s);
            const Time commit = issue + responses_[s].latency;
            telemetry_->recordWrite(former_.slotAddr(s),
                                    responses_[s].latency,
                                    responses_[s].eliminated);
            first_issue = std::min(first_issue, issue);
            last_commit = std::max(last_commit, commit);
        }
        telemetry_->recordBatchCommit(last_commit - first_issue);
    }
    for (StoreEntry &entry : storeQueue_) {
        if (entry.batchSlot >= 0) {
            if (responses_[entry.batchSlot].eliminated)
                ++writesEliminated_;
            entry.complete = former_.slotNow(entry.batchSlot) +
                             responses_[entry.batchSlot].latency;
            entry.batchSlot = -1;
        }
    }
}

// dewrite-analyze: root(shard-isolation)
// dewrite-analyze: root(determinism)
void
ShardCore::feed(const MemEvent &event)
{
    // The +1 cycle is the memory instruction's own issue slot (the
    // CoreModel convention); the event issues after its compute phase.
    now_ += timing_.cycles(event.instGap + 1);
    instructions_ += event.instGap + 1;
    ++events_;

    if (event.isWrite) {
        const std::size_t slot =
            former_.stage(event.addr, event.data, now_);
        storeQueue_.push_back({ 0, static_cast<std::int32_t>(slot) });
        ++writes_;

        const unsigned depth = std::max(1u, timing_.storeQueueDepth);
        if (former_.full()) {
            flush(BatchFormer::FlushReason::BatchFull);
        } else if (storeQueue_.size() >= depth) {
            flush(BatchFormer::FlushReason::QueueFull);
        }
        while (storeQueue_.size() >= depth) {
            now_ = std::max(now_, storeQueue_.front().complete);
            storeQueue_.pop_front();
        }
    } else {
        // The controller must observe every staged write first.
        flush(BatchFormer::FlushReason::Read);
        const CtrlReadResult read =
            controller_.readTiming(event.addr, now_);
        if (telemetry_)
            telemetry_->recordRead(event.addr, read.latency);
        now_ += read.latency;
        ++reads_;
    }
}

// dewrite-analyze: root(shard-isolation)
// dewrite-analyze: root(determinism)
void
ShardCore::feed(const MemEvent *events, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        feed(events[i]);
}

// dewrite-analyze: root(shard-isolation)
// dewrite-analyze: root(determinism)
RunResult
ShardCore::finish()
{
    flush(BatchFormer::FlushReason::TraceEnd);

    RunResult result;
    result.instructions = instructions_;
    result.events = events_;
    result.writes = writes_;
    result.reads = reads_;
    result.writesEliminated = writesEliminated_;
    result.cycles = now_ / timing_.cyclePeriod;
    result.ipc = result.cycles
        ? static_cast<double>(instructions_) / result.cycles
        : 0.0;
    result.avgWriteLatencyNs =
        controller_.avgWriteLatency() / kNanoSecond;
    result.avgReadLatencyNs = controller_.avgReadLatency() / kNanoSecond;
    return result;
}

} // namespace dewrite
