# Empty dependencies file for bench_fig15_modes_latency.
# This may be replaced when dependencies are built.
