file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_collisions.dir/bench_fig06_collisions.cc.o"
  "CMakeFiles/bench_fig06_collisions.dir/bench_fig06_collisions.cc.o.d"
  "bench_fig06_collisions"
  "bench_fig06_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
