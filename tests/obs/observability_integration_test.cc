/**
 * @file
 * End-to-end observability: the System's registry and tracer against
 * the authoritative run accounting.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/trace_export.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/app_catalog.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(SystemRegistryTest, CanonicalPathsTrackLiveCounters)
{
    const SystemConfig config = smallConfig();
    System system(config, dewriteScheme(DedupMode::Predicted));

    const obs::MetricRegistry &registry = system.registry();
    ASSERT_TRUE(registry.has("system.sim_picoseconds"));
    ASSERT_TRUE(registry.has("device.num_writes"));
    ASSERT_TRUE(registry.has("controller.write_requests"));
    ASSERT_TRUE(registry.has("controller.writes_eliminated"));
    ASSERT_TRUE(registry.has("controller.predictor.accuracy"));
    ASSERT_TRUE(registry.has("controller.dedup.duplicate_commits"));
    ASSERT_TRUE(registry.has("cache.metadata.mapping.hit_rate"));
    ASSERT_TRUE(registry.has("device.wear.total_writes"));

    const Line data = Line::filled(0x11);
    system.write(5, data);
    system.write(6, data); // Duplicate content.
    system.read(5);

    EXPECT_EQ(registry.find("controller.write_requests")->read(), 2.0);
    EXPECT_EQ(registry.find("controller.read_requests")->read(), 1.0);
    EXPECT_EQ(
        registry.find("controller.writes_eliminated")->read(),
        static_cast<double>(system.controller().writesEliminated()));
    EXPECT_EQ(registry.find("device.num_writes")->read(),
              static_cast<double>(system.device().numWrites()));
    EXPECT_EQ(registry.find("system.sim_picoseconds")->read(),
              static_cast<double>(system.now()));
}

TEST(SystemRegistryTest, LegacyViewMatchesFillStats)
{
    const SystemConfig config = smallConfig();
    System system(config, dewriteScheme(DedupMode::Predicted));
    const Line data = Line::filled(0x22);
    system.write(1, data);
    system.write(2, data);

    StatSet via_controller;
    system.controller().fillStats(via_controller);
    StatSet via_registry;
    system.registry().fillStatSet(via_registry);

    // fillStats is defined as the registry's legacy projection plus
    // nothing else; both maps must agree exactly.
    EXPECT_EQ(via_controller.all(), via_registry.all());
    EXPECT_TRUE(via_controller.has("writes"));
    EXPECT_TRUE(via_controller.has("prediction_accuracy"));
    EXPECT_TRUE(via_controller.has("writes_eliminated"));
}

TEST(SystemTracerTest, DisabledByDefaultEnabledOnRequest)
{
    const SystemConfig config = smallConfig();
    System system(config, dewriteScheme(DedupMode::Predicted));
    EXPECT_EQ(system.tracer(), nullptr);

    obs::TraceConfig trace;
    trace.capacity = 8;
    obs::WriteTracer &tracer = system.enableTracing(trace);
    EXPECT_EQ(system.tracer(), &tracer);

    const Line data = Line::filled(0x33);
    system.write(1, data);
    system.write(2, data);
    if (obs::WriteTracer::compiledIn()) {
        EXPECT_EQ(tracer.recorded(), 2u);
        EXPECT_TRUE(tracer.event(1).duplicate);
    } else {
        EXPECT_EQ(tracer.recorded(), 0u);
    }
}

TEST(SystemTracerTest, BaselineSchemeTracesToo)
{
    const SystemConfig config = smallConfig();
    System system(config, secureBaselineScheme());
    obs::WriteTracer &tracer = system.enableTracing();
    const Line data = Line::filled(0x44);
    system.write(1, data);
    if (obs::WriteTracer::compiledIn()) {
        EXPECT_EQ(tracer.recorded(), 1u);
        EXPECT_TRUE(tracer.event(0).wroteLine);
    }
}

TEST(RunAppTracedTest, TracerAgreesWithRunResult)
{
    const SystemConfig config = smallConfig();
    obs::TraceConfig trace;
    trace.capacity = 1 << 12;
    trace.epochEvents = 500;
    const AppProfile &app = appCatalog().front();
    const DetailedExperiment cell =
        runAppTraced(app, config, dewriteScheme(DedupMode::Predicted),
                     2000, appSeed(app), trace);

    const obs::WriteTracer *tracer = cell.system->tracer();
    ASSERT_NE(tracer, nullptr);
    if (!obs::WriteTracer::compiledIn())
        GTEST_SKIP() << "tracer compiled out";

    EXPECT_EQ(tracer->recorded(), cell.result.run.writes);
    std::uint64_t duplicates = tracer->currentEpoch().duplicates;
    for (const obs::EpochSnapshot &epoch : tracer->epochs())
        duplicates += epoch.duplicates;
    EXPECT_EQ(duplicates, cell.result.run.writesEliminated);

    // The snapshot captured into the result is reproducible.
    EXPECT_EQ(cell.result.metrics, cell.system->registry().snapshot());
}

} // namespace
} // namespace dewrite
