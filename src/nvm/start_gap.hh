/**
 * @file
 * Start-Gap wear leveling [Qureshi et al., MICRO'09].
 *
 * DeWrite extends lifetime by writing less; wear leveling extends it
 * by spreading what is still written. Start-Gap is the standard
 * low-overhead scheme PCM papers assume underneath the controller: one
 * spare line (the gap) rotates through the physical space, shifting
 * the logical-to-physical mapping by one line every GapMovement, so a
 * write hot-spot is smeared over every physical line after a full
 * rotation. State is two registers (Start, Gap) — no table.
 *
 * The leveler is a pure translation layer: translate() maps logical to
 * physical lines, recordWrite() counts toward the movement interval,
 * and performGapMove() executes the one-line copy on the device
 * (charging its read and write). It sits *below* the memory
 * controllers, so dedup's realAddr slots are logical lines here.
 */

#ifndef DEWRITE_NVM_START_GAP_HH
#define DEWRITE_NVM_START_GAP_HH

#include <cstdint>

#include "common/fast_div.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dewrite {

class NvmDevice;

class StartGapLeveler
{
  public:
    /**
     * @param lines Logical lines covered (physical space is lines+1).
     * @param interval Writes between gap movements (the paper's ψ,
     *        typically 100).
     */
    StartGapLeveler(std::uint64_t lines, std::uint64_t interval);

    /** Physical line currently backing logical @p logical. */
    LineAddr translate(LineAddr logical) const;

    /**
     * Accounts one data write; returns true when a gap movement is
     * due (the caller then invokes performGapMove()).
     */
    bool recordWrite();

    /**
     * Moves the gap by one line: copies the neighbour into the gap
     * slot through @p device at time @p now and updates the mapping
     * registers.
     */
    void performGapMove(NvmDevice &device, Time now);

    /** @{ Register and statistics access. */
    std::uint64_t start() const { return start_; }
    std::uint64_t gap() const { return gap_; }
    std::uint64_t lines() const { return lines_; }
    std::uint64_t gapMoves() const { return gapMoves_.value(); }
    /** @} */

    /**
     * Write overhead of the leveling: one extra line write per
     * interval writes.
     */
    double overheadFraction() const;

  private:
    std::uint64_t lines_;    //!< Logical lines; physical = lines_ + 1.
    FastDiv linesDiv_;       //!< translate() runs on every device access.
    std::uint64_t interval_;
    std::uint64_t start_ = 0;
    std::uint64_t gap_;      //!< Physical index of the empty slot.
    std::uint64_t sinceMove_ = 0;
    Counter gapMoves_;
};

} // namespace dewrite

#endif // DEWRITE_NVM_START_GAP_HH
