/**
 * @file
 * Tests for the huge-page-friendly allocation helpers.
 */

#include "common/huge_pages.hh"

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/paged_array.hh"

namespace dewrite {
namespace {

TEST(HugePages, SmallAllocationsUsePlainHeap)
{
    EXPECT_FALSE(hugeAllocEligible(1));
    EXPECT_FALSE(hugeAllocEligible(kHugeAllocMinBytes - 1));
    void *mem = hugeAlloc(4096);
    ASSERT_NE(mem, nullptr);
    std::memset(mem, 0xab, 4096);
    hugeFree(mem, 4096);
}

TEST(HugePages, LargeAllocationsAreHugePageAligned)
{
    EXPECT_TRUE(hugeAllocEligible(kHugeAllocMinBytes));
    const std::size_t bytes = 3u << 20; // spans two huge pages
    void *mem = hugeAlloc(bytes);
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mem) % kHugePageBytes, 0u);
    // The whole rounded region must be writable.
    std::memset(mem, 0xcd, bytes);
    hugeFree(mem, bytes);
}

TEST(HugePages, MakeHugeValueInitializes)
{
    struct Block
    {
        std::uint64_t words[512];
    };
    auto block = makeHuge<Block>();
    for (std::uint64_t word : block->words)
        EXPECT_EQ(word, 0u);
}

TEST(HugePages, AwareAllocatorRoundTripsThroughVector)
{
    std::vector<std::uint64_t, HugeAwareAllocator<std::uint64_t>> vec;
    // Grow past the huge-allocation threshold to exercise both paths.
    const std::size_t count = (2u << 20) / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < count; ++i)
        vec.push_back(i);
    for (std::size_t i = 0; i < count; i += 4097)
        EXPECT_EQ(vec[i], i);
}

TEST(HugePages, ForcedAdviseFailureFallsBackToBasePages)
{
    // The force hook makes the MADV_HUGEPAGE step fail on any host;
    // the allocation must come back aligned and fully usable anyway —
    // a failed advise degrades only TLB reach, never correctness.
    const std::uint64_t before = hugeAdviseFailures().load();
    hugeAdviseForceFailure().store(true);
    const std::size_t bytes = 3u << 20;
    void *mem = hugeAlloc(bytes);
    hugeAdviseForceFailure().store(false);

    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mem) % kHugePageBytes, 0u);
    std::memset(mem, 0xef, bytes);
    hugeFree(mem, bytes);
    EXPECT_EQ(hugeAdviseFailures().load(), before + 1);
}

TEST(HugePages, IneligibleAllocationsNeverCountAdviseFailures)
{
    // The plain-heap path has no advise step, so the hook must not
    // make small allocations look degraded.
    const std::uint64_t before = hugeAdviseFailures().load();
    hugeAdviseForceFailure().store(true);
    void *mem = hugeAlloc(4096);
    hugeAdviseForceFailure().store(false);
    ASSERT_NE(mem, nullptr);
    hugeFree(mem, 4096);
    EXPECT_EQ(hugeAdviseFailures().load(), before);
}

TEST(HugePages, DefaultPageEntriesTargetOneHugePage)
{
    EXPECT_EQ(pagedArrayDefaultEntries(1), kHugePageBytes);
    EXPECT_EQ(pagedArrayDefaultEntries(8), kHugePageBytes / 8);
    EXPECT_EQ(pagedArrayDefaultEntries(256), kHugePageBytes / 256);
    // Odd sizes round down to a power of two; huge sizes clamp up.
    EXPECT_EQ(pagedArrayDefaultEntries(24),
              std::bit_floor(kHugePageBytes / 24));
    EXPECT_EQ(pagedArrayDefaultEntries(kHugePageBytes), 4096u);
}

} // namespace
} // namespace dewrite
