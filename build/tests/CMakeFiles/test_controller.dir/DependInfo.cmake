
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/controller/bitlevel_test.cc" "tests/CMakeFiles/test_controller.dir/controller/bitlevel_test.cc.o" "gcc" "tests/CMakeFiles/test_controller.dir/controller/bitlevel_test.cc.o.d"
  "/root/repo/tests/controller/dewrite_controller_test.cc" "tests/CMakeFiles/test_controller.dir/controller/dewrite_controller_test.cc.o" "gcc" "tests/CMakeFiles/test_controller.dir/controller/dewrite_controller_test.cc.o.d"
  "/root/repo/tests/controller/plain_controller_test.cc" "tests/CMakeFiles/test_controller.dir/controller/plain_controller_test.cc.o" "gcc" "tests/CMakeFiles/test_controller.dir/controller/plain_controller_test.cc.o.d"
  "/root/repo/tests/controller/secure_baseline_test.cc" "tests/CMakeFiles/test_controller.dir/controller/secure_baseline_test.cc.o" "gcc" "tests/CMakeFiles/test_controller.dir/controller/secure_baseline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dewrite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
