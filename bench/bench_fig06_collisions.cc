/**
 * @file
 * Figure 6 — CRC-32 hash collision probability.
 *
 * Offline ground truth: fingerprints every *distinct* content each
 * application writes and counts contents whose CRC-32 collides with a
 * different content. Also reports the collisions the live engine
 * actually hit during detection (fingerprint matched, byte comparison
 * failed) — the events the confirm-by-read step exists to catch.
 *
 * Paper's shape: collision probability below 0.01% on average —
 * collisions exist (hence the confirm-by-read) but are vanishingly
 * rare.
 */

#include <cstdio>

#include <unordered_map>

#include "common/crc32.hh"
#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"

using namespace dewrite;

namespace {

struct CollisionCell {
    std::uint64_t distinct = 0;
    std::uint64_t colliding = 0;
    double probability = 0.0;
    double detect_mismatches = 0.0;
};

} // namespace

int
main()
{
    std::printf("Figure 6: CRC-32 collision probability\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    std::vector<CollisionCell> cells(apps.size());
    parallelFor(apps.size(), [&](std::size_t a) {
        // Offline scan of the write-back stream.
        SyntheticWorkload trace(apps[a], appSeed(apps[a]));
        std::unordered_map<std::uint32_t, std::uint64_t> by_crc;
        std::unordered_map<std::uint64_t, bool> seen;
        CollisionCell &cell = cells[a];
        MemEvent event;
        for (std::uint64_t i = 0; i < experimentEvents() &&
                                  trace.next(event);
             ++i) {
            if (!event.isWrite)
                continue;
            const std::uint64_t digest = event.data.contentDigest();
            if (seen.emplace(digest, true).second) {
                ++cell.distinct;
                const std::uint32_t hash = crc32(event.data);
                auto [it, fresh] = by_crc.emplace(hash, digest);
                if (!fresh && it->second != digest)
                    cell.colliding += 2;
            }
        }
        cell.probability =
            cell.distinct ? static_cast<double>(cell.colliding) /
                                static_cast<double>(cell.distinct)
                          : 0.0;

        // What the live engine saw.
        const ExperimentResult r =
            runApp(apps[a], config, dewriteScheme(DedupMode::Predicted));
        cell.detect_mismatches = r.stats.get("collision_mismatches");
    });

    TablePrinter table({ "app", "distinct contents", "colliding",
                         "collision prob", "detect mismatches" });
    double prob_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const CollisionCell &cell = cells[a];
        prob_sum += cell.probability;
        table.addRow({ apps[a].name, TablePrinter::num(cell.distinct, 0),
                       TablePrinter::num(cell.colliding, 0),
                       TablePrinter::percent(cell.probability, 4),
                       TablePrinter::num(cell.detect_mismatches, 0) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::percent(
                       prob_sum / static_cast<double>(appCatalog().size()),
                       4),
                   "-" });
    table.print();

    std::printf("\npaper: collision probability < 0.01%% on average\n");
    return 0;
}
