/**
 * @file
 * Duplication-state predictor (Section III-A).
 *
 * Duplicate and non-duplicate writes arrive in runs: the paper measures
 * that 92% of writes share the duplication state of their predecessor.
 * DeWrite exploits this with a tiny history window — the duplication
 * states of the k most recent writes — and predicts the majority state.
 * The paper settles on k = 3 (93.6% mean accuracy); k is a parameter
 * here so the Figure 4 sweep can vary it.
 */

#ifndef DEWRITE_DEDUP_PREDICTOR_HH
#define DEWRITE_DEDUP_PREDICTOR_HH

#include <cstdint>

#include "common/stats.hh"
#include "obs/metric_registry.hh"

namespace dewrite {

class DupPredictor
{
  public:
    /** @param history_bits Window size k in writes; the paper uses 3. */
    explicit DupPredictor(unsigned history_bits = 3);

    /**
     * Predicts whether the next write will be a duplicate: true if
     * duplicates hold the majority of the window (ties break toward the
     * most recent state, which reduces to last-state prediction for
     * even k).
     */
    bool predictDuplicate() const;

    /** Records the resolved duplication state of a completed write. */
    void record(bool was_duplicate);

    /** Records an outcome and scores the prediction made beforehand. */
    void recordAndScore(bool was_duplicate);

    unsigned historyBits() const { return historyBits_; }

    std::uint64_t predictions() const { return predictions_.value(); }
    std::uint64_t correct() const { return correct_.value(); }

    /** Fraction of scored predictions that matched the outcome. */
    double accuracy() const;

    /**
     * Registers prediction metrics under @p scope (canonically
     * "controller.predictor"); the accuracy gauge keeps the legacy
     * "prediction_accuracy" StatSet key.
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const
    {
        scope.counter("predictions", predictions_,
                      "scored duplication-state predictions");
        scope.counter("correct", correct_,
                      "predictions matching the resolved state");
        scope.gauge("accuracy", [this] { return accuracy(); },
                    "fraction of predictions that were correct",
                    "prediction_accuracy");
    }

  private:
    unsigned historyBits_;
    std::uint64_t window_ = 0;   //!< Bit i = state of the i-th most recent.
    unsigned filled_ = 0;        //!< Number of recorded states, <= k.

    Counter predictions_;
    Counter correct_;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_PREDICTOR_HH
