/**
 * @file
 * Deterministic fingerprinting of experiment cells for the golden
 * parity tests.
 *
 * The signature/fingerprint implementation moved into the library
 * (sim/experiment.hh: resultSignature / resultFingerprint) so the
 * bench binaries can emit the same parity fingerprints the golden
 * tests check; this header keeps the historical test-local names. The
 * golden constants embedded in golden_parity_test.cc were produced by
 * the pre-FlatMap (node-based std::unordered_map) implementation, so
 * the test proves later data-structure and batching work changed no
 * observable counter by even one bit.
 */

#ifndef DEWRITE_TESTS_SIM_GOLDEN_FINGERPRINT_HH
#define DEWRITE_TESTS_SIM_GOLDEN_FINGERPRINT_HH

#include <string>

#include "sim/experiment.hh"

namespace dewrite {

inline std::string
cellSignature(const ExperimentResult &cell)
{
    return resultSignature(cell);
}

inline std::uint32_t
cellFingerprint(const ExperimentResult &cell)
{
    return resultFingerprint(cell);
}

} // namespace dewrite

#endif // DEWRITE_TESTS_SIM_GOLDEN_FINGERPRINT_HH
