/**
 * @file
 * A small persistent key-value store running on simulated secure NVMM
 * — the API from an application's point of view.
 *
 * Keys map to line addresses via a fixed open-addressed directory;
 * values are 255-byte blobs stored one per line (byte 0 holds the
 * length). The interesting part is underneath: identical values stored
 * under different keys are deduplicated by the controller, and
 * everything is encrypted at rest.
 *
 * Build & run:
 *   ./build/examples/secure_kvstore
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "sim/system.hh"

using namespace dewrite;

namespace {

/** A toy KV store over the line-granularity secure NVM API. */
class SecureKvStore
{
  public:
    explicit SecureKvStore(System &system) : system_(system) {}

    bool
    put(const std::string &key, const std::string &value)
    {
        if (value.size() > kLineSize - 1)
            return false;
        const LineAddr slot = findSlot(key, /*for_insert=*/true);
        if (slot == kInvalidAddr)
            return false;

        Line line;
        line.setByte(0, static_cast<std::uint8_t>(value.size()));
        std::memcpy(line.data() + 1, value.data(), value.size());
        system_.write(dataAddr(slot), line);

        keys_[slot] = key;
        return true;
    }

    std::optional<std::string>
    get(const std::string &key)
    {
        const LineAddr slot = findSlot(key, /*for_insert=*/false);
        if (slot == kInvalidAddr)
            return std::nullopt;
        const CtrlReadResult read = system_.read(dataAddr(slot));
        if (!read.valid)
            return std::nullopt;
        return std::string(
            reinterpret_cast<const char *>(read.data.data() + 1),
            read.data.byte(0));
    }

  private:
    static constexpr LineAddr kSlots = 4096;

    static LineAddr
    dataAddr(LineAddr slot)
    {
        return 1000 + slot; // The store's region of the address space.
    }

    LineAddr
    findSlot(const std::string &key, bool for_insert)
    {
        const std::size_t start =
            std::hash<std::string>{}(key) % kSlots;
        for (LineAddr probe = 0; probe < kSlots; ++probe) {
            const LineAddr slot = (start + probe) % kSlots;
            if (keys_[slot].empty())
                return for_insert ? slot : kInvalidAddr;
            if (keys_[slot] == key)
                return slot;
        }
        return kInvalidAddr;
    }

    System &system_;
    std::string keys_[kSlots];
};

} // namespace

int
main()
{
    SystemConfig config;
    SchemeOptions scheme;
    scheme.kind = SchemeKind::DeWrite;
    System system(config, scheme);
    SecureKvStore store(system);

    // A config blob replicated under many keys — the classic
    // dedup-friendly pattern (think per-tenant default settings).
    const std::string default_config =
        "retries=3;timeout=500ms;tls=on;region=eu-west-1";
    for (int tenant = 0; tenant < 64; ++tenant)
        store.put("tenant/" + std::to_string(tenant) + "/config",
                  default_config);

    // Some unique values too.
    store.put("tenant/7/owner", "alice");
    store.put("tenant/9/owner", "bob");

    const auto fetched = store.get("tenant/42/config");
    std::printf("get tenant/42/config -> '%s'\n",
                fetched ? fetched->c_str() : "(missing)");
    std::printf("get tenant/9/owner   -> '%s'\n",
                store.get("tenant/9/owner")->c_str());
    std::printf("get tenant/9/missing -> %s\n",
                store.get("tenant/9/missing") ? "??" : "(missing)");

    const MemController &ctrl = system.controller();
    std::printf("\n66 puts -> %llu NVM line writes "
                "(%llu duplicates eliminated)\n",
                static_cast<unsigned long long>(
                    system.device().numWrites()),
                static_cast<unsigned long long>(
                    ctrl.writesEliminated()));
    std::printf("avg write latency %.0f ns, avg read latency %.0f ns\n",
                ctrl.avgWriteLatency() / kNanoSecond,
                ctrl.avgReadLatency() / kNanoSecond);
    return 0;
}
