/**
 * @file
 * Line implementation.
 */

#include "common/line.hh"

#include <bit>
#include <cstdio>

#include "common/crc32.hh"
#include "common/rng.hh"

namespace dewrite {

Line
Line::filled(std::uint8_t value)
{
    Line line;
    line.bytes_.fill(value);
    return line;
}

Line
Line::random(Rng &rng)
{
    Line line;
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        line.setWord64(i, rng.next64());
    return line;
}

Line
Line::pattern(std::uint64_t word)
{
    Line line;
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        line.setWord64(i, word);
    return line;
}

std::uint64_t
Line::word64(std::size_t i) const
{
    std::uint64_t value;
    std::memcpy(&value, bytes_.data() + i * 8, 8);
    return value;
}

void
Line::setWord64(std::size_t i, std::uint64_t value)
{
    std::memcpy(bytes_.data() + i * 8, &value, 8);
}

std::uint16_t
Line::word16(std::size_t i) const
{
    std::uint16_t value;
    std::memcpy(&value, bytes_.data() + i * 2, 2);
    return value;
}

void
Line::setWord16(std::size_t i, std::uint16_t value)
{
    std::memcpy(bytes_.data() + i * 2, &value, 2);
}

bool
Line::isZero() const
{
    for (std::size_t i = 0; i < kLineSize / 8; ++i) {
        if (word64(i) != 0)
            return false;
    }
    return true;
}

Line
Line::operator^(const Line &other) const
{
    Line result;
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        result.setWord64(i, word64(i) ^ other.word64(i));
    return result;
}

Line
Line::inverted() const
{
    Line result;
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        result.setWord64(i, ~word64(i));
    return result;
}

std::size_t
Line::bitDistance(const Line &other) const
{
    std::size_t bits = 0;
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        bits += std::popcount(word64(i) ^ other.word64(i));
    return bits;
}

std::size_t
Line::popcount() const
{
    std::size_t bits = 0;
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        bits += std::popcount(word64(i));
    return bits;
}

std::uint64_t
Line::contentDigest() const
{
    const std::uint64_t hi = crc32c(bytes_.data(), kLineSize / 2);
    const std::uint64_t lo =
        crc32c(bytes_.data() + kLineSize / 2, kLineSize / 2);
    return (hi << 32) | lo;
}

std::string
Line::debugString() const
{
    char buf[2 * 8 + 4];
    std::snprintf(buf, sizeof(buf), "%02x%02x%02x%02x%02x%02x%02x%02x...",
                  bytes_[0], bytes_[1], bytes_[2], bytes_[3],
                  bytes_[4], bytes_[5], bytes_[6], bytes_[7]);
    return buf;
}

} // namespace dewrite
