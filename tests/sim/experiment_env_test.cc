/**
 * @file
 * DEWRITE_EVENTS parsing tests.
 *
 * experimentEvents() sizes every experiment in the suite, so a typo'd
 * override must die loudly instead of silently truncating (strtoull
 * happily parses "12k" as 12) or wrapping (negative input).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hh"

namespace dewrite {
namespace {

/** Scoped environment override (unset restores at destruction). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

TEST(ExperimentEventsTest, DefaultsWhenUnset)
{
    ::unsetenv("DEWRITE_EVENTS");
    EXPECT_EQ(experimentEvents(), 120000u);
}

TEST(ExperimentEventsTest, HonorsValidOverride)
{
    ScopedEnv env("DEWRITE_EVENTS", "5000");
    EXPECT_EQ(experimentEvents(), 5000u);
}

TEST(ExperimentEventsTest, AcceptsTheMaximum)
{
    const std::string max =
        std::to_string(static_cast<unsigned long long>(
            kMaxExperimentEvents));
    ScopedEnv env("DEWRITE_EVENTS", max.c_str());
    EXPECT_EQ(experimentEvents(), kMaxExperimentEvents);
}

TEST(ExperimentEventsDeathTest, RejectsMalformedValue)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_EVENTS", "lots");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

TEST(ExperimentEventsDeathTest, RejectsTrailingGarbage)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_EVENTS", "12k");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

TEST(ExperimentEventsDeathTest, RejectsEmptyValue)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_EVENTS", "");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

TEST(ExperimentEventsDeathTest, RejectsZero)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_EVENTS", "0");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

TEST(ExperimentEventsDeathTest, RejectsNegative)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_EVENTS", "-5");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

TEST(ExperimentEventsDeathTest, RejectsOverflow)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // 2^64 overflows strtoull (ERANGE).
    ScopedEnv env("DEWRITE_EVENTS", "18446744073709551616");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

TEST(ExperimentEventsDeathTest, RejectsMalformedAuditEpochEagerly)
{
    // The epoch value is only *used* when DEWRITE_AUDIT=1, but a
    // malformed value must die up front either way (fail-fast policy
    // for every DEWRITE_* variable).
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_AUDIT_EPOCH", "junk");
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_AUDIT_EPOCH");
}

TEST(ExperimentEventsDeathTest, RejectsAboveTheMaximum)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const std::string above =
        std::to_string(static_cast<unsigned long long>(
                           kMaxExperimentEvents) +
                       1);
    ScopedEnv env("DEWRITE_EVENTS", above.c_str());
    EXPECT_EXIT(experimentEvents(), ::testing::ExitedWithCode(1),
                "DEWRITE_EVENTS");
}

} // namespace
} // namespace dewrite
