/**
 * @file
 * Figure 6 — CRC-32 hash collision probability.
 *
 * Offline ground truth: fingerprints every *distinct* content each
 * application writes and counts contents whose CRC-32 collides with a
 * different content. Also reports the collisions the live engine
 * actually hit during detection (fingerprint matched, byte comparison
 * failed) — the events the confirm-by-read step exists to catch.
 *
 * Paper's shape: collision probability below 0.01% on average —
 * collisions exist (hence the confirm-by-read) but are vanishingly
 * rare.
 */

#include <cstdio>

#include <unordered_map>

#include "common/crc32.hh"
#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 6: CRC-32 collision probability\n\n");

    SystemConfig config;
    TablePrinter table({ "app", "distinct contents", "colliding",
                         "collision prob", "detect mismatches" });
    double prob_sum = 0.0;
    for (const AppProfile &app : appCatalog()) {
        // Offline scan of the write-back stream.
        SyntheticWorkload trace(app, appSeed(app));
        std::unordered_map<std::uint32_t, std::uint64_t> by_crc;
        std::unordered_map<std::uint64_t, bool> seen;
        std::uint64_t distinct = 0, colliding = 0;
        MemEvent event;
        for (std::uint64_t i = 0; i < experimentEvents() &&
                                  trace.next(event);
             ++i) {
            if (!event.isWrite)
                continue;
            const std::uint64_t digest = event.data.contentDigest();
            if (seen.emplace(digest, true).second) {
                ++distinct;
                const std::uint32_t hash = crc32(event.data);
                auto [it, fresh] = by_crc.emplace(hash, digest);
                if (!fresh && it->second != digest)
                    colliding += 2;
            }
        }
        const double probability =
            distinct ? static_cast<double>(colliding) / distinct : 0.0;
        prob_sum += probability;

        // What the live engine saw.
        const ExperimentResult r =
            runApp(app, config, dewriteScheme(DedupMode::Predicted));

        table.addRow({ app.name, TablePrinter::num(distinct, 0),
                       TablePrinter::num(colliding, 0),
                       TablePrinter::percent(probability, 4),
                       TablePrinter::num(
                           r.stats.get("collision_mismatches"), 0) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::percent(
                       prob_sum / static_cast<double>(appCatalog().size()),
                       4),
                   "-" });
    table.print();

    std::printf("\npaper: collision probability < 0.01%% on average\n");
    return 0;
}
