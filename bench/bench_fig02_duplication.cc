/**
 * @file
 * Figure 2 — the percentage of duplicate lines written to memory.
 *
 * For each of the 20 applications, replays the write-back stream
 * against a reference memory image and reports the fraction of writes
 * whose content already exists in memory, split into zero lines and
 * non-zero duplicates.
 *
 * Paper's shape: duplicates range 18.6% (vips) to 98.4% (cactusADM)
 * with a 58% mean; zero lines average ~16% and dominate only sjeng.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"
#include "trace/workload_stats.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 2: duplicate lines written to NVMM\n\n");

    TablePrinter table({ "app", "suite", "dup lines", "zero lines",
                         "non-zero dup" });
    double dup_sum = 0.0;
    double zero_sum = 0.0;
    for (const AppProfile &app : appCatalog()) {
        SyntheticWorkload trace(app, appSeed(app));
        const WorkloadStats stats =
            measureWorkload(trace, experimentEvents());
        dup_sum += stats.dupFraction();
        zero_sum += stats.zeroFraction();
        table.addRow({ app.name, app.suite,
                       TablePrinter::percent(stats.dupFraction()),
                       TablePrinter::percent(stats.zeroFraction()),
                       TablePrinter::percent(stats.dupFraction() -
                                             stats.zeroFraction()) });
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", "-", TablePrinter::percent(dup_sum / n),
                   TablePrinter::percent(zero_sum / n),
                   TablePrinter::percent((dup_sum - zero_sum) / n) });
    table.print();

    std::printf("\npaper: dup 18.6%%..98.4%%, mean 58%%; "
                "zero mean ~16%%, sjeng zero-dominated\n");
    return 0;
}
