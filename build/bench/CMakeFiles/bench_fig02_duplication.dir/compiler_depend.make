# Empty compiler generated dependencies file for bench_fig02_duplication.
# This may be replaced when dependencies are built.
