/**
 * @file
 * DeuceReducer implementation.
 */

#include "controller/bitlevel/deuce.hh"

#include <bit>

namespace dewrite {

std::size_t
DeuceReducer::onWrite(LineAddr slot, const Line &new_pt,
                      std::uint64_t counter)
{
    SlotState &st = state_.ref(slot);
    const bool epoch =
        !st.initialized || (counter % kEpochInterval == 0);

    std::size_t flips = 0;
    if (epoch) {
        // Epoch boundary (or first touch): the full line re-encrypts
        // under the new trailing counter and the modified set clears.
        const Line new_ct = cme_.encryptLine(new_pt, slot, counter);
        flips = st.cellImage.bitDistance(new_ct);
        st.cellImage = new_ct;
        st.epochCounter = counter;
        st.modified.reset();
        st.initialized = true;
    } else {
        const Line pad_lead = cme_.makePad(slot, counter);
        Line new_cell = st.cellImage;
        for (std::size_t w = 0; w < kWordsPerLine; ++w) {
            if (new_pt.word16(w) != st.plainImage.word16(w))
                st.modified.set(w);
            if (!st.modified.test(w))
                continue; // Untouched this epoch: stale ciphertext stays.
            const std::uint16_t ct = static_cast<std::uint16_t>(
                new_pt.word16(w) ^ pad_lead.word16(w));
            flips += std::popcount(
                static_cast<unsigned>(ct ^ st.cellImage.word16(w)));
            new_cell.setWord16(w, ct);
        }
        st.cellImage = new_cell;
    }
    st.plainImage = new_pt;
    return flips;
}

} // namespace dewrite
