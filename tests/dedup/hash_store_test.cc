/**
 * @file
 * HashStore tests: chains, references, saturation.
 */

#include "dedup/hash_store.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(HashStoreTest, EmptyLookup)
{
    HashStore store;
    EXPECT_TRUE(store.lookup(0x1234).empty());
    EXPECT_EQ(store.size(), 0u);
}

TEST(HashStoreTest, InsertAndLookup)
{
    HashStore store;
    store.insert(0xaaaa, 7);
    const auto &chain = store.lookup(0xaaaa);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].realAddr, 7u);
    EXPECT_EQ(chain[0].reference, 1u);
    EXPECT_EQ(store.size(), 1u);
}

TEST(HashStoreTest, CollisionChains)
{
    HashStore store;
    store.insert(0xbbbb, 1);
    store.insert(0xbbbb, 2);
    EXPECT_EQ(store.lookup(0xbbbb).size(), 2u);
    EXPECT_EQ(store.collidingEntries(), 2u);
    EXPECT_EQ(store.maxChainLength(), 2u);
    EXPECT_EQ(store.distinctHashes(), 1u);
}

TEST(HashStoreTest, ReferenceLifecycle)
{
    HashStore store;
    store.insert(0xcccc, 5);
    EXPECT_TRUE(store.addReference(0xcccc, 5));
    EXPECT_EQ(store.reference(0xcccc, 5), 2u);
    EXPECT_FALSE(store.dropReference(0xcccc, 5)); // 2 -> 1, survives.
    EXPECT_TRUE(store.dropReference(0xcccc, 5));  // 1 -> 0, removed.
    EXPECT_TRUE(store.lookup(0xcccc).empty());
    EXPECT_EQ(store.size(), 0u);
}

TEST(HashStoreTest, SaturationRefusesNewReferences)
{
    HashStore store;
    store.insert(0xdddd, 3);
    for (int i = 1; i < 255; ++i)
        EXPECT_TRUE(store.addReference(0xdddd, 3));
    EXPECT_EQ(store.reference(0xdddd, 3), 255u);
    // The 256th reference is refused (Section III-B2).
    EXPECT_FALSE(store.addReference(0xdddd, 3));
    EXPECT_EQ(store.reference(0xdddd, 3), 255u);
    EXPECT_EQ(store.saturationRefusals(), 1u);
}

TEST(HashStoreTest, SaturatedRecordIsPinned)
{
    HashStore store;
    store.insert(0xeeee, 4);
    for (int i = 1; i < 255; ++i)
        store.addReference(0xeeee, 4);
    // Once saturated, drops never free the record: the true count is
    // unknown.
    for (int i = 0; i < 300; ++i)
        EXPECT_FALSE(store.dropReference(0xeeee, 4));
    EXPECT_EQ(store.reference(0xeeee, 4), 255u);
}

TEST(HashStoreTest, DropOnlyAffectsMatchingSlot)
{
    HashStore store;
    store.insert(0xffff, 1);
    store.insert(0xffff, 2);
    EXPECT_TRUE(store.dropReference(0xffff, 1));
    const auto &chain = store.lookup(0xffff);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].realAddr, 2u);
}

TEST(HashStoreTest, ForEachVisitsEverything)
{
    HashStore store;
    store.insert(1, 10);
    store.insert(2, 20);
    store.insert(2, 30);
    std::size_t visited = 0;
    store.forEach([&](std::uint32_t, const HashEntry &) { ++visited; });
    EXPECT_EQ(visited, 3u);
}

TEST(HashStoreDeathTest, DoubleInsertPanics)
{
    HashStore store;
    store.insert(7, 7);
    EXPECT_DEATH(store.insert(7, 7), "duplicate insert");
}

TEST(HashStoreDeathTest, AddReferenceToAbsentPanics)
{
    HashStore store;
    EXPECT_DEATH(store.addReference(9, 9), "absent");
}

TEST(HashStoreDeathTest, DropReferenceFromAbsentPanics)
{
    HashStore store;
    store.insert(5, 1);
    EXPECT_DEATH(store.dropReference(5, 99), "absent");
}

} // namespace
} // namespace dewrite
