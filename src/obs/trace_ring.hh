/**
 * @file
 * Per-write pipeline event tracing: a fixed-capacity ring buffer plus
 * an epoch-aggregated time series.
 *
 * Every write a controller services makes a chain of decisions —
 * prediction, duplication detection, which encryption path was
 * scheduled, where the slot counter was embedded, whether it spilled
 * to the overflow store. The WriteTracer records one WriteEvent per
 * write into a preallocated ring (zero allocation in steady state;
 * the oldest events are overwritten once the ring is full) and folds
 * every event into the current epoch aggregate, so a run yields both
 * a fine-grained tail of events (exported as a Perfetto-loadable
 * Chrome trace, see trace_export.hh) and a full-run time series of
 * write reduction and prediction accuracy per epoch.
 *
 * Cost discipline: a System without tracing enabled carries a null
 * tracer pointer, so the hot path pays one predictable branch. When
 * the tracer is compiled out (cmake -DDEWRITE_TRACE=OFF, which defines
 * DEWRITE_TRACE=0), record() is an empty inline and the ring is never
 * allocated, so the entire mechanism vanishes from the binary.
 */

#ifndef DEWRITE_OBS_TRACE_RING_HH
#define DEWRITE_OBS_TRACE_RING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

#ifndef DEWRITE_TRACE
#define DEWRITE_TRACE 1
#endif

namespace dewrite::obs {

/** Which encryption schedule the controller chose for a write. */
enum class WritePath : std::uint8_t
{
    Direct,   //!< Detect first, encrypt only confirmed-unique lines.
    Parallel, //!< Encryption launched speculatively with detection.
};

/** Where the slot's encryption counter ended up embedded (III-C). */
enum class CounterHome : std::uint8_t
{
    None,         //!< No slot involved (duplicate of nothing / n/a).
    Mapping,      //!< Null address-mapping entry of the slot.
    InvertedHash, //!< Null inverted-hash entry of the slot.
    Overflow,     //!< Both homes occupied; spilled to the side store.
};

const char *writePathName(WritePath path);
const char *counterHomeName(CounterHome home);

/** One write's trip through the pipeline. */
struct WriteEvent
{
    std::uint64_t seq = 0;    //!< Assigned by the tracer, 0-based.
    Time issue = 0;           //!< Simulated issue time (ps).
    Time done = 0;            //!< Simulated completion time (ps).
    LineAddr addr = 0;        //!< Logical line address written.
    std::uint32_t hash = 0;   //!< Content fingerprint (low 32 bits).
    WritePath path = WritePath::Direct;
    std::int8_t predictedDup = -1; //!< -1 no prediction, else 0/1.
    bool duplicate = false;        //!< Resolved duplication state.
    bool authoritative = false;    //!< Hash store actually consulted.
    bool wroteLine = false;        //!< A data-line NVM write was issued.
    bool reencrypted = false;      //!< Optimistic ciphertext discarded.
    CounterHome home = CounterHome::None;
    std::uint8_t confirmReads = 0; //!< Confirmation lines read.
};

/** Aggregate of one epoch (a fixed budget of consecutive writes). */
struct EpochSnapshot
{
    std::uint64_t epoch = 0;  //!< 0-based epoch index.
    std::uint64_t events = 0;
    std::uint64_t duplicates = 0;  //!< Writes resolved duplicate
                                   //!< (= data-line writes eliminated).
    std::uint64_t predictions = 0; //!< Events carrying a prediction.
    std::uint64_t correctPredictions = 0;
    std::uint64_t overflows = 0;   //!< Counters homed in the spill store.

    double writeReduction() const
    {
        return events ? static_cast<double>(duplicates) /
                            static_cast<double>(events)
                      : 0.0;
    }

    double predictionAccuracy() const
    {
        return predictions ? static_cast<double>(correctPredictions) /
                                 static_cast<double>(predictions)
                           : 0.0;
    }
};

/** Tracer sizing. */
struct TraceConfig
{
    std::size_t capacity = 1 << 16;  //!< Events retained in the ring.
    std::uint64_t epochEvents = 10000; //!< Events per epoch aggregate.
};

class WriteTracer
{
  public:
    explicit WriteTracer(const TraceConfig &config = TraceConfig());

    /** False when the tracer was compiled out (DEWRITE_TRACE=0). */
    static constexpr bool compiledIn() { return DEWRITE_TRACE != 0; }

#if DEWRITE_TRACE
    /** Records one event; overwrites the oldest once full. */
    void record(const WriteEvent &event);
#else
    void record(const WriteEvent &) {}
#endif

    /** Total events offered to the tracer. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events no longer in the ring (overwritten or capacity 0). */
    std::uint64_t dropped() const
    {
        return recorded_ - static_cast<std::uint64_t>(size());
    }

    /** Events currently retained. */
    std::size_t size() const { return held_; }

    std::size_t capacity() const { return ring_.size(); }

    /** @p i-th retained event, oldest first; @p i < size(). */
    const WriteEvent &event(std::size_t i) const;

    /** Completed epochs, oldest first. */
    const std::vector<EpochSnapshot> &epochs() const { return epochs_; }

    /** The in-progress (not yet full) epoch aggregate. */
    const EpochSnapshot &currentEpoch() const { return current_; }

    std::uint64_t epochEvents() const { return epochEvents_; }

  private:
    std::vector<WriteEvent> ring_;
    std::size_t head_ = 0; //!< Next write position.
    std::size_t held_ = 0;
    std::uint64_t recorded_ = 0;

    std::uint64_t epochEvents_;
    EpochSnapshot current_;
    std::vector<EpochSnapshot> epochs_;
};

} // namespace dewrite::obs

#endif // DEWRITE_OBS_TRACE_RING_HH
