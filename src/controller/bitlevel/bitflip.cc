/**
 * @file
 * Reducer factory and technique names.
 */

#include "controller/bitlevel/bitflip.hh"

#include "common/logging.hh"
#include "controller/bitlevel/dcw.hh"
#include "controller/bitlevel/deuce.hh"
#include "controller/bitlevel/fnw.hh"
#include "controller/bitlevel/secret.hh"

namespace dewrite {

std::string
bitTechniqueName(BitTechnique technique)
{
    switch (technique) {
      case BitTechnique::None:
        return "Full";
      case BitTechnique::Dcw:
        return "DCW";
      case BitTechnique::Fnw:
        return "FNW";
      case BitTechnique::Deuce:
        return "DEUCE";
      case BitTechnique::Secret:
        return "SECRET";
    }
    panic("bad bit technique");
}

std::unique_ptr<BitLevelReducer>
makeReducer(BitTechnique technique, const CounterModeEngine &cme)
{
    switch (technique) {
      case BitTechnique::None:
        return std::make_unique<NoneReducer>(cme);
      case BitTechnique::Dcw:
        return std::make_unique<DcwReducer>(cme);
      case BitTechnique::Fnw:
        return std::make_unique<FnwReducer>(cme);
      case BitTechnique::Deuce:
        return std::make_unique<DeuceReducer>(cme);
      case BitTechnique::Secret:
        return std::make_unique<SecretReducer>(cme);
    }
    panic("bad bit technique");
}

} // namespace dewrite
