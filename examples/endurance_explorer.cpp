/**
 * @file
 * Endurance explorer: project PCM module lifetime under different
 * controller schemes for a chosen application.
 *
 * Usage:
 *   ./build/examples/endurance_explorer [app] [events]
 *
 * Compares the plain controller, the secure baseline (with and
 * without DCW), and DeWrite (with and without DCW) on line writes,
 * cell-bit writes, and relative lifetime under idealized wear
 * leveling.
 */

#include <cstdio>
#include <cstdlib>

#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "zeusmp";
    const std::uint64_t events =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                 : experimentEvents();

    const AppProfile &app = appByName(app_name);
    SystemConfig config;

    struct Variant
    {
        const char *label;
        SchemeOptions scheme;
    };
    std::vector<Variant> variants;
    variants.push_back({ "plain NVM", plainScheme() });
    variants.push_back({ "secure baseline", secureBaselineScheme() });
    {
        SchemeOptions s = secureBaselineScheme();
        s.baseline.technique = BitTechnique::Dcw;
        variants.push_back({ "secure baseline + DCW", s });
    }
    variants.push_back(
        { "DeWrite", dewriteScheme(DedupMode::Predicted) });
    {
        SchemeOptions s = dewriteScheme(DedupMode::Predicted);
        s.dewrite.technique = BitTechnique::Dcw;
        variants.push_back({ "DeWrite + DCW", s });
    }

    std::printf("Endurance projection for '%s' (%llu events, "
                "cell endurance 1e8)\n\n",
                app.name.c_str(),
                static_cast<unsigned long long>(events));

    constexpr std::uint64_t kCellEndurance = 100000000ULL;

    TablePrinter table({ "scheme", "line writes", "cell bits",
                         "max line wear", "relative lifetime" });
    double reference_lifetime = 0.0;
    for (const Variant &variant : variants) {
        DetailedExperiment detailed = runAppDetailed(
            app, config, variant.scheme, events, appSeed(app));
        const WearTracker &wear = detailed.system->device().wear();
        // Lifetime under idealized leveling is set by total *cell*
        // writes, so line-level (DeWrite) and bit-level (DCW)
        // reductions both show up and compound.
        const double cell_budget =
            static_cast<double>(kCellEndurance) *
            static_cast<double>(config.memory.numLines) * kLineBits;
        const double lifetime =
            cell_budget / static_cast<double>(wear.totalBitsWritten());
        if (reference_lifetime == 0.0)
            reference_lifetime = lifetime;
        table.addRow(
            { variant.label,
              TablePrinter::num(
                  static_cast<double>(wear.totalWrites()), 0),
              TablePrinter::num(
                  static_cast<double>(wear.totalBitsWritten()), 0),
              TablePrinter::num(
                  static_cast<double>(wear.maxLineWrites()), 0),
              TablePrinter::times(lifetime / reference_lifetime) });
    }
    table.print();

    std::printf("\nLifetime is normalized to the plain controller; "
                "eliminating writes (DeWrite) and bits (DCW) compound.\n");
    return 0;
}
