/**
 * @file
 * The on-chip metadata cache (Section III-B, Figure 5).
 *
 * Secure-NVM designs already place a write-back cache for encryption
 * counters in the memory controller; DeWrite reuses it to buffer the
 * four deduplication structures. The cache is partitioned per table:
 *
 *  - address-mapping table   (sequential, prefetched)  512 KB
 *  - inverted hash table     (sequential, prefetched)  512 KB
 *  - hash store              (hash-indexed, one line)  512 KB
 *  - free-space (FSM) bitmap (sequential, 1 bit/line)  128 KB
 *
 * Misses fetch a block of consecutive entries from the metadata region
 * of the NVM (the prefetch granularity of Figure 21) and pay a direct-
 * encryption decrypt; dirty evictions write blocks back, which is the
 * source of the paper's ~2.6% extra NVM writes.
 */

#ifndef DEWRITE_CACHE_METADATA_CACHE_HH
#define DEWRITE_CACHE_METADATA_CACHE_HH

#include <array>
#include <cstdint>

#include "cache/set_assoc_cache.hh"
#include "common/fast_div.hh"
#include "common/timing.hh"
#include "common/types.hh"
#include "obs/metric_registry.hh"

namespace dewrite {

class NvmDevice;

/** Which metadata structure an access targets. */
enum class MetadataTable : unsigned
{
    Mapping = 0,      //!< initAddr -> realAddr / colocated counter.
    InvertedHash = 1, //!< realAddr -> hash / colocated counter.
    HashStore = 2,    //!< hash -> (realAddr, refcount).
    Fsm = 3,          //!< free-line bitmap.
};

inline constexpr unsigned kNumMetadataTables = 4;

/** Outcome of one metadata access. */
struct MetadataAccessResult
{
    bool hit = false;
    Time latency = 0;        //!< Critical-path latency of the access.
    unsigned nvmReads = 0;   //!< NVM line reads issued for the fill.
    unsigned nvmWrites = 0;  //!< NVM line writes issued for writeback.
};

class MetadataCache
{
  public:
    /**
     * @param config System parameters (capacities, prefetch, timing).
     * @param device NVM device charged for fills and writebacks.
     * @param region_base First NVM line address of the metadata region;
     *        tables are laid out consecutively from here.
     */
    MetadataCache(const SystemConfig &config, NvmDevice &device,
                  LineAddr region_base);

    /**
     * Accesses entry @p index of @p table at time @p now; @p is_write
     * marks the resident block dirty.
     *
     * When @p allow_fill is false a miss does NOT fetch the block from
     * NVM — the probe returns a miss after the SRAM latency. This is
     * the hook for the paper's prediction-based NVM access (PNA)
     * scheme, which skips in-NVM hash-table queries for writes
     * predicted non-duplicate.
     */
    MetadataAccessResult access(MetadataTable table, std::uint64_t index,
                                bool is_write, Time now,
                                bool allow_fill = true);

    /**
     * Write of a brand-new entry (e.g. a hash-store insert): there is
     * nothing to read-modify, so a miss allocates the block dirty
     * *without* fetching it from NVM. Only the SRAM latency lands on
     * the critical path; a displaced dirty victim still writes back.
     */
    MetadataAccessResult insertEntry(MetadataTable table,
                                     std::uint64_t index, Time now);

    /**
     * Posted read-modify-write of an existing entry (e.g. a stale
     * hash record's reference decrement). Correctness does not depend
     * on it completing synchronously — a stale record only produces a
     * benign failed comparison — so on a miss the update is issued as
     * a background RMW instead of a foreground fill: one background
     * NVM write is charged and nothing blocks the requester.
     */
    MetadataAccessResult postUpdate(MetadataTable table,
                                    std::uint64_t index, Time now);

    /** Hit rate of one partition (Figure 21). */
    double hitRate(MetadataTable table) const;

    /** Dirty-eviction writebacks of one partition. */
    std::uint64_t dirtyEvictions(MetadataTable table) const;

    /** Total NVM line reads issued for metadata fills. */
    std::uint64_t nvmFillReads() const { return fillReads_.value(); }

    /** Total NVM line writes issued for metadata writebacks. */
    std::uint64_t nvmWritebacks() const { return writebacks_.value(); }

    /** Energy consumed: SRAM accesses plus metadata AES work. */
    Energy totalEnergy() const { return energy_; }

    /** Writes back every dirty block (models a clean shutdown/ADR). */
    void flushAll(Time now);

    /**
     * Registers cache traffic metrics under @p scope (canonically
     * "cache.metadata"): fills, writebacks, per-partition hit rates
     * and dirty evictions. Legacy names keep the historical DeWrite
     * StatSet keys (metadata_writebacks, hit_rate_mapping, ...).
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const;

  private:
    struct Partition
    {
        SetAssocCache directory;
        std::uint64_t entryBits;   //!< Size of one table entry in bits.
        std::uint64_t blockEntries;//!< Entries fetched per miss.
        std::uint64_t linesPerBlock;
        LineAddr base;             //!< First NVM line of this table.
        LineAddr lines;            //!< NVM lines the table spans.
        FastDiv entryDiv;          //!< index / blockEntries, exactly.
        FastDiv lineDiv;           //!< block offsets mod lines, exactly.

        Partition(std::size_t num_blocks, std::uint64_t entry_bits,
                  std::uint64_t block_entries, std::uint64_t lines_per_block,
                  LineAddr base_addr, LineAddr span)
            : directory(num_blocks), entryBits(entry_bits),
              blockEntries(block_entries), linesPerBlock(lines_per_block),
              base(base_addr), lines(span), entryDiv(block_entries),
              // The placeholder partitions are built with span 0 before
              // the real layout pass; FastDiv needs a nonzero divisor.
              lineDiv(span ? span : 1)
        {}
    };

    Partition &partition(MetadataTable table);
    const Partition &partition(MetadataTable table) const;

    /** Issues the fill reads for @p block and returns completion time. */
    Time fillBlock(Partition &part, std::uint64_t block, Time now,
                   MetadataAccessResult &result);

    /** Issues writeback writes for @p block (off the critical path). */
    void writebackBlock(Partition &part, std::uint64_t block, Time now,
                        MetadataAccessResult &result);

    const SystemConfig &config_;
    NvmDevice &device_;
    std::array<Partition, kNumMetadataTables> partitions_;

    Counter fillReads_;
    Counter writebacks_;
    Energy energy_ = 0;

  public:
    /** Total NVM lines the metadata region occupies (space overhead). */
    LineAddr regionLines() const;
};

} // namespace dewrite

#endif // DEWRITE_CACHE_METADATA_CACHE_HH
