/**
 * @file
 * WearTracker unit tests.
 */

#include "nvm/wear_tracker.hh"

#include <gtest/gtest.h>

#include "common/types.hh"

namespace dewrite {
namespace {

TEST(WearTrackerTest, StartsEmpty)
{
    WearTracker wear;
    EXPECT_EQ(wear.totalWrites(), 0u);
    EXPECT_EQ(wear.totalBitsWritten(), 0u);
    EXPECT_EQ(wear.maxLineWrites(), 0u);
    EXPECT_EQ(wear.linesTouched(), 0u);
    EXPECT_EQ(wear.lineWrites(0), 0u);
    EXPECT_EQ(wear.relativeLifetime(100, 100), 0.0);
}

TEST(WearTrackerTest, AccumulatesBits)
{
    WearTracker wear;
    wear.recordWrite(1, 100);
    wear.recordWrite(1, 50);
    EXPECT_EQ(wear.totalBitsWritten(), 150u);
    EXPECT_EQ(wear.lineWrites(1), 2u);
}

TEST(WearTrackerTest, MaxTracksHottestLine)
{
    WearTracker wear;
    for (int i = 0; i < 5; ++i)
        wear.recordWrite(9, kLineBits);
    wear.recordWrite(3, kLineBits);
    EXPECT_EQ(wear.maxLineWrites(), 5u);
}

TEST(WearTrackerTest, LifetimeBudgetFormula)
{
    WearTracker wear;
    for (int i = 0; i < 10; ++i)
        wear.recordWrite(i, kLineBits);
    // 1000 endurance x 100 lines = 100000 write budget; 10 consumed
    // per "unit" of this traffic -> 10000 units of lifetime.
    EXPECT_DOUBLE_EQ(wear.relativeLifetime(1000, 100), 10000.0);
}

} // namespace
} // namespace dewrite
