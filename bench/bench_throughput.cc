/**
 * @file
 * End-to-end simulation throughput of the experiment matrix.
 *
 * Runs the full Figure 12 workload matrix (every catalog app under the
 * secure baseline and all three DeWrite modes) and reports host-side
 * events per second — the number the flat-container and crypto-kernel
 * work optimizes. Results go to stdout as a table and to
 * BENCH_throughput.json (in the working directory) for tracking across
 * commits; the JSON includes each scheme's runner profile (per-cell
 * wall time, queue wait, per-worker busy time) so scaling regressions
 * show up alongside the throughput number.
 *
 * Events per cell come from DEWRITE_EVENTS (default 120000); pass
 * --quick for a 20x shorter run with the same shape.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table_printer.hh"
#include "obs/bench_report.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

struct SchemeTiming
{
    std::string name;
    std::size_t cells = 0;
    std::uint64_t events = 0;
    double seconds = 0.0;
    RunnerProfile profile;

    double eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const std::uint64_t events =
        quick ? experimentEvents() / 20 : experimentEvents();

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<std::pair<std::string, SchemeOptions>> schemes = {
        { "secure-baseline", secureBaselineScheme() },
        { "dewrite-direct", dewriteScheme(DedupMode::Direct) },
        { "dewrite-parallel", dewriteScheme(DedupMode::Parallel) },
        { "dewrite-predicted", dewriteScheme(DedupMode::Predicted) },
    };

    std::printf("End-to-end throughput: %zu apps x %zu schemes, "
                "%llu events/cell\n\n",
                apps.size(), schemes.size(),
                static_cast<unsigned long long>(events));

    std::vector<SchemeTiming> timings;
    std::uint64_t total_events = 0;
    double total_seconds = 0.0;
    for (const auto &[name, scheme] : schemes) {
        SchemeTiming timing;
        timing.name = name;
        const auto cells = runMatrixProfiled(apps, { scheme }, config,
                                             timing.profile, events, 0);
        timing.seconds = timing.profile.wallSeconds;
        timing.cells = cells.size();
        for (const auto &cell : cells)
            timing.events += cell.run.events;
        total_events += timing.events;
        total_seconds += timing.seconds;
        timings.push_back(std::move(timing));
    }

    TablePrinter table({ "scheme", "cells", "events", "wall (s)",
                         "events/sec", "util" });
    for (const SchemeTiming &t : timings) {
        table.addRow({ t.name, std::to_string(t.cells),
                       std::to_string(t.events),
                       TablePrinter::num(t.seconds),
                       TablePrinter::num(t.eventsPerSec(), 0),
                       TablePrinter::num(t.profile.utilization(), 2) });
    }
    const double overall =
        total_seconds > 0 ? static_cast<double>(total_events) /
                                total_seconds
                          : 0.0;
    table.addRow({ "TOTAL", "-", std::to_string(total_events),
                   TablePrinter::num(total_seconds),
                   TablePrinter::num(overall, 0), "-" });
    table.print();

    obs::BenchReport report("throughput", events, runnerThreads());
    if (!report.opened())
        return 1;
    obs::JsonWriter &w = report.json();
    w.key("schemes");
    w.beginArray();
    for (const SchemeTiming &t : timings) {
        w.beginObject();
        w.field("scheme", t.name);
        w.field("cells", static_cast<std::uint64_t>(t.cells));
        w.field("events", t.events);
        w.field("wall_seconds", t.seconds);
        w.field("events_per_sec", t.eventsPerSec());
        w.key("profile");
        t.profile.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.field("total_events", total_events);
    w.field("total_wall_seconds", total_seconds);
    w.field("events_per_sec", overall);
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", report.path().c_str());
    return 0;
}
