/**
 * @file
 * SetAssocCache implementation.
 */

#include "cache/set_assoc_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dewrite {

namespace {

/** Mixes block keys so adjacent blocks do not all map to one set. */
std::uint64_t
mixKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key;
}

/** use_ word layout: 0 = invalid, else (useClock << 1) | dirty. */
constexpr std::uint64_t kDirtyBit = 1;

} // namespace

SetAssocCache::SetAssocCache(std::size_t num_blocks, unsigned associativity)
    : numBlocks_(num_blocks), associativity_(associativity)
{
    if (associativity_ == 0)
        fatal("cache associativity must be nonzero");
    numSets_ = std::max<std::size_t>(1, num_blocks / associativity_);
    numBlocks_ = numSets_ * associativity_;
    setDiv_ = FastDiv(numSets_);
    keys_.resize(numBlocks_, 0);
    use_.resize(numBlocks_, 0);
}

std::size_t
SetAssocCache::setIndex(std::uint64_t key) const
{
    // FastDiv::mod is bit-identical to % but avoids the hardware
    // divide; this runs on every directory probe of every metadata
    // partition, which profiling puts near the top of the host cost.
    return setDiv_.mod(mixKey(key));
}

bool
SetAssocCache::access(std::uint64_t key, bool make_dirty)
{
    // dewrite-lint: hot
    const std::size_t base = setIndex(key) * associativity_;
    for (unsigned w = 0; w < associativity_; ++w) {
        const std::size_t slot = base + w;
        if (keys_[slot] == key && use_[slot] != 0) {
            use_[slot] = (++useClock_ << 1) |
                         ((use_[slot] & kDirtyBit) |
                          (make_dirty ? kDirtyBit : 0));
            hits_.increment();
            return true;
        }
    }
    misses_.increment();
    return false;
}

CacheEviction
SetAssocCache::insert(std::uint64_t key, bool dirty)
{
    const std::size_t base = setIndex(key) * associativity_;
    std::size_t victim = base;
    bool found = false;
    for (unsigned w = 0; w < associativity_; ++w) {
        const std::size_t slot = base + w;
        if (use_[slot] == 0) {
            victim = slot;
            found = true;
            break;
        }
        if (keys_[slot] == key)
            panic("inserting key %llu already resident",
                  static_cast<unsigned long long>(key));
        // Comparing the packed words orders by use clock: the clock is
        // strictly increasing, so the dirty bit can never tie-break.
        if (!found || use_[slot] < use_[victim]) {
            victim = slot;
            found = true;
        }
    }

    CacheEviction eviction;
    if (use_[victim] != 0) {
        eviction.valid = true;
        eviction.key = keys_[victim];
        eviction.dirty = (use_[victim] & kDirtyBit) != 0;
        if (eviction.dirty)
            dirtyEvictions_.increment();
    }

    keys_[victim] = key;
    use_[victim] = (++useClock_ << 1) | (dirty ? kDirtyBit : 0);
    return eviction;
}

bool
SetAssocCache::contains(std::uint64_t key) const
{
    const std::size_t base = setIndex(key) * associativity_;
    for (unsigned w = 0; w < associativity_; ++w) {
        if (keys_[base + w] == key && use_[base + w] != 0)
            return true;
    }
    return false;
}

CacheEviction
SetAssocCache::invalidate(std::uint64_t key)
{
    const std::size_t base = setIndex(key) * associativity_;
    for (unsigned w = 0; w < associativity_; ++w) {
        const std::size_t slot = base + w;
        if (keys_[slot] == key && use_[slot] != 0) {
            CacheEviction eviction{ true, keys_[slot],
                                    (use_[slot] & kDirtyBit) != 0 };
            if (eviction.dirty)
                dirtyEvictions_.increment();
            keys_[slot] = 0;
            use_[slot] = 0;
            return eviction;
        }
    }
    return {};
}

double
SetAssocCache::hitRate() const
{
    const std::uint64_t total = hits_.value() + misses_.value();
    return total ? static_cast<double>(hits_.value()) / total : 0.0;
}

void
SetAssocCache::flush()
{
    std::fill(keys_.begin(), keys_.end(), 0);
    std::fill(use_.begin(), use_.end(), 0);
}

std::vector<std::uint64_t>
SetAssocCache::dirtyKeys() const
{
    std::vector<std::uint64_t> keys;
    for (std::size_t slot = 0; slot < use_.size(); ++slot) {
        if (use_[slot] != 0 && (use_[slot] & kDirtyBit))
            keys.push_back(keys_[slot]);
    }
    return keys;
}

void
SetAssocCache::cleanAll()
{
    for (auto &use : use_)
        use &= ~kDirtyBit;
}

} // namespace dewrite
