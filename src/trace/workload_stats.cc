/**
 * @file
 * Workload measurement implementation.
 */

#include "trace/workload_stats.hh"

#include "common/dense_line_store.hh"
#include "common/flat_map.hh"

namespace dewrite {

double
WorkloadStats::dupFraction() const
{
    return writes ? static_cast<double>(duplicateWrites) / writes : 0.0;
}

double
WorkloadStats::zeroFraction() const
{
    return writes ? static_cast<double>(zeroWrites) / writes : 0.0;
}

double
WorkloadStats::statePersistence() const
{
    return writes > 1
        ? static_cast<double>(sameStateAsPrev) / (writes - 1)
        : 0.0;
}

WorkloadStats
measureWorkload(TraceSource &trace, std::uint64_t max_events)
{
    WorkloadStats stats;

    // Reference image: per-address contents plus a multiset of live
    // contents so "exists anywhere in memory" is O(1).
    DenseLineStore image;
    FlatMap<Line, std::uint64_t, LineHash> live;

    bool prev_dup = false;
    MemEvent event;
    for (std::uint64_t i = 0; i < max_events && trace.next(event); ++i) {
        if (!event.isWrite) {
            ++stats.reads;
            continue;
        }

        const bool dup = live.contains(event.data);
        if (stats.writes > 0 && dup == prev_dup)
            ++stats.sameStateAsPrev;
        prev_dup = dup;

        ++stats.writes;
        if (dup)
            ++stats.duplicateWrites;
        if (event.data.isZero())
            ++stats.zeroWrites;

        if (const Line *old = image.find(event.addr)) {
            std::uint64_t *count = live.find(*old);
            if (count && --*count == 0)
                live.erase(*old);
        }
        image.refForWrite(event.addr) = event.data;
        ++live[event.data];
    }
    return stats;
}

} // namespace dewrite
