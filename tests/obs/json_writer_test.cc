/**
 * @file
 * JsonWriter and jsonEscape tests: escaping correctness, container
 * bookkeeping, number formatting, and error latching.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>

#include "obs/json_writer.hh"

namespace dewrite::obs {
namespace {

// --- jsonEscape ------------------------------------------------------

TEST(JsonEscapeTest, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("dewrite-predicted"), "dewrite-predicted");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonEscapeTest, LeavesUtf8BytesAlone)
{
    // Multi-byte sequences are valid inside JSON strings unescaped.
    EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

// --- containers and commas -------------------------------------------

std::string
compact(const std::function<void(JsonWriter &)> &build)
{
    std::string out;
    JsonWriter w(&out, /*pretty=*/false);
    build(w);
    EXPECT_TRUE(w.ok());
    EXPECT_EQ(w.depth(), 0u);
    return out;
}

TEST(JsonWriterTest, EmitsNestedContainersWithCommas)
{
    const std::string out = compact([](JsonWriter &w) {
        w.beginObject();
        w.field("a", 1);
        w.key("b");
        w.beginArray();
        w.value(1);
        w.value(2);
        w.endArray();
        w.endObject();
    });
    EXPECT_EQ(out, R"({"a":1,"b":[1,2]})");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues)
{
    const std::string out = compact([](JsonWriter &w) {
        w.beginObject();
        w.field("sch\"eme", "a\\b");
        w.endObject();
    });
    EXPECT_EQ(out, R"({"sch\"eme":"a\\b"})");
}

TEST(JsonWriterTest, EmitsBoolAndNull)
{
    const std::string out = compact([](JsonWriter &w) {
        w.beginArray();
        w.value(true);
        w.value(false);
        w.valueNull();
        w.endArray();
    });
    EXPECT_EQ(out, "[true,false,null]");
}

// --- numbers ---------------------------------------------------------

TEST(JsonWriterTest, IntegersAreExact)
{
    const std::string out = compact([](JsonWriter &w) {
        w.beginArray();
        w.value(std::uint64_t{ 18446744073709551615ULL });
        w.value(std::int64_t{ -42 });
        w.endArray();
    });
    EXPECT_EQ(out, "[18446744073709551615,-42]");
}

TEST(JsonWriterTest, DoublesUseShortestRoundTrip)
{
    const std::string out = compact([](JsonWriter &w) {
        w.beginArray();
        w.value(0.1);
        w.value(2.0);
        w.value(-1.5);
        w.endArray();
    });
    EXPECT_EQ(out, "[0.1,2,-1.5]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull)
{
    const std::string out = compact([](JsonWriter &w) {
        w.beginArray();
        w.value(std::numeric_limits<double>::quiet_NaN());
        w.value(std::numeric_limits<double>::infinity());
        w.endArray();
    });
    EXPECT_EQ(out, "[null,null]");
}

// --- error latching --------------------------------------------------

TEST(JsonWriterTest, UnbalancedDocumentIsNotOk)
{
    std::string out;
    JsonWriter w(&out);
    w.beginObject();
    EXPECT_EQ(w.depth(), 1u);
    // Unclosed object: structurally unsound for a finished document.
    EXPECT_TRUE(w.ok()); // No stream error yet...
    w.endObject();
    w.endObject(); // ...but a spurious close latches failure.
    EXPECT_FALSE(w.ok());
}

TEST(JsonWriterTest, StreamErrorLatchesNotOk)
{
    std::FILE *sink = std::fopen("/dev/full", "w");
    if (!sink)
        GTEST_SKIP() << "/dev/full unavailable";
    JsonWriter w(sink);
    w.beginObject();
    for (int i = 0; i < 10000 && w.ok(); ++i) {
        // Built in two steps: GCC 12's -Wrestrict false-positives on
        // operator+(const char *, std::string &&) here.
        std::string key = "k";
        key += std::to_string(i);
        w.field(key, i);
    }
    w.endObject();
    const bool ok_after_flush = w.ok() && std::fflush(sink) == 0;
    std::fclose(sink);
    EXPECT_FALSE(ok_after_flush);
}

TEST(JsonWriterTest, PrettyOutputStaysParseableShape)
{
    std::string out;
    JsonWriter w(&out, /*pretty=*/true);
    w.beginObject();
    w.field("x", 1);
    w.endObject();
    EXPECT_TRUE(w.ok());
    EXPECT_NE(out.find("\"x\": 1"), std::string::npos);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
}

} // namespace
} // namespace dewrite::obs
