/**
 * @file
 * System implementation.
 */

#include "sim/system.hh"

#include "common/logging.hh"
#include "controller/plain_controller.hh"
#include "dedup/metadata_auditor.hh"
#include "trace/trace.hh"

namespace dewrite {

namespace {

std::unique_ptr<MemController>
makeController(const SystemConfig &config, NvmDevice &device,
               const SchemeOptions &scheme, const AesKey &key)
{
    switch (scheme.kind) {
      case SchemeKind::Plain:
        return std::make_unique<PlainController>(device);
      case SchemeKind::SecureBaseline:
        return std::make_unique<SecureBaselineController>(config, device,
                                                          key,
                                                          scheme.baseline);
      case SchemeKind::DeWrite:
        return std::make_unique<DeWriteController>(config, device, key,
                                                   scheme.dewrite);
    }
    panic("bad scheme kind");
}

} // namespace

AesKey
defaultAesKey()
{
    return AesKey{ 0xde, 0x77, 0x12, 0x17, 0xe5, 0xec, 0x12, 0x01,
                   0x8a, 0x5e, 0xcb, 0x1e, 0x00, 0x1c, 0xaf, 0xe5 };
}

System::System(const SystemConfig &config, const SchemeOptions &scheme,
               const AesKey &key)
    : config_(config), device_(config_), core_(config_.timing)
{
    validateConfig(config_);
    // Latch (and validate) DEWRITE_LOG up front so a malformed value
    // fails fast like DEWRITE_EVENTS, not on the first gated message.
    logLevel();
    controller_ = makeController(config_, device_, scheme, key);

    registry_.addGauge(
        "system.sim_picoseconds",
        [this] { return static_cast<double>(now_); },
        "simulated time of the direct API");
    device_.registerMetrics(registry_.scope("device"));
    core_.registerMetrics(registry_.scope("core"));
    controller_->registerMetrics(registry_);
}

obs::WriteTracer &
System::enableTracing(const obs::TraceConfig &config)
{
    if (!tracer_)
        tracer_ = std::make_unique<obs::WriteTracer>(config);
    controller_->attachTracer(tracer_.get());
    return *tracer_;
}

System::System(const SystemConfig &config, const SchemeOptions &scheme)
    : System(config, scheme, defaultAesKey())
{
}

// dewrite-analyze: root(determinism)
RunResult
System::run(TraceSource &trace, std::uint64_t max_events)
{
    RunResult result = core_.run(trace, *controller_, max_events);
    result.totalEnergy = totalEnergy();
    result.nvmLineWrites = device_.numWrites();
    result.nvmLineReads = device_.numReads();
    result.bitsProgrammed = controller_->dataBitsProgrammed();
    auditRunEnd();
    return result;
}

// dewrite-analyze: root(determinism)
RunResult
System::run(const std::vector<TraceSource *> &traces,
            std::uint64_t max_events)
{
    RunResult result = core_.runMulti(traces, *controller_, max_events);
    result.totalEnergy = totalEnergy();
    result.nvmLineWrites = device_.numWrites();
    result.nvmLineReads = device_.numReads();
    result.bitsProgrammed = controller_->dataBitsProgrammed();
    auditRunEnd();
    return result;
}

void
System::auditRunEnd() const
{
    // The epoch hook only fires on whole audit epochs; this closes the
    // partial tail so every run ends with a full consistency walk.
    if (!auditEnabled())
        return;
    if (const auto *dewrite =
            dynamic_cast<const DeWriteController *>(controller_.get())) {
        dewrite->auditNow("run-end");
    }
}

CtrlWriteResult
System::write(LineAddr addr, const Line &data)
{
    const CtrlWriteResult result = controller_->write(addr, data, now_);
    now_ += result.latency;
    return result;
}

CtrlReadResult
System::read(LineAddr addr)
{
    const CtrlReadResult result = controller_->read(addr, now_);
    now_ += result.latency;
    return result;
}

Energy
System::totalEnergy() const
{
    return device_.totalEnergy() + controller_->controllerEnergy();
}

void
System::dumpStats(std::FILE *out) const
{
    auto emit = [&](const char *name, double value, const char *desc) {
        std::fprintf(out, "%-40s %20.6g  # %s\n", name, value, desc);
    };

    std::fprintf(out, "---------- Begin Simulation Statistics "
                      "----------\n");
    std::fprintf(out, "# scheme: %s\n", controller_->name().c_str());

    // Canonical hierarchical view, registration order (components
    // register depth-first, so related metrics stay adjacent).
    for (const obs::MetricRegistry::Entry &entry : registry_.entries())
        emit(entry.path.c_str(), entry.read(), entry.desc.c_str());

    // Legacy flat view: the historical scheme-specific StatSet keys,
    // kept greppable for tooling that predates the registry.
    StatSet details;
    controller_->fillStats(details);
    for (const auto &[name, value] : details.all()) {
        const std::string qualified = "controller." + name;
        emit(qualified.c_str(), value, "scheme-specific (legacy name)");
    }
    std::fprintf(out, "---------- End Simulation Statistics "
                      "----------\n");
}

} // namespace dewrite
