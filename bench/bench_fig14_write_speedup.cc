/**
 * @file
 * Figure 14 — memory write speedup over the traditional secure NVM.
 *
 * Speedup = average write latency of the secure baseline (CME, no
 * dedup) divided by DeWrite's, per application.
 *
 * Paper's shape: 4.2x mean, up to ~8x for dup-heavy applications
 * (cactusADM, lbm); modest for vips/bzip2.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 14: memory write speedup\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { secureBaselineScheme(),
                          dewriteScheme(DedupMode::Predicted) },
                  config);

    TablePrinter table({ "app", "baseline (ns)", "DeWrite (ns)",
                         "speedup" });
    double speedup_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult &base = cells[2 * a];
        const ExperimentResult &dewrite = cells[2 * a + 1];
        const double speedup =
            base.run.avgWriteLatencyNs / dewrite.run.avgWriteLatencyNs;
        speedup_sum += speedup;
        table.addRow({ apps[a].name,
                       TablePrinter::num(base.run.avgWriteLatencyNs, 1),
                       TablePrinter::num(dewrite.run.avgWriteLatencyNs,
                                         1),
                       TablePrinter::times(speedup) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::times(
                       speedup_sum /
                       static_cast<double>(appCatalog().size())) });
    table.print();

    std::printf("\npaper: 4.2x mean write speedup, up to ~8x for "
                "cactusADM and lbm\n");
    return 0;
}
