/**
 * @file
 * Trace recording and replay.
 *
 * The paper evaluates on SPEC/PARSEC traces we cannot redistribute;
 * the synthetic generators stand in for them. This module closes the
 * loop for users who *do* have traces: any TraceSource can be recorded
 * to a compact binary file, and a recorded file replays through any
 * controller — so gem5/Pin/DynamoRIO line-granularity traces can be
 * converted once and driven through every experiment in this
 * repository.
 *
 * Format (little-endian):
 *   header:  magic "DWTR", u32 version (1), u64 event count
 *   event:   u8 kind (0 read, 1 write), u64 line address,
 *            u32 instruction gap, and for writes the 256 B payload.
 */

#ifndef DEWRITE_TRACE_TRACE_FILE_HH
#define DEWRITE_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "trace/trace.hh"

namespace dewrite {

/** Streams events to a trace file. */
class TraceFileWriter
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);

    /** Finalizes the header (event count) and closes the file. */
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Appends one event. */
    void append(const MemEvent &event);

    /** Records up to @p max_events events pulled from @p source. */
    std::uint64_t record(TraceSource &source, std::uint64_t max_events);

    std::uint64_t eventsWritten() const { return events_; }

  private:
    std::FILE *file_;
    std::uint64_t events_ = 0;
};

/** Replays a trace file as a TraceSource. */
class TraceFileSource : public TraceSource
{
  public:
    /** Opens and validates @p path; fatal() on a malformed file. */
    explicit TraceFileSource(const std::string &path);

    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool next(MemEvent &event) override;

    /** Events the header promises. */
    std::uint64_t eventCount() const { return eventCount_; }

    /** Rewinds to the first event. */
    void rewind();

  private:
    std::FILE *file_;
    std::uint64_t eventCount_ = 0;
    std::uint64_t delivered_ = 0;
    long dataStart_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_TRACE_TRACE_FILE_HH
