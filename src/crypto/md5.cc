/**
 * @file
 * MD5 implementation (RFC 1321), single-shot.
 */

#include "crypto/md5.hh"

#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

namespace dewrite {

namespace {

/** Per-round left-rotation amounts (RFC 1321 Section 3.4). */
constexpr int kShifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

/**
 * Sine-derived constants: K[i] = floor(2^32 * |sin(i + 1)|).
 * Computed at static-initialization time straight from the RFC's
 * definition rather than transcribed.
 */
struct SineTable
{
    std::uint32_t k[64];

    SineTable()
    {
        for (int i = 0; i < 64; ++i) {
            k[i] = static_cast<std::uint32_t>(
                std::floor(std::abs(std::sin(i + 1.0)) * 4294967296.0));
        }
    }
};

const SineTable kSines;

void
processBlock(std::uint32_t state[4], const std::uint8_t *block)
{
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i)
        std::memcpy(&m[i], block + 4 * i, 4); // Little-endian words.

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    for (int i = 0; i < 64; ++i) {
        std::uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        const std::uint32_t temp = d;
        d = c;
        c = b;
        b += std::rotl(a + f + kSines.k[i] + m[g], kShifts[i]);
        a = temp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
}

} // namespace

Md5Digest
md5(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t state[4] = { 0x67452301u, 0xefcdab89u, 0x98badcfeu,
                               0x10325476u };

    // Whole blocks.
    std::size_t offset = 0;
    for (; offset + 64 <= size; offset += 64)
        processBlock(state, data + offset);

    // Padding: 0x80, zeros, 64-bit little-endian bit length.
    std::uint8_t tail[128] = {};
    const std::size_t rest = size - offset;
    std::memcpy(tail, data + offset, rest);
    tail[rest] = 0x80;
    const std::size_t padded = rest + 1 <= 56 ? 64 : 128;
    const std::uint64_t bit_length =
        static_cast<std::uint64_t>(size) * 8;
    std::memcpy(tail + padded - 8, &bit_length, 8);
    processBlock(state, tail);
    if (padded == 128)
        processBlock(state, tail + 64);

    Md5Digest digest;
    std::memcpy(digest.data(), state, 16);
    return digest;
}

} // namespace dewrite
