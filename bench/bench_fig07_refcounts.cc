/**
 * @file
 * Figure 7 — the distribution of line reference counts.
 *
 * After running each application through DeWrite, buckets the live
 * hash-store records by reference count. The 8-bit reference field is
 * justified if essentially every line stays below 255 references.
 *
 * Paper's shape: >99.999% of lines have reference < 255; a tiny tail
 * of highly shared lines (zero pages, popular patterns) saturates and
 * is pinned.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "controller/dewrite_controller.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 7: reference-count distribution\n\n");

    SystemConfig config;
    TablePrinter table({ "app", "records", "ref=1", "ref 2-8",
                         "ref 9-64", "ref 65-254", "ref=255(sat)",
                         "below 255" });
    double below_sum = 0.0;
    for (const AppProfile &app : appCatalog()) {
        DetailedExperiment detailed =
            runAppDetailed(app, config,
                           dewriteScheme(DedupMode::Predicted),
                           experimentEvents(), appSeed(app));
        const auto &ctrl = dynamic_cast<const DeWriteController &>(
            detailed.system->controller());

        std::uint64_t total = 0, r1 = 0, r2 = 0, r9 = 0, r65 = 0,
                      sat = 0;
        ctrl.engine().hashStore().forEach(
            [&](std::uint32_t, const HashEntry &entry) {
                ++total;
                if (entry.reference == 1)
                    ++r1;
                else if (entry.reference <= 8)
                    ++r2;
                else if (entry.reference <= 64)
                    ++r9;
                else if (entry.reference < 255)
                    ++r65;
                else
                    ++sat;
            });
        // The paper's denominator is all lines of the module: lines
        // never written (the vast majority of a 16 GB NVMM) trivially
        // hold reference 0, and only the pinned records' lines sit at
        // the cap.
        const double below =
            1.0 - static_cast<double>(sat) /
                      static_cast<double>(config.memory.numLines);
        below_sum += below;
        table.addRow({ app.name, TablePrinter::num(total, 0),
                       TablePrinter::num(r1, 0),
                       TablePrinter::num(r2, 0),
                       TablePrinter::num(r9, 0),
                       TablePrinter::num(r65, 0),
                       TablePrinter::num(sat, 0),
                       TablePrinter::percent(below, 3) });
    }
    table.addRow({ "AVERAGE", "-", "-", "-", "-", "-", "-",
                   TablePrinter::percent(
                       below_sum /
                           static_cast<double>(appCatalog().size()),
                       3) });
    table.print();

    std::printf("\npaper: >99.999%% of lines have reference < 255\n");
    return 0;
}
