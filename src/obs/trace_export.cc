/**
 * @file
 * WriteTracer exporters.
 */

#include "obs/trace_export.hh"

#include "obs/json_writer.hh"

namespace dewrite::obs {

namespace {

/** Simulated picoseconds to Chrome-trace microseconds. */
double
toTraceUs(Time ps)
{
    return static_cast<double>(ps) / 1e6;
}

/** Track id per encryption path (Perfetto renders one lane each). */
int
pathTid(WritePath path)
{
    return path == WritePath::Direct ? 1 : 2;
}

void
writeThreadName(JsonWriter &w, int tid, const char *name)
{
    w.beginObject();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", tid);
    w.key("args");
    w.beginObject();
    w.field("name", name);
    w.endObject();
    w.endObject();
}

void
writeEpochObject(JsonWriter &w, const EpochSnapshot &epoch)
{
    w.beginObject();
    w.field("epoch", epoch.epoch);
    w.field("events", epoch.events);
    w.field("duplicates", epoch.duplicates);
    w.field("predictions", epoch.predictions);
    w.field("correct_predictions", epoch.correctPredictions);
    w.field("overflows", epoch.overflows);
    w.field("write_reduction", epoch.writeReduction());
    w.field("prediction_accuracy", epoch.predictionAccuracy());
    w.endObject();
}

} // namespace

void
writeChromeTrace(const WriteTracer &tracer, JsonWriter &w,
                 const std::string &label)
{
    w.beginObject();
    w.field("displayTimeUnit", "ns");

    w.key("otherData");
    w.beginObject();
    w.field("label", label);
    w.field("events_recorded", tracer.recorded());
    w.field("events_retained", static_cast<std::uint64_t>(tracer.size()));
    w.field("events_dropped", tracer.dropped());
    w.endObject();

    w.key("traceEvents");
    w.beginArray();

    // Process/track naming metadata first.
    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", 0);
    w.key("args");
    w.beginObject();
    w.field("name", label);
    w.endObject();
    w.endObject();
    writeThreadName(w, pathTid(WritePath::Direct), "direct path");
    writeThreadName(w, pathTid(WritePath::Parallel), "parallel path");

    for (std::size_t i = 0; i < tracer.size(); ++i) {
        const WriteEvent &ev = tracer.event(i);
        w.beginObject();
        w.field("name", ev.duplicate ? "dup-write" : "unique-write");
        w.field("cat", "write");
        w.field("ph", "X");
        w.field("ts", toTraceUs(ev.issue));
        w.field("dur", toTraceUs(ev.done - ev.issue));
        w.field("pid", 1);
        w.field("tid", pathTid(ev.path));
        w.key("args");
        w.beginObject();
        w.field("seq", ev.seq);
        w.field("addr", static_cast<std::uint64_t>(ev.addr));
        w.field("hash", static_cast<std::uint64_t>(ev.hash));
        w.field("path", writePathName(ev.path));
        if (ev.predictedDup >= 0)
            w.field("predicted_dup", ev.predictedDup != 0);
        w.field("duplicate", ev.duplicate);
        w.field("authoritative", ev.authoritative);
        w.field("wrote_line", ev.wroteLine);
        w.field("reencrypted", ev.reencrypted);
        w.field("counter_home", counterHomeName(ev.home));
        w.field("confirm_reads",
                static_cast<std::uint64_t>(ev.confirmReads));
        w.endObject();
        w.endObject();
    }

    w.endArray();
    w.endObject();
}

void
writeEpochSeries(const WriteTracer &tracer, JsonWriter &w)
{
    w.beginArray();
    for (const EpochSnapshot &epoch : tracer.epochs())
        writeEpochObject(w, epoch);
    if (tracer.currentEpoch().events > 0)
        writeEpochObject(w, tracer.currentEpoch());
    w.endArray();
}

} // namespace dewrite::obs
