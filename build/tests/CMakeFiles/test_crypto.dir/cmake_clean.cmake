file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/aes128_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/aes128_test.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/counter_mode_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/counter_mode_test.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/digest_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/digest_test.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/direct_encrypt_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/direct_encrypt_test.cc.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
