/**
 * @file
 * Shared experiment harness helpers used by every bench binary.
 *
 * Each of the paper's figures compares schemes over the same 20
 * applications; these helpers standardize how a (workload, scheme)
 * cell is simulated so that all benches agree on seeds, event counts,
 * and accounting.
 */

#ifndef DEWRITE_SIM_EXPERIMENT_HH
#define DEWRITE_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "obs/metric_registry.hh"
#include "sim/system.hh"
#include "trace/trace_gen.hh"

namespace dewrite {

/** One simulated (application, scheme) cell. */
struct ExperimentResult
{
    std::string app;
    std::string scheme;
    RunResult run;
    StatSet stats; //!< Controller-specific detail counters (legacy view).

    /** Registry snapshot at run end (path-sorted, all components). */
    std::vector<obs::MetricSample> metrics;

    /** Host wall time spent simulating the cell, seconds. */
    double hostSeconds = 0.0;
};

/** Deterministic per-application trace seed. */
std::uint64_t appSeed(const AppProfile &profile);

/**
 * Canonical text serialization of every user-visible number an
 * ExperimentResult carries — the RunResult headline fields and every
 * controller detail stat. Doubles print with %.17g, which round-trips
 * IEEE-754 exactly, so two signatures match iff the cells are
 * bit-identical in every observable counter. The golden parity tests
 * and the bench parity fingerprints are both built on this.
 */
std::string resultSignature(const ExperimentResult &cell);

/** CRC-32 of resultSignature(). */
std::uint32_t resultFingerprint(const ExperimentResult &cell);

/**
 * Canonical serialization of a cell's *decision-level* outcome only:
 * the traffic counts and dedup verdict counters that depend purely on
 * which writes were deduplicated, never on how long detection took or
 * which metadata-cache blocks it warmed. Detection-policy ablations
 * pin their parity on this: confirm-read and weak+strong resolve the
 * same candidates to the same verdicts on collision-free traces, so
 * their detection signatures must match byte-for-byte even though
 * latency, energy, and NVM traffic legitimately differ.
 */
std::string detectionSignature(const ExperimentResult &cell);

/** CRC-32 of detectionSignature(). */
std::uint32_t detectionFingerprint(const ExperimentResult &cell);

/** Upper bound accepted from DEWRITE_EVENTS (a guard against typos
 * requesting effectively-infinite runs, not a simulator limit). */
constexpr std::uint64_t kMaxExperimentEvents = 1ULL << 40;

/**
 * Number of trace events per experiment cell. Defaults to 120k;
 * override with the DEWRITE_EVENTS environment variable to trade
 * precision for speed. Malformed, zero, negative, or overflowing
 * values are rejected with fatal() rather than silently misparsed.
 */
std::uint64_t experimentEvents();

/** Simulates @p profile under @p scheme with the shared defaults. */
ExperimentResult runApp(const AppProfile &profile,
                        const SystemConfig &config,
                        const SchemeOptions &scheme,
                        std::uint64_t max_events, std::uint64_t seed);

/** Convenience: shared defaults for events and seed. */
ExperimentResult runApp(const AppProfile &profile,
                        const SystemConfig &config,
                        const SchemeOptions &scheme);

/**
 * Like runApp but keeps the simulated System alive so harnesses can
 * inspect final component state (hash-store chains, wear, caches).
 */
struct DetailedExperiment
{
    ExperimentResult result;
    std::unique_ptr<System> system;
};

DetailedExperiment runAppDetailed(const AppProfile &profile,
                                  const SystemConfig &config,
                                  const SchemeOptions &scheme,
                                  std::uint64_t max_events,
                                  std::uint64_t seed);

/**
 * runAppDetailed with write-pipeline tracing enabled: @p trace sizes
 * the System's event ring before the run, so the returned system's
 * tracer() holds the event tail and epoch series (export them with
 * obs::writeChromeTrace / obs::writeEpochSeries).
 */
DetailedExperiment runAppTraced(const AppProfile &profile,
                                const SystemConfig &config,
                                const SchemeOptions &scheme,
                                std::uint64_t max_events,
                                std::uint64_t seed,
                                const obs::TraceConfig &trace);

/** @{ Canonical scheme configurations used across benches. */
SchemeOptions plainScheme();
SchemeOptions secureBaselineScheme();
SchemeOptions dewriteScheme(DedupMode mode);
/** @} */

} // namespace dewrite

#endif // DEWRITE_SIM_EXPERIMENT_HH
