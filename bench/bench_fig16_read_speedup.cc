/**
 * @file
 * Figure 16 — memory read speedup over the traditional secure NVM.
 *
 * Eliminated duplicate writes stop occupying banks, so reads wait
 * less; DeWrite's own address-mapping lookup adds a small cost on each
 * read, which the contention relief outweighs on dup-heavy apps.
 *
 * Paper's shape: 3.1x mean read speedup; gains track the write
 * reduction.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 16: memory read speedup\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { secureBaselineScheme(),
                          dewriteScheme(DedupMode::Predicted) },
                  config);

    TablePrinter table({ "app", "baseline (ns)", "DeWrite (ns)",
                         "speedup" });
    double speedup_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult &base = cells[2 * a];
        const ExperimentResult &dewrite = cells[2 * a + 1];
        const double speedup =
            base.run.avgReadLatencyNs / dewrite.run.avgReadLatencyNs;
        speedup_sum += speedup;
        table.addRow({ apps[a].name,
                       TablePrinter::num(base.run.avgReadLatencyNs, 1),
                       TablePrinter::num(dewrite.run.avgReadLatencyNs, 1),
                       TablePrinter::times(speedup) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::times(
                       speedup_sum /
                       static_cast<double>(appCatalog().size())) });
    table.print();

    std::printf("\npaper: 3.1x mean read speedup\n");
    return 0;
}
