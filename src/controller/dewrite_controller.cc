/**
 * @file
 * DeWriteController implementation.
 */

#include "controller/dewrite_controller.hh"

#include "common/logging.hh"

namespace dewrite {

std::string
dedupModeName(DedupMode mode)
{
    switch (mode) {
      case DedupMode::Direct:
        return "direct";
      case DedupMode::Parallel:
        return "parallel";
      case DedupMode::Predicted:
        return "predicted";
    }
    panic("bad dedup mode");
}

DeWriteController::DeWriteController(const SystemConfig &config,
                                     NvmDevice &device, const AesKey &key,
                                     Options options)
    : config_(config), device_(device), cme_(key),
      metadata_(config, device, /*region_base=*/config.memory.numLines),
      reducer_(options.technique == BitTechnique::None
                   ? nullptr
                   : makeReducer(options.technique, cme_)),
      engine_(config, device, metadata_, cme_,
              DedupEngine::Options{ options.confirmByRead, reducer_.get(),
                                    /*maxChainProbe=*/4,
                                    options.hashFunction }),
      predictor_(options.historyBits), options_(options)
{
    if (reducer_)
        reducer_->reserveSlots(config.memory.workingSetHint());
}

DeWriteController::DeWriteController(const SystemConfig &config,
                                     NvmDevice &device, const AesKey &key)
    : DeWriteController(config, device, key, Options())
{
}

std::string
DeWriteController::name() const
{
    std::string label = "dewrite-" + dedupModeName(options_.mode);
    if (options_.technique != BitTechnique::None)
        label += "+" + bitTechniqueName(options_.technique);
    if (options_.hashFunction != HashFunction::Crc32) {
        label += "+";
        label += hashSpec(options_.hashFunction).name;
    }
    return label;
}

void
DeWriteController::startEncryption()
{
    encryptionsStarted_.increment();
    aesEnergy_ += config_.energy.aesLine();
}

CtrlWriteResult
DeWriteController::write(LineAddr addr, const Line &data, Time now)
{
    DetectOutcome det;
    Time encrypt_ready = 0;
    bool speculative_encryption = false;

    switch (options_.mode) {
      case DedupMode::Direct:
        det = engine_.detect(data, now, /*allow_nvm_fill=*/true);
        if (!det.duplicate) {
            // Serial: the AES engine starts only after detection rules
            // out a duplicate.
            startEncryption();
            encrypt_ready = det.done + config_.timing.aesLine;
        }
        break;

      case DedupMode::Parallel:
        // Encryption and detection launch together; the ciphertext is
        // wasted whenever the line turns out to be a duplicate.
        startEncryption();
        speculative_encryption = true;
        encrypt_ready = now + config_.timing.aesLine;
        det = engine_.detect(data, now, /*allow_nvm_fill=*/true);
        break;

      case DedupMode::Predicted:
        if (predictor_.predictDuplicate()) {
            // Predicted duplicate: direct path, and the PNA scheme
            // allows the in-NVM hash-table query.
            det = engine_.detect(data, now, /*allow_nvm_fill=*/true);
            if (!det.duplicate) {
                startEncryption();
                encrypt_ready = det.done + config_.timing.aesLine;
            }
        } else {
            // Predicted unique: parallel path; PNA skips the in-NVM
            // hash-table query on a metadata-cache miss.
            startEncryption();
            speculative_encryption = true;
            encrypt_ready = now + config_.timing.aesLine;
            det = engine_.detect(data, now,
                                 /*allow_nvm_fill=*/!options_.pnaEnabled);
        }
        break;
    }

    WriteCommit commit;
    if (det.duplicate) {
        commit = engine_.commitDuplicate(addr, det, det.done);
        if (speculative_encryption)
            wastedEncryptions_.increment();
    } else {
        commit = engine_.commitUnique(addr, data, det.hash, det.done,
                                      encrypt_ready);
    }

    // The predictor learns the resolved state of every write no matter
    // which path scheduled it (its accuracy stat backs Figure 4).
    predictor_.recordAndScore(det.duplicate);

    const Time latency = commit.done - now;
    noteWrite(latency, det.duplicate, commit.bitsProgrammed);
    return { latency, det.duplicate };
}

CtrlReadResult
DeWriteController::read(LineAddr addr, Time now)
{
    const ReadOutcome outcome = engine_.read(addr, now);
    CtrlReadResult result;
    result.data = outcome.data;
    result.valid = outcome.valid;
    result.latency = outcome.done - now;
    noteRead(result.latency);
    return result;
}

Energy
DeWriteController::controllerEnergy() const
{
    return aesEnergy_ + engine_.totalEnergy() + metadata_.totalEnergy();
}

void
DeWriteController::fillStats(StatSet &stats) const
{
    stats.set("writes", static_cast<double>(writeRequests()));
    stats.set("reads", static_cast<double>(readRequests()));
    stats.set("writes_eliminated",
              static_cast<double>(writesEliminated()));
    stats.set("duplicate_commits",
              static_cast<double>(engine_.duplicateCommits()));
    stats.set("unique_commits",
              static_cast<double>(engine_.uniqueCommits()));
    stats.set("silent_stores", static_cast<double>(engine_.silentStores()));
    stats.set("collision_mismatches",
              static_cast<double>(engine_.collisionMismatches()));
    stats.set("missed_by_pna", static_cast<double>(engine_.missedByPna()));
    stats.set("missed_by_saturation",
              static_cast<double>(engine_.missedBySaturation()));
    stats.set("reencryptions", static_cast<double>(engine_.reencryptions()));
    stats.set("unsafe_corruptions",
              static_cast<double>(engine_.unsafeCorruptions()));
    stats.set("wasted_encryptions",
              static_cast<double>(wastedEncryptions()));
    stats.set("prediction_accuracy", predictor_.accuracy());
    stats.set("overflow_counters",
              static_cast<double>(engine_.overflowCounters()));
    stats.set("metadata_writebacks",
              static_cast<double>(metadata_.nvmWritebacks()));
    stats.set("metadata_fill_reads",
              static_cast<double>(metadata_.nvmFillReads()));
    stats.set("hit_rate_mapping",
              metadata_.hitRate(MetadataTable::Mapping));
    stats.set("hit_rate_inverted_hash",
              metadata_.hitRate(MetadataTable::InvertedHash));
    stats.set("hit_rate_hash_store",
              metadata_.hitRate(MetadataTable::HashStore));
    stats.set("hit_rate_fsm", metadata_.hitRate(MetadataTable::Fsm));
}

} // namespace dewrite
