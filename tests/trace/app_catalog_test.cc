/**
 * @file
 * Application catalog tests — these pin the paper's Figure 2 shape.
 */

#include "trace/app_catalog.hh"

#include <gtest/gtest.h>

#include <set>

namespace dewrite {
namespace {

TEST(AppCatalogTest, TwentyApplications)
{
    EXPECT_EQ(appCatalog().size(), 20u);
}

TEST(AppCatalogTest, TwelveSpecEightParsec)
{
    int spec = 0, parsec = 0;
    for (const auto &app : appCatalog()) {
        if (app.suite == "SPEC")
            ++spec;
        else if (app.suite == "PARSEC")
            ++parsec;
    }
    EXPECT_EQ(spec, 12);
    EXPECT_EQ(parsec, 8);
}

TEST(AppCatalogTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &app : appCatalog())
        names.insert(app.name);
    EXPECT_EQ(names.size(), 20u);
}

TEST(AppCatalogTest, DupFractionsSpanPaperRange)
{
    double min_dup = 1.0, max_dup = 0.0, sum = 0.0;
    for (const auto &app : appCatalog()) {
        min_dup = std::min(min_dup, app.dupTarget);
        max_dup = std::max(max_dup, app.dupTarget);
        sum += app.dupTarget;
    }
    EXPECT_DOUBLE_EQ(min_dup, 0.186); // vips.
    EXPECT_DOUBLE_EQ(max_dup, 0.984); // cactusADM.
    EXPECT_NEAR(sum / 20.0, 0.58, 0.02); // Paper's 58% mean.
}

TEST(AppCatalogTest, SjengIsZeroDominated)
{
    const AppProfile &sjeng = appByName("sjeng");
    for (const auto &app : appCatalog()) {
        if (app.name != "sjeng") {
            EXPECT_GT(sjeng.zeroGivenDup, app.zeroGivenDup);
        }
    }
}

TEST(AppCatalogTest, HighDupAppsMatchPaper)
{
    // Apps the paper singles out as >80% duplicate (Section IV-B).
    for (const char *name :
         { "cactusADM", "libquantum", "lbm", "blackscholes" }) {
        EXPECT_GT(appByName(name).dupTarget, 0.8) << name;
    }
}

TEST(AppCatalogTest, ParametersAreSane)
{
    for (const auto &app : appCatalog()) {
        EXPECT_GT(app.dupTarget, 0.0);
        EXPECT_LT(app.dupTarget, 1.0);
        EXPECT_GE(app.zeroGivenDup, 0.0);
        EXPECT_LE(app.zeroGivenDup, 1.0);
        EXPECT_GT(app.statePersistence, 0.5);
        EXPECT_LT(app.statePersistence, 1.0);
        EXPECT_GT(app.writeFraction, 0.0);
        EXPECT_LT(app.writeFraction, 1.0);
        EXPECT_GT(app.workingSetLines, 0u);
        EXPECT_GT(app.instGapMean, 0.0);
        EXPECT_GT(app.mutateWordsMax, 0u);
    }
}

TEST(AppCatalogDeathTest, UnknownAppIsFatal)
{
    EXPECT_EXIT(appByName("doom3"), testing::ExitedWithCode(1),
                "unknown application");
}

} // namespace
} // namespace dewrite
