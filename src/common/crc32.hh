/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) — the light-weight line fingerprint.
 *
 * DeWrite summarizes each 256 B line with CRC-32 (Section III-B1): the
 * hash is cheap (15 ns in hardware per Table Ia) but collisions are
 * possible, so a hash match is always confirmed with a byte-wise compare
 * of the candidate line.
 */

#ifndef DEWRITE_COMMON_CRC32_HH
#define DEWRITE_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

#include "common/line.hh"

namespace dewrite {

/** CRC-32 over an arbitrary buffer (init/final XOR 0xffffffff). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** CRC-32 of a full 256 B memory line. */
std::uint32_t crc32(const Line &line);

} // namespace dewrite

#endif // DEWRITE_COMMON_CRC32_HH
