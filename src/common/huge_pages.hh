/**
 * @file
 * Huge-page-friendly host allocation.
 *
 * The big per-line stores (PagedArray, DenseLineStore, FlatMap) are
 * probed at effectively random addresses across hundreds of megabytes,
 * so with 4 KiB pages the host dTLB (a few MiB of reach) misses on
 * nearly every probe. Backing those stores with 2 MiB-aligned regions
 * advised as MADV_HUGEPAGE lets the kernel map transparent huge pages
 * and multiplies TLB reach by 512. This is purely a host-side
 * optimization: simulated behaviour is untouched.
 *
 * hugeAlloc() rounds the request up to a multiple of 2 MiB and returns
 * 2 MiB-aligned memory (uninitialized); below kHugeAllocMinBytes it
 * degrades to plain operator new since sub-huge-page allocations gain
 * nothing. madvise() is best-effort and compiled only on Linux.
 */

#ifndef DEWRITE_COMMON_HUGE_PAGES_HH
#define DEWRITE_COMMON_HUGE_PAGES_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace dewrite {

/**
 * Test hook: while true, the MADV_HUGEPAGE advise step reports failure
 * without calling the kernel, so tests can pin the fallback path —
 * the allocation must stay fully usable on 4 KiB pages — on any host,
 * including ones where madvise never fails. Atomic because allocations
 * happen from pool workers.
 */
inline std::atomic<bool> &
hugeAdviseForceFailure()
{
    // dewrite-owned: sync(atomic) test hook; plain atomic flag
    static std::atomic<bool> force{ false };
    return force;
}

/**
 * Allocations whose huge-page advise failed (hook-forced or real).
 * Purely diagnostic: a nonzero count means degraded TLB reach, never
 * degraded correctness.
 */
inline std::atomic<std::uint64_t> &
hugeAdviseFailures()
{
    // dewrite-owned: sync(atomic) diagnostic counter only;
    // never read back into simulated state
    static std::atomic<std::uint64_t> failures{ 0 };
    return failures;
}

/** Transparent-huge-page size on the only platforms we run on. */
inline constexpr std::size_t kHugePageBytes = 2u << 20;

/** Requests at least this large take the huge-page path. */
inline constexpr std::size_t kHugeAllocMinBytes = 1u << 20;

/** True iff an allocation of @p bytes uses the huge-page path. */
constexpr bool
hugeAllocEligible(std::size_t bytes)
{
    return bytes >= kHugeAllocMinBytes;
}

/**
 * Uninitialized storage for @p bytes. Eligible sizes come back 2 MiB
 * aligned, rounded up to whole huge pages, and advised MADV_HUGEPAGE.
 */
inline void *
hugeAlloc(std::size_t bytes)
{
    if (!hugeAllocEligible(bytes))
        // dewrite-analyze: allow(hot-path-purity) demand allocation of one storage page;
        // amortized over kPageEntries lines, then touched never
        return ::operator new(bytes);
    const std::size_t rounded =
        (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    void *mem = std::aligned_alloc(kHugePageBytes, rounded);
    if (!mem)
        throw std::bad_alloc();
    // Best-effort: a kernel without THP simply ignores the hint, and
    // a failed advise leaves the region valid on base pages.
    bool advised = true;
    if (hugeAdviseForceFailure().load(std::memory_order_relaxed)) {
        advised = false;
    } else {
#if defined(__linux__)
        advised = madvise(mem, rounded, MADV_HUGEPAGE) == 0;
#endif
    }
    if (!advised)
        hugeAdviseFailures().fetch_add(1, std::memory_order_relaxed);
    return mem;
}

/** Releases memory from hugeAlloc(); @p bytes must match the request. */
inline void
hugeFree(void *mem, std::size_t bytes)
{
    if (!hugeAllocEligible(bytes))
        ::operator delete(mem);
    else
        std::free(mem);
}

/** Deleter for objects placement-constructed in hugeAlloc() storage. */
template <typename T>
struct HugeDeleter
{
    void
    operator()(T *object) const
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "huge pages hold flat POD state only");
        hugeFree(object, sizeof(T));
    }
};

template <typename T>
using HugeUniquePtr = std::unique_ptr<T, HugeDeleter<T>>;

/** Value-initialized T in huge-page-backed storage. */
template <typename T>
HugeUniquePtr<T>
makeHuge()
{
    // dewrite-analyze: allow(hot-path-purity) demand allocation of one storage page
    return HugeUniquePtr<T>(new (hugeAlloc(sizeof(T))) T{});
}

/**
 * Minimal std::vector allocator that routes large buffers through
 * hugeAlloc(). Stateless; small buffers use the global heap.
 */
template <typename T>
struct HugeAwareAllocator
{
    using value_type = T;

    HugeAwareAllocator() = default;

    template <typename U>
    HugeAwareAllocator(const HugeAwareAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t count)
    {
        return static_cast<T *>(hugeAlloc(count * sizeof(T)));
    }

    void
    deallocate(T *mem, std::size_t count)
    {
        hugeFree(mem, count * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const HugeAwareAllocator<U> &) const
    {
        return true;
    }

    template <typename U>
    bool
    operator!=(const HugeAwareAllocator<U> &) const
    {
        return false;
    }
};

} // namespace dewrite

#endif // DEWRITE_COMMON_HUGE_PAGES_HH
