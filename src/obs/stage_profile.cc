/**
 * @file
 * Stage-profile switch implementation.
 */

#include "obs/stage_profile.hh"

#include "common/env.hh"

namespace dewrite {
namespace obs {

bool
stageProfileEnabled()
{
    static const bool enabled = envFlag("DEWRITE_STAGE_PROFILE", false);
    return enabled;
}

} // namespace obs
} // namespace dewrite
