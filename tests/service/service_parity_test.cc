/**
 * @file
 * The service's correctness contract: an N-shard DedupService run must
 * produce per-shard result fingerprints identical to N independent
 * single-shard System runs over the same trace partitions — at one
 * worker thread and at eight. Parallelism only decides which host
 * thread drains a shard, never the order within one, so the matrix
 * must be flat across thread counts too.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "service/dedup_service.hh"

namespace dewrite {
namespace {

ServiceOptions
testOptions(std::size_t shards, unsigned threads)
{
    ServiceOptions options;
    options.shards = shards;
    options.threads = threads;
    options.tenants = 6;
    options.linesPerTenant = 1024;
    options.burstMax = 16;
    options.roundEvents = 1024;
    options.totalEvents = 24000;
    return options;
}

std::vector<std::uint32_t>
serviceFingerprints(std::size_t shards, unsigned threads,
                    std::vector<std::uint64_t> *events_out = nullptr)
{
    DedupService service(testOptions(shards, threads));
    const ServiceResult result = service.run();
    EXPECT_EQ(result.shards.size(), shards);
    EXPECT_EQ(result.totalEvents, 24000u);

    std::vector<std::uint32_t> fingerprints;
    std::uint64_t total = 0;
    for (const ShardOutcome &outcome : result.shards) {
        fingerprints.push_back(outcome.fingerprint);
        total += outcome.events;
        EXPECT_EQ(outcome.events, outcome.cell.run.events);
    }
    EXPECT_EQ(total, result.totalEvents);
    if (events_out) {
        events_out->clear();
        for (const ShardOutcome &outcome : result.shards)
            events_out->push_back(outcome.events);
    }
    return fingerprints;
}

class ServiceParity : public testing::TestWithParam<unsigned>
{
};

TEST_P(ServiceParity, ShardsMatchIndependentSystems)
{
    const unsigned threads = GetParam();
    for (std::size_t shards : { 1u, 4u }) {
        std::vector<std::uint64_t> events;
        const std::vector<std::uint32_t> fingerprints =
            serviceFingerprints(shards, threads, &events);
        for (std::size_t k = 0; k < shards; ++k) {
            const ExperimentResult reference =
                DedupService::runShardReference(
                    testOptions(shards, threads), k, events[k]);
            EXPECT_EQ(fingerprints[k], resultFingerprint(reference))
                << "shard " << k << " of " << shards << " at "
                << threads << " threads";
        }
    }
}

TEST_P(ServiceParity, FingerprintsAreThreadCountInvariant)
{
    const unsigned threads = GetParam();
    EXPECT_EQ(serviceFingerprints(4, threads),
              serviceFingerprints(4, 1));
}

INSTANTIATE_TEST_SUITE_P(Threads, ServiceParity,
                         testing::Values(1u, 8u),
                         [](const auto &info) {
                             return "threads" +
                                    std::to_string(info.param);
                         });

TEST(ServiceAudit, EveryShardPassesTheRunEndAudit)
{
    // DEWRITE_AUDIT=1 makes finalizeShard run the full metadata
    // consistency walk per shard; any cross-shard state bleed dies
    // inside the walk.
    ::setenv("DEWRITE_AUDIT", "1", 1);
    DedupService service(testOptions(4, 2));
    const ServiceResult result = service.run();
    ::unsetenv("DEWRITE_AUDIT");
    EXPECT_EQ(result.shards.size(), 4u);
}

TEST(ServiceSharding, RoutesEveryEventExactlyOnce)
{
    DedupService service(testOptions(8, 2));
    const ServiceResult result = service.run();
    std::uint64_t writes = 0, reads = 0, events = 0;
    for (const ShardOutcome &outcome : result.shards) {
        writes += outcome.cell.run.writes;
        reads += outcome.cell.run.reads;
        events += outcome.cell.run.events;
        EXPECT_GT(outcome.events, 0u) << "a shard was starved";
    }
    EXPECT_EQ(events, result.totalEvents);
    EXPECT_EQ(writes + reads, events);
}

TEST(ServiceSharding, MoreShardsSameAggregateWork)
{
    // Sharding repartitions the canonical order; the global write
    // stream (and so the aggregate dedup opportunity) is unchanged.
    std::uint64_t writes[2] = { 0, 0 };
    std::size_t i = 0;
    for (std::size_t shards : { 1u, 4u }) {
        DedupService service(testOptions(shards, 2));
        const ServiceResult result = service.run();
        for (const ShardOutcome &outcome : result.shards)
            writes[i] += outcome.cell.run.writes;
        ++i;
    }
    EXPECT_EQ(writes[0], writes[1]);
}

} // namespace
} // namespace dewrite
