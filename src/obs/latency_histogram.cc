/**
 * @file
 * LatencyHistogram implementation.
 */

#include "obs/latency_histogram.hh"

#include <algorithm>
#include <cmath>

namespace dewrite::obs {

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    // The empty-histogram sentinels (max 0, min ~0) are identities of
    // max/min, so merging an empty histogram is a no-op.
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
}

std::uint64_t
LatencyHistogram::bucketLowerBound(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const std::size_t msb = index / kSubBuckets + 1;
    const std::size_t sub = index % kSubBuckets;
    return (kSubBuckets + sub) << (msb - kSubBits);
}

std::uint64_t
LatencyHistogram::bucketUpperBound(std::size_t index)
{
    // The top reachable bucket (msb 63) and anything past it widen to
    // the end of the integer range: the saturating overflow region.
    constexpr std::size_t kLastReachable =
        (63 - kSubBits + 1) * kSubBuckets + (kSubBuckets - 1);
    if (index >= kLastReachable)
        return ~std::uint64_t{ 0 };
    return bucketLowerBound(index + 1) - 1;
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    target = std::clamp<std::uint64_t>(target, 1, count_);

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_; // Unreachable: cumulative == count_ at the last bucket.
}

} // namespace dewrite::obs
