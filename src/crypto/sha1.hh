/**
 * @file
 * SHA-1 (FIPS 180-1) — the other traditional dedup fingerprint of
 * Table I.
 *
 * Like MD5, implemented so the cryptographic-fingerprint comparator is
 * functional; its security obsolescence is irrelevant to its role
 * here.
 */

#ifndef DEWRITE_CRYPTO_SHA1_HH
#define DEWRITE_CRYPTO_SHA1_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace dewrite {

/** A 160-bit SHA-1 digest. */
using Sha1Digest = std::array<std::uint8_t, 20>;

/** SHA-1 of an arbitrary buffer. */
Sha1Digest sha1(const std::uint8_t *data, std::size_t size);

} // namespace dewrite

#endif // DEWRITE_CRYPTO_SHA1_HH
