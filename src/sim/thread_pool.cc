/**
 * @file
 * Work-stealing thread pool implementation.
 *
 * Two counters drive the synchronization: queued_ (tasks sitting in
 * some deque, the workers' wake predicate) and pending_ (tasks
 * submitted but not yet finished, the wait() predicate). Both live
 * under the central mutex; the per-worker deques have their own locks
 * so the steal scan never serializes on the central one.
 */

#include "sim/thread_pool.hh"

#include <algorithm>

namespace dewrite {

namespace {

/** Worker index within the owning pool; -1 on non-pool threads. */
// dewrite-owned: shard
thread_local int tlsWorkerIndex = -1;

} // namespace

int
ThreadPool::currentWorker()
{
    return tlsWorkerIndex;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = std::max(1u, threads);
    queues_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        std::lock_guard lock(mutex_);
        ++pending_;
        ++queued_;
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    {
        std::lock_guard lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    workReady_.notify_one();
}

bool
ThreadPool::tryRun(std::size_t self)
{
    std::function<void()> task;

    // Own queue first, newest task (still-warm working set) ...
    {
        WorkerQueue &mine = *queues_[self];
        std::lock_guard lock(mine.mutex);
        if (!mine.tasks.empty()) {
            task = std::move(mine.tasks.back());
            mine.tasks.pop_back();
        }
    }
    // ... then steal the oldest task of the first non-empty victim.
    if (!task) {
        for (std::size_t step = 1; step < queues_.size() && !task;
             ++step) {
            WorkerQueue &victim =
                *queues_[(self + step) % queues_.size()];
            std::lock_guard lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.front());
                victim.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;

    {
        std::lock_guard lock(mutex_);
        --queued_;
    }

    try {
        task();
    } catch (...) {
        std::lock_guard lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }

    {
        std::lock_guard lock(mutex_);
        if (--pending_ == 0)
            allDone_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tlsWorkerIndex = static_cast<int>(self);
    for (;;) {
        if (tryRun(self))
            continue;
        std::unique_lock lock(mutex_);
        workReady_.wait(lock,
                        [this] { return stopping_ || queued_ > 0; });
        if (stopping_ && queued_ == 0)
            return;
    }
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

} // namespace dewrite
