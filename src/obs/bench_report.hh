/**
 * @file
 * Uniform machine-readable bench output.
 *
 * Every bench binary that exports numbers writes one
 * BENCH_<name>.json in the working directory through this helper, so
 * downstream tooling (CI schema checks, cross-commit regression
 * trackers) can rely on a single shape:
 *
 *   {
 *     "bench": "<name>",
 *     "schema_version": 2,
 *     "events_per_cell": <uint>,
 *     "threads": <uint>,
 *     "provenance": {
 *       "git_sha": "<sha or 'unknown'>",
 *       "git_dirty": <bool>,
 *       "host_cpus": <uint>,
 *       "knobs": { "<DEWRITE_*>": "<value>" | null, ... }
 *     },
 *     ...bench-specific payload written via json()...
 *   }
 *
 * The provenance block (schema v2) records everything needed to
 * reproduce or fairly compare the run: the exact commit (stamped at
 * build time by cmake/GenerateVersion.cmake), whether the tree was
 * dirty, the host's hardware concurrency, and the live value of every
 * registered DEWRITE_* knob (null = unset). tools/bench_trend.py keys
 * its history and regression gate on these fields.
 *
 * close() finishes the document and reports whether every byte made it
 * to disk; benches turn a false return into a non-zero exit code
 * instead of silently shipping a truncated file.
 */

#ifndef DEWRITE_OBS_BENCH_REPORT_HH
#define DEWRITE_OBS_BENCH_REPORT_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "obs/json_writer.hh"

namespace dewrite::obs {

/** Header fields every bench JSON carries. v2 added "provenance". */
inline constexpr int kBenchSchemaVersion = 2;

class BenchReport
{
  public:
    /**
     * Opens BENCH_<name>.json and writes the uniform header.
     * @p events_per_cell and @p threads document the run shape.
     */
    BenchReport(const std::string &name, std::uint64_t events_per_cell,
                unsigned threads);

    /** Closes the file if still open (discarding ok()). */
    ~BenchReport();

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** False when the output file could not be opened. */
    bool opened() const { return file_ != nullptr; }

    /**
     * Writer positioned inside the top-level object. Valid even when
     * the file failed to open (it targets a discarded scratch buffer,
     * and close() returns false).
     */
    JsonWriter &json() { return *writer_; }

    /** Output file name (BENCH_<name>.json). */
    const std::string &path() const { return path_; }

    /**
     * Ends the document, flushes, and closes. Returns true iff the
     * file opened, the JSON nested correctly, and every write (and the
     * close itself) succeeded.
     */
    bool close();

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::string scratch_; //!< Sink when the file failed to open.
    std::unique_ptr<JsonWriter> writer_;
};

} // namespace dewrite::obs

#endif // DEWRITE_OBS_BENCH_REPORT_HH
