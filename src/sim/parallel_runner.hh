/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * Every figure bench replays the same ~20-application catalog through
 * runApp one (app, scheme) cell at a time; the cells are mutually
 * independent — each owns its own System, trace generators, and
 * appSeed-derived RNG — so they fan out across a work-stealing thread
 * pool with results byte-identical to a serial loop:
 *
 *  - results land in pre-assigned slots of a caller-visible vector,
 *    indexed by cell, so completion order never shows;
 *  - no cell touches shared mutable state (the only shared inputs —
 *    the app catalog, CRC/AES tables — are immutable after startup);
 *  - seeds derive from cell identity, never from execution order.
 *
 * Thread count comes from DEWRITE_THREADS (validated like
 * DEWRITE_EVENTS) or std::thread::hardware_concurrency(); pass an
 * explicit count to pin it, e.g. the determinism tests sweep {1,2,8}.
 */

#ifndef DEWRITE_SIM_PARALLEL_RUNNER_HH
#define DEWRITE_SIM_PARALLEL_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/experiment.hh"

namespace dewrite {

namespace obs {
class JsonWriter;
} // namespace obs

/**
 * Worker count used when none is pinned: DEWRITE_THREADS if set
 * (rejecting malformed values), else hardware concurrency, at least 1.
 */
unsigned runnerThreads();

/** Host-side timing of one fan-out cell. */
struct CellProfile
{
    double queueSeconds = 0.0; //!< Submit-to-start wait in the pool.
    double wallSeconds = 0.0;  //!< Body execution wall time.
    int worker = -1;           //!< Pool worker that ran it (-1 = none).
};

/**
 * Where the host time of one parallel fan-out went: total wall time,
 * per-cell execution/queue-wait, and per-worker busy time. Filled by
 * parallelForProfiled / runMatrixProfiled; benches attach it to their
 * BENCH_*.json output so regressions in runner scaling are visible
 * without a profiler.
 */
struct RunnerProfile
{
    unsigned threads = 1;
    double wallSeconds = 0.0;
    std::vector<CellProfile> cells;
    std::vector<double> workerBusySeconds; //!< Indexed by worker.

    /** Sum of all cells' execution time. */
    double busySeconds() const;

    /** busySeconds over threads * wallSeconds, in [0, 1]. */
    double utilization() const;

    /** Longest single cell's execution time. */
    double maxCellSeconds() const;

    /** Emits the profile as one JSON object on @p w. */
    void writeJson(obs::JsonWriter &w) const;
};

/**
 * Runs body(0) .. body(count - 1) across @p threads workers (0 =
 * runnerThreads()) and blocks until all complete. The first exception
 * a body throws is rethrown here after the fan-out drains.
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &body,
                 unsigned threads = 0);

/**
 * parallelFor that also fills @p profile with per-cell and per-worker
 * host timing. Identical fan-out semantics and determinism contract;
 * the timing instrumentation sits outside the cell bodies, so results
 * are unaffected.
 */
void parallelForProfiled(std::size_t count,
                         const std::function<void(std::size_t)> &body,
                         RunnerProfile &profile, unsigned threads = 0);

/**
 * Simulates every (app, scheme) cell of the matrix in parallel with
 * the shared defaults (appSeed, experimentEvents unless @p max_events
 * is nonzero). Results are row-major: result[a * schemes.size() + s]
 * is apps[a] under schemes[s], exactly what the equivalent serial
 * runApp loop produces.
 */
std::vector<ExperimentResult>
runMatrix(const std::vector<AppProfile> &apps,
          const std::vector<SchemeOptions> &schemes,
          const SystemConfig &config, std::uint64_t max_events = 0,
          unsigned threads = 0);

/** runMatrix that also fills @p profile (see RunnerProfile). */
std::vector<ExperimentResult>
runMatrixProfiled(const std::vector<AppProfile> &apps,
                  const std::vector<SchemeOptions> &schemes,
                  const SystemConfig &config, RunnerProfile &profile,
                  std::uint64_t max_events = 0, unsigned threads = 0);

} // namespace dewrite

#endif // DEWRITE_SIM_PARALLEL_RUNNER_HH
