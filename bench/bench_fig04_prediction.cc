/**
 * @file
 * Figure 4 — duplication-state prediction accuracy.
 *
 * Replays each application's ground-truth duplicate states through
 * history windows of one and three writes (plus a small sweep), as the
 * paper's predictor would observe them.
 *
 * Paper's shape: ~92.1% mean accuracy with one bit of history, rising
 * to ~93.6% with three; wider windows give negligible or negative
 * returns.
 */

#include <cstdio>

#include <array>
#include <unordered_map>

#include "common/table_printer.hh"
#include "dedup/predictor.hh"
#include "obs/bench_report.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"

using namespace dewrite;

namespace {

/** Ground-truth duplicate state of each write, in stream order. */
std::vector<bool>
dupStates(const AppProfile &app, std::uint64_t events)
{
    SyntheticWorkload trace(app, appSeed(app));
    std::unordered_map<LineAddr, Line> image;
    std::unordered_map<Line, std::uint64_t, LineHash> live;
    std::vector<bool> states;

    MemEvent event;
    for (std::uint64_t i = 0; i < events && trace.next(event); ++i) {
        if (!event.isWrite)
            continue;
        states.push_back(live.find(event.data) != live.end());
        auto old = image.find(event.addr);
        if (old != image.end()) {
            auto it = live.find(old->second);
            if (it != live.end() && --it->second == 0)
                live.erase(it);
        }
        image[event.addr] = event.data;
        ++live[event.data];
    }
    return states;
}

double
accuracy(const std::vector<bool> &states, unsigned window)
{
    DupPredictor predictor(window);
    for (bool state : states)
        predictor.recordAndScore(state);
    return predictor.accuracy();
}

} // namespace

int
main()
{
    std::printf("Figure 4: prediction accuracy vs history window\n\n");

    const unsigned windows[] = { 1, 3, 5, 8 };
    const std::vector<AppProfile> &apps = appCatalog();
    std::vector<std::array<double, 4>> accs(apps.size());
    RunnerProfile profile;
    parallelForProfiled(
        apps.size(),
        [&](std::size_t a) {
            const std::vector<bool> states =
                dupStates(apps[a], experimentEvents());
            for (std::size_t w = 0; w < 4; ++w)
                accs[a][w] = accuracy(states, windows[w]);
        },
        profile);

    obs::BenchReport report("fig04_prediction", experimentEvents(),
                            runnerThreads());
    obs::JsonWriter &json = report.json();
    json.key("apps");
    json.beginArray();

    TablePrinter table({ "app", "k=1", "k=3", "k=5", "k=8" });
    double sums[4] = {};
    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::vector<std::string> row{ apps[a].name };
        json.beginObject();
        json.field("app", apps[a].name);
        for (std::size_t w = 0; w < 4; ++w) {
            sums[w] += accs[a][w];
            row.push_back(TablePrinter::percent(accs[a][w]));
            json.field("k" + std::to_string(windows[w]), accs[a][w]);
        }
        json.endObject();
        table.addRow(std::move(row));
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", TablePrinter::percent(sums[0] / n),
                   TablePrinter::percent(sums[1] / n),
                   TablePrinter::percent(sums[2] / n),
                   TablePrinter::percent(sums[3] / n) });
    table.print();

    json.endArray();
    json.key("mean_accuracy");
    json.beginObject();
    for (std::size_t w = 0; w < 4; ++w)
        json.field("k" + std::to_string(windows[w]), sums[w] / n);
    json.endObject();
    json.key("profile");
    profile.writeJson(json);

    std::printf("\npaper: k=1 ~92.1%%, k=3 ~93.6%%, wider windows give "
                "negligible gains\n");
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    return 0;
}
