/**
 * @file
 * Rng unit tests: determinism and sampler sanity.
 */

#include "common/rng.hh"

#include <gtest/gtest.h>

#include <vector>

namespace dewrite {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowCoversRange)
{
    Rng rng(8);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBelow(8)];
    for (int bucket = 0; bucket < 8; ++bucket)
        EXPECT_GT(seen[bucket], 700) << "bucket " << bucket;
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(10);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect)
{
    Rng rng(12);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextExponential(100.0));
    // Integer truncation shifts the mean down by ~0.5.
    EXPECT_NEAR(sum / n, 99.5, 3.0);
}

TEST(RngTest, ZipfStaysInRange)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextZipf(100, 0.8), 100u);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(14);
    const int n = 50000;
    int low = 0;
    for (int i = 0; i < n; ++i)
        low += rng.nextZipf(1000, 0.9) < 100;
    // Under a uniform law 'low' would be ~10%; Zipf concentrates mass.
    EXPECT_GT(low, n / 3);
}

TEST(RngTest, ZipfDegenerateBounds)
{
    Rng rng(15);
    EXPECT_EQ(rng.nextZipf(1, 0.9), 0u);
    EXPECT_EQ(rng.nextZipf(0, 0.9), 0u);
}

} // namespace
} // namespace dewrite
