#!/usr/bin/env python3
"""Validates the uniform BENCH_*.json schema every bench binary emits.

Every report written through obs::BenchReport starts with the same
header block; figure-regression tooling keys off it, so CI fails fast
when a bench drifts from the contract:

    {
      "bench": "<name>",          # string, matches the file name
      "schema_version": 1,        # integer, bumped on breaking change
      "events_per_cell": <uint>,  # 0 when not event-driven
      "threads": <uint>,          # worker count used for the run
      ...                         # bench-specific payload
    }

With no FILES arguments, checks every BENCH_*.json in the current
directory (override with --glob-dir).

Exit codes: 0 all reports valid, 1 malformed report or none found,
2 usage error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

SCHEMA_VERSION = 1
HEADER = ("bench", "schema_version", "events_per_cell", "threads")

# The per-stage host-cycle breakdown the throughput bench emits per
# scheme (matches DedupEngine's stage gauges).
STAGES = ("digest", "probe", "pad", "confirm_read", "commit")


class SchemaError(Exception):
    """One report violated the contract; str() is the diagnostic."""


def fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def _is_uint(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_throughput_payload(path: str, report: dict) -> None:
    """BENCH_throughput carries batching, parity, and stage fields."""
    if not _is_uint(report.get("write_batch")) \
            or report.get("write_batch") < 1:
        fail(path, "'write_batch' must be a positive integer")

    schemes = report.get("schemes")
    if not isinstance(schemes, list) or not schemes:
        fail(path, "'schemes' must be a non-empty array")
    for entry in schemes:
        if not isinstance(entry, dict):
            fail(path, "'schemes' entries must be objects")
        name = entry.get("scheme")
        if not isinstance(name, str) or not name:
            fail(path, "scheme entry missing 'scheme' name")
        if not _is_uint(entry.get("result_fingerprint")):
            fail(path, f"scheme {name!r}: 'result_fingerprint' must be "
                       "a non-negative integer")
        stage_cycles = entry.get("stage_cycles")
        if not isinstance(stage_cycles, dict):
            fail(path, f"scheme {name!r}: missing 'stage_cycles' object")
        for stage in STAGES:
            if not _is_number(stage_cycles.get(stage)) \
                    or stage_cycles.get(stage) < 0:
                fail(path, f"scheme {name!r}: stage_cycles[{stage!r}] "
                           "must be a non-negative number")

    ratios = report.get("ratios")
    if not isinstance(ratios, dict):
        fail(path, "'ratios' must be an object")
    for name, value in ratios.items():
        if not _is_number(value) or value < 0:
            fail(path, f"ratios[{name!r}] must be a non-negative number")


def check_report(path: str, report: object,
                 check_name: bool = True) -> None:
    """Validate one parsed report; raises SchemaError on violation."""
    if not isinstance(report, dict):
        fail(path, "top level must be a JSON object")
    for key in HEADER:
        if key not in report:
            fail(path, f"missing required header key {key!r}")

    # The first keys must be the header, in order, so that a human
    # opening any report sees the provenance block first.
    if list(report)[: len(HEADER)] != list(HEADER):
        fail(path, f"header keys must lead the report, in order {HEADER}")

    bench = report["bench"]
    if not isinstance(bench, str) or not bench:
        fail(path, "'bench' must be a non-empty string")
    if check_name and os.path.basename(path) != f"BENCH_{bench}.json":
        fail(path, f"file name does not match bench name {bench!r}")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(path, f"schema_version must be {SCHEMA_VERSION}")
    for key in ("events_per_cell", "threads"):
        value = report[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            fail(path, f"{key!r} must be a non-negative integer")
    if report["threads"] < 1:
        fail(path, "'threads' must be at least 1")

    if bench == "throughput":
        check_throughput_payload(path, report)


def check_parity(path_a: str, path_b: str) -> None:
    """Two throughput reports (e.g. different DEWRITE_BATCH values)
    must carry identical per-scheme result fingerprints — the batching
    strict-equivalence contract. Renamed copies are expected here, so
    the file-name check is skipped."""
    reports = []
    for path in (path_a, path_b):
        report = load_file(path)
        check_report(path, report, check_name=False)
        if report["bench"] != "throughput":
            fail(path, "--parity expects throughput reports")
        reports.append(report)

    prints = [{e["scheme"]: e["result_fingerprint"]
               for e in r["schemes"]} for r in reports]
    if set(prints[0]) != set(prints[1]):
        fail(path_b, f"scheme sets differ: {sorted(prints[0])} vs "
                     f"{sorted(prints[1])}")
    for scheme, fingerprint in prints[0].items():
        if prints[1][scheme] != fingerprint:
            fail(path_b, f"parity mismatch for {scheme!r}: "
                         f"{fingerprint} (in {path_a}) vs "
                         f"{prints[1][scheme]}")


def load_file(path: str) -> object:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(path, f"unreadable or invalid JSON: {error}")


def check_file(path: str) -> None:
    check_report(path, load_file(path))


def self_test() -> int:
    """Seeded-violation check: the validator must accept a conforming
    report and name the defect in each broken variant."""
    good = {"bench": "fig04", "schema_version": SCHEMA_VERSION,
            "events_per_cell": 120000, "threads": 4, "extra": [1, 2]}
    check_report("BENCH_fig04.json", good)

    broken = [
        ("missing required header key",
         {"bench": "fig04", "schema_version": 1, "threads": 1}),
        ("header keys must lead",
         {"extra": 1, "bench": "fig04", "schema_version": 1,
          "events_per_cell": 0, "threads": 1}),
        ("file name does not match",
         {"bench": "other", "schema_version": 1,
          "events_per_cell": 0, "threads": 1}),
        ("schema_version must be",
         {"bench": "fig04", "schema_version": 99,
          "events_per_cell": 0, "threads": 1}),
        ("non-negative integer",
         {"bench": "fig04", "schema_version": 1,
          "events_per_cell": True, "threads": 1}),
        ("'threads' must be at least 1",
         {"bench": "fig04", "schema_version": 1,
          "events_per_cell": 0, "threads": 0}),
        ("top level must be a JSON object", [1, 2, 3]),
    ]
    for expect, report in broken:
        try:
            check_report("BENCH_fig04.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")

    def throughput(fingerprint: int = 7, write_batch: int = 16) -> dict:
        return {"bench": "throughput", "schema_version": SCHEMA_VERSION,
                "events_per_cell": 6000, "threads": 1,
                "write_batch": write_batch,
                "schemes": [{"scheme": "secure-baseline",
                             "result_fingerprint": fingerprint,
                             "stage_cycles": {s: 0 for s in STAGES}}],
                "ratios": {"dewrite-predicted": 0.85}}

    check_report("BENCH_throughput.json", throughput())

    broken_throughput = [
        ("'write_batch' must be a positive integer",
         throughput(write_batch=0)),
        ("'schemes' must be a non-empty array",
         {**throughput(), "schemes": []}),
        ("'result_fingerprint' must be",
         {**throughput(),
          "schemes": [{"scheme": "x", "result_fingerprint": -1,
                       "stage_cycles": {s: 0 for s in STAGES}}]}),
        ("stage_cycles['commit'] must be",
         {**throughput(),
          "schemes": [{"scheme": "x", "result_fingerprint": 1,
                       "stage_cycles": {s: 0 for s in STAGES
                                        if s != "commit"}}]}),
        ("'ratios' must be an object",
         {**throughput(), "ratios": [1.0]}),
    ]
    for expect, report in broken_throughput:
        try:
            check_report("BENCH_throughput.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")

    # Parity comparison: identical fingerprints pass, a drifted one is
    # named in the diagnostic.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        def dump(name: str, report: dict) -> str:
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(report, handle)
            return path

        a = dump("BENCH_throughput.batch1.json", throughput())
        b = dump("BENCH_throughput.json", throughput())
        check_parity(a, b)
        c = dump("BENCH_throughput.drift.json", throughput(fingerprint=8))
        try:
            check_parity(a, c)
        except SchemaError as error:
            assert "parity mismatch" in str(error), str(error)
        else:
            raise AssertionError("accepted drifted parity fingerprints")

    print("check_bench_schema self-test: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("files", nargs="*",
                        help="report files to validate (default: "
                             "BENCH_*.json in --glob-dir)")
    parser.add_argument("--glob-dir", default=".",
                        help="directory scanned when no files are "
                             "given (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-test and "
                             "exit")
    parser.add_argument("--parity", nargs=2, metavar=("A", "B"),
                        help="compare two throughput reports' "
                             "per-scheme result fingerprints (the "
                             "batching strict-equivalence check)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if args.parity:
        try:
            check_parity(args.parity[0], args.parity[1])
        except SchemaError as error:
            print(error, file=sys.stderr)
            return 1
        print("parity fingerprints match")
        return 0

    paths = args.files or sorted(
        glob.glob(os.path.join(args.glob_dir, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json reports found", file=sys.stderr)
        return 1
    for path in paths:
        try:
            check_file(path)
        except SchemaError as error:
            print(error, file=sys.stderr)
            return 1
    print(f"checked {len(paths)} report(s): schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
