/**
 * @file
 * Service telemetry plane tests: per-tenant histogram accounting must
 * reconcile exactly with the run's simulated totals, the JSONL
 * snapshot stream must round-trip through a real JSON parse (with a
 * per-tenant p99 for every tenant), the Prometheus exposition must
 * carry the skew gauges, and — the load-bearing invariant — enabling
 * the sink must not move a single shard fingerprint.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "service/dedup_service.hh"

namespace dewrite {
namespace {

/** Scoped environment override (unset restores at destruction). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/**
 * Minimal recursive-descent JSON reader — just enough to round-trip
 * the telemetry snapshots (objects, arrays, strings without escapes
 * beyond \", numbers, bools, null). Test-only oracle; the production
 * writer stays the single JSON producer.
 */
struct Json
{
    enum class Kind { Null, Bool, Number, String, Object, Array };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::map<std::string, Json> object;
    std::vector<Json> array;

    const Json &
    at(const std::string &key) const
    {
        static const Json missing;
        const auto it = object.find(key);
        EXPECT_NE(it, object.end()) << "missing key " << key;
        return it == object.end() ? missing : it->second;
    }
    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(Json &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
                ++pos_;
                switch (text_[pos_]) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                default: out += text_[pos_]; break;
                }
            } else {
                out += text_[pos_];
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    value(Json &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{') {
            out.kind = Json::Kind::Object;
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}')
                return ++pos_, true;
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return false;
                if (!value(out.object[key]))
                    return false;
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return text_[pos_++] == '}';
            }
        }
        if (c == '[') {
            out.kind = Json::Kind::Array;
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']')
                return ++pos_, true;
            while (true) {
                out.array.emplace_back();
                if (!value(out.array.back()))
                    return false;
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return text_[pos_++] == ']';
            }
        }
        if (c == '"') {
            out.kind = Json::Kind::String;
            return string(out.str);
        }
        if (c == 't') {
            out.kind = Json::Kind::Bool;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Json::Kind::Bool;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Json::Kind::Null;
            return literal("null");
        }
        out.kind = Json::Kind::Number;
        char *end = nullptr;
        out.num = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_)
            return false;
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

ServiceOptions
smallOptions(std::size_t shards)
{
    ServiceOptions options;
    options.shards = shards;
    options.threads = 2;
    options.tenants = 16;
    options.linesPerTenant = 1024;
    options.burstMax = 8;
    options.roundEvents = 1024;
    options.totalEvents = 16000;
    return options;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ServiceTelemetry, PerTenantTotalsReconcileWithRunAccounting)
{
    const ServiceOptions options = smallOptions(4);
    DedupService service(options);
    const ServiceResult result = service.run();

    std::uint64_t writes = 0, reads = 0, eliminated = 0;
    for (const ShardOutcome &shard : result.shards) {
        writes += shard.cell.run.writes;
        reads += shard.cell.run.reads;
        eliminated += shard.cell.run.writesEliminated;
    }

    std::uint64_t tele_writes = 0, tele_reads = 0;
    std::uint64_t tele_eliminated = 0, tele_batches = 0;
    for (std::size_t k = 0; k < service.shards(); ++k) {
        const obs::ShardTelemetry &shard = service.shardTelemetry(k);
        tele_writes += shard.writes();
        tele_reads += shard.readHist().count();
        tele_eliminated += shard.writesEliminated();
        tele_batches += shard.batchHist().count();

        // Per-tenant rows partition the shard's histograms exactly.
        ASSERT_EQ(shard.tenants(), options.tenants);
        std::uint64_t tenant_writes = 0, tenant_reads = 0;
        std::uint64_t tenant_eliminated = 0;
        for (std::uint64_t t = 0; t < shard.tenants(); ++t) {
            tenant_writes += shard.tenantWrites(t);
            tenant_reads += shard.tenantReadHist(t).count();
            tenant_eliminated += shard.tenantWritesEliminated(t);
        }
        EXPECT_EQ(tenant_writes, shard.writes());
        EXPECT_EQ(tenant_reads, shard.readHist().count());
        EXPECT_EQ(tenant_eliminated, shard.writesEliminated());
    }

    // Telemetry is pure observation of the simulated run: same totals.
    EXPECT_EQ(tele_writes, writes);
    EXPECT_EQ(tele_reads, reads);
    EXPECT_EQ(tele_eliminated, eliminated);
    EXPECT_GT(tele_batches, 0u);
    EXPECT_GT(writes, 0u);
    EXPECT_GT(reads, 0u);
}

TEST(ServiceTelemetry, SkewGaugesAppearInMergedSnapshot)
{
    DedupService service(smallOptions(4));
    service.run();

    double min = -1, mean = -1, max = -1, cv = -1;
    for (const obs::MetricSample &s : service.registrySnapshot()) {
        if (s.path == "service.skew.round_min")
            min = s.value;
        else if (s.path == "service.skew.round_mean")
            mean = s.value;
        else if (s.path == "service.skew.round_max")
            max = s.value;
        else if (s.path == "service.skew.total_cv")
            cv = s.value;
    }
    ASSERT_GE(min, 0.0);
    ASSERT_GE(cv, 0.0);
    EXPECT_LE(min, mean);
    EXPECT_LE(mean, max);
    EXPECT_GT(service.skewMonitor().rounds(), 0u);
}

TEST(ServiceTelemetry, FingerprintsInvariantUnderTelemetry)
{
    for (const std::size_t shards : { std::size_t{ 1 },
                                      std::size_t{ 8 } }) {
        const ServiceOptions options = smallOptions(shards);

        ::unsetenv("DEWRITE_TELEMETRY");
        DedupService off(options);
        const ServiceResult base = off.run();
        EXPECT_FALSE(off.telemetrySink().enabled());

        const std::string path = tempPath("invariance.jsonl");
        std::remove(path.c_str());
        std::vector<std::uint32_t> on_fingerprints;
        {
            ScopedEnv tele("DEWRITE_TELEMETRY", path.c_str());
            ScopedEnv every("DEWRITE_TELEMETRY_EVERY", "2");
            DedupService on(options);
            const ServiceResult traced = on.run();
            EXPECT_TRUE(on.telemetrySink().enabled());
            EXPECT_TRUE(on.telemetrySink().ok());
            EXPECT_GT(on.telemetrySnapshots(), 0u);
            for (const ShardOutcome &shard : traced.shards)
                on_fingerprints.push_back(shard.fingerprint);
        }

        ASSERT_EQ(on_fingerprints.size(), base.shards.size());
        for (std::size_t k = 0; k < base.shards.size(); ++k)
            EXPECT_EQ(on_fingerprints[k], base.shards[k].fingerprint)
                << "shards=" << shards << " shard=" << k;
        std::remove(path.c_str());
        std::remove((path + ".prom").c_str());
    }
}

TEST(ServiceTelemetry, JsonlSnapshotsRoundTripWithPerTenantP99)
{
    const std::string path = tempPath("telemetry.jsonl");
    std::remove(path.c_str());
    ScopedEnv tele("DEWRITE_TELEMETRY", path.c_str());
    ScopedEnv every("DEWRITE_TELEMETRY_EVERY", "2");

    const ServiceOptions options = smallOptions(4);
    DedupService service(options);
    service.run();
    ASSERT_TRUE(service.telemetrySink().ok());

    const std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), service.telemetrySnapshots());
    ASSERT_GT(lines.size(), 1u);

    for (std::size_t i = 0; i < lines.size(); ++i) {
        Json snapshot;
        ASSERT_TRUE(JsonParser(lines[i]).parse(snapshot))
            << "line " << i << ": " << lines[i];
        EXPECT_EQ(snapshot.at("type").str, "telemetry");
        EXPECT_EQ(snapshot.at("final").b, i + 1 == lines.size());
        EXPECT_EQ(snapshot.at("shards").num, 4.0);
        EXPECT_EQ(snapshot.at("tenants").num,
                  static_cast<double>(options.tenants));

        // Skew block: a full min/mean/max/cv triple per window.
        const Json &skew = snapshot.at("skew");
        for (const char *window : { "round", "window", "total" }) {
            const Json &stats = skew.at(window);
            EXPECT_LE(stats.at("min").num, stats.at("mean").num);
            EXPECT_LE(stats.at("mean").num, stats.at("max").num);
            EXPECT_GE(stats.at("cv").num, 0.0);
        }
        EXPECT_EQ(skew.at("alert").kind, Json::Kind::Bool);

        EXPECT_EQ(snapshot.at("per_shard").array.size(), 4u);
        for (const Json &shard : snapshot.at("per_shard").array) {
            EXPECT_GE(shard.at("dup_ratio").num, 0.0);
            EXPECT_LE(shard.at("dup_ratio").num, 1.0);
            EXPECT_LE(shard.at("dup_ratio_epoch").num, 1.0);
            shard.at("batch_span_ps");
        }

        // Every tenant reports, each with a parsed latency p99.
        const Json &tenants = snapshot.at("per_tenant");
        ASSERT_EQ(tenants.array.size(), options.tenants);
        for (std::uint64_t t = 0; t < options.tenants; ++t) {
            const Json &row = tenants.array[t];
            EXPECT_EQ(row.at("tenant").num, static_cast<double>(t));
            const Json &write = row.at("write_latency_ps");
            EXPECT_GE(write.at("p99").num, write.at("p50").num);
            EXPECT_GE(write.at("max").num, write.at("p99").num);
            row.at("read_latency_ps").at("p99");
        }
    }

    // The final frame accounts every ingested event across shards.
    Json last;
    ASSERT_TRUE(JsonParser(lines.back()).parse(last));
    double shard_events = 0;
    for (const Json &shard : last.at("per_shard").array)
        shard_events += shard.at("events").num;
    EXPECT_EQ(shard_events, last.at("events").num);
    EXPECT_EQ(last.at("events").num,
              static_cast<double>(options.totalEvents));

    std::remove(path.c_str());
    std::remove((path + ".prom").c_str());
}

TEST(ServiceTelemetry, PromExpositionCarriesSkewAndLatencyGauges)
{
    const std::string path = tempPath("telemetry_prom.jsonl");
    std::remove(path.c_str());
    ScopedEnv tele("DEWRITE_TELEMETRY", path.c_str());
    ScopedEnv every("DEWRITE_TELEMETRY_EVERY", "4");

    DedupService service(smallOptions(2));
    service.run();
    ASSERT_TRUE(service.telemetrySink().ok());

    const std::string prom = readAll(service.telemetrySink().promPath());
    EXPECT_NE(prom.find("# TYPE dewrite_service_skew_round_cv gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("dewrite_service_skew_alert"),
              std::string::npos);
    EXPECT_NE(
        prom.find("dewrite_shard0_telemetry_write_latency_p99_ps"),
        std::string::npos);
    EXPECT_NE(
        prom.find("dewrite_shard1_telemetry_write_latency_p99_ps"),
        std::string::npos);
    EXPECT_NE(prom.find("dewrite_shard0_telemetry_dup_ratio"),
              std::string::npos);
    // Counters keep their Prometheus type.
    EXPECT_NE(prom.find("# TYPE dewrite_service_rounds counter"),
              std::string::npos);

    std::remove(path.c_str());
    std::remove(service.telemetrySink().promPath().c_str());
}

TEST(ServiceTelemetryDeathTest, RejectsMalformedEmitCadence)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv every("DEWRITE_TELEMETRY_EVERY", "abc");
    EXPECT_EXIT(obs::TelemetryConfig::fromEnv(),
                ::testing::ExitedWithCode(1),
                "DEWRITE_TELEMETRY_EVERY");
}

TEST(ServiceTelemetryDeathTest, RejectsZeroEmitCadence)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv every("DEWRITE_TELEMETRY_EVERY", "0");
    EXPECT_EXIT(obs::TelemetryConfig::fromEnv(),
                ::testing::ExitedWithCode(1),
                "DEWRITE_TELEMETRY_EVERY");
}

} // namespace
} // namespace dewrite
