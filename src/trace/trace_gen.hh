/**
 * @file
 * Synthetic workload generation — the SPEC CPU2006 / PARSEC substitute.
 *
 * Real traces are not redistributable, so each application is modelled
 * by a parameterized generator calibrated to the paper's measured
 * content statistics (DESIGN.md Section 2):
 *
 *  - duplicate-line fraction of write-backs (Figure 2, 18.6%..98.4%);
 *  - zero-line share of those duplicates (Figure 2, sjeng-dominated);
 *  - temporal locality of the duplicate state via a sticky Markov
 *    process (Figure 4's ~92% same-as-previous probability);
 *  - content popularity skew (Figure 7's reference-count tail);
 *  - word-sparse rewrites of unique lines (what DEUCE exploits);
 *  - memory intensity via exponential instruction gaps.
 *
 * Duplicates are duplicates *by construction*: the generator mirrors
 * the memory image and copies the content of a currently-live line, so
 * measured duplication tracks the configured target.
 */

#ifndef DEWRITE_TRACE_TRACE_GEN_HH
#define DEWRITE_TRACE_TRACE_GEN_HH

#include <memory>
#include <string>
#include <vector>

#include "common/dense_line_store.hh"
#include "common/paged_array.hh"
#include "common/rng.hh"
#include "trace/trace.hh"

namespace dewrite {

/** Calibrated parameters of one application. */
struct AppProfile
{
    std::string name;
    std::string suite;              //!< "SPEC" or "PARSEC".
    double dupTarget = 0.5;         //!< Duplicate fraction of write-backs.
    double zeroGivenDup = 0.2;      //!< P(content is the zero line | dup).
    double statePersistence = 0.9;  //!< Stickiness of the dup-state chain.
    double glitchRate = 0.03;       //!< P(write deviates from its phase).
    double writeFraction = 0.5;     //!< P(event is a write-back).
    double rewriteFraction = 0.6;   //!< P(unique write mutates a line).
    unsigned mutateWordsMax = 6;    //!< Max 64-bit words per rewrite.
    std::uint64_t workingSetLines = 32768;
    double instGapMean = 100.0;     //!< Mean instructions between events.
    double popularityTheta = 0.7;   //!< Zipf skew of dup-source choice.
};

/**
 * Duplicate-state phase shared by the co-running instances of one
 * application. Real programs move through program-wide phases (an
 * initialization burst, a copy loop), so the *interleaved* write-back
 * stream of several cores keeps the temporal locality Figure 4
 * measures; independent per-core states would destroy it.
 */
struct SharedPhase
{
    bool prevDup = false;
    bool started = false;
};

class SyntheticWorkload : public TraceSource
{
  public:
    SyntheticWorkload(const AppProfile &profile, std::uint64_t seed);

    /**
     * Multi-core variant: @p addr_base offsets this instance's address
     * space (co-running processes do not share lines) and @p phase
     * couples the duplicate-state process across instances.
     */
    SyntheticWorkload(const AppProfile &profile, std::uint64_t seed,
                      LineAddr addr_base,
                      std::shared_ptr<SharedPhase> phase);

    bool next(MemEvent &event) override;

    const AppProfile &profile() const { return profile_; }

  private:
    /** Picks an already-written address, recency-skewed by @p theta. */
    LineAddr sampleWrittenAddr(double theta);

    /**
     * Picks a read target. Reads model LLC *misses*: the hottest lines
     * and bulk-duplicated regions (zero fills, copies) are served by
     * the CPU caches or never read back, so read sampling uses a
     * flatter skew and avoids duplicate-content lines.
     */
    LineAddr sampleReadAddr();

    /** Chooses the target address of a write (fresh or rewrite). */
    LineAddr chooseWriteAddr();

    /** Produces fresh content guaranteed unique across the run. */
    Line makeUniqueContent(LineAddr addr);

    AppProfile profile_;
    Rng rng_;
    LineAddr addrBase_;
    std::shared_ptr<SharedPhase> phase_;
    double phaseDupProb_; //!< Phase-level dup prob after glitch removal.

    DenseLineStore image_;               //!< Mirror of memory.
    std::vector<LineAddr> writtenAddrs_; //!< Insertion order.
    DenseAddrSet dupWritten_;            //!< Last write was a dup.
    std::uint64_t uniqueStamp_ = 0;
    LineAddr nextFreshAddr_ = 0;
};

/**
 * The paper's worst-case microbenchmark (Section IV-C4): randomized
 * values inserted into a two-dimensional array, then traversed — no
 * duplicate write ever occurs.
 */
class WorstCaseWorkload : public TraceSource
{
  public:
    WorstCaseWorkload(std::uint64_t working_set_lines, double inst_gap_mean,
                      std::uint64_t seed);

    bool next(MemEvent &event) override;

  private:
    std::uint64_t workingSet_;
    double instGapMean_;
    Rng rng_;
    std::uint64_t position_ = 0;
    std::uint64_t stamp_ = 0;
    bool writePhase_ = true;
};

} // namespace dewrite

#endif // DEWRITE_TRACE_TRACE_GEN_HH
