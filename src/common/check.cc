/**
 * @file
 * DEWRITE_CHECK failure reporting.
 */

#include "common/check.hh"

#include <cstdarg>
#include <cstdio>
#include <string>

namespace dewrite {
namespace detail {

void
checkFailed(const char *file, int line, const char *condition,
            const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list sizing;
    va_copy(sizing, args);
    const int body = std::vsnprintf(nullptr, 0, fmt, sizing);
    va_end(sizing);

    std::string message;
    if (body > 0) {
        message.resize(static_cast<std::size_t>(body) + 1);
        std::vsnprintf(message.data(),
                       static_cast<std::size_t>(body) + 1, fmt, args);
        message.resize(static_cast<std::size_t>(body));
    }
    va_end(args);

    panic("DEWRITE_CHECK failed at %s:%d: (%s) %s", file, line,
          condition, message.c_str());
}

} // namespace detail
} // namespace dewrite
