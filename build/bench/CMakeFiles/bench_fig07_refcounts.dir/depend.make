# Empty dependencies file for bench_fig07_refcounts.
# This may be replaced when dependencies are built.
