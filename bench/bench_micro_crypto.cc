/**
 * @file
 * Micro-benchmarks of the functional kernels (google-benchmark).
 *
 * These measure host-side simulation throughput of the AES, CME, and
 * CRC implementations — relevant to how fast experiments run, not to
 * the modelled hardware latencies (those are constants from
 * TimingConfig).
 */

#include <benchmark/benchmark.h>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "crypto/aes128.hh"
#include "crypto/counter_mode.hh"
#include "crypto/direct_encrypt.hh"
#include "crypto/strong_fingerprint.hh"
#include "sim/system.hh"

namespace {

using namespace dewrite;

void
BM_AesEncryptBlock(benchmark::State &state)
{
    const Aes128 aes(defaultAesKey());
    AesBlock block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_AesEncryptBlockReference(benchmark::State &state)
{
    const Aes128 aes(defaultAesKey());
    AesBlock block{};
    for (auto _ : state) {
        block = aes.encryptBlockReference(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlockReference);

void
BM_AesDecryptBlock(benchmark::State &state)
{
    const Aes128 aes(defaultAesKey());
    AesBlock block{};
    for (auto _ : state) {
        block = aes.decryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesDecryptBlock);

void
BM_AesDecryptBlockReference(benchmark::State &state)
{
    const Aes128 aes(defaultAesKey());
    AesBlock block{};
    for (auto _ : state) {
        block = aes.decryptBlockReference(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesDecryptBlockReference);

void
BM_CmeEncryptLine(benchmark::State &state)
{
    const CounterModeEngine cme(defaultAesKey());
    Rng rng(1);
    const Line line = Line::random(rng);
    std::uint64_t counter = 0;
    for (auto _ : state) {
        Line ct = cme.encryptLine(line, 7, ++counter);
        benchmark::DoNotOptimize(ct);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_CmeEncryptLine);

void
BM_DirectEncryptLine(benchmark::State &state)
{
    const DirectEncryptEngine engine(defaultAesKey());
    Rng rng(2);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        Line ct = engine.encryptLine(line, 9);
        benchmark::DoNotOptimize(ct);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_DirectEncryptLine);

void
BM_Crc32Line(benchmark::State &state)
{
    Rng rng(3);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        std::uint32_t hash = crc32(line);
        benchmark::DoNotOptimize(hash);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_Crc32Line);

void
BM_Crc32LineReference(benchmark::State &state)
{
    Rng rng(3);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        std::uint32_t hash = crc32Reference(line.data(), kLineSize);
        benchmark::DoNotOptimize(hash);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_Crc32LineReference);

void
BM_Crc32cLine(benchmark::State &state)
{
    Rng rng(3);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        std::uint32_t hash = crc32c(line);
        benchmark::DoNotOptimize(hash);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_Crc32cLine);

void
BM_StrongFingerprintLine(benchmark::State &state)
{
    Rng rng(3);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        StrongFp fp = strongFingerprint(line);
        benchmark::DoNotOptimize(fp);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_StrongFingerprintLine);

void
BM_StrongFingerprintLineReference(benchmark::State &state)
{
    Rng rng(3);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        StrongFp fp = strongFingerprintReference(line);
        benchmark::DoNotOptimize(fp);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_StrongFingerprintLineReference);

void
BM_ContentDigest(benchmark::State &state)
{
    Rng rng(3);
    const Line line = Line::random(rng);
    for (auto _ : state) {
        std::uint64_t digest = line.contentDigest();
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_ContentDigest);

void
BM_LineCompare(benchmark::State &state)
{
    Rng rng(4);
    const Line a = Line::random(rng);
    const Line b = a;
    for (auto _ : state) {
        bool equal = a == b;
        benchmark::DoNotOptimize(equal);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_LineCompare);

void
BM_LineCompareLastWordDiffers(benchmark::State &state)
{
    Rng rng(4);
    const Line a = Line::random(rng);
    Line b = a;
    b.setByte(kLineSize - 1, b.byte(kLineSize - 1) ^ 1);
    for (auto _ : state) {
        bool equal = a == b;
        benchmark::DoNotOptimize(equal);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_LineCompareLastWordDiffers);

} // namespace

BENCHMARK_MAIN();
