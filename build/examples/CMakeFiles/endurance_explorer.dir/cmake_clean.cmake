file(REMOVE_RECURSE
  "CMakeFiles/endurance_explorer.dir/endurance_explorer.cpp.o"
  "CMakeFiles/endurance_explorer.dir/endurance_explorer.cpp.o.d"
  "endurance_explorer"
  "endurance_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endurance_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
