/**
 * @file
 * DeWriteController implementation.
 */

#include "controller/dewrite_controller.hh"

#include <algorithm>
#include <array>

#include "common/check.hh"

#include "common/logging.hh"
#include "dedup/metadata_auditor.hh"
#include "obs/trace_ring.hh"

namespace dewrite {

std::string
dedupModeName(DedupMode mode)
{
    switch (mode) {
      case DedupMode::Direct:
        return "direct";
      case DedupMode::Parallel:
        return "parallel";
      case DedupMode::Predicted:
        return "predicted";
    }
    panic("bad dedup mode");
}

DeWriteController::DeWriteController(const SystemConfig &config,
                                     NvmDevice &device, const AesKey &key,
                                     Options options)
    : config_(config), device_(device), cme_(key),
      metadata_(config, device, /*region_base=*/config.memory.numLines),
      reducer_(options.technique == BitTechnique::None
                   ? nullptr
                   : makeReducer(options.technique, cme_)),
      engine_(config, device, metadata_, cme_,
              DedupEngine::Options{ options.detect, reducer_.get(),
                                    /*maxChainProbe=*/4,
                                    options.hashFunction,
                                    /*counterBits=*/28,
                                    options.detectEpochWrites }),
      predictor_(options.historyBits), options_(options),
      auditPerEpoch_(auditEnabled()),
      auditEpochWrites_(auditPerEpoch_ ? auditEpochWrites() : 0)
{
    if (reducer_)
        reducer_->reserveSlots(config.memory.workingSetHint());
}

void
DeWriteController::auditNow(const char *when) const
{
    ++auditsRun_;
    MetadataAuditor(engine_).enforce(when);
}

DeWriteController::DeWriteController(const SystemConfig &config,
                                     NvmDevice &device, const AesKey &key)
    : DeWriteController(config, device, key, Options())
{
}

std::string
DeWriteController::name() const
{
    // Built with += only: GCC 12's -Wrestrict misfires on the
    // temporary produced by chained operator+ concatenation.
    std::string label = "dewrite-";
    label += dedupModeName(options_.mode);
    if (options_.technique != BitTechnique::None) {
        label += "+";
        label += bitTechniqueName(options_.technique);
    }
    if (options_.hashFunction != HashFunction::Crc32) {
        label += "+";
        label += hashSpec(options_.hashFunction).name;
    }
    if (options_.detect != DetectPolicy::ConfirmRead) {
        label += "+";
        label += detectPolicyName(options_.detect);
    }
    return label;
}

void
DeWriteController::startEncryption()
{
    encryptionsStarted_.increment();
    aesEnergy_ += config_.energy.aesLine();
}

CtrlWriteResult
DeWriteController::write(LineAddr addr, const Line &data, Time now)
{
    return writeOne(addr, data, now, /*precomputed_hash=*/nullptr);
}

// dewrite-lint: hot
void
DeWriteController::writeBatch(const CtrlWriteRequest *requests,
                              CtrlWriteResult *results, std::size_t count)
{
    DEWRITE_DCHECK(count <= kMaxWriteBatch,
                   "writeBatch of %zu exceeds kMaxWriteBatch", count);
    if (count < 2) {
        MemController::writeBatch(requests, results, count);
        return;
    }

    // The engine digests every member, prefetches all metadata buckets,
    // and pre-generates the candidate pads 8-wide (strong fingerprints
    // take the skipped confirm pads' slot in the weak+strong tier); the
    // members then replay through the exact serial write path with
    // their digest — and fingerprint, when flagged — handed in.
    std::array<std::uint64_t, kMaxWriteBatch> hashes;
    std::array<StrongFp, kMaxWriteBatch> strong_fps;
    std::array<std::uint8_t, kMaxWriteBatch> strong_ready;
    engine_.prepareBatch(requests, count, hashes.data(),
                         strong_fps.data(), strong_ready.data());
    for (std::size_t i = 0; i < count; ++i) {
        results[i] = writeOne(requests[i].addr, *requests[i].data,
                              requests[i].now, &hashes[i],
                              strong_ready[i] ? &strong_fps[i] : nullptr);
    }
}

CtrlWriteResult
DeWriteController::writeOne(LineAddr addr, const Line &data, Time now,
                            const std::uint64_t *precomputed_hash,
                            const StrongFp *precomputed_strong)
{
    DetectOutcome det;
    Time encrypt_ready = 0;
    bool speculative_encryption = false;
    std::int8_t predicted_dup = -1; //!< Trace: -1 no prediction made.

    switch (options_.mode) {
      case DedupMode::Direct:
        det = engine_.detect(data, now, /*allow_nvm_fill=*/true,
                             precomputed_hash, precomputed_strong);
        if (!det.duplicate) {
            // Serial: the AES engine starts only after detection rules
            // out a duplicate.
            startEncryption();
            encrypt_ready = det.done + config_.timing.aesLine;
        }
        break;

      case DedupMode::Parallel:
        // Encryption and detection launch together; the ciphertext is
        // wasted whenever the line turns out to be a duplicate.
        startEncryption();
        speculative_encryption = true;
        encrypt_ready = now + config_.timing.aesLine;
        det = engine_.detect(data, now, /*allow_nvm_fill=*/true,
                             precomputed_hash, precomputed_strong);
        break;

      case DedupMode::Predicted:
        predicted_dup = predictor_.predictDuplicate() ? 1 : 0;
        if (predicted_dup) {
            // Predicted duplicate: direct path, and the PNA scheme
            // allows the in-NVM hash-table query.
            det = engine_.detect(data, now, /*allow_nvm_fill=*/true,
                                 precomputed_hash, precomputed_strong);
            if (!det.duplicate) {
                startEncryption();
                encrypt_ready = det.done + config_.timing.aesLine;
            }
        } else {
            // Predicted unique: parallel path; PNA skips the in-NVM
            // hash-table query on a metadata-cache miss.
            startEncryption();
            speculative_encryption = true;
            encrypt_ready = now + config_.timing.aesLine;
            det = engine_.detect(data, now,
                                 /*allow_nvm_fill=*/!options_.pnaEnabled,
                                 precomputed_hash, precomputed_strong);
        }
        break;
    }

    WriteCommit commit;
    if (det.duplicate) {
        commit = engine_.commitDuplicate(addr, det, det.done);
        if (speculative_encryption)
            wastedEncryptions_.increment();
    } else {
        commit = engine_.commitUnique(addr, data, det.hash, det.done,
                                      encrypt_ready);
    }

    // The predictor learns the resolved state of every write no matter
    // which path scheduled it (its accuracy stat backs Figure 4).
    predictor_.recordAndScore(det.duplicate);

    if (tracer_) [[unlikely]] {
        obs::WriteEvent ev;
        ev.issue = now;
        ev.done = commit.done;
        ev.addr = addr;
        ev.hash = static_cast<std::uint32_t>(det.hash);
        ev.path = speculative_encryption ? obs::WritePath::Parallel
                                         : obs::WritePath::Direct;
        ev.predictedDup = predicted_dup;
        ev.duplicate = det.duplicate;
        ev.authoritative = det.authoritative;
        ev.wroteLine = commit.wroteLine;
        ev.reencrypted = commit.reencrypted;
        ev.home = engine_.counterHome(commit.slot);
        ev.confirmReads = static_cast<std::uint8_t>(
            std::min(det.confirmReads, 255u));
        tracer_->record(ev);
    }

    if (auditPerEpoch_ && ++writesSinceAudit_ >= auditEpochWrites_)
        [[unlikely]] {
        writesSinceAudit_ = 0;
        auditNow("epoch");
    }

    const Time latency = commit.done - now;
    noteWrite(latency, det.duplicate, commit.bitsProgrammed);
    return { latency, det.duplicate };
}

CtrlReadResult
DeWriteController::read(LineAddr addr, Time now)
{
    const ReadOutcome outcome = engine_.read(addr, now);
    CtrlReadResult result;
    result.data = outcome.data;
    result.valid = outcome.valid;
    result.latency = outcome.done - now;
    noteRead(result.latency);
    return result;
}

CtrlReadResult
DeWriteController::readTiming(LineAddr addr, Time now)
{
    const ReadOutcome outcome =
        engine_.read(addr, now, /*want_data=*/false);
    CtrlReadResult result;
    result.valid = outcome.valid;
    result.latency = outcome.done - now;
    noteRead(result.latency);
    return result;
}

Energy
DeWriteController::controllerEnergy() const
{
    return aesEnergy_ + engine_.totalEnergy() + metadata_.totalEnergy();
}

void
DeWriteController::registerSchemeMetrics(obs::MetricRegistry &registry)
    const
{
    // The historical flat StatSet exported writes_eliminated only for
    // DeWrite; the canonical path is registered by the base class.
    registry.aliasLegacy("controller.writes_eliminated",
                         "writes_eliminated");

    obs::MetricRegistry::Scope c = registry.scope("controller");
    c.counter("wasted_encryptions", wastedEncryptions_,
              "speculative ciphertexts discarded on duplicates",
              "wasted_encryptions");
    c.counter("encryptions_started", encryptionsStarted_,
              "data-line encryptions launched (useful or wasted)");

    engine_.registerMetrics(registry.scope("controller.dedup"));
    predictor_.registerMetrics(registry.scope("controller.predictor"));
    metadata_.registerMetrics(registry.scope("cache.metadata"));
}

} // namespace dewrite
