/**
 * @file
 * SECRET reducer — DEUCE plus zero-word avoidance.
 *
 * SECRET [Swami et al., §V of the paper] refines word-level partial
 * re-encryption for MLC NVMs: words that become all-zero are stored as
 * raw zeros (with a per-word zero flag) instead of being re-encrypted,
 * so a zero word costs only the cells that must be cleared and
 * repeated zero words cost nothing. Non-zero modified words follow
 * DEUCE's leading-counter re-encryption.
 */

#ifndef DEWRITE_CONTROLLER_BITLEVEL_SECRET_HH
#define DEWRITE_CONTROLLER_BITLEVEL_SECRET_HH

#include <bitset>

#include "common/paged_array.hh"
#include "controller/bitlevel/bitflip.hh"
#include "crypto/counter_mode.hh"

namespace dewrite {

class SecretReducer : public BitLevelReducer
{
  public:
    /** Epoch interval in writes (matches DEUCE's setting). */
    static constexpr std::uint64_t kEpochInterval = 32;

    explicit SecretReducer(const CounterModeEngine &cme) : cme_(cme) {}

    std::size_t onWrite(LineAddr slot, const Line &new_pt,
                        std::uint64_t counter) override;

    BitTechnique technique() const override
    {
        return BitTechnique::Secret;
    }

    void reserveSlots(std::uint64_t expected) override
    {
        state_.reserve(expected);
    }

  private:
    static constexpr std::size_t kWordBits = 16;
    static constexpr std::size_t kWordsPerLine = kLineBits / kWordBits;

    struct SlotState
    {
        bool initialized = false;
        std::uint64_t epochCounter = 0;
        Line plainImage;
        Line cellImage;
        std::bitset<kWordsPerLine> modified; //!< LCTR-encrypted words.
        std::bitset<kWordsPerLine> zeroed;   //!< Stored as raw zeros.
    };

    /** Cells programmed to store word @p target over @p stored. */
    static std::size_t flipCost(std::uint16_t stored,
                                std::uint16_t target);

    const CounterModeEngine &cme_;
    PagedArray<SlotState, 1024> state_;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_BITLEVEL_SECRET_HH
