/**
 * @file
 * AES-128 implementation (FIPS-197).
 *
 * The S-box is generated at static-initialization time from the AES
 * field inverse and affine map rather than pasted as a 256-entry table,
 * which both documents where the values come from and removes a class
 * of transcription errors.
 *
 * Three kernels share the expanded key: the byte-oriented reference
 * (the spec, kept as the testing oracle), a four-T-table software
 * kernel with construction-time word round keys, and hardware AES-NI.
 * The fast entry points dispatch once at startup on CPU capability;
 * all kernels are bit-identical.
 */

#include "crypto/aes128.hh"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DEWRITE_X86 1
#endif

namespace dewrite {

namespace {

/** Multiplication in GF(2^8) with the AES reduction polynomial 0x11b. */
std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t result = 0;
    while (b) {
        if (b & 1)
            result ^= a;
        const bool high = a & 0x80;
        a <<= 1;
        if (high)
            a ^= 0x1b;
        b >>= 1;
    }
    return result;
}

struct SBoxTables
{
    std::array<std::uint8_t, 256> fwd;
    std::array<std::uint8_t, 256> inv;

    SBoxTables()
    {
        // Build the multiplicative inverse table by exhaustion (the
        // field is tiny), then apply the affine transformation.
        std::array<std::uint8_t, 256> inverse{};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gfMul(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)) == 1) {
                    inverse[a] = static_cast<std::uint8_t>(b);
                    break;
                }
            }
        }
        for (int x = 0; x < 256; ++x) {
            const std::uint8_t i = inverse[x];
            std::uint8_t s = 0;
            for (int bit = 0; bit < 8; ++bit) {
                const int v = ((i >> bit) & 1) ^
                              ((i >> ((bit + 4) % 8)) & 1) ^
                              ((i >> ((bit + 5) % 8)) & 1) ^
                              ((i >> ((bit + 6) % 8)) & 1) ^
                              ((i >> ((bit + 7) % 8)) & 1) ^
                              ((0x63 >> bit) & 1);
                s |= static_cast<std::uint8_t>(v << bit);
            }
            fwd[x] = s;
            inv[s] = static_cast<std::uint8_t>(x);
        }
    }
};

const SBoxTables kSBox;

/**
 * Encryption T-tables: te[0][x] packs MixColumns applied to S[x] as
 * the big-endian column (2*S[x], S[x], S[x], 3*S[x]); te[1..3] are its
 * byte rotations, precomputed so the round loop is pure loads and
 * xors.
 */
struct TeTable
{
    std::array<std::array<std::uint32_t, 256>, 4> te;

    TeTable()
    {
        for (int x = 0; x < 256; ++x) {
            const std::uint8_t s = kSBox.fwd[x];
            const std::uint8_t s2 = gfMul(s, 2);
            const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
            const std::uint32_t w =
                (static_cast<std::uint32_t>(s2) << 24) |
                (static_cast<std::uint32_t>(s) << 16) |
                (static_cast<std::uint32_t>(s) << 8) |
                static_cast<std::uint32_t>(s3);
            te[0][x] = w;
            te[1][x] = std::rotr(w, 8);
            te[2][x] = std::rotr(w, 16);
            te[3][x] = std::rotr(w, 24);
        }
    }
};

const TeTable kTe;

void
subBytes(AesBlock &state)
{
    for (auto &b : state)
        b = kSBox.fwd[b];
}

void
invSubBytes(AesBlock &state)
{
    for (auto &b : state)
        b = kSBox.inv[b];
}

// State layout: state[r + 4*c] is row r, column c (FIPS-197 column-major).

void
shiftRows(AesBlock &state)
{
    AesBlock out;
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c)
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)];
    }
    state = out;
}

void
invShiftRows(AesBlock &state)
{
    AesBlock out;
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c)
            out[r + 4 * ((c + r) % 4)] = state[r + 4 * c];
    }
    state = out;
}

void
mixColumns(AesBlock &state)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = state.data() + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        col[0] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3;
        col[1] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3;
        col[2] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3);
        col[3] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2);
    }
}

void
invMixColumns(AesBlock &state)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = state.data() + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        col[0] = gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^
                 gfMul(a3, 9);
        col[1] = gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^
                 gfMul(a3, 13);
        col[2] = gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^
                 gfMul(a3, 11);
        col[3] = gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^
                 gfMul(a3, 14);
    }
}

void
addRoundKey(AesBlock &state, const std::uint8_t *round_key)
{
    for (int i = 0; i < 16; ++i)
        state[i] ^= round_key[i];
}

bool
cpuHasAesni()
{
#ifdef DEWRITE_X86
    return __builtin_cpu_supports("aes") &&
           __builtin_cpu_supports("sse2");
#else
    return false;
#endif
}

const bool kUseAesni = cpuHasAesni();

} // namespace

Aes128::Aes128(const AesKey &key)
{
    expandKey(key);
}

void
Aes128::expandKey(const AesKey &key)
{
    // Round constants for AES-128 key expansion.
    static constexpr std::uint8_t rcon[10] = {
        0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36
    };

    std::memcpy(roundKeys_.data(), key.data(), 16);
    for (int word = 4; word < 4 * (kRounds + 1); ++word) {
        std::uint8_t temp[4];
        std::memcpy(temp, roundKeys_.data() + 4 * (word - 1), 4);
        if (word % 4 == 0) {
            // RotWord + SubWord + Rcon.
            const std::uint8_t t0 = temp[0];
            temp[0] = static_cast<std::uint8_t>(kSBox.fwd[temp[1]] ^
                                                rcon[word / 4 - 1]);
            temp[1] = kSBox.fwd[temp[2]];
            temp[2] = kSBox.fwd[temp[3]];
            temp[3] = kSBox.fwd[t0];
        }
        for (int i = 0; i < 4; ++i) {
            roundKeys_[4 * word + i] =
                roundKeys_[4 * (word - 4) + i] ^ temp[i];
        }
    }

    // Pre-swap every round key into the big-endian column words the
    // T-table kernel consumes, once instead of on every block.
    for (int w = 0; w < 4 * (kRounds + 1); ++w) {
        const std::uint8_t *p = roundKeys_.data() + 4 * w;
        encKeys_[w] = (static_cast<std::uint32_t>(p[0]) << 24) |
                      (static_cast<std::uint32_t>(p[1]) << 16) |
                      (static_cast<std::uint32_t>(p[2]) << 8) |
                      static_cast<std::uint32_t>(p[3]);
    }

    // Equivalent-inverse-cipher keys for AES-NI decryption: the middle
    // round keys passed through InvMixColumns (FIPS-197 Section 5.3.5).
    imcKeys_.fill(0);
    if (kUseAesni) {
        for (int round = 1; round < kRounds; ++round) {
            AesBlock k;
            std::memcpy(k.data(), roundKeys_.data() + 16 * round, 16);
            invMixColumns(k);
            std::memcpy(imcKeys_.data() + 16 * (round - 1), k.data(),
                        16);
        }
    }
}

bool
Aes128::usesAesni()
{
    return kUseAesni;
}

AesBlock
Aes128::encryptBlock(const AesBlock &plaintext) const
{
#ifdef DEWRITE_X86
    if (kUseAesni)
        return encryptBlockAesni(plaintext);
#endif
    return encryptBlockTables(plaintext);
}

void
Aes128::encryptBlocks(const AesBlock *in, AesBlock *out,
                      std::size_t count) const
{
#ifdef DEWRITE_X86
    if (kUseAesni) {
        encryptBlocksAesni(in, out, count);
        return;
    }
#endif
    for (std::size_t i = 0; i < count; ++i)
        out[i] = encryptBlockTables(in[i]);
}

AesBlock
Aes128::decryptBlock(const AesBlock &ciphertext) const
{
#ifdef DEWRITE_X86
    if (kUseAesni)
        return decryptBlockAesni(ciphertext);
#endif
    return decryptBlockReference(ciphertext);
}

#ifdef DEWRITE_X86

// dewrite-lint: hot
__attribute__((target("aes,sse2"))) AesBlock
Aes128::encryptBlockAesni(const AesBlock &plaintext) const
{
    const auto *keys = reinterpret_cast<const __m128i *>(
        roundKeys_.data());
    __m128i state = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(plaintext.data()));
    state = _mm_xor_si128(state, _mm_loadu_si128(keys));
    for (int round = 1; round < kRounds; ++round)
        state = _mm_aesenc_si128(state, _mm_loadu_si128(keys + round));
    state = _mm_aesenclast_si128(state, _mm_loadu_si128(keys + kRounds));

    AesBlock out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), state);
    return out;
}

__attribute__((target("aes,sse2"))) void
Aes128::encryptBlocksAesni(const AesBlock *in, AesBlock *out,
                           std::size_t count) const
{
    const auto *keys = reinterpret_cast<const __m128i *>(
        roundKeys_.data());
    __m128i rk[kRounds + 1];
    for (int round = 0; round <= kRounds; ++round)
        rk[round] = _mm_loadu_si128(keys + round);

    auto load = [](const AesBlock &b) {
        return _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b.data()));
    };
    auto store = [](AesBlock &b, __m128i v) {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(b.data()), v);
    };

    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        // Eight independent streams: aesenc has multi-cycle latency but
        // pipelined throughput, so interleaving keeps the unit busy.
        __m128i s0 = _mm_xor_si128(load(in[i + 0]), rk[0]);
        __m128i s1 = _mm_xor_si128(load(in[i + 1]), rk[0]);
        __m128i s2 = _mm_xor_si128(load(in[i + 2]), rk[0]);
        __m128i s3 = _mm_xor_si128(load(in[i + 3]), rk[0]);
        __m128i s4 = _mm_xor_si128(load(in[i + 4]), rk[0]);
        __m128i s5 = _mm_xor_si128(load(in[i + 5]), rk[0]);
        __m128i s6 = _mm_xor_si128(load(in[i + 6]), rk[0]);
        __m128i s7 = _mm_xor_si128(load(in[i + 7]), rk[0]);
        for (int round = 1; round < kRounds; ++round) {
            const __m128i k = rk[round];
            s0 = _mm_aesenc_si128(s0, k);
            s1 = _mm_aesenc_si128(s1, k);
            s2 = _mm_aesenc_si128(s2, k);
            s3 = _mm_aesenc_si128(s3, k);
            s4 = _mm_aesenc_si128(s4, k);
            s5 = _mm_aesenc_si128(s5, k);
            s6 = _mm_aesenc_si128(s6, k);
            s7 = _mm_aesenc_si128(s7, k);
        }
        const __m128i last = rk[kRounds];
        store(out[i + 0], _mm_aesenclast_si128(s0, last));
        store(out[i + 1], _mm_aesenclast_si128(s1, last));
        store(out[i + 2], _mm_aesenclast_si128(s2, last));
        store(out[i + 3], _mm_aesenclast_si128(s3, last));
        store(out[i + 4], _mm_aesenclast_si128(s4, last));
        store(out[i + 5], _mm_aesenclast_si128(s5, last));
        store(out[i + 6], _mm_aesenclast_si128(s6, last));
        store(out[i + 7], _mm_aesenclast_si128(s7, last));
    }
    for (; i < count; ++i) {
        __m128i s = _mm_xor_si128(load(in[i]), rk[0]);
        for (int round = 1; round < kRounds; ++round)
            s = _mm_aesenc_si128(s, rk[round]);
        store(out[i], _mm_aesenclast_si128(s, rk[kRounds]));
    }
}

__attribute__((target("aes,sse2"))) AesBlock
Aes128::decryptBlockAesni(const AesBlock &ciphertext) const
{
    const auto *keys = reinterpret_cast<const __m128i *>(
        roundKeys_.data());
    const auto *imc = reinterpret_cast<const __m128i *>(
        imcKeys_.data());
    __m128i state = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(ciphertext.data()));
    state = _mm_xor_si128(state, _mm_loadu_si128(keys + kRounds));
    for (int round = kRounds - 1; round >= 1; --round)
        state = _mm_aesdec_si128(state,
                                 _mm_loadu_si128(imc + (round - 1)));
    state = _mm_aesdeclast_si128(state, _mm_loadu_si128(keys));

    AesBlock out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), state);
    return out;
}

#else // !DEWRITE_X86

AesBlock
Aes128::encryptBlockAesni(const AesBlock &plaintext) const
{
    return encryptBlockTables(plaintext);
}

void
Aes128::encryptBlocksAesni(const AesBlock *in, AesBlock *out,
                           std::size_t count) const
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = encryptBlockTables(in[i]);
}

AesBlock
Aes128::decryptBlockAesni(const AesBlock &ciphertext) const
{
    return decryptBlockReference(ciphertext);
}

#endif // DEWRITE_X86

// dewrite-lint: hot
AesBlock
Aes128::encryptBlockTables(const AesBlock &plaintext) const
{
    auto load = [](const std::uint8_t *p) {
        return (static_cast<std::uint32_t>(p[0]) << 24) |
               (static_cast<std::uint32_t>(p[1]) << 16) |
               (static_cast<std::uint32_t>(p[2]) << 8) |
               static_cast<std::uint32_t>(p[3]);
    };

    const std::uint32_t *rk = encKeys_.data();
    std::uint32_t s0 = load(plaintext.data() + 0) ^ rk[0];
    std::uint32_t s1 = load(plaintext.data() + 4) ^ rk[1];
    std::uint32_t s2 = load(plaintext.data() + 8) ^ rk[2];
    std::uint32_t s3 = load(plaintext.data() + 12) ^ rk[3];

    auto column = [](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                     std::uint32_t d) {
        return kTe.te[0][a >> 24] ^ kTe.te[1][(b >> 16) & 0xff] ^
               kTe.te[2][(c >> 8) & 0xff] ^ kTe.te[3][d & 0xff];
    };

    for (int round = 1; round < kRounds; ++round) {
        const std::uint32_t t0 = column(s0, s1, s2, s3) ^ rk[4 * round];
        const std::uint32_t t1 =
            column(s1, s2, s3, s0) ^ rk[4 * round + 1];
        const std::uint32_t t2 =
            column(s2, s3, s0, s1) ^ rk[4 * round + 2];
        const std::uint32_t t3 =
            column(s3, s0, s1, s2) ^ rk[4 * round + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    auto final_word = [&](std::uint32_t a, std::uint32_t b,
                          std::uint32_t c, std::uint32_t d,
                          std::uint32_t key) {
        return ((static_cast<std::uint32_t>(kSBox.fwd[a >> 24]) << 24) |
                (static_cast<std::uint32_t>(
                     kSBox.fwd[(b >> 16) & 0xff]) << 16) |
                (static_cast<std::uint32_t>(
                     kSBox.fwd[(c >> 8) & 0xff]) << 8) |
                static_cast<std::uint32_t>(kSBox.fwd[d & 0xff])) ^ key;
    };

    const std::uint32_t o0 =
        final_word(s0, s1, s2, s3, rk[4 * kRounds]);
    const std::uint32_t o1 =
        final_word(s1, s2, s3, s0, rk[4 * kRounds + 1]);
    const std::uint32_t o2 =
        final_word(s2, s3, s0, s1, rk[4 * kRounds + 2]);
    const std::uint32_t o3 =
        final_word(s3, s0, s1, s2, rk[4 * kRounds + 3]);

    AesBlock out;
    auto store = [](std::uint8_t *p, std::uint32_t w) {
        p[0] = static_cast<std::uint8_t>(w >> 24);
        p[1] = static_cast<std::uint8_t>(w >> 16);
        p[2] = static_cast<std::uint8_t>(w >> 8);
        p[3] = static_cast<std::uint8_t>(w);
    };
    store(out.data() + 0, o0);
    store(out.data() + 4, o1);
    store(out.data() + 8, o2);
    store(out.data() + 12, o3);
    return out;
}

AesBlock
Aes128::encryptBlockReference(const AesBlock &plaintext) const
{
    AesBlock state = plaintext;
    addRoundKey(state, roundKeys_.data());
    for (int round = 1; round < kRounds; ++round) {
        subBytes(state);
        shiftRows(state);
        mixColumns(state);
        addRoundKey(state, roundKeys_.data() + 16 * round);
    }
    subBytes(state);
    shiftRows(state);
    addRoundKey(state, roundKeys_.data() + 16 * kRounds);
    return state;
}

AesBlock
Aes128::decryptBlockReference(const AesBlock &ciphertext) const
{
    AesBlock state = ciphertext;
    addRoundKey(state, roundKeys_.data() + 16 * kRounds);
    for (int round = kRounds - 1; round >= 1; --round) {
        invShiftRows(state);
        invSubBytes(state);
        addRoundKey(state, roundKeys_.data() + 16 * round);
        invMixColumns(state);
    }
    invShiftRows(state);
    invSubBytes(state);
    addRoundKey(state, roundKeys_.data());
    return state;
}

} // namespace dewrite
