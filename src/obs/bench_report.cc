/**
 * @file
 * BenchReport implementation.
 */

#include "obs/bench_report.hh"

#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/version_info.hh"

namespace dewrite::obs {

BenchReport::BenchReport(const std::string &name,
                         std::uint64_t events_per_cell, unsigned threads)
    : path_("BENCH_" + name + ".json")
{
    file_ = std::fopen(path_.c_str(), "w");
    if (!file_) {
        warn("cannot open %s for writing", path_.c_str());
        // Writers keep working against a scratch sink so benches can
        // stream unconditionally; close() still reports the failure.
        writer_ = std::make_unique<JsonWriter>(&scratch_);
        writer_->beginObject();
        return;
    }
    writer_ = std::make_unique<JsonWriter>(file_);
    writer_->beginObject();
    writer_->field("bench", name);
    writer_->field("schema_version", kBenchSchemaVersion);
    writer_->field("events_per_cell", events_per_cell);
    writer_->field("threads", threads);

    // Provenance: enough to reproduce (or refuse to compare) this run.
    writer_->key("provenance");
    writer_->beginObject();
    writer_->field("git_sha", kGitSha);
    writer_->field("git_dirty", kGitDirty);
    writer_->field("host_cpus", static_cast<std::uint64_t>(
                                    std::thread::hardware_concurrency()));
    writer_->key("knobs");
    writer_->beginObject();
    for (const char *knob : knownKnobs()) {
        writer_->key(knob);
        // Verbatim capture of whatever the run actually saw; each
        // knob's consumer has already fail-fast-validated it.
        // dewrite-lint: allow(env-fail-fast)
        if (const char *value = envRaw(knob))
            writer_->value(value);
        else
            writer_->valueNull();
    }
    writer_->endObject();
    writer_->endObject();
}

BenchReport::~BenchReport()
{
    if (file_)
        close();
}

bool
BenchReport::close()
{
    if (!file_) {
        writer_.reset();
        return false;
    }
    writer_->endObject();
    const bool wrote_ok = writer_->ok() && writer_->depth() == 0;
    writer_.reset();
    const bool closed_ok = std::fclose(file_) == 0;
    file_ = nullptr;
    return wrote_ok && closed_ok;
}

} // namespace dewrite::obs
