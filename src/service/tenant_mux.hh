/**
 * @file
 * Deterministic multi-tenant ingest: many tenant streams, one canonical
 * global order.
 *
 * A TenantMux owns one synthetic workload per tenant and interleaves
 * them in bursty round-robin order: tenants are visited cyclically and
 * each visit drains a burst whose length is a pure hash of (tenant,
 * round) — the arrival pattern of a service front-end multiplexing
 * independent clients, with no randomness that could differ between
 * runs. The resulting event sequence *is* the canonical global order:
 * the service routes it to shards as it is drawn, and a reference run
 * replays exactly the same sequence (ShardPartitionTrace) filtered to
 * one shard. Determinism of the parity contract rests entirely on this
 * order being a function of the construction parameters.
 */

#ifndef DEWRITE_SERVICE_TENANT_MUX_HH
#define DEWRITE_SERVICE_TENANT_MUX_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "service/shard_router.hh"
#include "trace/trace.hh"
#include "trace/trace_gen.hh"

namespace dewrite {

/** One tenant of the service: its workload profile and trace seed. */
struct TenantSpec
{
    AppProfile profile;
    std::uint64_t seed = 0;
};

class TenantMux
{
  public:
    /**
     * Multiplexes @p tenants streams with bursts of 1..@p burst_max
     * events per visit.
     */
    TenantMux(const std::vector<TenantSpec> &tenants,
              unsigned burst_max);

    std::size_t tenants() const { return streams_.size(); }

    /**
     * Draws the next event of the canonical global order and reports
     * which tenant issued it. Synthetic streams are unbounded, so this
     * always succeeds.
     */
    void next(MemEvent &event, std::uint64_t &tenant);

  private:
    /** Burst length for @p tenant's @p round-th visit (pure hash). */
    unsigned burstLen(std::uint64_t tenant, std::uint64_t round) const;

    std::vector<std::unique_ptr<SyntheticWorkload>> streams_;
    unsigned burstMax_;
    std::uint64_t current_ = 0;   //!< Tenant being drained.
    std::uint64_t round_ = 0;     //!< Completed round-robin cycles.
    unsigned remaining_ = 0;      //!< Events left in the current burst.
};

/**
 * The canonical global order filtered to one shard, as a TraceSource
 * with shard-local addresses — what an independent single-shard System
 * run consumes to reproduce exactly the event subsequence the service
 * fed that shard. Owns its own TenantMux built from the same specs, so
 * a reference run shares no state with the service it checks.
 */
class ShardPartitionTrace : public TraceSource
{
  public:
    ShardPartitionTrace(const std::vector<TenantSpec> &tenants,
                        unsigned burst_max, const ShardRouter &router,
                        std::size_t shard);

    bool next(MemEvent &event) override;

  private:
    TenantMux mux_;
    const ShardRouter &router_;
    std::size_t shard_;
};

} // namespace dewrite

#endif // DEWRITE_SERVICE_TENANT_MUX_HH
