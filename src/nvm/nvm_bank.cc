/**
 * @file
 * Bank timing implementation.
 */

#include "nvm/nvm_bank.hh"

#include <algorithm>

namespace dewrite {

BankService
NvmBank::service(Time now, Time duration)
{
    const Time start = std::max(now, busyUntil_);
    const Time complete = start + duration;
    busyUntil_ = complete;
    ++accesses_;
    totalQueueDelay_ += start - now;
    totalBusyTime_ += duration;
    return { start, complete, start - now };
}

} // namespace dewrite
