/**
 * @file
 * Fail-fast environment helper tests: every DEWRITE_* variable goes
 * through envFlag/envUint, so their rejection behavior is the
 * simulator-wide contract.
 */

#include "common/env.hh"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dewrite {
namespace {

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

constexpr const char *kVar = "DEWRITE_ENV_TEST_VAR";

TEST(EnvRawTest, ForwardsTheEnvironment)
{
    ::unsetenv(kVar);
    EXPECT_EQ(envRaw(kVar), nullptr);
    ScopedEnv env(kVar, "abc");
    EXPECT_STREQ(envRaw(kVar), "abc");
}

TEST(EnvFlagTest, FallbackWhenUnset)
{
    ::unsetenv(kVar);
    EXPECT_FALSE(envFlag(kVar, false));
    EXPECT_TRUE(envFlag(kVar, true));
}

TEST(EnvFlagTest, ParsesZeroAndOne)
{
    {
        ScopedEnv env(kVar, "1");
        EXPECT_TRUE(envFlag(kVar, false));
    }
    {
        ScopedEnv env(kVar, "0");
        EXPECT_FALSE(envFlag(kVar, true));
    }
}

TEST(EnvFlagDeathTest, RejectsAnythingElse)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char *bad : { "yes", "true", "2", "", " 1" }) {
        ScopedEnv env(kVar, bad);
        EXPECT_EXIT(envFlag(kVar, false),
                    ::testing::ExitedWithCode(1), kVar)
            << "value: \"" << bad << '"';
    }
}

TEST(EnvUintTest, FallbackWhenUnset)
{
    ::unsetenv(kVar);
    // The fallback is returned verbatim, even outside [min, max] —
    // callers use that for "unset means a computed default".
    EXPECT_EQ(envUint(kVar, 0, 1, 10), 0u);
    EXPECT_EQ(envUint(kVar, 42, 1, 10), 42u);
}

TEST(EnvUintTest, ParsesInRangeValues)
{
    ScopedEnv env(kVar, "7");
    EXPECT_EQ(envUint(kVar, 0, 1, 10), 7u);
}

TEST(EnvUintTest, AcceptsTheBounds)
{
    {
        ScopedEnv env(kVar, "1");
        EXPECT_EQ(envUint(kVar, 0, 1, 10), 1u);
    }
    {
        ScopedEnv env(kVar, "10");
        EXPECT_EQ(envUint(kVar, 0, 1, 10), 10u);
    }
}

TEST(EnvUintDeathTest, RejectsMalformedAndOutOfRange)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char *bad :
         { "seven", "7x", "", "-3", "0", "11",
           "18446744073709551616" }) {
        ScopedEnv env(kVar, bad);
        EXPECT_EXIT(envUint(kVar, 0, 1, 10),
                    ::testing::ExitedWithCode(1), kVar)
            << "value: \"" << bad << '"';
    }
}

} // namespace
} // namespace dewrite
