/**
 * @file
 * A small work-stealing thread pool for the experiment runner.
 *
 * Each worker owns a deque of tasks: it pops from the back of its own
 * deque (LIFO, cache-warm) and steals from the front of a victim's
 * (FIFO, the oldest — and for experiment matrices the largest-grained
 * — work). Simulation cells are coarse (milliseconds to seconds), so
 * the per-deque mutex is never contended enough to matter; what the
 * stealing buys is load balance when cell costs are skewed, e.g. a
 * dup-heavy application finishing long before a unique-heavy one.
 *
 * The pool itself imposes no ordering, so determinism is the caller's
 * contract: tasks must not share mutable state, and each must write
 * its result to its own pre-assigned slot (see parallel_runner.hh).
 */

#ifndef DEWRITE_SIM_THREAD_POOL_HH
#define DEWRITE_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dewrite {

class ThreadPool
{
  public:
    /** Spawns @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers; outstanding tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues @p task; may run on any worker, in any order. */
    void submit(std::function<void()> task);

    /**
     * Blocks until every submitted task has finished. If any task
     * threw, rethrows the first captured exception.
     */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Worker index of the calling thread within its pool, or -1 when
     * called off-pool (the submitting thread, tests, main). Lets
     * profiling attribute each task to the worker that ran it without
     * threading an index through every task signature.
     */
    static int currentWorker();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool tryRun(std::size_t self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_; //!< Guards the fields below.
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0; //!< Submitted but not yet finished.
    std::size_t queued_ = 0;  //!< Sitting in a deque, not yet taken.
    std::size_t nextQueue_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace dewrite

#endif // DEWRITE_SIM_THREAD_POOL_HH
