file(REMOVE_RECURSE
  "CMakeFiles/test_nvm.dir/nvm/nvm_bank_test.cc.o"
  "CMakeFiles/test_nvm.dir/nvm/nvm_bank_test.cc.o.d"
  "CMakeFiles/test_nvm.dir/nvm/nvm_device_test.cc.o"
  "CMakeFiles/test_nvm.dir/nvm/nvm_device_test.cc.o.d"
  "CMakeFiles/test_nvm.dir/nvm/start_gap_test.cc.o"
  "CMakeFiles/test_nvm.dir/nvm/start_gap_test.cc.o.d"
  "CMakeFiles/test_nvm.dir/nvm/wear_tracker_test.cc.o"
  "CMakeFiles/test_nvm.dir/nvm/wear_tracker_test.cc.o.d"
  "test_nvm"
  "test_nvm.pdb"
  "test_nvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
