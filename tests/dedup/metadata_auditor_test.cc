/**
 * @file
 * MetadataAuditor tests: a clean engine audits clean, and each
 * deliberately corrupted table relationship — dangling inverted-hash
 * entry, refcount mismatch, double-homed counter, stray hash record,
 * bitmap drift, dangling mapping — is reported under the right named
 * invariant with usable context.
 */

#include "dedup/metadata_auditor.hh"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "dedup/dedup_engine.hh"
#include "dedup/recovery.hh"
#include "nvm/nvm_device.hh"
#include "sim/system.hh"

namespace dewrite {

/**
 * Test-only mutable access to the engine's tables (a friend of
 * DedupEngine). Production code corrupts nothing; the auditor tests
 * must, to prove each invariant is actually watched.
 */
class MetadataAuditorTestPeer
{
  public:
    static HashStore &hashStore(DedupEngine &e) { return e.hashStore_; }
    static InvertedHashTable &invHash(DedupEngine &e)
    {
        return e.invHash_;
    }
    static AddressMappingTable &mapping(DedupEngine &e)
    {
        return e.mapping_;
    }
    static FreeSpaceTable &fsm(DedupEngine &e) { return e.fsm_; }
    static FlatMap<LineAddr, std::uint64_t> &overflow(DedupEngine &e)
    {
        return e.overflow_;
    }
    static Line decryptStored(DedupEngine &e, LineAddr slot)
    {
        return e.decryptStored(slot);
    }
};

namespace {

/** Scoped environment override (unset restores at destruction). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

class MetadataAuditorTest : public ::testing::Test
{
  protected:
    MetadataAuditorTest()
        : device_(config()), cme_(key()),
          metadata_(config(), device_, config().memory.numLines),
          engine_(config(), device_, metadata_, cme_)
    {
    }

    static const SystemConfig &
    config()
    {
        static SystemConfig instance = [] {
            SystemConfig c;
            c.memory.numLines = 1 << 12;
            return c;
        }();
        return instance;
    }

    static AesKey
    key()
    {
        AesKey k{};
        k[5] = 0x17;
        return k;
    }

    WriteCommit
    writeLine(LineAddr addr, const Line &data)
    {
        const DetectOutcome det = engine_.detect(data, now_, true);
        WriteCommit commit;
        if (det.duplicate) {
            commit = engine_.commitDuplicate(addr, det, det.done);
        } else {
            commit = engine_.commitUnique(
                addr, data, det.hash, det.done,
                det.done + config().timing.aesLine);
        }
        now_ = commit.done;
        return commit;
    }

    /** A workload with uniques, duplicates, and overwrites. */
    void
    populate()
    {
        Rng rng(1234);
        const Line a = Line::random(rng);
        const Line b = Line::random(rng);
        for (LineAddr addr = 1; addr <= 24; ++addr)
            writeLine(addr, Line::random(rng));
        for (LineAddr addr = 30; addr < 38; ++addr)
            writeLine(addr, a); // Duplicates of one content.
        for (LineAddr addr = 40; addr < 44; ++addr)
            writeLine(addr, b);
        for (LineAddr addr = 1; addr <= 6; ++addr)
            writeLine(addr, Line::random(rng)); // Overwrites.
    }

    AuditInvariant
    expectViolation()
    {
        const auto violation = MetadataAuditor(engine_).check();
        EXPECT_TRUE(violation.has_value());
        if (!violation)
            std::abort();
        EXPECT_FALSE(violation->detail.empty());
        return violation->invariant;
    }

    NvmDevice device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    DedupEngine engine_;
    Time now_ = 0;
};

TEST_F(MetadataAuditorTest, CleanEngineAuditsClean)
{
    EXPECT_FALSE(MetadataAuditor(engine_).check().has_value());
    populate();
    EXPECT_FALSE(MetadataAuditor(engine_).check().has_value());
    MetadataAuditor(engine_).enforce("test"); // Must not die.
}

TEST_F(MetadataAuditorTest, DanglingInvertedHashEntryIsNamed)
{
    populate();
    // A data slot appears out of nowhere: no hash-store record backs
    // its fingerprint (the "dangling inverted-hash entry" corruption).
    MetadataAuditorTestPeer::invHash(engine_).setHash(3000, 0xabcdef);
    const auto violation = MetadataAuditor(engine_).check();
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->invariant,
              AuditInvariant::DataSlotHasHashRecord);
    EXPECT_EQ(violation->slot, 3000u);
    EXPECT_EQ(violation->expected, 0xabcdefu);
}

TEST_F(MetadataAuditorTest, ReferenceCountMismatchIsNamed)
{
    populate();
    // Slot 30's content is shared 8 ways; a spurious extra reference
    // makes the recorded count disagree with the mapping walk.
    const LineAddr slot = 30;
    ASSERT_TRUE(engine_.invertedHash().holdsData(slot));
    const std::uint64_t hash = engine_.invertedHash().hash(slot);
    ASSERT_TRUE(MetadataAuditorTestPeer::hashStore(engine_)
                    .addReference(hash, slot));
    const auto violation = MetadataAuditor(engine_).check();
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->invariant,
              AuditInvariant::ReferenceCountMatches);
    EXPECT_EQ(violation->slot, slot);
    EXPECT_EQ(violation->actual, violation->expected + 1);
}

TEST_F(MetadataAuditorTest, DoubleHomedCounterIsNamed)
{
    populate();
    // Slot 10 keeps its own data, so its counter home is its (null)
    // mapping entry. A stale overflow entry for it means the counter
    // is double-homed.
    const LineAddr slot = 10;
    ASSERT_FALSE(engine_.mapping().isRemapped(slot));
    MetadataAuditorTestPeer::overflow(engine_)[slot] = 7;
    const auto violation = MetadataAuditor(engine_).check();
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->invariant, AuditInvariant::CounterSingleHome);
    EXPECT_EQ(violation->slot, slot);
    EXPECT_EQ(violation->actual, 7u);
}

TEST_F(MetadataAuditorTest, StrayHashRecordIsNamed)
{
    populate();
    // A record pointing at a slot that holds no data (or other data)
    // is a stale-cleaning failure.
    MetadataAuditorTestPeer::hashStore(engine_).insert(0xdead, 3500);
    EXPECT_EQ(expectViolation(),
              AuditInvariant::HashRecordMatchesSlot);
}

TEST_F(MetadataAuditorTest, FsmDriftIsNamedBothDirections)
{
    populate();
    // Allocated-but-empty drift.
    MetadataAuditorTestPeer::fsm(engine_).allocate(3600);
    EXPECT_EQ(expectViolation(), AuditInvariant::FsmMatchesDataSlots);
    MetadataAuditorTestPeer::fsm(engine_).release(3600);
    EXPECT_FALSE(MetadataAuditor(engine_).check().has_value());

    // Data-but-free drift: the slot walk reports the same invariant.
    const LineAddr slot = 12;
    ASSERT_TRUE(engine_.invertedHash().holdsData(slot));
    MetadataAuditorTestPeer::fsm(engine_).release(slot);
    EXPECT_EQ(expectViolation(), AuditInvariant::FsmMatchesDataSlots);
}

TEST_F(MetadataAuditorTest, DanglingMappingIsNamed)
{
    populate();
    // Logical 100 remapped to a slot that holds nothing.
    MetadataAuditorTestPeer::mapping(engine_).remap(100, 3700);
    const auto violation = MetadataAuditor(engine_).check();
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->invariant,
              AuditInvariant::MappingTargetHoldsData);
    EXPECT_EQ(violation->logical, 100u);
    EXPECT_EQ(violation->slot, 3700u);
}

TEST_F(MetadataAuditorTest, WrongStrongFingerprintIsNamed)
{
    populate();
    // Seed a *valid-flagged* fingerprint that does not match the slot's
    // stored content: the two-tier detector would trust it and merge
    // distinct lines, so the auditor must call it out by name.
    const LineAddr slot = 30;
    ASSERT_TRUE(engine_.invertedHash().holdsData(slot));
    const std::uint64_t hash = engine_.invertedHash().hash(slot);
    MetadataAuditorTestPeer::hashStore(engine_).setStrongFp(
        hash, slot, StrongFp{ 0xdeadbeefu, 0xfeedfaceu });
    const auto violation = MetadataAuditor(engine_).check();
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->invariant,
              AuditInvariant::StrongFpMatchesStoredLine);
    EXPECT_EQ(violation->slot, slot);
    EXPECT_STREQ(auditInvariantName(violation->invariant),
                 "strong-fp-matches-stored-line");
}

TEST_F(MetadataAuditorTest, CorrectStrongFingerprintAuditsClean)
{
    populate();
    // The honest cache — the fingerprint of what the slot really
    // stores — must not trip the new invariant.
    const LineAddr slot = 30;
    ASSERT_TRUE(engine_.invertedHash().holdsData(slot));
    const std::uint64_t hash = engine_.invertedHash().hash(slot);
    MetadataAuditorTestPeer::hashStore(engine_).setStrongFp(
        hash, slot,
        strongFingerprint(
            MetadataAuditorTestPeer::decryptStored(engine_, slot)));
    EXPECT_FALSE(MetadataAuditor(engine_).check().has_value());
}

TEST_F(MetadataAuditorTest, FirstViolationIsDeterministic)
{
    populate();
    // Two independent corruptions: the report must pick the same one
    // every time (walk order, not hash-table luck).
    MetadataAuditorTestPeer::invHash(engine_).setHash(3000, 0x111111);
    MetadataAuditorTestPeer::invHash(engine_).setHash(3001, 0x222222);
    for (int i = 0; i < 3; ++i) {
        const auto violation = MetadataAuditor(engine_).check();
        ASSERT_TRUE(violation.has_value());
        EXPECT_EQ(violation->slot, 3000u);
    }
}

TEST_F(MetadataAuditorTest, RecoveryRebuildPassesAuditUnderEnv)
{
    populate();
    ScopedEnv env("DEWRITE_AUDIT", "1");
    RecoveryManager recovery(engine_);
    recovery.simulateCrashDamage();
    recovery.rebuild(); // enforce("recovery") runs inside; must not die.
    EXPECT_FALSE(MetadataAuditor(engine_).check().has_value());
}

TEST(MetadataAuditorDeathTest, EnforceNamesTheInvariant)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    SystemConfig config;
    config.memory.numLines = 1 << 10;
    NvmDevice device(config);
    AesKey key{};
    MetadataCache metadata(config, device, config.memory.numLines);
    CounterModeEngine cme(key);
    DedupEngine engine(config, device, metadata, cme);
    MetadataAuditorTestPeer::invHash(engine).setHash(5, 0xbeef);
    EXPECT_DEATH(MetadataAuditor(engine).enforce("test"),
                 "data-slot-has-hash-record");
}

TEST(MetadataAuditorEnvTest, AuditDisabledByDefault)
{
    ::unsetenv("DEWRITE_AUDIT");
    EXPECT_FALSE(auditEnabled());
}

TEST(MetadataAuditorEnvTest, AuditFlagParses)
{
    {
        ScopedEnv env("DEWRITE_AUDIT", "1");
        EXPECT_TRUE(auditEnabled());
    }
    {
        ScopedEnv env("DEWRITE_AUDIT", "0");
        EXPECT_FALSE(auditEnabled());
    }
}

TEST(MetadataAuditorEnvTest, EpochDefaultsAndParses)
{
    ::unsetenv("DEWRITE_AUDIT_EPOCH");
    EXPECT_EQ(auditEpochWrites(), 10000u);
    ScopedEnv env("DEWRITE_AUDIT_EPOCH", "128");
    EXPECT_EQ(auditEpochWrites(), 128u);
}

TEST(MetadataAuditorEnvDeathTest, MalformedFlagDiesLoudly)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_AUDIT", "yes");
    EXPECT_EXIT(auditEnabled(), ::testing::ExitedWithCode(1),
                "DEWRITE_AUDIT");
}

TEST(MetadataAuditorEnvDeathTest, MalformedEpochDiesLoudly)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_AUDIT_EPOCH", "0");
    EXPECT_EXIT(auditEpochWrites(), ::testing::ExitedWithCode(1),
                "DEWRITE_AUDIT_EPOCH");
}

TEST(MetadataAuditorSystemTest, EpochAndRunEndAuditsFire)
{
    // A full System honors the env contract: with a small audit epoch,
    // several epoch audits plus the run-end audit execute cleanly.
    ScopedEnv audit("DEWRITE_AUDIT", "1");
    ScopedEnv epoch("DEWRITE_AUDIT_EPOCH", "16");
    SystemConfig config;
    config.memory.numLines = 1 << 12;
    System system(config, SchemeOptions{});
    Rng rng(99);
    const Line shared = Line::random(rng);
    for (LineAddr addr = 0; addr < 48; ++addr)
        system.write(addr, addr % 3 ? Line::random(rng) : shared);
    const auto &controller =
        dynamic_cast<const DeWriteController &>(system.controller());
    EXPECT_GE(controller.auditsRun(), 3u);
    controller.auditNow("test");
}

} // namespace
} // namespace dewrite
