/**
 * @file
 * Quickstart: store and load data through an encrypted, deduplicated
 * NVM and watch what the controller does.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "sim/system.hh"

using namespace dewrite;

int
main()
{
    // A 1 GB PCM module behind the full DeWrite controller with the
    // paper's default configuration (counter-mode encryption, CRC-32
    // dedup, 3-bit prediction, PNA).
    SystemConfig config;
    SchemeOptions scheme;
    scheme.kind = SchemeKind::DeWrite;
    System system(config, scheme);

    // Write three lines: two of them identical.
    Line greeting;
    std::memcpy(greeting.data(), "hello, persistent world", 24);
    Line zeros; // A freshly zeroed buffer.

    const CtrlWriteResult first = system.write(/*addr=*/100, greeting);
    const CtrlWriteResult second = system.write(/*addr=*/200, greeting);
    const CtrlWriteResult third = system.write(/*addr=*/300, zeros);

    std::printf("write @100 (unique):    %s, %llu ns\n",
                first.eliminated ? "eliminated" : "written",
                static_cast<unsigned long long>(first.latency /
                                                kNanoSecond));
    std::printf("write @200 (duplicate): %s, %llu ns\n",
                second.eliminated ? "eliminated" : "written",
                static_cast<unsigned long long>(second.latency /
                                                kNanoSecond));
    std::printf("write @300 (zero line): %s, %llu ns\n",
                third.eliminated ? "eliminated" : "written",
                static_cast<unsigned long long>(third.latency /
                                                kNanoSecond));

    // Reads round-trip exactly, wherever the bytes physically live.
    const CtrlReadResult back = system.read(200);
    std::printf("read  @200: '%.23s' (%s)\n", back.data.data(),
                back.data == greeting ? "matches" : "MISMATCH");

    // At rest the device holds only ciphertext.
    std::printf("at rest @100 starts with: %s (encrypted)\n",
                system.device().peek(100).debugString().c_str());

    // One physical line serves both logical addresses.
    std::printf("device line writes so far: %llu (one line deduped "
                "away)\n",
                static_cast<unsigned long long>(
                    system.device().numWrites()));
    return 0;
}
