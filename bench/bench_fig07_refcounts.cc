/**
 * @file
 * Figure 7 — the distribution of line reference counts.
 *
 * After running each application through DeWrite, buckets the live
 * hash-store records by reference count. The 8-bit reference field is
 * justified if essentially every line stays below 255 references.
 *
 * Paper's shape: >99.999% of lines have reference < 255; a tiny tail
 * of highly shared lines (zero pages, popular patterns) saturates and
 * is pinned.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "controller/dewrite_controller.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

struct RefCountBuckets {
    std::uint64_t total = 0;
    std::uint64_t r1 = 0;
    std::uint64_t r2 = 0;
    std::uint64_t r9 = 0;
    std::uint64_t r65 = 0;
    std::uint64_t sat = 0;
    double below = 0.0;
};

} // namespace

int
main()
{
    std::printf("Figure 7: reference-count distribution\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    std::vector<RefCountBuckets> cells(apps.size());
    parallelFor(apps.size(), [&](std::size_t a) {
        DetailedExperiment detailed =
            runAppDetailed(apps[a], config,
                           dewriteScheme(DedupMode::Predicted),
                           experimentEvents(), appSeed(apps[a]));
        const auto &ctrl = dynamic_cast<const DeWriteController &>(
            detailed.system->controller());

        RefCountBuckets &cell = cells[a];
        // dewrite-lint: allow(unsorted-iteration) commutative buckets
        ctrl.engine().hashStore().forEach(
            [&](std::uint32_t, const HashEntry &entry) {
                ++cell.total;
                if (entry.reference == 1)
                    ++cell.r1;
                else if (entry.reference <= 8)
                    ++cell.r2;
                else if (entry.reference <= 64)
                    ++cell.r9;
                else if (entry.reference < 255)
                    ++cell.r65;
                else
                    ++cell.sat;
            });
        // The paper's denominator is all lines of the module: lines
        // never written (the vast majority of a 16 GB NVMM) trivially
        // hold reference 0, and only the pinned records' lines sit at
        // the cap.
        cell.below =
            1.0 - static_cast<double>(cell.sat) /
                      static_cast<double>(config.memory.numLines);
    });

    TablePrinter table({ "app", "records", "ref=1", "ref 2-8",
                         "ref 9-64", "ref 65-254", "ref=255(sat)",
                         "below 255" });
    double below_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RefCountBuckets &cell = cells[a];
        below_sum += cell.below;
        table.addRow({ apps[a].name, TablePrinter::num(cell.total, 0),
                       TablePrinter::num(cell.r1, 0),
                       TablePrinter::num(cell.r2, 0),
                       TablePrinter::num(cell.r9, 0),
                       TablePrinter::num(cell.r65, 0),
                       TablePrinter::num(cell.sat, 0),
                       TablePrinter::percent(cell.below, 3) });
    }
    table.addRow({ "AVERAGE", "-", "-", "-", "-", "-", "-",
                   TablePrinter::percent(
                       below_sum /
                           static_cast<double>(appCatalog().size()),
                       3) });
    table.print();

    std::printf("\npaper: >99.999%% of lines have reference < 255\n");
    return 0;
}
