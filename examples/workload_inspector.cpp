/**
 * @file
 * Workload inspector: dump the content statistics of any catalog
 * application (or the worst-case benchmark) — the numbers the
 * synthetic generators are calibrated against.
 *
 * Usage:
 *   ./build/examples/workload_inspector [app|worst] [events]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"
#include "trace/workload_stats.hh"

using namespace dewrite;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : nullptr;
    const std::uint64_t events =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                 : experimentEvents();

    if (name && std::strcmp(name, "worst") == 0) {
        WorstCaseWorkload trace(16384, 100.0, 1);
        const WorkloadStats stats = measureWorkload(trace, events);
        std::printf("worst-case benchmark: %llu writes, %llu reads, "
                    "%.1f%% duplicates (by construction 0)\n",
                    static_cast<unsigned long long>(stats.writes),
                    static_cast<unsigned long long>(stats.reads),
                    100.0 * stats.dupFraction());
        return 0;
    }

    TablePrinter table({ "app", "suite", "writes", "dup", "zero",
                         "state persistence", "target" });
    for (const AppProfile &app : appCatalog()) {
        if (name && app.name != name)
            continue;
        SyntheticWorkload trace(app, appSeed(app));
        const WorkloadStats stats = measureWorkload(trace, events);
        table.addRow({ app.name, app.suite,
                       TablePrinter::num(
                           static_cast<double>(stats.writes), 0),
                       TablePrinter::percent(stats.dupFraction()),
                       TablePrinter::percent(stats.zeroFraction()),
                       TablePrinter::percent(stats.statePersistence()),
                       TablePrinter::percent(app.dupTarget) });
    }
    table.print();
    std::printf("\n'dup' should track 'target'; 'state persistence' "
                "should sit near the paper's 92%%.\n");
    return 0;
}
