/**
 * @file
 * FnwReducer implementation.
 */

#include "controller/bitlevel/fnw.hh"

#include <bit>

namespace dewrite {

std::size_t
FnwReducer::onWrite(LineAddr slot, const Line &new_pt, std::uint64_t counter)
{
    SlotState &st = state_.ref(slot);
    const Line new_ct = cme_.encryptLine(new_pt, slot, counter);

    std::size_t flips = 0;
    for (std::size_t w = 0; w < kWordsPerLine; ++w) {
        const std::uint16_t stored = st.image.word16(w);
        const std::uint16_t target = new_ct.word16(w);
        const std::uint16_t inverted =
            static_cast<std::uint16_t>(~target);

        // Cost of each representation includes a possible flip of the
        // flag cell itself.
        const bool flag_old = st.flags.test(w);
        const std::size_t cost_plain =
            std::popcount(static_cast<unsigned>(stored ^ target)) +
            (flag_old ? 1 : 0);
        const std::size_t cost_inv =
            std::popcount(static_cast<unsigned>(stored ^ inverted)) +
            (flag_old ? 0 : 1);

        if (cost_inv < cost_plain) {
            flips += cost_inv;
            st.image.setWord16(w, inverted);
            st.flags.set(w);
        } else {
            flips += cost_plain;
            st.image.setWord16(w, target);
            st.flags.reset(w);
        }
    }
    return flips;
}

} // namespace dewrite
