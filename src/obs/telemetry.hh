/**
 * @file
 * Service telemetry plane: per-shard / per-tenant latency histograms,
 * a shard-skew monitor, and a live stats sink.
 *
 * PR 3's observability layer snapshots metrics only after a run
 * completes — useless for a long-lived service. This module surfaces
 * the per-event latencies the shard cores already compute, online:
 *
 *  - ShardTelemetry: one per shard, written exclusively by that
 *    shard's drain task (the zero-sharing discipline of DESIGN.md §5g
 *    — no locks, no false sharing on the hot path). It buckets
 *    write/read request latency and batch stage-to-commit spans into
 *    LatencyHistograms, per shard and per tenant, and tracks
 *    per-tenant duplicate-elimination counts for duplication-ratio
 *    telemetry. Tenant attribution is pure arithmetic: a shard-local
 *    address folds back to its global key (g = local * shards +
 *    shard), and g / linesPerTenant is the tenant — two FastDiv
 *    multiplies, no lookaside state.
 *
 *  - SkewMonitor: per-round events/shard min/mean/max and coefficient
 *    of variation, over the whole run and over the window since the
 *    last telemetry emit. The CV gauge is the trigger input for the
 *    ROADMAP's shard-rebalancing item; snapshots flag windows whose
 *    CV exceeds kSkewAlertCv.
 *
 *  - TelemetrySink: between rounds (every DEWRITE_TELEMETRY_EVERY
 *    rounds, and once at run end) the service hands the sink a frame
 *    of shard telemetry pointers; the sink merges the shard-local
 *    histograms into per-tenant aggregates (merge is exact and
 *    associative, see latency_histogram.hh), appends one JSONL
 *    snapshot line to DEWRITE_TELEMETRY=path, and rewrites
 *    "<path>.prom" as a Prometheus text exposition — a scrape of a
 *    running service is one file read.
 *
 * Everything here is host-side observability. None of it may alter
 * simulated results: the fingerprint-invariance tests run the service
 * with telemetry on and off and pin identical shard fingerprints.
 */

#ifndef DEWRITE_OBS_TELEMETRY_HH
#define DEWRITE_OBS_TELEMETRY_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/fast_div.hh"
#include "common/types.hh"
#include "obs/latency_histogram.hh"
#include "obs/metric_registry.hh"

namespace dewrite::obs {

/** Window CV above which a snapshot carries "skew_alert": true. */
inline constexpr double kSkewAlertCv = 0.25;

class ShardTelemetry
{
  public:
    /**
     * Telemetry for shard @p shard of @p shards, serving @p tenants
     * namespaces of @p lines_per_tenant lines. All per-tenant storage
     * is sized here; recording allocates nothing.
     */
    ShardTelemetry(std::size_t shards, std::size_t shard,
                   std::uint64_t tenants,
                   std::uint64_t lines_per_tenant);

    /** Tenant owning shard-local address @p local (pure arithmetic). */
    // dewrite-lint: hot
    std::uint64_t
    tenantOf(LineAddr local) const
    {
        return perTenant_.div(local * shards_ + shard_);
    }

    /** Records one serviced write: request latency + dedup outcome. */
    void recordWrite(LineAddr local, Time latency, bool eliminated);

    /** Records one serviced read's request latency. */
    void recordRead(LineAddr local, Time latency);

    /** Records one batch's first-stage-to-last-commit span. */
    void recordBatchCommit(Time span) { batch_.record(span); }

    /** @{ Shard-level histograms (all tenants folded together). */
    const LatencyHistogram &writeHist() const { return write_; }
    const LatencyHistogram &readHist() const { return read_; }
    const LatencyHistogram &batchHist() const { return batch_; }
    /** @} */

    /** @{ Per-tenant views. */
    std::uint64_t tenants() const { return tenantWrite_.size(); }
    const LatencyHistogram &tenantWriteHist(std::uint64_t t) const
    {
        return tenantWrite_[t];
    }
    const LatencyHistogram &tenantReadHist(std::uint64_t t) const
    {
        return tenantRead_[t];
    }
    std::uint64_t tenantWrites(std::uint64_t t) const
    {
        return tenantWrite_[t].count();
    }
    std::uint64_t tenantWritesEliminated(std::uint64_t t) const
    {
        return tenantEliminated_[t];
    }
    /** @} */

    /** @{ Duplication accounting for ratio telemetry. */
    std::uint64_t writes() const { return write_.count(); }
    std::uint64_t writesEliminated() const { return eliminated_; }
    /** @} */

  private:
    std::size_t shards_;
    std::size_t shard_;
    FastDiv perTenant_; //!< Divides global keys by linesPerTenant.

    LatencyHistogram write_;
    LatencyHistogram read_;
    LatencyHistogram batch_;
    std::uint64_t eliminated_ = 0;

    std::vector<LatencyHistogram> tenantWrite_;
    std::vector<LatencyHistogram> tenantRead_;
    std::vector<std::uint64_t> tenantEliminated_;
};

class SkewMonitor
{
  public:
    /** Dispersion of one group of per-shard event counts. */
    struct Stats
    {
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        double mean = 0.0;
        double cv = 0.0; //!< stddev / mean (0 when mean is 0).
    };

    explicit SkewMonitor(std::size_t shards);

    /** Accounts one completed drain round's per-shard event counts. */
    void noteRound(const std::uint64_t *events, std::size_t shards);

    std::uint64_t rounds() const { return rounds_; }

    /** Last completed round (the live gauges). */
    const Stats &lastRound() const { return lastRound_; }

    /** Cumulative per-shard totals since construction. */
    Stats totalStats() const;

    /** Per-shard totals since the last resetWindow() (emit window). */
    Stats windowStats() const;
    void resetWindow();

    /** True when the current window's CV exceeds @p threshold. */
    bool alert(double threshold = kSkewAlertCv) const
    {
        return windowStats().cv > threshold;
    }

  private:
    static Stats statsOf(const std::vector<std::uint64_t> &counts);

    std::vector<std::uint64_t> total_;
    std::vector<std::uint64_t> window_;
    Stats lastRound_;
    std::uint64_t rounds_ = 0;
};

/** DEWRITE_TELEMETRY / DEWRITE_TELEMETRY_EVERY, parsed fail-fast. */
struct TelemetryConfig
{
    std::string path;          //!< JSONL sink; empty → disabled.
    std::uint64_t everyRounds = 16; //!< Emit cadence in drain rounds.

    bool enabled() const { return !path.empty(); }

    /**
     * Reads the environment. DEWRITE_TELEMETRY_EVERY goes through
     * envUint (1..2^20, default 16) and is validated even when the
     * sink is disabled, per the fail-fast contract.
     */
    static TelemetryConfig fromEnv();
};

/** One emission's view of the service, assembled by DedupService. */
struct TelemetryFrame
{
    std::uint64_t round = 0;       //!< Drain rounds completed so far.
    std::uint64_t totalEvents = 0; //!< Events ingested so far.
    bool final = false;            //!< Run-end snapshot (tail flushed).
    std::vector<const ShardTelemetry *> shards;
    std::vector<std::uint64_t> shardEvents; //!< Cumulative per shard.
    const SkewMonitor *skew = nullptr;
    /** Merged service registry snapshot for the Prometheus file. */
    std::vector<MetricSample> samples;
};

class TelemetrySink
{
  public:
    explicit TelemetrySink(const TelemetryConfig &config);
    ~TelemetrySink();

    TelemetrySink(const TelemetrySink &) = delete;
    TelemetrySink &operator=(const TelemetrySink &) = delete;

    bool enabled() const { return config_.enabled(); }
    std::uint64_t everyRounds() const { return config_.everyRounds; }
    std::uint64_t snapshots() const { return snapshots_; }
    const std::string &jsonlPath() const { return config_.path; }
    std::string promPath() const { return config_.path + ".prom"; }

    /**
     * True when @p round is an emit boundary (every everyRounds
     * rounds). The run-end frame is always emitted regardless.
     */
    bool due(std::uint64_t round) const
    {
        return enabled() && round % config_.everyRounds == 0;
    }

    /**
     * Appends one JSONL snapshot line for @p frame and rewrites the
     * Prometheus exposition file. Per-epoch duplication ratios are
     * deltas against the previous emit, tracked here. No-op when
     * disabled. Returns false if any write failed (latched).
     */
    bool emit(const TelemetryFrame &frame);

    bool ok() const { return ok_; }

  private:
    TelemetryConfig config_;
    std::FILE *jsonl_ = nullptr;
    bool ok_ = true;
    std::uint64_t snapshots_ = 0;

    /** Previous-emit counters for per-epoch duplication deltas. */
    std::vector<std::uint64_t> prevShardWrites_;
    std::vector<std::uint64_t> prevShardEliminated_;
    std::vector<std::uint64_t> prevTenantWrites_;
    std::vector<std::uint64_t> prevTenantEliminated_;
};

/**
 * Writes @p samples as a Prometheus text exposition ("# TYPE" comment
 * plus one sample line per metric). Dotted registry paths become
 * underscore-separated names under a "dewrite_" prefix; Counter
 * entries export as counters, everything else as gauges. Returns
 * false when a stream write failed.
 */
bool writePromText(std::FILE *out,
                   const std::vector<MetricSample> &samples);

} // namespace dewrite::obs

#endif // DEWRITE_OBS_TELEMETRY_HH
