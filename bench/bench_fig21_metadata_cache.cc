/**
 * @file
 * Figure 21 — metadata cache hit rate vs capacity (and prefetch
 * granularity for the sequential tables).
 *
 * Four sweeps, one per partition: hash store, address mapping,
 * inverted hash (both swept over prefetch granularity at a fixed
 * size), and the FSM bitmap. Hit rates are averaged over the 20
 * applications.
 *
 * Paper's shape: 512 KB with prefetch granularity 256 reaches high
 * hit rates for the three large tables; the FSM bitmap saturates at a
 * few KB; growing any cache further buys little.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

/** Mean hit rate of @p table over all applications for @p config. */
double
meanHitRate(const SystemConfig &config, const char *stat)
{
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { dewriteScheme(DedupMode::Predicted) }, config,
                  experimentEvents() / 4);
    double sum = 0.0;
    for (const ExperimentResult &r : cells)
        sum += r.stats.get(stat);
    return sum / static_cast<double>(apps.size());
}

} // namespace

int
main()
{
    std::printf("Figure 21: metadata cache hit rates\n");

    const std::size_t sizes[] = { 64 * 1024, 128 * 1024, 256 * 1024,
                                  512 * 1024, 1024 * 1024 };

    std::printf("\n(a) hash table cache size sweep\n\n");
    {
        TablePrinter table({ "capacity", "hit rate" });
        for (std::size_t size : sizes) {
            SystemConfig config;
            config.memory.hashCacheBytes = size;
            table.addRow(
                { TablePrinter::num(
                      static_cast<double>(size) / 1024, 0) + " KB",
                  TablePrinter::percent(
                      meanHitRate(config, "hit_rate_hash_store")) });
        }
        table.print();
    }

    const unsigned granularities[] = { 16, 64, 256, 1024 };
    for (const char *which : { "mapping", "inverted_hash" }) {
        std::printf("\n(%s) %s cache: prefetch granularity sweep at "
                    "512 KB\n\n",
                    std::string(which) == "mapping" ? "b" : "c", which);
        TablePrinter table({ "prefetch entries", "hit rate" });
        for (unsigned granularity : granularities) {
            SystemConfig config;
            config.memory.prefetchEntries = granularity;
            const std::string stat =
                std::string("hit_rate_") + which;
            table.addRow({ TablePrinter::num(granularity, 0),
                           TablePrinter::percent(
                               meanHitRate(config, stat.c_str())) });
        }
        table.print();
    }

    std::printf("\n(d) FSM bitmap cache size sweep\n\n");
    {
        const std::size_t fsm_sizes[] = { 4 * 1024, 16 * 1024, 64 * 1024,
                                          128 * 1024 };
        TablePrinter table({ "capacity", "hit rate" });
        for (std::size_t size : fsm_sizes) {
            SystemConfig config;
            config.memory.fsmCacheBytes = size;
            table.addRow(
                { TablePrinter::num(
                      static_cast<double>(size) / 1024, 0) + " KB",
                  TablePrinter::percent(
                      meanHitRate(config, "hit_rate_fsm")) });
        }
        table.print();
    }

    std::printf("\npaper: 512 KB / prefetch 256 suffices for the large "
                "tables; the FSM needs only a few KB; total metadata "
                "cache 1664 KB < 2 MB\n");
    return 0;
}
