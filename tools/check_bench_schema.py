#!/usr/bin/env python3
"""Validates the uniform BENCH_*.json schema every bench binary emits.

Every report written through obs::BenchReport starts with the same
header block; figure-regression tooling keys off it, so CI fails fast
when a bench drifts from the contract:

    {
      "bench": "<name>",          # string, matches the file name
      "schema_version": 1,        # integer, bumped on breaking change
      "events_per_cell": <uint>,  # 0 when not event-driven
      "threads": <uint>,          # worker count used for the run
      ...                         # bench-specific payload
    }

Usage: check_bench_schema.py [FILES...]
With no arguments, checks every BENCH_*.json in the current directory.
Exits 1 on the first malformed report (message on stderr).
"""

import glob
import json
import sys

SCHEMA_VERSION = 1
HEADER = ("bench", "schema_version", "events_per_cell", "threads")


def fail(path: str, message: str) -> None:
    print(f"{path}: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(path, f"unreadable or invalid JSON: {error}")

    if not isinstance(report, dict):
        fail(path, "top level must be a JSON object")
    for key in HEADER:
        if key not in report:
            fail(path, f"missing required header key {key!r}")

    # The first keys must be the header, in order, so that a human
    # opening any report sees the provenance block first.
    if list(report)[: len(HEADER)] != list(HEADER):
        fail(path, f"header keys must lead the report, in order {HEADER}")

    bench = report["bench"]
    if not isinstance(bench, str) or not bench:
        fail(path, "'bench' must be a non-empty string")
    base = path.rsplit("/", 1)[-1]
    if base != f"BENCH_{bench}.json":
        fail(path, f"file name does not match bench name {bench!r}")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(path, f"schema_version must be {SCHEMA_VERSION}")
    for key in ("events_per_cell", "threads"):
        value = report[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(path, f"{key!r} must be a non-negative integer")
    if report["threads"] < 1:
        fail(path, "'threads' must be at least 1")


def main(argv: list[str]) -> int:
    paths = argv[1:] or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json reports found", file=sys.stderr)
        return 1
    for path in paths:
        check(path)
    print(f"checked {len(paths)} report(s): schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
