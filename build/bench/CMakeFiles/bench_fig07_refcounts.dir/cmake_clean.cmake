file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_refcounts.dir/bench_fig07_refcounts.cc.o"
  "CMakeFiles/bench_fig07_refcounts.dir/bench_fig07_refcounts.cc.o.d"
  "bench_fig07_refcounts"
  "bench_fig07_refcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_refcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
