/**
 * @file
 * Exact division and modulo by a runtime-constant divisor.
 *
 * The simulator's hot paths divide by values fixed at construction
 * time (cache set counts, bank counts, metadata block geometry). The
 * compiler cannot strength-reduce those, so every access pays a
 * hardware 64-bit divide (~25-40 cycles). FastDiv precomputes a
 * reciprocal once and answers div/mod with a multiply-high plus one
 * conditional correction — bit-identical to the native operators for
 * every 64-bit numerator, which the property test pins against the
 * hardware divider.
 */

#ifndef DEWRITE_COMMON_FAST_DIV_HH
#define DEWRITE_COMMON_FAST_DIV_HH

#include <cstdint>

#include "common/logging.hh"

namespace dewrite {

class FastDiv
{
  public:
    /** Divides by 1 until assigned a real divisor. */
    FastDiv() { *this = FastDiv(1); }

    explicit FastDiv(std::uint64_t divisor) : divisor_(divisor)
    {
        if (divisor == 0)
            fatal("FastDiv divisor must be nonzero");
        if ((divisor & (divisor - 1)) == 0) {
            // Power of two: plain shift/mask.
            shift_ = ctz(divisor);
            mask_ = divisor - 1;
            reciprocal_ = 0;
        } else {
            // reciprocal_ = floor(2^64 / d). Since d is not a power of
            // two it does not divide 2^64, so floor((2^64 - 1) / d)
            // equals floor(2^64 / d) and fits the computation in 64
            // bits. The estimate q0 = mulhi(n, reciprocal_) satisfies
            // floor(n/d) - 1 <= q0 <= floor(n/d) for all n, so a
            // single conditional correction makes it exact.
            reciprocal_ = ~std::uint64_t{ 0 } / divisor;
        }
    }

    std::uint64_t divisor() const { return divisor_; }

    std::uint64_t
    div(std::uint64_t n) const
    {
        if (reciprocal_ == 0)
            return n >> shift_;
        std::uint64_t q = mulHigh(n, reciprocal_);
        if (n - q * divisor_ >= divisor_)
            ++q;
        return q;
    }

    std::uint64_t
    mod(std::uint64_t n) const
    {
        if (reciprocal_ == 0)
            return n & mask_;
        const std::uint64_t r = n - mulHigh(n, reciprocal_) * divisor_;
        return r >= divisor_ ? r - divisor_ : r;
    }

  private:
    static std::uint64_t
    mulHigh(std::uint64_t a, std::uint64_t b)
    {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(a) * b) >> 64);
    }

    static unsigned
    ctz(std::uint64_t v)
    {
        unsigned n = 0;
        while (!(v & 1)) {
            v >>= 1;
            ++n;
        }
        return n;
    }

    std::uint64_t divisor_ = 1;
    std::uint64_t reciprocal_ = 0; //!< 0 selects the shift/mask path.
    std::uint64_t mask_ = 0;
    unsigned shift_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_FAST_DIV_HH
