/**
 * @file
 * The counter cache of the traditional secure-NVM baseline.
 *
 * Counter-mode encryption needs the per-line write counter before it can
 * generate the OTP. The baseline keeps counters in a dedicated NVM
 * region fronted by this on-chip write-back cache (2 MB, Table II);
 * DeWrite removes the region entirely by colocating counters in the
 * dedup tables, which is why this class is used only by the baseline.
 */

#ifndef DEWRITE_CACHE_COUNTER_CACHE_HH
#define DEWRITE_CACHE_COUNTER_CACHE_HH

#include "cache/metadata_cache.hh"
#include "cache/set_assoc_cache.hh"
#include "common/timing.hh"
#include "common/types.hh"

namespace dewrite {

class NvmDevice;

class CounterCache
{
  public:
    /**
     * @param region_base First NVM line address of the counter table.
     */
    CounterCache(const SystemConfig &config, NvmDevice &device,
                 LineAddr region_base);

    /**
     * Accesses the counter of data line @p addr at time @p now.
     *
     * On a hit the OTP can be computed in parallel with the data-line
     * access, so only the SRAM latency lands on the critical path; on a
     * miss the counter line must be fetched from NVM first.
     */
    MetadataAccessResult access(LineAddr addr, bool is_write, Time now);

    double hitRate() const { return directory_.hitRate(); }
    std::uint64_t dirtyEvictions() const
    {
        return directory_.dirtyEvictions();
    }

    /** NVM lines the counter table spans (space overhead accounting). */
    LineAddr regionLines() const { return regionLines_; }

    Energy totalEnergy() const { return energy_; }

    /**
     * Registers cache metrics under @p scope (canonically
     * "cache.counter"); the hit-rate gauge keeps the legacy
     * "counter_cache_hit_rate" StatSet key.
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const
    {
        scope.gauge("hit_rate", [this] { return hitRate(); },
                    "counter cache hit rate", "counter_cache_hit_rate");
        scope.gauge("dirty_evictions",
                    [this] {
                        return static_cast<double>(dirtyEvictions());
                    },
                    "dirty counter blocks written back on eviction");
        scope.gauge("region_lines",
                    [this] { return static_cast<double>(regionLines()); },
                    "NVM lines the counter table spans");
        scope.gauge("energy_pj",
                    [this] { return static_cast<double>(totalEnergy()); },
                    "SRAM accesses plus counter AES energy");
    }

  private:
    /** Counters per NVM line: 2048 bits / 32-bit counter slots. */
    static constexpr std::uint64_t kEntriesPerLine = kLineBits / 32;

    const SystemConfig &config_;
    NvmDevice &device_;
    SetAssocCache directory_;
    LineAddr base_;
    LineAddr regionLines_;
    Energy energy_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_CACHE_COUNTER_CACHE_HH
