/**
 * @file
 * 128-bit strong line fingerprint for two-tier duplicate detection
 * (DESIGN.md §5j, after NV-Dedup's weak-hash / strong-fingerprint
 * split).
 *
 * The weak CRC-32 gate is cheap but collides; a 32-bit match must be
 * confirmed before lines are merged. Instead of the paper's
 * confirmation *read*, the two-tier path compares 128-bit fingerprints
 * cached in the hash store. The kernel below produces that
 * fingerprint: four AES lanes absorb the sixteen 16-byte blocks of a
 * 256 B line (one aesenc round per block, data entering through the
 * round-key operand), the lanes are folded together, and three
 * finalization rounds diffuse every input bit across the result.
 *
 * This is a fingerprint, not a MAC: the keys are fixed public
 * constants and the construction is not claimed to resist a
 * cryptographic adversary. It is collision-resistant far beyond the
 * CRC-32 forgeries the adversarial traces seed (every absorbed block
 * passes through at least three full AES rounds), which is the
 * property the detection tier needs.
 *
 * Like Aes128 and crc32, the fast entry point dispatches once at
 * startup on CPU capability; the portable software path is
 * bit-identical and doubles as the testing oracle.
 */

#ifndef DEWRITE_CRYPTO_STRONG_FINGERPRINT_HH
#define DEWRITE_CRYPTO_STRONG_FINGERPRINT_HH

#include <cstdint>

#include "common/line.hh"

namespace dewrite {

/** A 128-bit strong fingerprint of one 256 B line. */
struct StrongFp
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    friend bool operator==(const StrongFp &, const StrongFp &) = default;
};

/**
 * Fingerprints @p line with the fast kernel (AES-NI when the CPU has
 * it, the software round function otherwise; both bit-identical).
 */
StrongFp strongFingerprint(const Line &line);

/** The portable reference implementation (testing oracle). */
StrongFp strongFingerprintReference(const Line &line);

/** True when the AES-NI kernel is in use. */
bool strongFingerprintUsesAesni();

} // namespace dewrite

#endif // DEWRITE_CRYPTO_STRONG_FINGERPRINT_HH
