/**
 * @file
 * The hash table for duplication detection (Section III-B2).
 *
 * Maps the CRC-32 fingerprint of every valid line in memory to the slot
 * holding that line and an 8-bit reference count (how many logical
 * addresses map to the slot). CRC-32 collides, so one hash can chain
 * several slots whose contents differ; the engine confirms candidates
 * with a read-and-compare. Reference counts saturate at 255: a line that
 * reaches 255 references is pinned as "highly referenced" and further
 * duplicates of it are written normally rather than deduplicated, which
 * bounds the field width at the cost of a few missed eliminations.
 *
 * Storage is a FlatMap from hash to a small-buffer chain: the one- and
 * two-entry chains that dominate in practice (CRC collisions are rare,
 * Figure 6) live inline in the map slot, and only a genuinely colliding
 * hash spills to a pooled vector. Chain order is append order and erase
 * preserves it, so the engine's newest-first probe sees exactly the
 * sequence the old vector-per-hash layout produced. Every mutation
 * probes the table once.
 */

#ifndef DEWRITE_DEDUP_HASH_STORE_HH
#define DEWRITE_DEDUP_HASH_STORE_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/strong_fingerprint.hh"

namespace dewrite {

/**
 * One <hash, realAddr, reference> record, plus the lazily cached
 * strong fingerprint of the slot's content (DESIGN.md §5j): invalid
 * on insert, filled by the engine on the first weak-match
 * confirmation, and implicitly invalidated on rewrite because a
 * rewritten slot's record is always dropped and re-inserted.
 */
struct HashEntry
{
    LineAddr realAddr;
    std::uint8_t reference;
    bool strongValid = false; //!< strongFp caches the slot's content fp.
    StrongFp strongFp{};      //!< Meaningful only while strongValid.
};

/**
 * Read-only view of one hash's collision chain, in append order
 * (index 0 oldest). Valid until the next HashStore mutation.
 */
class ChainView
{
  public:
    ChainView() = default;
    ChainView(const HashEntry *head, std::size_t head_count,
              const HashEntry *spill, std::size_t spill_count)
        : head_(head), headCount_(head_count), spill_(spill),
          spillCount_(spill_count)
    {
    }

    std::size_t size() const { return headCount_ + spillCount_; }
    bool empty() const { return size() == 0; }

    const HashEntry &
    operator[](std::size_t i) const
    {
        return i < headCount_ ? head_[i] : spill_[i - headCount_];
    }

  private:
    const HashEntry *head_ = nullptr;
    std::size_t headCount_ = 0;
    const HashEntry *spill_ = nullptr;
    std::size_t spillCount_ = 0;
};

class HashStore
{
  public:
    /** Saturation limit of the 8-bit reference field. */
    static constexpr std::uint8_t kMaxReference = 255;

    /**
     * Returns the chain of slots fingerprinted by @p hash (possibly
     * empty; more than one entry means a CRC collision is live).
     */
    ChainView lookup(std::uint64_t hash) const;

    /**
     * Warms the bucket a lookup(@p hash) will probe — the chain head
     * and its inline entries live in the same slot, so one hint covers
     * the common (collision-free) whole chain. Pure hint: no state
     * change, per the FlatMap::prefetch contract.
     */
    void prefetch(std::uint64_t hash) const { chains_.prefetch(hash); }

    /** Inserts a new record with reference 1. The pair must be absent. */
    void insert(std::uint64_t hash, LineAddr real_addr);

    /**
     * Increments the reference of (@p hash, @p real_addr).
     * @return false if the count is saturated (caller must then treat
     *         the write as non-duplicate), true otherwise.
     */
    bool addReference(std::uint64_t hash, LineAddr real_addr);

    /**
     * Decrements the reference of (@p hash, @p real_addr).
     * @return true if the count reached zero and the record was removed
     *         (the slot no longer holds live data).
     */
    bool dropReference(std::uint64_t hash, LineAddr real_addr);

    /** Current reference count, or 0 if the record is absent. */
    std::uint8_t reference(std::uint64_t hash, LineAddr real_addr) const;

    /**
     * Caches @p fp as the strong fingerprint of (@p hash,
     * @p real_addr)'s content and marks it valid. The record must
     * exist. Also the seeded-damage hook: the auditor test writes a
     * wrong fingerprint here to prove the
     * strong-fp-matches-stored-line invariant fires.
     */
    void setStrongFp(std::uint64_t hash, LineAddr real_addr,
                     const StrongFp &fp);

    /**
     * The cached strong fingerprint of (@p hash, @p real_addr), or
     * nullptr when the record is absent or its fingerprint has not
     * been computed yet.
     */
    const StrongFp *strongFpOf(std::uint64_t hash,
                               LineAddr real_addr) const;

    /**
     * Recovery-only: installs a record with an explicit reference
     * count (clamped to the saturation cap). The pair must be absent.
     */
    void restore(std::uint64_t hash, LineAddr real_addr,
                 std::uint64_t references);

    /** Pre-sizes the table for @p expected records (no mid-run rehash). */
    // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
    // the hot edge is a member-name over-approximation
    void reserve(std::size_t expected) { chains_.reserve(expected); }

    /** Number of live records. */
    std::size_t size() const { return size_; }

    /** Number of distinct hash values with at least one record. */
    std::size_t distinctHashes() const { return chains_.size(); }

    /**
     * Live records whose hash is shared with another live record — the
     * measure behind Figure 6's collision probability.
     */
    std::size_t collidingEntries() const;

    /** Longest live collision chain. */
    std::size_t maxChainLength() const;

    /** Chains that outgrew the inline buffer (testing / inspection). */
    std::size_t spilledChains() const;

    /** Cumulative saturation refusals (for the Figure 12 miss budget). */
    std::uint64_t saturationRefusals() const
    {
        return saturationRefusals_.value();
    }

    /**
     * Visits every record in ascending hash order (entries of one hash
     * in chain order), so consumers — refcount histograms, recovery
     * audits — see a sequence independent of table layout.
     */
    template <typename Visitor>
    void
    forEach(Visitor &&visit) const
    {
        chains_.forEachSorted([&](std::uint64_t hash, const Chain &chain) {
            const std::size_t head =
                std::min<std::size_t>(chain.count, Chain::kInline);
            for (std::size_t i = 0; i < head; ++i)
                visit(hash, chain.inlineEntries[i]);
            if (chain.count > Chain::kInline) {
                for (const HashEntry &entry : spills_[chain.spillSlot])
                    visit(hash, entry);
            }
        });
    }

  private:
    /**
     * One hash's records: up to kInline held inline, the rest in
     * spills_[spillSlot]. Logical order is inlineEntries then spill.
     */
    struct Chain
    {
        static constexpr std::size_t kInline = 2;

        HashEntry inlineEntries[kInline];
        std::uint32_t count = 0;
        std::uint32_t spillSlot = 0; // Valid only while count > kInline.
    };

    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    /** Index of (hash-chain, entry) located by one table probe. */
    struct Locator
    {
        std::size_t chainIdx; // FlatMap slot index, kNpos if hash absent.
        std::size_t entryIdx; // Position in the chain, kNpos if absent.
    };

    Locator locate(std::uint64_t hash, LineAddr real_addr) const;
    HashEntry &entryAt(Chain &chain, std::size_t i);
    void appendEntry(Chain &chain, HashEntry entry);
    void removeEntry(Chain &chain, std::size_t i);

    FlatMap<std::uint64_t, Chain> chains_;
    std::vector<std::vector<HashEntry>> spills_;
    std::vector<std::uint32_t> freeSpills_;
    std::size_t size_ = 0;
    Counter saturationRefusals_;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_HASH_STORE_HH
