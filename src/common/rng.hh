/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic workload generators must be exactly reproducible across
 * runs and platforms, so we implement xoshiro256** (seeded via SplitMix64)
 * rather than relying on std::mt19937 distribution implementations, whose
 * std::*_distribution outputs are not specified bit-for-bit.
 */

#ifndef DEWRITE_COMMON_RNG_HH
#define DEWRITE_COMMON_RNG_HH

#include <cstdint>

namespace dewrite {

/**
 * xoshiro256** generator with convenience samplers.
 *
 * All samplers are implemented on top of next64() with explicit,
 * platform-independent arithmetic.
 */
class Rng
{
  public:
    /** Seeds the state from a single 64-bit seed using SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p);

    /**
     * Geometric-ish draw: samples from an exponential distribution with
     * mean @p mean, rounded to an integer (minimum 0). Used for
     * instruction gaps between memory events.
     */
    std::uint64_t nextExponential(double mean);

    /**
     * Zipf-like rank sampler over [0, n): rank r is drawn with probability
     * proportional to 1 / (r + 1)^theta. Used to model the skewed
     * popularity of duplicate line contents (a few contents are referenced
     * by very many lines, Figure 7).
     */
    std::uint64_t nextZipf(std::uint64_t n, double theta);

  private:
    /**
     * Memo for nextZipf's (n, theta)-dependent libm terms. Workload
     * generators draw many samples before n changes, and alternate
     * between at most two theta values, so a two-entry cache removes
     * one pow()/log() from nearly every draw. Pure memoization: the
     * cached values are the same doubles the direct computation yields,
     * so the sampled sequence is bit-identical.
     */
    struct ZipfTerms
    {
        std::uint64_t n = 0;
        double theta = 0.0;
        double top = 0.0;    //!< pow(n+1, 1-theta), or log(n+1) at theta=1.
        double invExp = 0.0; //!< 1 / (1 - theta); unused at theta=1.
        bool thetaOne = false;
        bool valid = false;
    };

    const ZipfTerms &zipfTerms(std::uint64_t n, double theta);

    std::uint64_t state_[4];
    ZipfTerms zipf_[2];
    unsigned zipfVictim_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_RNG_HH
