/**
 * @file
 * RecoveryManager implementation.
 */

#include "dedup/recovery.hh"

#include <vector>

#include "common/paged_array.hh"
#include "dedup/dedup_engine.hh"
#include "dedup/metadata_auditor.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

namespace {

/**
 * True reference count per slot, recomputed from the durable tables:
 * remapped logicals pointing at the slot, plus the slot's own logical
 * when it holds its own data.
 */
PagedArray<std::uint64_t>
recomputeReferences(const DedupEngine &engine,
                    const DenseAddrSet &written)
{
    PagedArray<std::uint64_t> refs;
    engine.mapping().forEachRemapped(
        [&](LineAddr, LineAddr real_addr) {
            if (real_addr != DedupEngine::kNoData)
                ++refs.ref(real_addr);
        });
    engine.invertedHash().forEachDataSlot(
        [&](LineAddr slot, std::uint64_t) {
            if (!engine.mapping().isRemapped(slot) &&
                written.contains(slot)) {
                ++refs.ref(slot);
            }
        });
    return refs;
}

} // namespace

RecoveryManager::RecoveryManager(DedupEngine &engine) : engine_(engine)
{
}

AuditReport
RecoveryManager::audit() const
{
    AuditReport report;
    const auto refs = recomputeReferences(engine_, engine_.written_);

    // Every data slot must have a matching hash-store record with the
    // true reference count (saturated records are pinned and exempt).
    engine_.invertedHash().forEachDataSlot(
        [&](LineAddr slot, std::uint64_t hash) {
            ++report.hashRecordsChecked;
            const std::uint8_t recorded =
                engine_.hashStore().reference(hash, slot);
            if (recorded == 0) {
                ++report.missingHashRecords;
                return;
            }
            const std::uint64_t expected = refs.get(slot);
            if (recorded != HashStore::kMaxReference &&
                recorded != expected) {
                ++report.wrongReferences;
            }
        });

    // Every record must describe a live data slot with the same hash.
    // dewrite-lint: allow(unsorted-iteration) commutative counts
    engine_.hashStore().forEach(
        [&](std::uint64_t hash, const HashEntry &entry) {
            if (!engine_.invertedHash().holdsData(entry.realAddr) ||
                engine_.invertedHash().hash(entry.realAddr) != hash) {
                ++report.strayHashRecords;
            }
        });

    // The FSM bitmap must mark exactly the data slots as used.
    for (LineAddr slot = 0; slot < engine_.freeSpace().capacity();
         ++slot) {
        const bool holds = engine_.invertedHash().holdsData(slot);
        if (engine_.freeSpace().isFree(slot) == holds)
            ++report.fsmMismatches;
    }
    return report;
}

void
RecoveryManager::simulateCrashDamage()
{
    engine_.hashStore_ = HashStore();
    engine_.fsm_ = FreeSpaceTable(engine_.config_.memory.numLines);
}

RecoveryReport
RecoveryManager::rebuild()
{
    RecoveryReport report;

    const auto refs = recomputeReferences(engine_, engine_.written_);
    engine_.mapping().forEachRemapped(
        [&](LineAddr, LineAddr) { ++report.mappingsScanned; });

    // Start from empty derived structures and restore them from the
    // durable inverted-hash walk.
    engine_.hashStore_ = HashStore();
    engine_.hashStore_.reserve(engine_.config_.memory.workingSetHint());
    engine_.fsm_ = FreeSpaceTable(engine_.config_.memory.numLines);

    // Under the weak+strong policies the scan already streams every
    // stored line past the controller, so the strong-fingerprint caches
    // are rebuilt in the same pass — a fresh boot starts with warm
    // fingerprints instead of re-paying one confirmation read each.
    const bool rebuild_strong_fps =
        engine_.options_.detect == DetectPolicy::WeakStrong ||
        engine_.options_.detect == DetectPolicy::Adaptive;

    std::vector<LineAddr> orphaned;
    engine_.invertedHash().forEachDataSlot(
        [&](LineAddr slot, std::uint64_t hash) {
            ++report.slotsScanned;
            const std::uint64_t count = refs.get(slot);
            // A data slot nobody references can only appear if the
            // crash interrupted a release; reclaim it below.
            if (count == 0) {
                orphaned.push_back(slot);
                return;
            }
            engine_.hashStore_.restore(hash, slot, count);
            if (rebuild_strong_fps) {
                engine_.hashStore_.setStrongFp(
                    hash, slot,
                    strongFingerprint(engine_.decryptStored(slot)));
                ++report.strongFpsRebuilt;
            }
            engine_.fsm_.allocate(slot);
            ++report.recordsRebuilt;
        });
    for (LineAddr slot : orphaned) {
        const std::uint64_t counter = engine_.counterOf(slot);
        engine_.invHash_.clearHash(slot);
        engine_.setCounterOf(slot, counter);
    }

    // Scan-time estimate: one sequential pass over the two durable
    // metadata regions (mapping + inverted hash), spread over the
    // banks.
    const SystemConfig &config = engine_.config_;
    const std::uint64_t region_lines =
        2 * ((config.memory.numLines * 33 + kLineBits - 1) / kLineBits);
    report.estimatedScanTime = region_lines * config.timing.nvmRead /
                               config.timing.numBanks;

    // A rebuilt engine must satisfy every cross-table invariant; under
    // DEWRITE_AUDIT=1 a recovery that leaves the metadata inconsistent
    // dies here with the violated invariant named.
    if (auditEnabled())
        MetadataAuditor(engine_).enforce("recovery");
    return report;
}

} // namespace dewrite
