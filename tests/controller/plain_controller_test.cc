/**
 * @file
 * PlainController tests — the unencrypted reference point.
 */

#include "controller/plain_controller.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(PlainControllerTest, StoresPlaintextAtRest)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    PlainController ctrl(device);
    Rng rng(191);
    const Line data = Line::random(rng);
    ctrl.write(3, data, 0);
    EXPECT_EQ(device.peek(3), data); // No encryption: leaks as-is.
    EXPECT_EQ(ctrl.read(3, 0).data, data);
}

TEST(PlainControllerTest, WriteLatencyIsBareCellWrite)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    PlainController ctrl(device);
    const CtrlWriteResult write = ctrl.write(0, Line(), 0);
    EXPECT_EQ(write.latency, config.timing.nvmWrite);
    EXPECT_FALSE(write.eliminated);
}

TEST(PlainControllerTest, ReadLatencyIsBareArrayRead)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    PlainController ctrl(device);
    // A cold read of a different row pays the full array access and
    // nothing else.
    const CtrlReadResult read = ctrl.read(12345, 0);
    EXPECT_EQ(read.latency, config.timing.nvmRead);
    EXPECT_FALSE(read.valid);
}

TEST(PlainControllerTest, NeverEliminatesDuplicates)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    PlainController ctrl(device);
    const Line data = Line::filled(0x42);
    for (LineAddr addr = 0; addr < 10; ++addr)
        ctrl.write(addr, data, 0);
    EXPECT_EQ(ctrl.writesEliminated(), 0u);
    EXPECT_EQ(device.numWrites(), 10u);
    EXPECT_EQ(ctrl.dataBitsProgrammed(), 10 * kLineBits);
}

TEST(PlainControllerTest, NoControllerEnergy)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    PlainController ctrl(device);
    ctrl.write(0, Line(), 0);
    EXPECT_EQ(ctrl.controllerEnergy(), 0u); // Device energy only.
    EXPECT_GT(device.totalEnergy(), 0u);
}

TEST(PlainControllerTest, StatsExport)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    PlainController ctrl(device);
    ctrl.write(0, Line(), 0);
    ctrl.read(0, 0);
    StatSet stats;
    ctrl.fillStats(stats);
    EXPECT_EQ(stats.get("writes"), 1.0);
    EXPECT_EQ(stats.get("reads"), 1.0);
    EXPECT_EQ(ctrl.name(), "plain-nvm");
}

} // namespace
} // namespace dewrite
