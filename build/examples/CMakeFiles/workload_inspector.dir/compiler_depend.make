# Empty compiler generated dependencies file for workload_inspector.
# This may be replaced when dependencies are built.
