/**
 * @file
 * Direct (block-cipher) encryption for the metadata region.
 *
 * DeWrite encrypts metadata lines with direct AES rather than counter
 * mode so that the metadata needs no counters of its own (Section
 * III-B1). Direct encryption cannot hide decryption latency behind the
 * NVM read, but metadata-cache hit rates above 98% keep that penalty off
 * the common path.
 */

#ifndef DEWRITE_CRYPTO_DIRECT_ENCRYPT_HH
#define DEWRITE_CRYPTO_DIRECT_ENCRYPT_HH

#include "common/line.hh"
#include "common/types.hh"
#include "crypto/aes128.hh"

namespace dewrite {

/**
 * Encrypts 256 B lines as sixteen AES blocks, each whitened with the
 * line address and block index (an XEX-style tweak) so identical
 * metadata at different addresses does not produce identical
 * ciphertext, unlike raw ECB.
 */
class DirectEncryptEngine
{
  public:
    explicit DirectEncryptEngine(const AesKey &key);

    /** Encrypts @p plaintext for storage at @p addr. */
    Line encryptLine(const Line &plaintext, LineAddr addr) const;

    /** Decrypts @p ciphertext stored at @p addr. */
    Line decryptLine(const Line &ciphertext, LineAddr addr) const;

  private:
    AesBlock tweak(LineAddr addr, std::size_t block) const;

    Aes128 cipher_;
};

} // namespace dewrite

#endif // DEWRITE_CRYPTO_DIRECT_ENCRYPT_HH
