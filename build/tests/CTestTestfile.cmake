# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_nvm[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dedup[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
