/**
 * @file
 * CRC-32 collision forging and the adversarial workload.
 */

#include "trace/collision_trace.hh"

#include "common/check.hh"
#include "common/crc32.hh"
#include "common/logging.hh"

namespace dewrite {

namespace {

/**
 * Raw reflected CRC-32 register (IEEE polynomial) over @p data: init 0,
 * no final XOR. The affine init/final parts of crc32() cancel when two
 * equal-length messages are XORed, so a difference D satisfies
 * crc32(A ^ D) == crc32(A) exactly when rawRegister(D) == 0.
 */
struct RawCrcTable
{
    std::uint32_t entries[256];

    RawCrcTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

std::uint32_t
rawRegister(const std::uint8_t *data, std::size_t size)
{
    static const RawCrcTable table;
    std::uint32_t r = 0;
    for (std::size_t i = 0; i < size; ++i)
        r = (r >> 8) ^ table.entries[(r ^ data[i]) & 0xffu];
    return r;
}

} // namespace

Line
forgeCrc32Collision(const Line &base, Rng &rng)
{
    // Difference layout: 252 arbitrary bytes, then the little-endian
    // register value they leave. The reflected update consumes each of
    // those four bytes with table index 0 (T[0] == 0), shifting the
    // register to exactly zero — so rawRegister(diff) == 0 and
    // base ^ diff collides with base under the full CRC-32.
    Line diff;
    for (std::size_t w = 0; w < kLineSize / 8; ++w)
        diff.setWord64(w, rng.next64());
    // Guarantee the difference is nonzero even for a pathological RNG.
    diff.setByte(0, diff.byte(0) | 1);

    const std::uint32_t r = rawRegister(diff.data(), kLineSize - 4);
    diff.setByte(kLineSize - 4, static_cast<std::uint8_t>(r));
    diff.setByte(kLineSize - 3, static_cast<std::uint8_t>(r >> 8));
    diff.setByte(kLineSize - 2, static_cast<std::uint8_t>(r >> 16));
    diff.setByte(kLineSize - 1, static_cast<std::uint8_t>(r >> 24));

    const Line forged = base ^ diff;
    DEWRITE_DCHECK(crc32(forged) == crc32(base),
                   "forged difference failed to cancel the register");
    return forged;
}

CollisionWorkload::CollisionWorkload(const CollisionTraceConfig &config,
                                     std::uint64_t seed)
    : config_(config), rng_(seed)
{
    if (config.anchorLines == 0)
        fatal("collision trace needs at least one anchor line");
    if (config.workingSetLines <= config.anchorLines)
        fatal("collision trace working set must exceed its anchors");
    if (config.collisionFraction < 0.0 || config.collisionFraction > 1.0)
        fatal("collision fraction must be in [0, 1]");
    image_.resize(config.workingSetLines);
    valid_.assign(config.workingSetLines, 0);
    writtenAddrs_.reserve(config.workingSetLines);
}

const Line *
CollisionWorkload::expected(LineAddr addr) const
{
    if (addr >= image_.size() || !valid_[addr])
        return nullptr;
    return &image_[addr];
}

bool
CollisionWorkload::next(MemEvent &event)
{
    event.isWrite = true;
    event.instGap = rng_.nextExponential(50.0);

    if (emitted_ < config_.anchorLines) {
        // Anchor phase: immutable victims with distinct random content.
        const LineAddr addr = nextFreshAddr_++;
        Line content = Line::random(rng_);
        content.setWord64(0, ++uniqueStamp_);
        event.addr = addr;
        event.data = content;
    } else if (rng_.chance(config_.collisionFraction)) {
        // Attack: forge a collision of a random anchor's live content
        // and write it to a non-anchor address. The forged line always
        // differs from the anchor, so a detector that trusts the weak
        // hash merges distinct data.
        const LineAddr victim = rng_.nextBelow(config_.anchorLines);
        event.addr = config_.anchorLines +
            rng_.nextBelow(config_.workingSetLines - config_.anchorLines);
        event.data = forgeCrc32Collision(image_[victim], rng_);
        ++collisionsForged_;
    } else {
        // Background noise: unique content over the non-anchor range,
        // stamped so it never duplicates anything in the image.
        event.addr = config_.anchorLines +
            rng_.nextBelow(config_.workingSetLines - config_.anchorLines);
        Line content = Line::random(rng_);
        content.setWord64(0, ++uniqueStamp_);
        event.data = content;
    }

    if (!valid_[event.addr]) {
        valid_[event.addr] = 1;
        // dewrite-analyze: allow(hot-path-purity) first-write bookkeeping into
        // a capacity reserved up front; the hot edge is a member-name
        // over-approximation (this generator feeds the controller, it
        // does not run inside it)
        writtenAddrs_.push_back(event.addr);
    }
    image_[event.addr] = event.data;
    ++emitted_;
    return true;
}

} // namespace dewrite
