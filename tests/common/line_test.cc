/**
 * @file
 * Unit tests for the Line value type.
 */

#include "common/line.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

TEST(LineTest, DefaultIsZero)
{
    Line line;
    EXPECT_TRUE(line.isZero());
    EXPECT_EQ(line.popcount(), 0u);
    for (std::size_t i = 0; i < kLineSize; ++i)
        EXPECT_EQ(line.byte(i), 0);
}

TEST(LineTest, FilledLine)
{
    const Line line = Line::filled(0xab);
    EXPECT_FALSE(line.isZero());
    for (std::size_t i = 0; i < kLineSize; ++i)
        EXPECT_EQ(line.byte(i), 0xab);
}

TEST(LineTest, PatternRoundTripsThroughWords)
{
    const Line line = Line::pattern(0x0123456789abcdefULL);
    for (std::size_t i = 0; i < kLineSize / 8; ++i)
        EXPECT_EQ(line.word64(i), 0x0123456789abcdefULL);
}

TEST(LineTest, SetWordChangesOnlyThatWord)
{
    Line line;
    line.setWord64(3, ~0ULL);
    EXPECT_EQ(line.word64(2), 0u);
    EXPECT_EQ(line.word64(3), ~0ULL);
    EXPECT_EQ(line.word64(4), 0u);
    EXPECT_EQ(line.popcount(), 64u);
}

TEST(LineTest, Word16Access)
{
    Line line;
    line.setWord16(5, 0xbeef);
    EXPECT_EQ(line.word16(5), 0xbeef);
    EXPECT_EQ(line.byte(10), 0xef); // Little-endian layout.
    EXPECT_EQ(line.byte(11), 0xbe);
}

TEST(LineTest, EqualityIsBytewise)
{
    Rng rng(1);
    const Line a = Line::random(rng);
    Line b = a;
    EXPECT_EQ(a, b);
    b.setByte(kLineSize - 1, b.byte(kLineSize - 1) ^ 1);
    EXPECT_NE(a, b);
}

TEST(LineTest, XorIsInvolution)
{
    Rng rng(2);
    const Line a = Line::random(rng);
    const Line b = Line::random(rng);
    EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(LineTest, BitDistanceCountsDifferingBits)
{
    Line a;
    Line b;
    b.setWord64(0, 0b1011);
    EXPECT_EQ(a.bitDistance(b), 3u);
    EXPECT_EQ(b.bitDistance(a), 3u);
    EXPECT_EQ(a.bitDistance(a), 0u);
}

TEST(LineTest, InvertedFlipsEveryBit)
{
    Rng rng(3);
    const Line a = Line::random(rng);
    const Line inv = a.inverted();
    EXPECT_EQ(a.bitDistance(inv), kLineBits);
    EXPECT_EQ(inv.inverted(), a);
}

TEST(LineTest, FromBytesCopiesExactly)
{
    std::uint8_t raw[kLineSize];
    for (std::size_t i = 0; i < kLineSize; ++i)
        raw[i] = static_cast<std::uint8_t>(i * 7);
    const Line line = Line::fromBytes(raw);
    for (std::size_t i = 0; i < kLineSize; ++i)
        EXPECT_EQ(line.byte(i), static_cast<std::uint8_t>(i * 7));
}

TEST(LineTest, ContentDigestDistinguishesContent)
{
    Rng rng(4);
    const Line a = Line::random(rng);
    Line b = a;
    EXPECT_EQ(a.contentDigest(), b.contentDigest());
    b.setByte(0, b.byte(0) ^ 0x80);
    EXPECT_NE(a.contentDigest(), b.contentDigest());
}

TEST(LineTest, RandomLinesDiffer)
{
    Rng rng(5);
    const Line a = Line::random(rng);
    const Line b = Line::random(rng);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace dewrite
