/**
 * @file
 * CoreModel tests: single-core stalls, persist write queues, and
 * multi-core interleaving — exercised against a stub controller with
 * fixed latencies so every cycle count is predictable.
 */

#include "cpu/core_model.hh"

#include <gtest/gtest.h>

#include <vector>

#include "controller/mem_controller.hh"
#include "trace/trace.hh"

namespace dewrite {
namespace {

/** Fixed-latency controller that records issue times. */
class StubController : public MemController
{
  public:
    StubController(Time write_latency, Time read_latency)
        : writeLatency_(write_latency), readLatency_(read_latency)
    {
    }

    CtrlWriteResult
    write(LineAddr addr, const Line &, Time now) override
    {
        writeIssues.push_back({ addr, now });
        noteWrite(writeLatency_, false, kLineBits);
        return { writeLatency_, false };
    }

    CtrlReadResult
    read(LineAddr addr, Time now) override
    {
        readIssues.push_back({ addr, now });
        noteRead(readLatency_);
        CtrlReadResult result;
        result.latency = readLatency_;
        result.valid = true;
        return result;
    }

    std::string name() const override { return "stub"; }
    Energy controllerEnergy() const override { return 0; }

    std::vector<std::pair<LineAddr, Time>> writeIssues;
    std::vector<std::pair<LineAddr, Time>> readIssues;

  private:
    Time writeLatency_;
    Time readLatency_;
};

/** Fixed event script. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<MemEvent> events)
        : events_(std::move(events))
    {
    }

    bool
    next(MemEvent &event) override
    {
        if (position_ >= events_.size())
            return false;
        event = events_[position_++];
        return true;
    }

  private:
    std::vector<MemEvent> events_;
    std::size_t position_ = 0;
};

MemEvent
write(LineAddr addr, std::uint64_t gap)
{
    MemEvent event;
    event.isWrite = true;
    event.addr = addr;
    event.instGap = gap;
    return event;
}

MemEvent
read(LineAddr addr, std::uint64_t gap)
{
    MemEvent event;
    event.addr = addr;
    event.instGap = gap;
    return event;
}

TEST(CoreModelTest, ReadsBlockTheCore)
{
    TimingConfig timing;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);

    // Two reads with 10-instruction gaps: the second issues only after
    // the first returns.
    ScriptedTrace trace({ read(1, 10), read(2, 10) });
    const RunResult result = core.run(trace, ctrl, 100);

    ASSERT_EQ(ctrl.readIssues.size(), 2u);
    // Each event costs its gap plus one issue cycle.
    EXPECT_EQ(ctrl.readIssues[0].second, timing.cycles(11));
    EXPECT_EQ(ctrl.readIssues[1].second,
              timing.cycles(11) + 100 * kNanoSecond + timing.cycles(11));
    EXPECT_EQ(result.reads, 2u);
    EXPECT_EQ(result.instructions, 22u);
}

TEST(CoreModelTest, StoreQueueOverlapsWrites)
{
    TimingConfig timing;
    timing.storeQueueDepth = 4;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);

    // Three back-to-back writes fit in the queue: each issues after
    // only its compute gap, not after the previous write completes.
    ScriptedTrace trace({ write(1, 10), write(2, 10), write(3, 10) });
    core.run(trace, ctrl, 100);

    ASSERT_EQ(ctrl.writeIssues.size(), 3u);
    EXPECT_EQ(ctrl.writeIssues[1].second - ctrl.writeIssues[0].second,
              timing.cycles(11));
    EXPECT_EQ(ctrl.writeIssues[2].second - ctrl.writeIssues[1].second,
              timing.cycles(11));
}

TEST(CoreModelTest, FullStoreQueueStalls)
{
    TimingConfig timing;
    timing.storeQueueDepth = 1; // Strict flush-per-store discipline.
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);

    ScriptedTrace trace({ write(1, 10), write(2, 10) });
    core.run(trace, ctrl, 100);

    // The second write waits out the first's full latency.
    EXPECT_EQ(ctrl.writeIssues[1].second - ctrl.writeIssues[0].second,
              300 * kNanoSecond + timing.cycles(11));
}

TEST(CoreModelTest, MultiCoreInterleavesByTime)
{
    TimingConfig timing;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);

    // Core 0's events sit at gaps 10 and 1000; core 1's at gap 100:
    // global issue order must be 0, 1, 0.
    ScriptedTrace trace_a({ read(10, 10), read(11, 2000) });
    ScriptedTrace trace_b({ read(20, 500) });
    std::vector<TraceSource *> traces{ &trace_a, &trace_b };
    const RunResult result = core.runMulti(traces, ctrl, 100);

    ASSERT_EQ(ctrl.readIssues.size(), 3u);
    EXPECT_EQ(ctrl.readIssues[0].first, 10u);
    EXPECT_EQ(ctrl.readIssues[1].first, 20u);
    EXPECT_EQ(ctrl.readIssues[2].first, 11u);
    EXPECT_EQ(result.events, 3u);
}

TEST(CoreModelTest, MultiCoreCyclesAreSlowestCore)
{
    TimingConfig timing;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);

    ScriptedTrace trace_a({ read(1, 10) });
    ScriptedTrace trace_b({ read(2, 10000) });
    std::vector<TraceSource *> traces{ &trace_a, &trace_b };
    const RunResult result = core.runMulti(traces, ctrl, 100);

    // Slowest core: 10000 cycles of compute, one issue cycle, and
    // the read stall.
    EXPECT_EQ(result.cycles,
              10001 + (100 * kNanoSecond) / timing.cyclePeriod);
}

TEST(CoreModelTest, MaxEventsBoundsTotalAcrossCores)
{
    TimingConfig timing;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);

    ScriptedTrace trace_a({ read(1, 1), read(2, 1), read(3, 1) });
    ScriptedTrace trace_b({ read(4, 1), read(5, 1), read(6, 1) });
    std::vector<TraceSource *> traces{ &trace_a, &trace_b };
    const RunResult result = core.runMulti(traces, ctrl, 4);
    EXPECT_EQ(result.events, 4u);
}

TEST(CoreModelTest, ExhaustedTraceEndsRun)
{
    TimingConfig timing;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);
    ScriptedTrace trace({ read(1, 1) });
    const RunResult result = core.run(trace, ctrl, 1000);
    EXPECT_EQ(result.events, 1u);
}

TEST(CoreModelTest, IpcNeverExceedsOnePerCore)
{
    TimingConfig timing;
    CoreModel core(timing);
    StubController ctrl(300 * kNanoSecond, 100 * kNanoSecond);
    std::vector<MemEvent> events;
    for (int i = 0; i < 50; ++i)
        events.push_back(write(i, 100));
    ScriptedTrace trace(events);
    const RunResult result = core.run(trace, ctrl, 1000);
    EXPECT_LE(result.ipc, 1.0);
    EXPECT_GT(result.ipc, 0.0);
}

} // namespace
} // namespace dewrite
