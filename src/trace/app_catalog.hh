/**
 * @file
 * The catalog of the paper's 20 evaluated applications.
 *
 * 12 SPEC CPU2006 and 8 PARSEC 2.1 applications, each with generator
 * parameters calibrated to the per-application statistics the paper
 * reports (DESIGN.md Section 2): duplicate fractions spanning
 * 18.6%..98.4% with a 58% mean, ~16% mean zero-line share with sjeng
 * zero-dominated, cactusADM / libquantum / lbm / blackscholes above
 * 80% duplication, bzip2 and vips near the bottom.
 */

#ifndef DEWRITE_TRACE_APP_CATALOG_HH
#define DEWRITE_TRACE_APP_CATALOG_HH

#include <vector>

#include "trace/trace_gen.hh"

namespace dewrite {

/** All 20 application profiles, SPEC first, in the paper's spirit. */
const std::vector<AppProfile> &appCatalog();

/** Looks up a profile by name; calls fatal() if unknown. */
const AppProfile &appByName(const std::string &name);

} // namespace dewrite

#endif // DEWRITE_TRACE_APP_CATALOG_HH
