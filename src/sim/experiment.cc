/**
 * @file
 * Experiment harness implementation.
 */

#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/crc32.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "dedup/metadata_auditor.hh"

namespace dewrite {

namespace {

DetailedExperiment runAppImpl(const AppProfile &profile,
                              const SystemConfig &config,
                              const SchemeOptions &scheme,
                              std::uint64_t max_events,
                              std::uint64_t seed,
                              const obs::TraceConfig *trace);

} // namespace

std::uint64_t
appSeed(const AppProfile &profile)
{
    // Stable across runs and platforms: derived from the name only.
    return 0x5eed0000ULL +
           crc32(reinterpret_cast<const std::uint8_t *>(
                     profile.name.data()),
                 profile.name.size());
}

std::uint64_t
experimentEvents()
{
    // Every bench resolves its event budget here, so this is the
    // shared spot to validate the rest of the experiment environment:
    // a malformed DEWRITE_LOG, DEWRITE_AUDIT, or DEWRITE_AUDIT_EPOCH
    // dies before any cell runs (even when auditing is off and the
    // epoch value would never be read).
    logLevel();
    auditEnabled();
    auditEpochWrites();
    return envUint("DEWRITE_EVENTS", 120000, 1, kMaxExperimentEvents);
}

ExperimentResult
runApp(const AppProfile &profile, const SystemConfig &config,
       const SchemeOptions &scheme, std::uint64_t max_events,
       std::uint64_t seed)
{
    return runAppDetailed(profile, config, scheme, max_events, seed)
        .result;
}

ExperimentResult
runApp(const AppProfile &profile, const SystemConfig &config,
       const SchemeOptions &scheme)
{
    return runApp(profile, config, scheme, experimentEvents(),
                  appSeed(profile));
}

DetailedExperiment
runAppDetailed(const AppProfile &profile, const SystemConfig &config,
               const SchemeOptions &scheme, std::uint64_t max_events,
               std::uint64_t seed)
{
    return runAppImpl(profile, config, scheme, max_events, seed,
                      nullptr);
}

DetailedExperiment
runAppTraced(const AppProfile &profile, const SystemConfig &config,
             const SchemeOptions &scheme, std::uint64_t max_events,
             std::uint64_t seed, const obs::TraceConfig &trace)
{
    return runAppImpl(profile, config, scheme, max_events, seed,
                      &trace);
}

namespace {

DetailedExperiment
runAppImpl(const AppProfile &profile, const SystemConfig &config,
           const SchemeOptions &scheme, std::uint64_t max_events,
           std::uint64_t seed, const obs::TraceConfig *trace)
{
    DetailedExperiment detailed;
    detailed.result.app = profile.name;

    // One workload instance per core (a multi-programmed run of the
    // application), sharing the program-phase state and split across
    // disjoint address ranges.
    auto phase = std::make_shared<SharedPhase>();
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<TraceSource *> traces;
    const unsigned cores = std::max(1u, config.numCores);
    for (unsigned core = 0; core < cores; ++core) {
        workloads.push_back(std::make_unique<SyntheticWorkload>(
            profile, seed + core,
            static_cast<LineAddr>(core) * profile.workingSetLines * 2,
            phase));
        traces.push_back(workloads.back().get());
    }

    // Derive the table sizing hint from what this run can actually
    // touch: the multi-programmed working set, capped by the event
    // budget (a run of N events writes at most N distinct lines).
    SystemConfig sized = config;
    if (sized.memory.workingSetHintLines == 0) {
        sized.memory.workingSetHintLines = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(cores) * profile.workingSetLines,
            std::max<std::uint64_t>(max_events, 1024));
    }

    detailed.system = std::make_unique<System>(sized, scheme);
    detailed.result.scheme = detailed.system->controller().name();
    if (trace)
        detailed.system->enableTracing(*trace);

    const auto host_start = std::chrono::steady_clock::now();
    detailed.result.run = detailed.system->run(traces, max_events);
    detailed.result.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    detailed.system->controller().fillStats(detailed.result.stats);
    detailed.result.metrics = detailed.system->registry().snapshot();
    return detailed;
}

} // namespace

SchemeOptions
plainScheme()
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::Plain;
    return scheme;
}

SchemeOptions
secureBaselineScheme()
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::SecureBaseline;
    return scheme;
}

SchemeOptions
dewriteScheme(DedupMode mode)
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::DeWrite;
    scheme.dewrite.mode = mode;
    return scheme;
}

} // namespace dewrite
