/**
 * @file
 * PlainController implementation.
 */

#include "controller/plain_controller.hh"

namespace dewrite {

CtrlWriteResult
PlainController::write(LineAddr addr, const Line &data, Time now)
{
    const NvmTiming access = device_.write(addr, data, now);
    const Time latency = access.latency(now);
    noteWrite(latency, false, kLineBits);
    return { latency, false };
}

CtrlReadResult
PlainController::read(LineAddr addr, Time now)
{
    CtrlReadResult result;
    result.valid = device_.isWritten(addr);
    const NvmAccess access = device_.read(addr, now);
    result.data = access.data;
    result.latency = access.latency(now);
    noteRead(result.latency);
    return result;
}

CtrlReadResult
PlainController::readTiming(LineAddr addr, Time now)
{
    CtrlReadResult result;
    result.valid = device_.isWritten(addr);
    const NvmTiming access = device_.readTimed(addr, now);
    result.latency = access.latency(now);
    noteRead(result.latency);
    return result;
}

} // namespace dewrite
