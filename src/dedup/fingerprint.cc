/**
 * @file
 * Fingerprinter implementation.
 */

#include "dedup/fingerprint.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"

namespace dewrite {

Fingerprinter::Fingerprinter(HashFunction function)
    : spec_(&hashSpec(function))
{
}

std::uint64_t
Fingerprinter::fingerprint(const Line &line) const
{
    switch (spec_->function) {
      case HashFunction::Crc32:
        return crc32(line);
      case HashFunction::Md5: {
        const Md5Digest digest = md5(line.data(), kLineSize);
        std::uint64_t key;
        std::memcpy(&key, digest.data(), 8);
        return key;
      }
      case HashFunction::Sha1: {
        const Sha1Digest digest = sha1(line.data(), kLineSize);
        std::uint64_t key;
        std::memcpy(&key, digest.data(), 8);
        return key;
      }
    }
    panic("bad hash function");
}

Energy
Fingerprinter::energy(const EnergyConfig &energy) const
{
    return spec_->function == HashFunction::Crc32 ? energy.crcLine
                                                  : energy.cryptoHashLine;
}

} // namespace dewrite
