/**
 * @file
 * System implementation.
 */

#include "sim/system.hh"

#include "common/logging.hh"
#include "controller/plain_controller.hh"
#include "trace/trace.hh"

namespace dewrite {

namespace {

std::unique_ptr<MemController>
makeController(const SystemConfig &config, NvmDevice &device,
               const SchemeOptions &scheme, const AesKey &key)
{
    switch (scheme.kind) {
      case SchemeKind::Plain:
        return std::make_unique<PlainController>(device);
      case SchemeKind::SecureBaseline:
        return std::make_unique<SecureBaselineController>(config, device,
                                                          key,
                                                          scheme.baseline);
      case SchemeKind::DeWrite:
        return std::make_unique<DeWriteController>(config, device, key,
                                                   scheme.dewrite);
    }
    panic("bad scheme kind");
}

} // namespace

AesKey
defaultAesKey()
{
    return AesKey{ 0xde, 0x77, 0x12, 0x17, 0xe5, 0xec, 0x12, 0x01,
                   0x8a, 0x5e, 0xcb, 0x1e, 0x00, 0x1c, 0xaf, 0xe5 };
}

System::System(const SystemConfig &config, const SchemeOptions &scheme,
               const AesKey &key)
    : config_(config), device_(config_), core_(config_.timing)
{
    validateConfig(config_);
    controller_ = makeController(config_, device_, scheme, key);
}

System::System(const SystemConfig &config, const SchemeOptions &scheme)
    : System(config, scheme, defaultAesKey())
{
}

RunResult
System::run(TraceSource &trace, std::uint64_t max_events)
{
    RunResult result = core_.run(trace, *controller_, max_events);
    result.totalEnergy = totalEnergy();
    result.nvmLineWrites = device_.numWrites();
    result.nvmLineReads = device_.numReads();
    result.bitsProgrammed = controller_->dataBitsProgrammed();
    return result;
}

RunResult
System::run(const std::vector<TraceSource *> &traces,
            std::uint64_t max_events)
{
    RunResult result = core_.runMulti(traces, *controller_, max_events);
    result.totalEnergy = totalEnergy();
    result.nvmLineWrites = device_.numWrites();
    result.nvmLineReads = device_.numReads();
    result.bitsProgrammed = controller_->dataBitsProgrammed();
    return result;
}

CtrlWriteResult
System::write(LineAddr addr, const Line &data)
{
    const CtrlWriteResult result = controller_->write(addr, data, now_);
    now_ += result.latency;
    return result;
}

CtrlReadResult
System::read(LineAddr addr)
{
    const CtrlReadResult result = controller_->read(addr, now_);
    now_ += result.latency;
    return result;
}

Energy
System::totalEnergy() const
{
    return device_.totalEnergy() + controller_->controllerEnergy();
}

void
System::dumpStats(std::FILE *out) const
{
    auto emit = [&](const char *name, double value, const char *desc) {
        std::fprintf(out, "%-40s %20.6g  # %s\n", name, value, desc);
    };

    std::fprintf(out, "---------- Begin Simulation Statistics "
                      "----------\n");
    std::fprintf(out, "# scheme: %s\n", controller_->name().c_str());

    emit("system.sim_picoseconds", static_cast<double>(now_),
         "simulated time of the direct API");
    emit("device.num_reads", static_cast<double>(device_.numReads()),
         "NVM line reads serviced");
    emit("device.num_writes", static_cast<double>(device_.numWrites()),
         "NVM line writes serviced (incl. background)");
    emit("device.background_writes",
         static_cast<double>(device_.numBackgroundWrites()),
         "lazily scheduled metadata writes");
    emit("device.row_buffer_hits",
         static_cast<double>(device_.rowBufferHits()),
         "reads served from an open row");
    emit("device.total_energy_pj",
         static_cast<double>(device_.totalEnergy()), "array energy");
    emit("device.queue_delay_ps",
         static_cast<double>(device_.totalQueueDelay()),
         "cumulative bank waiting time");
    emit("device.wear_total_writes",
         static_cast<double>(device_.wear().totalWrites()),
         "line writes charged to cells");
    emit("device.wear_max_line",
         static_cast<double>(device_.wear().maxLineWrites()),
         "hottest line's writes");

    emit("controller.write_requests",
         static_cast<double>(controller_->writeRequests()),
         "write-backs received");
    emit("controller.read_requests",
         static_cast<double>(controller_->readRequests()),
         "fetches received");
    emit("controller.writes_eliminated",
         static_cast<double>(controller_->writesEliminated()),
         "duplicate writes never programmed");
    emit("controller.avg_write_latency_ns",
         controller_->avgWriteLatency() / kNanoSecond,
         "mean write-back latency");
    emit("controller.avg_read_latency_ns",
         controller_->avgReadLatency() / kNanoSecond,
         "mean fetch latency");
    emit("controller.energy_pj",
         static_cast<double>(controller_->controllerEnergy()),
         "AES + dedup logic + metadata cache energy");

    StatSet details;
    controller_->fillStats(details);
    for (const auto &[name, value] : details.all()) {
        const std::string qualified = "controller." + name;
        emit(qualified.c_str(), value, "scheme-specific");
    }
    std::fprintf(out, "---------- End Simulation Statistics "
                      "----------\n");
}

} // namespace dewrite
