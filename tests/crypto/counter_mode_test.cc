/**
 * @file
 * Counter-mode engine tests: round-trip, OTP uniqueness, diffusion.
 */

#include "crypto/counter_mode.hh"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/rng.hh"

namespace dewrite {
namespace {

AesKey
testKey()
{
    AesKey key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(i * 11 + 3);
    return key;
}

// The batch pad API must be byte-identical to per-pad generation at
// every count that exercises the internal 8-line chunking: below it,
// exactly at it, mid-chunk remainders, and multiple full chunks.
TEST(CounterModeTest, MakePadsMatchesSerialMakePad)
{
    const CounterModeEngine cme(testKey());
    Rng rng(97);
    for (const std::size_t count : { 1u, 7u, 8u, 9u, 16u, 37u }) {
        std::vector<PadRequest> requests(count);
        for (auto &request : requests)
            request = { rng.next64() % (1u << 20), rng.next64() % 1000 };
        std::vector<Line> pads(count);
        cme.makePads(requests.data(), count, pads.data());
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(pads[i], cme.makePad(requests[i].addr,
                                           requests[i].counter))
                << "count " << count << " pad " << i;
        }
    }
}

// PadCache returns the exact pad whether it hits (filled or cached
// from a previous get) or misses, and fill() speculation with stale
// counters can never corrupt a later exact-keyed lookup.
TEST(CounterModeTest, PadCacheAlwaysExact)
{
    const CounterModeEngine cme(testKey());
    PadCache cache;
    Rng rng(181);

    std::vector<PadRequest> fill(40);
    for (auto &request : fill)
        request = { rng.next64() % 512, rng.next64() % 8 };
    cache.fill(cme, fill.data(), fill.size());

    for (int trial = 0; trial < 2000; ++trial) {
        const LineAddr addr = rng.next64() % 512;
        const std::uint64_t counter = rng.next64() % 8;
        EXPECT_EQ(cache.get(cme, addr, counter),
                  cme.makePad(addr, counter));
    }

    // Deliberately wrong speculation: fill pads for counters that will
    // never be requested, then look up different keys.
    std::vector<PadRequest> stale(16);
    for (std::size_t i = 0; i < stale.size(); ++i)
        stale[i] = { i, 999 };
    cache.fill(cme, stale.data(), stale.size());
    for (std::size_t i = 0; i < stale.size(); ++i)
        EXPECT_EQ(cache.get(cme, i, 7), cme.makePad(i, 7));
}

TEST(CounterModeTest, EncryptDecryptRoundTrip)
{
    const CounterModeEngine cme(testKey());
    Rng rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        const Line pt = Line::random(rng);
        const LineAddr addr = rng.next64() % (1u << 20);
        const std::uint64_t counter = rng.next64() % (1u << 28);
        const Line ct = cme.encryptLine(pt, addr, counter);
        EXPECT_NE(ct, pt);
        EXPECT_EQ(cme.decryptLine(ct, addr, counter), pt);
    }
}

TEST(CounterModeTest, PadDependsOnAddress)
{
    const CounterModeEngine cme(testKey());
    EXPECT_NE(cme.makePad(1, 5), cme.makePad(2, 5));
}

TEST(CounterModeTest, PadDependsOnCounter)
{
    const CounterModeEngine cme(testKey());
    EXPECT_NE(cme.makePad(1, 5), cme.makePad(1, 6));
}

TEST(CounterModeTest, PadBlocksWithinLineAreDistinct)
{
    const CounterModeEngine cme(testKey());
    const Line pad = cme.makePad(7, 9);
    std::unordered_set<std::uint64_t> seen;
    for (std::size_t block = 0; block < kAesBlocksPerLine; ++block)
        seen.insert(pad.word64(block * 2));
    EXPECT_EQ(seen.size(), kAesBlocksPerLine);
}

TEST(CounterModeTest, OtpNeverReusedAcrossGrid)
{
    // The security invariant (Section II-B): distinct (addr, counter)
    // pairs must give distinct pads.
    const CounterModeEngine cme(testKey());
    std::unordered_set<std::uint64_t> digests;
    for (LineAddr addr = 0; addr < 64; ++addr) {
        for (std::uint64_t counter = 0; counter < 64; ++counter)
            digests.insert(cme.makePad(addr, counter).contentDigest());
    }
    EXPECT_EQ(digests.size(), 64u * 64u);
}

TEST(CounterModeTest, SamePlaintextDifferentAddressDiffers)
{
    // Why dedup cannot compare ciphertext: identical content encrypts
    // differently at different addresses.
    const CounterModeEngine cme(testKey());
    const Line pt = Line::filled(0x42);
    EXPECT_NE(cme.encryptLine(pt, 10, 1), cme.encryptLine(pt, 11, 1));
}

TEST(CounterModeTest, RewriteDiffusion)
{
    // A one-bit plaintext change plus a counter bump flips ~50% of the
    // stored bits — the motivating measurement of Figure 13.
    const CounterModeEngine cme(testKey());
    Rng rng(32);
    std::size_t flips = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        const Line pt = Line::random(rng);
        Line pt2 = pt;
        pt2.setByte(0, pt2.byte(0) ^ 1);
        const Line c1 = cme.encryptLine(pt, 5, trial * 2);
        const Line c2 = cme.encryptLine(pt2, 5, trial * 2 + 1);
        flips += c1.bitDistance(c2);
    }
    const double fraction =
        static_cast<double>(flips) / (trials * kLineBits);
    EXPECT_NEAR(fraction, 0.5, 0.02);
}

TEST(CounterModeTest, DecryptWithWrongCounterGarbles)
{
    const CounterModeEngine cme(testKey());
    Rng rng(33);
    const Line pt = Line::random(rng);
    const Line ct = cme.encryptLine(pt, 3, 17);
    EXPECT_NE(cme.decryptLine(ct, 3, 18), pt);
    EXPECT_NE(cme.decryptLine(ct, 4, 17), pt);
}

} // namespace
} // namespace dewrite
