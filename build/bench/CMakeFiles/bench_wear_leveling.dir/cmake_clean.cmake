file(REMOVE_RECURSE
  "CMakeFiles/bench_wear_leveling.dir/bench_wear_leveling.cc.o"
  "CMakeFiles/bench_wear_leveling.dir/bench_wear_leveling.cc.o.d"
  "bench_wear_leveling"
  "bench_wear_leveling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wear_leveling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
