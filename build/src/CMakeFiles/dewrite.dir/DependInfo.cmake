
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/counter_cache.cc" "src/CMakeFiles/dewrite.dir/cache/counter_cache.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/cache/counter_cache.cc.o.d"
  "/root/repo/src/cache/metadata_cache.cc" "src/CMakeFiles/dewrite.dir/cache/metadata_cache.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/cache/metadata_cache.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/CMakeFiles/dewrite.dir/cache/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/cache/set_assoc_cache.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/dewrite.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/hash_latency.cc" "src/CMakeFiles/dewrite.dir/common/hash_latency.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/hash_latency.cc.o.d"
  "/root/repo/src/common/line.cc" "src/CMakeFiles/dewrite.dir/common/line.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/line.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/dewrite.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dewrite.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/dewrite.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/dewrite.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/table_printer.cc.o.d"
  "/root/repo/src/common/timing.cc" "src/CMakeFiles/dewrite.dir/common/timing.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/common/timing.cc.o.d"
  "/root/repo/src/controller/bitlevel/bitflip.cc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/bitflip.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/bitflip.cc.o.d"
  "/root/repo/src/controller/bitlevel/dcw.cc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/dcw.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/dcw.cc.o.d"
  "/root/repo/src/controller/bitlevel/deuce.cc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/deuce.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/deuce.cc.o.d"
  "/root/repo/src/controller/bitlevel/fnw.cc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/fnw.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/fnw.cc.o.d"
  "/root/repo/src/controller/bitlevel/secret.cc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/secret.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/secret.cc.o.d"
  "/root/repo/src/controller/bitlevel/shredder.cc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/shredder.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/bitlevel/shredder.cc.o.d"
  "/root/repo/src/controller/dewrite_controller.cc" "src/CMakeFiles/dewrite.dir/controller/dewrite_controller.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/dewrite_controller.cc.o.d"
  "/root/repo/src/controller/plain_controller.cc" "src/CMakeFiles/dewrite.dir/controller/plain_controller.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/plain_controller.cc.o.d"
  "/root/repo/src/controller/secure_baseline.cc" "src/CMakeFiles/dewrite.dir/controller/secure_baseline.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/controller/secure_baseline.cc.o.d"
  "/root/repo/src/cpu/core_model.cc" "src/CMakeFiles/dewrite.dir/cpu/core_model.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/cpu/core_model.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "src/CMakeFiles/dewrite.dir/crypto/aes128.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/counter_mode.cc" "src/CMakeFiles/dewrite.dir/crypto/counter_mode.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/crypto/counter_mode.cc.o.d"
  "/root/repo/src/crypto/direct_encrypt.cc" "src/CMakeFiles/dewrite.dir/crypto/direct_encrypt.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/crypto/direct_encrypt.cc.o.d"
  "/root/repo/src/crypto/md5.cc" "src/CMakeFiles/dewrite.dir/crypto/md5.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/crypto/md5.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/CMakeFiles/dewrite.dir/crypto/sha1.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/crypto/sha1.cc.o.d"
  "/root/repo/src/dedup/address_mapping.cc" "src/CMakeFiles/dewrite.dir/dedup/address_mapping.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/address_mapping.cc.o.d"
  "/root/repo/src/dedup/dedup_engine.cc" "src/CMakeFiles/dewrite.dir/dedup/dedup_engine.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/dedup_engine.cc.o.d"
  "/root/repo/src/dedup/fingerprint.cc" "src/CMakeFiles/dewrite.dir/dedup/fingerprint.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/fingerprint.cc.o.d"
  "/root/repo/src/dedup/free_space.cc" "src/CMakeFiles/dewrite.dir/dedup/free_space.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/free_space.cc.o.d"
  "/root/repo/src/dedup/hash_store.cc" "src/CMakeFiles/dewrite.dir/dedup/hash_store.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/hash_store.cc.o.d"
  "/root/repo/src/dedup/inverted_hash.cc" "src/CMakeFiles/dewrite.dir/dedup/inverted_hash.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/inverted_hash.cc.o.d"
  "/root/repo/src/dedup/predictor.cc" "src/CMakeFiles/dewrite.dir/dedup/predictor.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/predictor.cc.o.d"
  "/root/repo/src/dedup/recovery.cc" "src/CMakeFiles/dewrite.dir/dedup/recovery.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/dedup/recovery.cc.o.d"
  "/root/repo/src/nvm/nvm_address.cc" "src/CMakeFiles/dewrite.dir/nvm/nvm_address.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/nvm/nvm_address.cc.o.d"
  "/root/repo/src/nvm/nvm_bank.cc" "src/CMakeFiles/dewrite.dir/nvm/nvm_bank.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/nvm/nvm_bank.cc.o.d"
  "/root/repo/src/nvm/nvm_device.cc" "src/CMakeFiles/dewrite.dir/nvm/nvm_device.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/nvm/nvm_device.cc.o.d"
  "/root/repo/src/nvm/start_gap.cc" "src/CMakeFiles/dewrite.dir/nvm/start_gap.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/nvm/start_gap.cc.o.d"
  "/root/repo/src/nvm/wear_tracker.cc" "src/CMakeFiles/dewrite.dir/nvm/wear_tracker.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/nvm/wear_tracker.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/dewrite.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/dewrite.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/sim/system.cc.o.d"
  "/root/repo/src/trace/app_catalog.cc" "src/CMakeFiles/dewrite.dir/trace/app_catalog.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/trace/app_catalog.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/dewrite.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/trace_gen.cc" "src/CMakeFiles/dewrite.dir/trace/trace_gen.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/trace/trace_gen.cc.o.d"
  "/root/repo/src/trace/workload_stats.cc" "src/CMakeFiles/dewrite.dir/trace/workload_stats.cc.o" "gcc" "src/CMakeFiles/dewrite.dir/trace/workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
