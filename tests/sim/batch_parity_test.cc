/**
 * @file
 * Batch-vs-serial parity: the batched write pipeline is invisible.
 *
 * The batch former and the controllers' writeBatch() paths promise
 * strict equivalence — batching overlaps *host-side* work only, so
 * every simulated counter, latency, energy number, and stat must be
 * bit-identical to the serial path. This suite replays the golden
 * experiment matrix at batch sizes spanning the knob's range
 * (including 7, which exercises flush-on-partial-batch, and 64, the
 * cap) at one and eight worker threads; every cell must still match
 * the seed fingerprints, which were produced with no batching at all.
 *
 * DEWRITE_BATCH itself is an envUint with the fail-fast contract:
 * malformed or out-of-range values die with the variable name.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cpu/core_model.hh"

#include "golden_matrix.hh"

namespace dewrite {
namespace {

/** Scoped DEWRITE_BATCH override (unset restores at destruction). */
class ScopedBatch
{
  public:
    explicit ScopedBatch(const char *value)
    {
        ::setenv("DEWRITE_BATCH", value, 1);
    }
    ~ScopedBatch() { ::unsetenv("DEWRITE_BATCH"); }
};

class BatchParity : public testing::TestWithParam<const char *>
{
};

TEST_P(BatchParity, MatrixSingleThread)
{
    ScopedBatch batch(GetParam());
    checkMatrix(1);
}

TEST_P(BatchParity, MatrixEightThreads)
{
    ScopedBatch batch(GetParam());
    checkMatrix(8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchParity,
                         testing::Values("1", "7", "8", "16", "64"),
                         [](const auto &info) {
                             return std::string("batch") + info.param;
                         });

TEST(BatchKnob, DefaultsTo16)
{
    ::unsetenv("DEWRITE_BATCH");
    EXPECT_EQ(writeBatchSize(), 16u);
}

TEST(BatchKnob, HonorsValidOverride)
{
    ScopedBatch batch("32");
    EXPECT_EQ(writeBatchSize(), 32u);
}

TEST(BatchKnob, RejectsMalformed)
{
    ScopedBatch batch("abc");
    EXPECT_EXIT(writeBatchSize(), testing::ExitedWithCode(1),
                "DEWRITE_BATCH");
}

TEST(BatchKnob, RejectsZero)
{
    ScopedBatch batch("0");
    EXPECT_EXIT(writeBatchSize(), testing::ExitedWithCode(1),
                "DEWRITE_BATCH");
}

TEST(BatchKnob, RejectsAboveCap)
{
    ScopedBatch batch("65");
    EXPECT_EXIT(writeBatchSize(), testing::ExitedWithCode(1),
                "DEWRITE_BATCH");
}

} // namespace
} // namespace dewrite
