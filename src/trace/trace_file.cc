/**
 * @file
 * Trace file implementation.
 */

#include "trace/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace dewrite {

namespace {

constexpr char kMagic[4] = { 'D', 'W', 'T', 'R' };
constexpr std::uint32_t kVersion = 1;

/** Header bytes: magic + version + event count. */
constexpr long kHeaderSize = 4 + 4 + 8;

void
writeLittle32(std::FILE *file, std::uint32_t value)
{
    std::uint8_t bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    std::fwrite(bytes, 1, 4, file);
}

void
writeLittle64(std::FILE *file, std::uint64_t value)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    std::fwrite(bytes, 1, 8, file);
}

bool
readLittle32(std::FILE *file, std::uint32_t &value)
{
    std::uint8_t bytes[4];
    if (std::fread(bytes, 1, 4, file) != 4)
        return false;
    value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    return true;
}

bool
readLittle64(std::FILE *file, std::uint64_t &value)
{
    std::uint8_t bytes[8];
    if (std::fread(bytes, 1, 8, file) != 8)
        return false;
    value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return true;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fwrite(kMagic, 1, 4, file_);
    writeLittle32(file_, kVersion);
    writeLittle64(file_, 0); // Event count patched at close.
}

TraceFileWriter::~TraceFileWriter()
{
    std::fseek(file_, 8, SEEK_SET);
    writeLittle64(file_, events_);
    std::fclose(file_);
}

void
TraceFileWriter::append(const MemEvent &event)
{
    const std::uint8_t kind = event.isWrite ? 1 : 0;
    std::fwrite(&kind, 1, 1, file_);
    writeLittle64(file_, event.addr);
    writeLittle32(file_, static_cast<std::uint32_t>(event.instGap));
    if (event.isWrite)
        std::fwrite(event.data.data(), 1, kLineSize, file_);
    ++events_;
}

std::uint64_t
TraceFileWriter::record(TraceSource &source, std::uint64_t max_events)
{
    MemEvent event;
    std::uint64_t recorded = 0;
    while (recorded < max_events && source.next(event)) {
        append(event);
        ++recorded;
    }
    return recorded;
}

TraceFileSource::TraceFileSource(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[4];
    std::uint32_t version = 0;
    if (std::fread(magic, 1, 4, file_) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        fatal("'%s' is not a DeWrite trace (bad magic)", path.c_str());
    }
    if (!readLittle32(file_, version) || version != kVersion)
        fatal("'%s': unsupported trace version %u", path.c_str(),
              version);
    if (!readLittle64(file_, eventCount_))
        fatal("'%s': truncated trace header", path.c_str());
    dataStart_ = kHeaderSize;
}

TraceFileSource::~TraceFileSource()
{
    std::fclose(file_);
}

bool
TraceFileSource::next(MemEvent &event)
{
    if (delivered_ >= eventCount_)
        return false;
    std::uint8_t kind;
    std::uint64_t addr;
    std::uint32_t gap;
    if (std::fread(&kind, 1, 1, file_) != 1 ||
        !readLittle64(file_, addr) || !readLittle32(file_, gap)) {
        warn("trace ends early after %llu of %llu events",
             static_cast<unsigned long long>(delivered_),
             static_cast<unsigned long long>(eventCount_));
        delivered_ = eventCount_;
        return false;
    }
    event.isWrite = kind != 0;
    event.addr = addr;
    event.instGap = gap;
    if (event.isWrite &&
        std::fread(event.data.data(), 1, kLineSize, file_) != kLineSize) {
        warn("trace payload truncated at event %llu",
             static_cast<unsigned long long>(delivered_));
        delivered_ = eventCount_;
        return false;
    }
    if (!event.isWrite)
        event.data = Line();
    ++delivered_;
    return true;
}

void
TraceFileSource::rewind()
{
    std::fseek(file_, dataStart_, SEEK_SET);
    delivered_ = 0;
}

} // namespace dewrite
