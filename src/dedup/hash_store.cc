/**
 * @file
 * HashStore implementation.
 */

#include "dedup/hash_store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dewrite {

namespace {
const std::vector<HashEntry> kEmptyChain;
}

const std::vector<HashEntry> &
HashStore::lookup(std::uint64_t hash) const
{
    auto it = chains_.find(hash);
    return it == chains_.end() ? kEmptyChain : it->second;
}

void
HashStore::insert(std::uint64_t hash, LineAddr real_addr)
{
    auto &chain = chains_[hash];
    for (const auto &entry : chain) {
        if (entry.realAddr == real_addr)
            panic("hash store: duplicate insert of slot %llu",
                  static_cast<unsigned long long>(real_addr));
    }
    chain.push_back({ real_addr, 1 });
    ++size_;
}

bool
HashStore::addReference(std::uint64_t hash, LineAddr real_addr)
{
    auto it = chains_.find(hash);
    if (it == chains_.end())
        panic("hash store: addReference on absent hash 0x%llx",
              static_cast<unsigned long long>(hash));
    for (auto &entry : it->second) {
        if (entry.realAddr == real_addr) {
            if (entry.reference == kMaxReference) {
                saturationRefusals_.increment();
                return false;
            }
            ++entry.reference;
            return true;
        }
    }
    panic("hash store: addReference on absent slot %llu",
          static_cast<unsigned long long>(real_addr));
}

bool
HashStore::dropReference(std::uint64_t hash, LineAddr real_addr)
{
    auto it = chains_.find(hash);
    if (it == chains_.end())
        panic("hash store: dropReference on absent hash 0x%llx",
              static_cast<unsigned long long>(hash));
    auto &chain = it->second;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].realAddr != real_addr)
            continue;
        // A saturated count no longer tracks the true reference number,
        // so it is pinned: the record outlives its references rather
        // than risking premature reclamation.
        if (chain[i].reference == kMaxReference)
            return false;
        if (--chain[i].reference > 0)
            return false;
        chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(i));
        --size_;
        if (chain.empty())
            chains_.erase(it);
        return true;
    }
    panic("hash store: dropReference on absent slot %llu",
          static_cast<unsigned long long>(real_addr));
}

std::uint8_t
HashStore::reference(std::uint64_t hash, LineAddr real_addr) const
{
    for (const auto &entry : lookup(hash)) {
        if (entry.realAddr == real_addr)
            return entry.reference;
    }
    return 0;
}

void
HashStore::restore(std::uint64_t hash, LineAddr real_addr,
                   std::uint64_t references)
{
    insert(hash, real_addr);
    auto &chain = chains_[hash];
    chain.back().reference = static_cast<std::uint8_t>(
        std::min<std::uint64_t>(references, kMaxReference));
}

std::size_t
HashStore::collidingEntries() const
{
    std::size_t colliding = 0;
    for (const auto &[hash, chain] : chains_) {
        if (chain.size() > 1)
            colliding += chain.size();
    }
    return colliding;
}

std::size_t
HashStore::maxChainLength() const
{
    std::size_t longest = 0;
    for (const auto &[hash, chain] : chains_)
        longest = std::max(longest, chain.size());
    return longest;
}

} // namespace dewrite
