/**
 * @file
 * TablePrinter formatting tests.
 */

#include "common/table_printer.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(TablePrinterTest, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
    EXPECT_EQ(TablePrinter::percent(0.542, 1), "54.2%");
    EXPECT_EQ(TablePrinter::percent(1.0, 0), "100%");
    EXPECT_EQ(TablePrinter::times(4.2, 1), "4.2x");
}

TEST(TablePrinterTest, PrintsAlignedColumns)
{
    TablePrinter table({ "app", "value" });
    table.addRow({ "cactusADM", "98.4%" });
    table.addRow({ "lbm", "93.0%" });

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    table.print(tmp);
    std::rewind(tmp);

    char buf[256];
    ASSERT_NE(std::fgets(buf, sizeof(buf), tmp), nullptr);
    EXPECT_EQ(std::string(buf).find("app"), 0u);
    // Header separator on line two.
    ASSERT_NE(std::fgets(buf, sizeof(buf), tmp), nullptr);
    EXPECT_EQ(buf[0], '-');
    // The value column begins at the same offset on every row.
    ASSERT_NE(std::fgets(buf, sizeof(buf), tmp), nullptr);
    const std::string row1(buf);
    ASSERT_NE(std::fgets(buf, sizeof(buf), tmp), nullptr);
    const std::string row2(buf);
    EXPECT_EQ(row1.find("98.4%"), row2.find("93.0%"));
    std::fclose(tmp);
}

TEST(TablePrinterDeathTest, RowArityMismatchPanics)
{
    TablePrinter table({ "a", "b" });
    EXPECT_DEATH(table.addRow({ "only-one" }), "table row");
}

} // namespace
} // namespace dewrite
