#!/usr/bin/env python3
"""dewrite-analyze: whole-tree shard-isolation / purity / layering prover.

Where dewrite_lint.py checks single lines and clang-tidy checks single
translation units, this tool builds a *whole-tree* call graph and
include graph over ``src/`` and proves reachability properties that no
lexical rule can express (DESIGN.md §5i):

  shard-isolation     From the per-shard drain-task roots (functions
                      annotated ``// dewrite-analyze:
                      root(shard-isolation)`` in src/service/), no call
                      path reaches mutable static-storage state — a
                      namespace-scope variable or function-local
                      ``static`` — unless the variable is annotated
                      with an ownership class:
                        // dewrite-owned: shard         per-shard or
                                                        per-thread
                        // dewrite-owned: global-const  immutable after
                                                        first use
                        // dewrite-owned: sync(<lock>)  guarded by the
                                                        named lock or
                                                        by atomics
                      This is the compile-time form of the guarantee
                      the service's parity fingerprints and TSan only
                      check observationally: shard drain tasks share no
                      mutable state.
  hot-path-purity     Functions annotated ``// dewrite-lint: hot`` and
                      *everything they transitively call* are free of
                      allocation-shaped constructs (operator new,
                      make_unique, push_back, resize, ...). The lexical
                      hot-path-alloc rule only sees the annotated body;
                      this rule closes it over the call graph.
  layering            The include graph respects the module DAG
                        common -> {crypto, obs, trace} -> nvm -> cache
                        -> dedup -> controller -> cpu -> sim
                        -> {service}
                      (obs and trace are leaf utility layers: they are
                      included by everything and include only common).
                      A module may include itself or any strictly lower
                      layer. Known-good back-edges carry
                      ``// dewrite-analyze: allow(layering) <reason>``
                      on the include line.
  determinism         From the result-producing roots (functions
                      annotated ``// dewrite-analyze:
                      root(determinism)``: System::run and the
                      ShardCore drain loop), no call path reaches
                      wall-clock reads, rand(), or address-ordered
                      iteration. Sites PR 4 already catalogued — a
                      ``.forEach(`` carrying ``// dewrite-lint:
                      allow(unsorted-iteration)`` — are trusted;
                      deliberate host-side profiling reads carry
                      ``// dewrite-analyze: allow(determinism)``.

Front-ends
  The call graph is built from clang's ``-Xclang -ast-dump=json`` over
  ``compile_commands.json`` when a clang binary is available
  (``--frontend clang``; dumps are cached under --cache-dir keyed on
  compiler, flags, the TU's content, and the full src/ header set —
  header-defined inline functions live inside TU dumps, so a header
  edit invalidates every dump). When clang is absent the tool
  falls back to a built-in lexical-structural front-end
  (``--frontend internal``) that parses the same sources directly, so
  the prover still gates on minimal containers; ``--frontend clang``
  without a binary skips gracefully (exit 0) and CI passes
  ``--require`` to turn that into a hard failure, mirroring
  run_clang_tidy.py. Both front-ends feed the same IR; annotation
  handling and rule logic are shared, so a suppression means the same
  thing everywhere.

  Call resolution is deliberately over-approximate (an unqualified call
  resolves to every function of that name when no better match exists):
  false reachability is suppressible with an annotation, missed
  reachability would be a hole in the proof.

Baseline
  Findings are gated against tools/analyze_baseline.json with the same
  ratchet as the clang-tidy wall: the committed baseline is empty and
  may only shrink; any new finding fails the run.

Exit codes: 0 clean/skipped, 1 findings or seeded-break failure,
2 usage/environment error, 3 clang required (--require) but not found.
"""

from __future__ import annotations

import argparse
import glob
import gzip
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "tools",
                                "analyze_baseline.json")
DEFAULT_CACHE = os.path.join(REPO_ROOT, "build", "analyze_cache")

RULE_NAMES = ("shard-isolation", "hot-path-purity", "layering",
              "determinism")
ROOT_RULES = ("shard-isolation", "determinism")
OWNED_CLASSES = ("shard", "global-const", "sync")

#: Module layering (rule 3). A file's module is its first path
#: component under src/. Lower number = lower layer; a module may
#: include itself or any strictly lower layer.
LAYERS = {
    "common": 0,
    "crypto": 1,
    "obs": 1,
    "trace": 1,
    "nvm": 2,
    "cache": 3,
    "dedup": 4,
    "controller": 5,
    "cpu": 6,
    "sim": 7,
    "service": 8,
}

#: C++ keywords and keyword-like tokens that look like calls.
NOT_A_CALL = frozenset({
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "alignas", "decltype", "noexcept", "throw", "new",
    "delete", "case", "default", "do", "else", "goto", "typeid",
    "static_assert", "assert", "defined", "va_start", "va_end",
    "va_copy", "operator",
})

#: Allocation-shaped constructs (rule 2) — the same catalogue as
#: dewrite-lint's lexical hot-path-alloc rule, applied transitively.
ALLOC_RE = re.compile(
    r"(?:\bnew\b|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\("
    r"|\bcalloc\s*\(|\brealloc\s*\(|\.push_back\s*\("
    r"|\.emplace_back\s*\(|\.resize\s*\(|\.reserve\s*\("
    # Container *value* declarations allocate; mentions of the type
    # as a reference/pointer binding do not.
    r"|std::(?:vector|deque)\s*<[^;]*>\s+[A-Za-z_]\w*"
    r"|std::string\s+[A-Za-z_]\w*)")

#: Nondeterminism sources (rule 4): wall-clock reads, rand, and
#: address-ordered (bucket-order) iteration.
WALLCLOCK_RE = re.compile(
    r"(?:\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
    r"|\btime\s*\(|\bclock_gettime\s*\(|\bgettimeofday\s*\("
    r"|\b__?rdtscp?\s*\()")
RAND_RE = re.compile(r"(?:\bs?rand\s*\(|\brandom_device\b)")
FOREACH_RE = re.compile(r"\.forEach\s*\(")
LINT_ALLOW_UNSORTED_RE = re.compile(
    r"//\s*dewrite-lint:\s*allow[^)]*unsorted-iteration")

ANALYZE_ANNOT_RE = re.compile(
    r"//\s*dewrite-analyze:\s*(?P<kind>allow-file|allow|root)"
    r"\s*\(\s*(?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)")
OWNED_RE = re.compile(
    r"//\s*dewrite-owned:\s*(?P<cls>shard|global-const"
    r"|sync\(\s*[A-Za-z_][\w.:]*\s*\))")
HOT_RE = re.compile(r"//\s*dewrite-lint:\s*hot\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"(?P<path>[^"]+)"')

#: Candidate clang binaries, newest first (mirrors run_clang_tidy).
CLANG_CANDIDATES = ("clang++",) + tuple(
    f"clang++-{v}" for v in range(21, 13, -1)) + ("clang",)


# --------------------------------------------------------------------
# Shared text utilities
# --------------------------------------------------------------------

def strip_code(lines: list[str]) -> list[str]:
    """Per-line 'code view': comments and string/char literal contents
    removed (annotations are parsed from the raw lines instead)."""
    out = []
    in_block = False
    for line in lines:
        code = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                code.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    i += 1
                continue
            code.append(ch)
            i += 1
        out.append("".join(code))
    return out


class Annotations:
    """The per-file annotation sets the rules consult."""

    def __init__(self) -> None:
        self.allow: dict[int, set[str]] = {}      # line -> rules
        self.allow_file: set[str] = set()
        self.roots: dict[int, set[str]] = {}      # line -> rules
        self.owned: dict[int, str] = {}           # line -> class
        self.hot_lines: list[int] = []
        self.bad: list[tuple[int, str]] = []      # unknown rule names

    def allowed(self, rule: str, lineno: int) -> bool:
        if rule in self.allow_file:
            return True
        return rule in self.allow.get(lineno, ())

    def owned_at(self, lineno: int) -> str | None:
        return self.owned.get(lineno)


def parse_annotations(lines: list[str]) -> Annotations:
    """Scan raw source lines for the analyzer annotation grammar.

    A trailing ``allow``/``owned`` annotation applies to its own line;
    one on a line of its own applies to the next code line (comment
    continuation lines in between are skipped, so the justification
    can span lines). ``root`` applies to the next function definition
    at or below it.
    """
    notes = Annotations()

    def is_comment_only(idx: int) -> bool:
        return not lines[idx - 1].split("//", 1)[0].strip()

    def next_code_line(lineno: int) -> int:
        target = lineno + 1
        while target <= len(lines) and is_comment_only(target):
            target += 1
        return target

    for lineno, line in enumerate(lines, 1):
        own_line = is_comment_only(lineno)
        match = ANALYZE_ANNOT_RE.search(line)
        if match:
            names = [name.strip()
                     for name in match.group("rules").split(",")]
            for name in names:
                if name not in RULE_NAMES:
                    notes.bad.append((lineno, name))
            kind = match.group("kind")
            if kind == "allow-file":
                notes.allow_file.update(names)
            elif kind == "allow":
                target = next_code_line(lineno) if own_line else lineno
                notes.allow.setdefault(target, set()).update(names)
            else:  # root
                for name in names:
                    if name in RULE_NAMES and name not in ROOT_RULES:
                        notes.bad.append((lineno, name))
                notes.roots.setdefault(lineno, set()).update(names)
        match = OWNED_RE.search(line)
        if match:
            cls = match.group("cls")
            notes.owned[next_code_line(lineno)
                        if own_line else lineno] = cls
        if HOT_RE.search(line):
            notes.hot_lines.append(lineno)
    return notes


# --------------------------------------------------------------------
# Intermediate representation
# --------------------------------------------------------------------

class Function:
    """One function definition with a body."""

    def __init__(self, qname: str, rel: str, line: int,
                 end_line: int) -> None:
        self.qname = qname          # e.g. "dewrite::ShardCore::flush"
        self.rel = rel
        self.line = line            # definition line (header)
        self.end_line = end_line    # closing brace line
        self.calls: list[str] = []  # callee names as written/resolved
        self.cls = ""               # owning class ("" for free fns)
        parts = qname.split("::")
        self.name = parts[-1]
        if len(parts) >= 2:
            self.cls = parts[-2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fn {self.qname} {self.rel}:{self.line}>"


class GlobalVar:
    """A mutable static-storage variable (namespace-scope or
    function-local static)."""

    def __init__(self, name: str, rel: str, line: int,
                 owner: str | None) -> None:
        self.name = name
        self.rel = rel
        self.line = line
        self.owner = owner  # qname of enclosing function, or None


class FileIR:
    def __init__(self, rel: str, text: str) -> None:
        self.rel = rel
        self.lines = text.splitlines()
        self.code = strip_code(self.lines)
        self.notes = parse_annotations(self.lines)
        self.functions: list[Function] = []
        self.globals: list[GlobalVar] = []
        self.includes: list[tuple[int, str]] = []  # (line, path)
        for lineno, line in enumerate(self.lines, 1):
            match = INCLUDE_RE.match(line)
            if match:
                self.includes.append((lineno, match.group("path")))


class Tree:
    """The whole-tree IR both front-ends produce."""

    def __init__(self) -> None:
        self.files: dict[str, FileIR] = {}

    def add(self, ir: FileIR) -> None:
        self.files[ir.rel] = ir

    def all_functions(self) -> list[Function]:
        return [fn for ir in self.files.values() for fn in ir.functions]

    def all_globals(self) -> list[GlobalVar]:
        return [gv for ir in self.files.values() for gv in ir.globals]


# --------------------------------------------------------------------
# Internal (lexical-structural) front-end
# --------------------------------------------------------------------

SCOPE_NAMESPACE_RE = re.compile(
    r"(?:^|[;{}\s])namespace(?:\s+([A-Za-z_]\w*))?\s*$")
SCOPE_CLASS_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)\b(?!.*;)[^()]*$")
SCOPE_ENUM_RE = re.compile(r"\benum\b[^;()]*$")
FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:~\s*[A-Za-z_]\w*|operator\s*"
    r"(?:\(\s*\)|\[\s*\]|[<>=!+\-*/%&|^~]+)|[A-Za-z_]\w*))\s*$")
CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)"
    r"\s*(?:<[^<>;(){}]*>)?\s*\(")
STATIC_LOCAL_RE = re.compile(
    r"^\s*(?:static|thread_local)\s+(?:thread_local\s+)?(?!const\b)"
    r"(?!constexpr\b)(?!inline\b)"
    r"(?P<type>[A-Za-z_][\w:<>,\s*&]*?)\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:\{|=|;)")
GLOBAL_VAR_RE = re.compile(
    r"^(?:static\s+|inline\s+|thread_local\s+)*"
    r"(?!using\b|typedef\b|extern\b|template\b|friend\b|return\b"
    r"|class\b|struct\b|enum\b|union\b|namespace\b|const\b"
    r"|constexpr\b|constinit\b|static_assert\b|public\b|private\b"
    r"|protected\b)"
    r"(?P<type>[A-Za-z_][\w:<>,\s*&]*?)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*"
    r"(?:\{.*\}|=[^;]*)?;\s*$")
#: A '{' that continues a declaration (brace/equals initializer)
#: rather than opening a scope.
INIT_BRACE_RE = re.compile(
    r"(?:=|[A-Za-z_]\w*\s*(?:\[[^\]]*\]\s*)*)\s*$")
SCOPE_KEYWORD_RE = re.compile(
    r"\b(?:struct|class|union|enum|namespace)\b")


def _function_header(pending: str) -> str | None:
    """If ``pending`` (code since the last statement boundary) ends in
    a function-definition header, return the function name as written
    (possibly ``Class::name``); else None."""
    text = " ".join(pending.split())
    if not text or text.endswith("=") or "=]" in text:
        return None
    # Trim a constructor initializer list / trailing specifiers: find
    # the parameter list — the last top-level "(...)" group whose
    # preceding token is a plausible function name and whose trailing
    # text is only specifiers or an initializer list.
    depth = 0
    groups = []  # (start, end) of top-level paren groups
    start = -1
    for i, ch in enumerate(text):
        if ch == "(":
            if depth == 0:
                start = i
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                groups.append((start, i))
    if depth != 0 or not groups:
        return None
    for start, end in groups:
        head = text[:start].rstrip()
        tail = text[end + 1:].strip()
        match = FUNC_NAME_RE.search(head)
        if not match:
            continue
        name = re.sub(r"\s+", "", match.group(1))
        last = name.split("::")[-1]
        if last in NOT_A_CALL and not last.startswith("operator"):
            continue
        # The tail must be specifiers, a trailing return, or a ctor
        # initializer list — anything else means this group was not
        # the parameter list (e.g. an initializer expression).
        if re.fullmatch(
                r"(?:\s|const|noexcept(?:\([^)]*\))?|override|final"
                r"|mutable|->\s*[\w:<>,&*\s]+|:\s*.*|\btry\b)*",
                tail):
            return name
    return None


def parse_file_internal(rel: str, text: str) -> FileIR:
    """Lexical-structural parse of one file into the IR."""
    ir = FileIR(rel, text)
    code = ir.code

    # Scope stack entries: (kind, name) with kind in
    # namespace/class/function/block/enum; functions also carry state.
    stack: list[dict] = []
    pending = ""
    current_fn: Function | None = None
    fn_depth = 0          # brace depth where current_fn's body started
    init_depth: int | None = None  # brace-initializer nesting start
    depth = 0

    def scope_prefix() -> str:
        parts = [entry["name"] for entry in stack
                 if entry["kind"] in ("namespace", "class")
                 and entry["name"]]
        return "::".join(parts)

    for lineno, line in enumerate(code, 1):
        fn_this_line = current_fn
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            if ch == "{":
                if current_fn is None and init_depth is not None:
                    pending += "{"
                elif current_fn is None:
                    header = pending
                    name = None
                    ns = SCOPE_NAMESPACE_RE.search(header)
                    if ns:
                        stack.append({"kind": "namespace",
                                      "name": ns.group(1) or "",
                                      "depth": depth})
                    elif SCOPE_ENUM_RE.search(header):
                        stack.append({"kind": "enum", "name": "",
                                      "depth": depth})
                    elif (cls := SCOPE_CLASS_RE.search(header)) \
                            and "(" not in header[cls.end(1):]:
                        stack.append({"kind": "class",
                                      "name": cls.group(1),
                                      "depth": depth})
                    elif (name := _function_header(header)) is not None:
                        prefix = scope_prefix()
                        qname = (prefix + "::" + name) if prefix \
                            else name
                        current_fn = Function(re.sub(r"\s+", "", qname),
                                              rel, lineno, lineno)
                        fn_this_line = current_fn
                        fn_depth = depth
                        stack.append({"kind": "function", "name": "",
                                      "depth": depth})
                    elif INIT_BRACE_RE.search(header.strip()) \
                            and header.strip() \
                            and not SCOPE_KEYWORD_RE.search(header):
                        init_depth = depth
                        pending += "{"
                        depth += 1
                        i += 1
                        continue
                    else:
                        stack.append({"kind": "block", "name": "",
                                      "depth": depth})
                    pending = ""
                depth += 1
            elif ch == "}":
                depth -= 1
                if init_depth is not None and current_fn is None:
                    pending += "}"
                    if depth == init_depth:
                        init_depth = None
                    i += 1
                    continue
                if stack and stack[-1]["depth"] == depth:
                    entry = stack.pop()
                    if entry["kind"] == "function" \
                            and current_fn is not None \
                            and depth == fn_depth:
                        current_fn.end_line = lineno
                        ir.functions.append(current_fn)
                        current_fn = None
                pending = ""
            elif ch == ";" and current_fn is None \
                    and init_depth is None:
                statement = pending.strip()
                # Namespace-scope mutable variable definitions (class
                # bodies and enums are not namespace scope).
                at_ns = not stack or stack[-1]["kind"] == "namespace"
                if at_ns and statement and "(" not in statement:
                    gv = GLOBAL_VAR_RE.match(statement + ";")
                    immutable = {"const", "constexpr",
                                 "constinit"}
                    if gv and not (immutable &
                                   set(gv.group("type").split())):
                        ir.globals.append(
                            GlobalVar(gv.group("name"), rel, lineno,
                                      None))
                pending = ""
            else:
                pending += ch
            i += 1
        if fn_this_line is not None:
            # Record calls and function-local statics on body lines
            # (fn_this_line also covers one-line bodies that opened
            # and closed within this line).
            for call in CALL_RE.finditer(line):
                name = re.sub(r"\s+", "", call.group(1))
                if name.split("::")[-1] in NOT_A_CALL:
                    continue
                # Member calls on some other object ('x.f(' / 'x->f(')
                # are marked so resolution does not narrow them to the
                # caller's own class.
                before = line[:call.start()].rstrip()
                if before.endswith(".") or before.endswith("->"):
                    name = "." + name
                fn_this_line.calls.append(name)
            sl = STATIC_LOCAL_RE.match(line)
            if sl and not ({"const", "constexpr", "constinit"} &
                           set(sl.group("type").split())):
                ir.globals.append(GlobalVar(sl.group("name"), rel,
                                            lineno,
                                            fn_this_line.qname))
        if current_fn is None:
            pending += " "  # line break separates tokens
    return ir


def load_tree_internal(files: dict[str, str]) -> Tree:
    tree = Tree()
    for rel in sorted(files):
        tree.add(parse_file_internal(rel, files[rel]))
    return tree


# --------------------------------------------------------------------
# Clang AST-dump front-end
# --------------------------------------------------------------------

def find_clang(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    env = os.environ.get("CLANG")
    if env:
        return env if shutil.which(env) else None
    for name in CLANG_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir: str) -> list[dict]:
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        raise SystemExit(
            f"error: {path} not found; configure with "
            "'cmake -B build -S .' first")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def ast_dump_command(entry: dict) -> list[str]:
    """The cc command rewritten to emit an AST JSON dump on stdout."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out: list[str] = []
    skip = False
    for arg in argv[1:]:
        if skip:
            skip = False
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if arg in ("-c", "-MD", "-MMD") or arg.startswith("-fmodules"):
            continue
        out.append(arg)
    return out + ["-fsyntax-only", "-w", "-Wno-everything",
                  "-Xclang", "-ast-dump=json"]


_CLANG_VERSION: dict[str, str] = {}


def clang_version(binary: str) -> str:
    """'clang --version' output, memoized per binary: it is part of
    every TU's cache key and must not re-run 150+ times per tree."""
    if binary not in _CLANG_VERSION:
        _CLANG_VERSION[binary] = subprocess.run(
            [binary, "--version"], capture_output=True, text=True,
            check=False).stdout
    return _CLANG_VERSION[binary]


_HEADER_HASH: str | None = None


def tree_header_hash() -> str:
    """sha256 over every src/ header's path and content, memoized.

    Header-defined inline functions (and their line numbers) are
    extracted from each including TU's dump, so a header edit must
    invalidate every cached dump that could textually include it —
    otherwise a restored CI cache serves stale dumps for unchanged
    .cc files and new header code becomes invisible (or stale line
    ranges misalign against the fresh header text). Hashing the whole
    header set into every key is coarser than an exact -MM dependency
    list but safe by construction and one pass per run.
    """
    global _HEADER_HASH
    if _HEADER_HASH is None:
        digest = hashlib.sha256()
        for absolute in sorted(glob.glob(
                os.path.join(REPO_ROOT, "src/**/*.hh"),
                recursive=True)):
            rel = os.path.relpath(absolute, REPO_ROOT) \
                .replace(os.sep, "/")
            digest.update(rel.encode() + b"\0")
            with open(absolute, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
        _HEADER_HASH = digest.hexdigest()
    return _HEADER_HASH


def cached_ast_dump(binary: str, entry: dict, cache_dir: str) -> dict:
    """Run (or reuse) one TU's AST dump; returns the parsed JSON."""
    args = ast_dump_command(entry)
    source = os.path.normpath(os.path.join(
        entry.get("directory", "."), entry["file"]))
    with open(source, "rb") as handle:
        content = handle.read()
    key = hashlib.sha256()
    key.update(clang_version(binary).encode())
    key.update("\0".join(args).encode())
    key.update(tree_header_hash().encode())
    key.update(content)
    os.makedirs(cache_dir, exist_ok=True)
    cache_path = os.path.join(cache_dir, key.hexdigest() + ".json.gz")
    if os.path.isfile(cache_path):
        with gzip.open(cache_path, "rt", encoding="utf-8") as handle:
            return json.load(handle)
    proc = subprocess.run([binary, *args],
                          cwd=entry.get("directory", "."),
                          capture_output=True, text=True, check=False)
    if proc.returncode != 0 or not proc.stdout.lstrip().startswith("{"):
        raise SystemExit(f"error: AST dump failed for {source}:\n"
                         f"{proc.stderr.strip()[:2000]}")
    with gzip.open(cache_path, "wt", encoding="utf-8") as handle:
        handle.write(proc.stdout)
    return json.loads(proc.stdout)


class _AstWalker:
    """Extracts function definitions and call edges from one TU dump.

    clang's JSON location objects omit ``file`` (and ``line``) when
    unchanged from the previous location in pre-order, so the walker
    tracks both statefully.
    """

    FN_KINDS = ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                "CXXDestructorDecl", "CXXConversionDecl")

    def __init__(self, repo_root: str) -> None:
        self.repo_root = repo_root
        self.cur_file = ""
        self.cur_line = 0
        self.decl_names: dict[int, str] = {}   # id -> qualified name
        self.functions: list[tuple[Function, list[dict]]] = []
        self.globals: list[GlobalVar] = []

    def _loc(self, node: dict) -> tuple[str, int]:
        loc = node.get("loc") or {}
        for candidate in (loc.get("spellingLoc"), loc):
            if not candidate:
                continue
            if "file" in candidate:
                self.cur_file = candidate["file"]
            if "line" in candidate:
                self.cur_line = candidate["line"]
        return self.cur_file, self.cur_line

    def _rel(self, path: str) -> str | None:
        absolute = os.path.normpath(
            path if os.path.isabs(path)
            else os.path.join(self.repo_root, path))
        rel = os.path.relpath(absolute, self.repo_root)
        if rel.startswith(".."):
            return None
        return rel.replace(os.sep, "/")

    def walk(self, node: dict, scope: list[str]) -> None:
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        file, line = self._loc(node)
        node_id = node.get("id")
        name = node.get("name", "")
        if node_id is not None and name and kind in (
                "NamespaceDecl", "CXXRecordDecl", "ClassTemplateDecl",
                *self.FN_KINDS):
            prefix = "::".join(s for s in scope if s)
            self.decl_names[int(node_id, 16)] = \
                (prefix + "::" + name) if prefix else name

        inner = node.get("inner", [])
        if kind in self.FN_KINDS and any(
                child.get("kind") == "CompoundStmt"
                for child in inner if isinstance(child, dict)):
            rel = self._rel(file) if file else None
            if rel is not None and rel.startswith("src/"):
                parent = node.get("parentDeclContextId")
                if parent is not None:
                    prefix = self.decl_names.get(int(parent, 16), "")
                else:
                    prefix = "::".join(s for s in scope if s)
                qname = (prefix + "::" + name) if prefix else name
                end = node.get("range", {}).get("end", {})
                fn = Function(qname, rel, line,
                              end.get("line", line))
                self.functions.append((fn, inner))
                for child in inner:
                    self._collect_calls(child, fn)
                # Do not descend normally — calls were collected.
                for child in inner:
                    if isinstance(child, dict) \
                            and child.get("kind") != "CompoundStmt":
                        self.walk(child, scope)
                return
        if kind == "VarDecl" and name:
            rel = self._rel(file) if file else None
            qual = (node.get("type", {}).get("qualType", ""))
            if rel is not None and rel.startswith("src/") \
                    and "const" not in qual.split() \
                    and not scope_is_local(scope):
                # Namespace-scope variable (class statics resolve via
                # their out-of-line definition which lands here too).
                self.globals.append(GlobalVar(name, rel, line, None))

        next_scope = scope
        if kind in ("NamespaceDecl", "CXXRecordDecl") and name:
            next_scope = scope + [name]
        for child in inner:
            self.walk(child, next_scope)

    def _collect_calls(self, node: dict, fn: Function) -> None:
        if not isinstance(node, dict):
            return
        self._loc(node)
        ref = node.get("referencedDecl")
        if isinstance(ref, dict) and ref.get("kind") in (
                *self.FN_KINDS,):
            ref_id = ref.get("id")
            qname = None
            if ref_id is not None:
                qname = self.decl_names.get(int(ref_id, 16))
            fn.calls.append(qname or ref.get("name", ""))
            # Over-approximate virtual dispatch like the internal
            # front-end: also record the bare name.
            if qname and "::" in qname:
                fn.calls.append(qname.split("::")[-1])
        # Member calls (obj.f(), this->f(), implicit this) carry no
        # referencedDecl: clang encodes them as CXXMemberCallExpr ->
        # MemberExpr whose 'referencedMemberDecl' is the bare hex id
        # of the method's in-class declaration. The class definition
        # precedes every use in the TU, so the id resolves through
        # decl_names; an unresolved id (dependent template member,
        # field access) falls back to the spelled name, which the
        # over-approximate call graph treats like any unqualified
        # call. Without this branch the closures from method-heavy
        # roots (ShardCore::flush et al.) are near-empty and every
        # reachability rule passes vacuously.
        mref = node.get("referencedMemberDecl")
        if node.get("kind") == "MemberExpr" and mref:
            qname = self.decl_names.get(int(mref, 16))
            name = qname or node.get("name", "")
            if name:
                fn.calls.append(name)
                if "::" in name:
                    fn.calls.append(name.split("::")[-1])
        if node.get("kind") == "VarDecl" \
                and node.get("storageClass") == "static" \
                and "const" not in node.get("type", {}).get(
                    "qualType", "").split():
            file, line = self.cur_file, self.cur_line
            rel = self._rel(file) if file else None
            if rel is not None and rel.startswith("src/"):
                self.globals.append(GlobalVar(node.get("name", "?"),
                                              rel, line, fn.qname))
        for child in node.get("inner", []):
            self._collect_calls(child, fn)


def scope_is_local(scope: list[str]) -> bool:
    return False  # namespace/class scopes only reach VarDecl here


def load_tree_clang(binary: str, build_dir: str,
                    cache_dir: str) -> Tree:
    """Whole-tree IR from clang AST dumps (src/ TUs + textual headers).

    Header-defined inline functions come out of each including TU's
    dump; duplicates collapse by (qname, file, line).
    """
    tree = Tree()
    texts = collect_sources()
    for rel, text in texts.items():
        tree.add(FileIR(rel, text))  # includes + annotations
    seen: set[tuple[str, str, int]] = set()
    db = load_compile_db(build_dir)
    for entry in db:
        source = os.path.normpath(os.path.join(
            entry.get("directory", "."), entry["file"]))
        rel = os.path.relpath(source, REPO_ROOT).replace(os.sep, "/")
        if rel.startswith("..") or not rel.startswith("src/"):
            continue
        dump = cached_ast_dump(binary, entry, cache_dir)
        walker = _AstWalker(REPO_ROOT)
        walker.walk(dump, [])
        del dump
        for fn, _inner in walker.functions:
            key = (fn.qname, fn.rel, fn.line)
            if key in seen or fn.rel not in tree.files:
                continue
            seen.add(key)
            tree.files[fn.rel].functions.append(fn)
        for gv in walker.globals:
            key = ("var:" + gv.name, gv.rel, gv.line)
            if key in seen or gv.rel not in tree.files:
                continue
            seen.add(key)
            tree.files[gv.rel].globals.append(gv)
    return tree


# --------------------------------------------------------------------
# Call graph
# --------------------------------------------------------------------

class CallGraph:
    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self.by_name: dict[str, list[Function]] = {}
        self.by_class: dict[tuple[str, str], list[Function]] = {}
        self.by_file: dict[tuple[str, str], list[Function]] = {}
        for fn in tree.all_functions():
            self.by_name.setdefault(fn.name, []).append(fn)
            if fn.cls:
                self.by_class.setdefault((fn.cls, fn.name),
                                         []).append(fn)
            self.by_file.setdefault((fn.rel, fn.name), []).append(fn)

    def resolve(self, caller: Function, callee: str) -> list[Function]:
        """Over-approximate resolution of one call written ``callee``.

        Qualified calls match by component suffix. Unqualified calls
        prefer the caller's class, then the caller's file, then every
        function of that name tree-wide (virtual dispatch and
        cross-file helpers stay covered). Member calls on another
        object (recorded with a leading '.') skip the same-class and
        same-file narrowing: the receiver's type is unknown, so every
        method of that name stays a candidate.
        """
        member_call = callee.startswith(".")
        if member_call:
            callee = callee[1:]
        parts = callee.split("::")
        name = parts[-1]
        candidates = self.by_name.get(name, [])
        if not candidates:
            return []
        if len(parts) > 1:
            suffix = parts[-2:]
            return [fn for fn in candidates
                    if fn.qname.split("::")[-2:] == suffix
                    or fn.qname.split("::")[-len(parts):] == parts]
        if member_call:
            return candidates
        if caller.cls:
            same_class = self.by_class.get((caller.cls, name))
            if same_class:
                return same_class
        same_file = self.by_file.get((caller.rel, name))
        if same_file:
            return same_file
        return candidates

    def reachable(self, roots: list[Function]
                  ) -> dict[Function, tuple[Function, ...]]:
        """BFS closure; value is the witness path from a root."""
        paths: dict[Function, tuple[Function, ...]] = {}
        queue: list[Function] = []
        for root in roots:
            if root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            fn = queue.pop(0)
            for callee in fn.calls:
                for target in self.resolve(fn, callee):
                    if target not in paths:
                        paths[target] = paths[fn] + (target,)
                        queue.append(target)
        return paths


def witness(path: tuple[Function, ...]) -> str:
    return " -> ".join(fn.qname for fn in path)


# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------

Finding = tuple[str, int, str, str]  # (file, line, rule, message)


def collect_roots(tree: Tree, rule: str) -> list[Function]:
    roots = []
    for ir in tree.files.values():
        for lineno, rules in ir.notes.roots.items():
            if rule not in rules:
                continue
            below = [fn for fn in ir.functions if fn.line >= lineno]
            if below:
                roots.append(min(below, key=lambda fn: fn.line))
    return roots


def hot_roots(tree: Tree) -> list[Function]:
    roots = []
    for ir in tree.files.values():
        for lineno in ir.notes.hot_lines:
            below = [fn for fn in ir.functions if fn.line >= lineno]
            if below:
                roots.append(min(below, key=lambda fn: fn.line))
    return roots


def rule_shard_isolation(tree: Tree, graph: CallGraph) -> list[Finding]:
    """No drain-task call path reaches unannotated mutable
    static-storage state."""
    findings: list[Finding] = []
    roots = collect_roots(tree, "shard-isolation")
    closure = graph.reachable(roots)
    reachable_names = {fn.qname for fn in closure}

    mutable_globals: list[GlobalVar] = []
    for gv in tree.all_globals():
        notes = tree.files[gv.rel].notes
        if notes.owned_at(gv.line):
            continue  # annotated ownership class
        if notes.allowed("shard-isolation", gv.line):
            continue
        mutable_globals.append(gv)

    by_name: dict[str, list[GlobalVar]] = {}
    for gv in mutable_globals:
        by_name.setdefault(gv.name, []).append(gv)

    for fn, path in closure.items():
        notes = tree.files[fn.rel].notes
        # Function-local statics declared by a reachable function.
        for gv in mutable_globals:
            if gv.owner == fn.qname:
                findings.append((
                    gv.rel, gv.line, "shard-isolation",
                    f"mutable static '{gv.name}' in {fn.qname} is "
                    f"reachable from a shard drain task "
                    f"({witness(path)}); annotate '// dewrite-owned: "
                    f"shard|global-const|sync(<lock>)' or remove the "
                    f"shared state"))
        # References to namespace-scope mutable globals.
        body = tree.files[fn.rel].code[fn.line - 1:fn.end_line]
        for lineno_off, code_line in enumerate(body):
            lineno = fn.line + lineno_off
            for token in re.finditer(r"[A-Za-z_]\w*", code_line):
                for gv in by_name.get(token.group(0), ()):
                    if gv.owner is not None:
                        # Function-local statics are reported at the
                        # declaring function above, not per mention.
                        continue
                    if gv.line == lineno and gv.rel == fn.rel:
                        continue  # the declaration itself
                    if notes.allowed("shard-isolation", lineno):
                        continue
                    findings.append((
                        fn.rel, lineno, "shard-isolation",
                        f"{fn.qname} touches mutable global "
                        f"'{gv.name}' ({gv.rel}:{gv.line}) on a shard "
                        f"drain path ({witness(path)})"))
    # Globals defined in headers whose inline accessors are reachable
    # are caught through the accessor's own static-local (owner set).
    del reachable_names
    return dedupe(findings)


def rule_hot_purity(tree: Tree, graph: CallGraph) -> list[Finding]:
    """Hot functions and everything they reach never allocate."""
    findings: list[Finding] = []
    closure = graph.reachable(hot_roots(tree))
    for fn, path in closure.items():
        ir = tree.files[fn.rel]
        for lineno in range(fn.line, fn.end_line + 1):
            code_line = ir.code[lineno - 1]
            if not ALLOC_RE.search(code_line):
                continue
            if ir.notes.allowed("hot-path-purity", lineno):
                continue
            findings.append((
                fn.rel, lineno, "hot-path-purity",
                f"allocation-shaped construct in {fn.qname}, "
                f"reachable from hot kernel ({witness(path)})"))
    return dedupe(findings)


def rule_layering(tree: Tree) -> list[Finding]:
    """The include graph respects the module DAG."""
    findings: list[Finding] = []
    for rel, ir in sorted(tree.files.items()):
        parts = rel.split("/")
        if parts[0] != "src" or len(parts) < 3:
            continue
        from_mod = parts[1]
        from_layer = LAYERS.get(from_mod)
        if from_layer is None:
            findings.append((rel, 1, "layering",
                             f"module '{from_mod}' is not in the "
                             "layering table (tools/dewrite_analyze.py "
                             "LAYERS); add it with a layer"))
            continue
        for lineno, path in ir.includes:
            to_mod = path.split("/", 1)[0]
            to_layer = LAYERS.get(to_mod)
            if to_layer is None:
                continue  # non-module include (e.g. generated)
            if to_mod == from_mod or to_layer < from_layer:
                continue
            if ir.notes.allowed("layering", lineno):
                continue
            findings.append((
                rel, lineno, "layering",
                f"include of '{path}' breaks the module DAG: "
                f"{from_mod} (layer {from_layer}) may not depend on "
                f"{to_mod} (layer {to_layer}); invert the dependency "
                f"or annotate '// dewrite-analyze: allow(layering) "
                f"<reason>'"))
    return dedupe(findings)


def rule_determinism(tree: Tree, graph: CallGraph) -> list[Finding]:
    """Result-producing code never reaches wall-clock, rand, or
    unannotated address-ordered iteration."""
    findings: list[Finding] = []
    closure = graph.reachable(collect_roots(tree, "determinism"))
    for fn, path in closure.items():
        ir = tree.files[fn.rel]
        for lineno in range(fn.line, fn.end_line + 1):
            code_line = ir.code[lineno - 1]
            raw_line = ir.lines[lineno - 1]
            prev_raw = ir.lines[lineno - 2] if lineno >= 2 else ""
            kind = None
            if WALLCLOCK_RE.search(code_line):
                kind = "wall-clock read"
            elif RAND_RE.search(code_line):
                kind = "rand()-family call"
            elif FOREACH_RE.search(code_line):
                if LINT_ALLOW_UNSORTED_RE.search(raw_line) or \
                        LINT_ALLOW_UNSORTED_RE.search(prev_raw):
                    continue  # PR 4's catalogued sites
                kind = "address-ordered .forEach( iteration"
            if kind is None:
                continue
            if ir.notes.allowed("determinism", lineno):
                continue
            findings.append((
                fn.rel, lineno, "determinism",
                f"{kind} in {fn.qname} is reachable from "
                f"result-producing code ({witness(path)}); results "
                f"must be a pure function of the seed"))
    return dedupe(findings)


def dedupe(findings: list[Finding]) -> list[Finding]:
    seen = set()
    out = []
    for row in sorted(findings, key=lambda r: (r[0], r[1], r[2])):
        key = row[:3]
        if key in seen:
            continue
        seen.add(key)
        out.append(row)
    return out


def analyze(tree: Tree, rules: tuple[str, ...] = RULE_NAMES,
            require_roots: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    for ir in tree.files.values():
        for lineno, name in ir.notes.bad:
            findings.append((ir.rel, lineno, "unknown-rule",
                             f"annotation names unknown or non-root "
                             f"rule '{name}'"))
    graph = CallGraph(tree)
    if require_roots:
        for rule in ROOT_RULES:
            if rule in rules and not collect_roots(tree, rule):
                findings.append((
                    "src", 0, rule,
                    f"no '// dewrite-analyze: root({rule})' "
                    "annotations found in the tree; the rule would "
                    "vacuously pass (annotations deleted?)"))
    if "shard-isolation" in rules:
        findings.extend(rule_shard_isolation(tree, graph))
    if "hot-path-purity" in rules:
        findings.extend(rule_hot_purity(tree, graph))
    if "layering" in rules:
        findings.extend(rule_layering(tree))
    if "determinism" in rules:
        findings.extend(rule_determinism(tree, graph))
    return dedupe(findings)


# --------------------------------------------------------------------
# Baseline ratchet (same shape as the clang-tidy wall)
# --------------------------------------------------------------------

def count_findings(rows: list[Finding]) -> dict[str, dict[str, int]]:
    counts: dict[str, dict[str, int]] = {}
    for rel, _line, rule, _message in rows:
        counts.setdefault(rel, {})[rule] = \
            counts.get(rel, {}).get(rule, 0) + 1
    return counts


def load_baseline(path: str) -> dict[str, dict[str, int]]:
    if not os.path.isfile(path):
        return {}
    with open(path, encoding="utf-8") as handle:
        return json.load(handle).get("findings", {})


def write_baseline(path: str,
                   counts: dict[str, dict[str, int]]) -> None:
    payload = {
        "comment": "dewrite-analyze ratchet baseline; regenerate with "
                   "tools/dewrite_analyze.py --update-baseline. An "
                   "empty 'findings' object means the tree proves "
                   "clean; entries may only shrink.",
        "findings": {rel: dict(sorted(rules.items()))
                     for rel, rules in sorted(counts.items())},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def diff_against_baseline(
        counts: dict[str, dict[str, int]],
        baseline: dict[str, dict[str, int]]
) -> list[tuple[str, str, int, int]]:
    regressions = []
    for rel in sorted(counts):
        for rule in sorted(counts[rel]):
            found = counts[rel][rule]
            allowed = baseline.get(rel, {}).get(rule, 0)
            if found > allowed:
                regressions.append((rel, rule, found, allowed))
    return regressions


# --------------------------------------------------------------------
# Tree collection
# --------------------------------------------------------------------

def collect_sources(only: list[str] | None = None) -> dict[str, str]:
    """rel -> text for every src/ .cc/.hh file."""
    files: dict[str, str] = {}
    for pattern in ("src/**/*.cc", "src/**/*.hh"):
        for absolute in glob.glob(os.path.join(REPO_ROOT, pattern),
                                  recursive=True):
            rel = os.path.relpath(absolute, REPO_ROOT) \
                .replace(os.sep, "/")
            if only and not any(
                    rel == o or rel.startswith(o.rstrip("/") + "/")
                    for o in only):
                continue
            with open(absolute, encoding="utf-8") as handle:
                files[rel] = handle.read()
    return files


# --------------------------------------------------------------------
# Seeded-break check over the real tree
# --------------------------------------------------------------------

SEEDED_BREAKS = [
    ("shard-isolation", "src/service/shard_core.cc",
     "    now_ += timing_.cycles(event.instGap + 1);",
     "    static std::uint64_t seededCrossShard = 0;\n"
     "    now_ += ++seededCrossShard * 0;\n"
     "    now_ += timing_.cycles(event.instGap + 1);"),
    ("hot-path-purity", "src/common/line.hh",
     "            if (a != b)",
     "            seededScratch.push_back(a);\n"
     "            if (a != b)"),
    ("layering", "src/common/line.hh",
     "#include <array>",
     "#include <array>\n#include \"service/dedup_service.hh\""),
    ("determinism", "src/service/shard_core.cc",
     "    now_ += timing_.cycles(event.instGap + 1);",
     "    now_ += static_cast<Time>(time(nullptr)) * 0;\n"
     "    now_ += timing_.cycles(event.instGap + 1);"),
]


#: Sentinel callees for the clang front-end teeth check. Each is a
#: function that enters its closure *only* through member-call edges
#: (``former_.flush``, ``fingerprinter_.fingerprint``): if MemberExpr
#: resolution regresses, these vanish from the closure and the check
#: fails even though the (near-empty) closure itself reports clean.
CLANG_SENTINELS = (
    ("shard-isolation", "BatchFormer::flush"),
    ("determinism", "BatchFormer::flush"),
    ("hot-path-purity", "Fingerprinter::fingerprint"),
)


def check_clang_closures(binary: str, build_dir: str,
                         cache_dir: str) -> int:
    """Prove the clang front-end's call graph is non-vacuous.

    The seeded-break pass feeds patched sources through the internal
    parser; the clang pipeline reads real files and a compile
    database, so it cannot be seeded in-memory. Instead, assert that
    each rule's closure over the *live* tree reaches a known sentinel
    callee via at least one call edge — the property the
    referencedMemberDecl handling exists to provide. A silent
    regression there would shrink every closure to its roots and pass
    the main gate while proving nothing; it fails here instead.
    """
    try:
        tree = load_tree_clang(binary, build_dir, cache_dir)
    except SystemExit as err:
        print(err, file=sys.stderr)
        return 2
    graph = CallGraph(tree)
    failures = 0
    for rule, sentinel in CLANG_SENTINELS:
        roots = hot_roots(tree) if rule == "hot-path-purity" \
            else collect_roots(tree, rule)
        if not roots:
            print(f"error: clang front-end found no roots for {rule}",
                  file=sys.stderr)
            failures += 1
            continue
        closure = graph.reachable(roots)
        hit = next((fn for fn in closure
                    if fn.qname.endswith(sentinel)
                    and len(closure[fn]) >= 2), None)
        if hit is None:
            print(f"error: clang {rule} closure ({len(closure)} "
                  f"function(s) from {len(roots)} root(s)) never "
                  f"reaches sentinel '{sentinel}' through a call "
                  f"edge; member-call resolution has regressed",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"clang closure check: [{rule}] {len(closure)} "
                  f"functions; sentinel via "
                  f"{witness(closure[hit])}")
    if failures:
        return 1
    print("dewrite_analyze clang closure check: OK "
          f"({len(CLANG_SENTINELS)} sentinels reached)")
    return 0


def check_seeded_break(frontend: str = "internal",
                       binary: str | None = None,
                       build_dir: str | None = None,
                       cache_dir: str = DEFAULT_CACHE) -> int:
    """Prove each rule still has teeth on the *real* tree: a clean
    baseline run, then one deliberate violation per rule, each of
    which must fail naming exactly that rule. With the clang
    front-end selected, additionally prove the clang call graph is
    non-vacuous (see check_clang_closures)."""
    sources = collect_sources()
    clean = analyze(load_tree_internal(sources), require_roots=True)
    if clean:
        for row in clean:
            print(f"{row[0]}:{row[1]}: [{row[2]}] {row[3]}",
                  file=sys.stderr)
        print("error: tree is not clean before seeding; fix the "
              "findings above first", file=sys.stderr)
        return 1
    for rule, rel, anchor, replacement in SEEDED_BREAKS:
        if rel not in sources or anchor not in sources[rel]:
            print(f"error: seeded-break anchor for {rule} not found "
                  f"in {rel}; update SEEDED_BREAKS in "
                  "tools/dewrite_analyze.py", file=sys.stderr)
            return 1
        patched = dict(sources)
        patched[rel] = sources[rel].replace(anchor, replacement, 1)
        rows = analyze(load_tree_internal(patched))
        fired = {row[2] for row in rows}
        if rule not in fired:
            print(f"error: deliberately breaking {rule} in {rel} was "
                  f"NOT caught (fired: {sorted(fired) or 'nothing'})",
                  file=sys.stderr)
            return 1
        print(f"seeded break caught: [{rule}] via {rel}")
    print("dewrite_analyze seeded-break check: OK "
          f"({len(SEEDED_BREAKS)} rules verified against the live "
          "tree)")
    if frontend == "clang" and binary is not None:
        return check_clang_closures(
            binary, build_dir or os.path.join(REPO_ROOT, "build"),
            cache_dir)
    return 0


# --------------------------------------------------------------------
# Self-test (synthetic mini-tree; no clang, no repo access)
# --------------------------------------------------------------------

MINI_COMMON = """\
namespace dewrite {
std::mutex reportMutex; // dewrite-owned: sync(reportMutex)
int sharedCounter;
// dewrite-lint: hot
inline int hotKernel(int x) { return helper(x) + 1; }
inline int helper(int x) {
    scratch.push_back(x);
    return x;
}
inline void coldHelper(std::vector<int> &v) { v.push_back(1); }
} // namespace dewrite
"""

MINI_SERVICE = """\
#include "common/util.hh"
#include "sim/system.hh"
namespace dewrite {
class ShardCore {
  public:
    // dewrite-analyze: root(shard-isolation)
    // dewrite-analyze: root(determinism)
    void drain() {
        touchGlobal();
        auto t = time(nullptr);
        table.forEach([](int k) {});
    }
    void touchGlobal() {
        static int drained = 0;
        ++drained;
        sharedCounter += 1;
    }
};
} // namespace dewrite
"""

MINI_SIM = """\
#include "service/shard_core.hh"
namespace dewrite {
struct System {
    int run() { return 0; }
};
} // namespace dewrite
"""


def self_test() -> int:
    # --- internal parser: qualified names, methods, spans, calls ---
    ir = parse_file_internal("src/service/x.cc", "\n".join([
        "namespace dewrite {",
        "void",
        "ShardCore::flush(BatchFormer::FlushReason reason)",
        "{",
        "    former_.flush(controller_, responses_.data(), reason);",
        "}",
        "ShardCore::ShardCore(const TimingConfig &timing)",
        "    : timing_(timing), controller_(controller)",
        "{",
        "    former_.reset(batch_capacity);",
        "}",
        "struct Inner {",
        "    int size() const { return n_; }",
        "};",
        "} // namespace dewrite",
    ]))
    names = sorted(fn.qname for fn in ir.functions)
    assert names == ["dewrite::Inner::size", "dewrite::ShardCore::" +
                     "ShardCore", "dewrite::ShardCore::flush"], names
    flush = next(fn for fn in ir.functions if fn.name == "flush")
    assert flush.line == 4 and flush.end_line == 6, \
        (flush.line, flush.end_line)
    assert ".flush" in flush.calls and ".data" in flush.calls

    # Control-flow parens and initializer braces are not functions.
    ir = parse_file_internal("src/common/y.cc", "\n".join([
        "int values[] = { 1, 2, 3 };",
        "void fn() {",
        "    if (values[0]) {",
        "        for (int i = 0; i < 3; ++i) {}",
        "    }",
        "}",
    ]))
    assert [fn.qname for fn in ir.functions] == ["fn"], ir.functions
    # `values` is a namespace-scope mutable global.
    assert [(gv.name, gv.owner) for gv in ir.globals] == \
        [("values", None)], [(g.name, g.owner) for g in ir.globals]

    # Static locals are attributed to their function; const ones are
    # not mutable state.
    ir = parse_file_internal("src/common/z.hh", "\n".join([
        "inline int counter() {",
        "    static int hits = 0;",
        "    static const int limit = 9;",
        "    return ++hits < limit;",
        "}",
    ]))
    assert [(gv.name, gv.owner) for gv in ir.globals] == \
        [("hits", "counter")], [(g.name, g.owner) for g in ir.globals]

    # --- the four rules on the synthetic mini-tree ---
    tree = load_tree_internal({
        "src/common/util.hh": MINI_COMMON,
        "src/service/shard_core.hh": MINI_SERVICE,
        "src/sim/system.hh": MINI_SIM,
    })
    rows = analyze(tree, require_roots=True)
    by_rule: dict[str, list[Finding]] = {}
    for row in rows:
        by_rule.setdefault(row[2], []).append(row)

    # shard-isolation: the unannotated static local and the mutable
    # namespace-scope global fire; the sync()-annotated mutex does not.
    iso = by_rule.get("shard-isolation", [])
    assert any("drained" in row[3] for row in iso), rows
    assert any("sharedCounter" in row[3] for row in iso), rows
    assert not any("reportMutex" in row[3] for row in iso), rows

    # hot-path-purity: the allocation in the *callee* of the hot
    # kernel fires (transitive closure); the never-called coldHelper
    # does not.
    pure = by_rule.get("hot-path-purity", [])
    assert any("helper" in row[3] and "hotKernel" in row[3]
               for row in pure), rows
    assert not any("coldHelper" in row[3] for row in pure), rows

    # layering: sim (layer 7) including service (layer 8) is a
    # back-edge; service including sim is a legal downward edge.
    lay = by_rule.get("layering", [])
    assert any(row[0] == "src/sim/system.hh" and
               "service" in row[3] for row in lay), rows
    assert not any(row[0] == "src/service/shard_core.hh"
                   for row in lay), rows

    # determinism: the wall-clock read and the unannotated forEach in
    # the drain root both fire.
    det = by_rule.get("determinism", [])
    assert any("wall-clock" in row[3] for row in det), rows
    assert any("forEach" in row[3] for row in det), rows

    # --- suppressions and the catalogue of PR 4 sites ---
    fixed = MINI_SERVICE \
        .replace("        auto t = time(nullptr);",
                 "        // dewrite-analyze: allow(determinism) host\n"
                 "        auto t = time(nullptr);") \
        .replace("        table.forEach([](int k) {});",
                 "        // dewrite-lint: allow(unsorted-iteration)\n"
                 "        table.forEach([](int k) {});") \
        .replace("        static int drained = 0;",
                 "        // dewrite-owned: shard\n"
                 "        static int drained = 0;") \
        .replace("        sharedCounter += 1;",
                 "        // dewrite-analyze: allow(shard-isolation)\n"
                 "        sharedCounter += 1;")
    fixed_sim = MINI_SIM.replace(
        "#include \"service/shard_core.hh\"",
        "// dewrite-analyze: allow(layering) seeded test\n"
        "#include \"service/shard_core.hh\"")
    clean_common = MINI_COMMON.replace(
        "    scratch.push_back(x);",
        "    // dewrite-analyze: allow(hot-path-purity) fixed-cap\n"
        "    scratch.push_back(x);")
    rows = analyze(load_tree_internal({
        "src/common/util.hh": clean_common,
        "src/service/shard_core.hh": fixed,
        "src/sim/system.hh": fixed_sim,
    }), require_roots=True)
    assert rows == [], rows

    # Deleting every root annotation must NOT pass silently.
    rows = analyze(load_tree_internal({
        "src/common/util.hh": clean_common,
        "src/service/shard_core.hh":
            fixed.replace("// dewrite-analyze: root(shard-isolation)",
                          "")
                 .replace("// dewrite-analyze: root(determinism)", ""),
        "src/sim/system.hh": fixed_sim,
    }), require_roots=True)
    assert {row[2] for row in rows} == {"shard-isolation",
                                        "determinism"}, rows
    assert all("vacuously" in row[3] for row in rows), rows

    # Unknown rule names in annotations are themselves findings.
    rows = analyze(load_tree_internal({
        "src/common/a.hh": "// dewrite-analyze: allow(no-such-rule)\n",
    }))
    assert [(row[2], "no-such-rule" in row[3]) for row in rows] == \
        [("unknown-rule", True)], rows

    # --- baseline ratchet ---
    counts = count_findings([
        ("src/a.cc", 3, "layering", "m"),
        ("src/a.cc", 9, "layering", "m"),
        ("src/b.cc", 1, "determinism", "m"),
    ])
    assert counts == {"src/a.cc": {"layering": 2},
                      "src/b.cc": {"determinism": 1}}
    regress = diff_against_baseline(counts,
                                    {"src/a.cc": {"layering": 2}})
    assert regress == [("src/b.cc", "determinism", 1, 0)], regress
    assert diff_against_baseline(
        counts, {"src/a.cc": {"layering": 2},
                 "src/b.cc": {"determinism": 1}}) == []

    # --- clang front-end plumbing on canned data ---
    cmd = ast_dump_command({
        "directory": "/b",
        "command": "g++ -O2 -Iinclude -c src/x.cc -o x.o",
        "file": "src/x.cc"})
    assert "-c" not in cmd and "-o" not in cmd and "x.o" not in cmd
    assert cmd[-1] == "-ast-dump=json" and "-fsyntax-only" in cmd

    walker = _AstWalker("/repo")
    walker.walk({
        "id": "0x1", "kind": "TranslationUnitDecl", "inner": [
            {"id": "0x10", "kind": "NamespaceDecl", "name": "dewrite",
             "loc": {"file": "/repo/src/service/shard_core.cc",
                     "line": 1},
             "inner": [
                 {"id": "0x20", "kind": "CXXRecordDecl",
                  "name": "ShardCore",
                  "inner": [
                      {"id": "0x30", "kind": "CXXMethodDecl",
                       "name": "flush", "loc": {"line": 5}},
                      {"id": "0x50", "kind": "CXXMethodDecl",
                       "name": "stage", "loc": {"line": 6}}]},
                 {"id": "0x40", "kind": "CXXMethodDecl",
                  "name": "flush",
                  "parentDeclContextId": "0x20",
                  "loc": {"line": 12},
                  "range": {"begin": {}, "end": {"line": 20}},
                  "inner": [
                      {"kind": "CompoundStmt", "inner": [
                          {"kind": "DeclRefExpr",
                           "referencedDecl": {
                               "id": "0x99", "kind": "FunctionDecl",
                               "name": "helper"}},
                          # Member call: CXXMemberCallExpr ->
                          # MemberExpr with a bare hex id, the shape
                          # referencedDecl handling never sees.
                          {"kind": "CXXMemberCallExpr", "inner": [
                              {"kind": "MemberExpr", "name": "stage",
                               "referencedMemberDecl": "0x50"}]},
                          # Unresolvable member id (dependent member)
                          # falls back to the spelled name.
                          {"kind": "MemberExpr", "name": "commit",
                           "referencedMemberDecl": "0xdead"},
                          {"kind": "VarDecl", "name": "leak",
                           "storageClass": "static",
                           "type": {"qualType": "int"}},
                      ]}]},
             ]}]}, [])
    fns = [fn for fn, _ in walker.functions]
    assert len(fns) == 1 and fns[0].qname == "dewrite::ShardCore::flush"
    assert fns[0].line == 12 and fns[0].end_line == 20
    assert "helper" in fns[0].calls
    # Member calls resolve through decl_names to the qualified method
    # (plus the bare name for virtual dispatch); unresolved ids keep
    # the spelled name so the closure stays over-approximate.
    assert "dewrite::ShardCore::stage" in fns[0].calls, fns[0].calls
    assert "stage" in fns[0].calls, fns[0].calls
    assert "commit" in fns[0].calls, fns[0].calls
    assert [(gv.name, gv.owner) for gv in walker.globals] == \
        [("leak", "dewrite::ShardCore::flush")], walker.globals

    # Stateful location tracking: 'file' omitted means unchanged.
    walker = _AstWalker("/repo")
    walker._loc({"loc": {"file": "/repo/src/a.cc", "line": 3}})
    assert walker._loc({"loc": {"col": 2}}) == ("/repo/src/a.cc", 3)
    assert walker._loc({"loc": {"line": 9}}) == ("/repo/src/a.cc", 9)

    print("dewrite_analyze self-test: OK")
    return 0


# --------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("paths", nargs="*",
                        help="restrict analysis scope to these "
                             "repo-relative files or directories "
                             "(call graph is still whole-tree)")
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"),
                        help="build tree holding compile_commands.json "
                             "(clang front-end; default: %(default)s)")
    parser.add_argument("--frontend",
                        choices=("auto", "clang", "internal"),
                        default="auto",
                        help="AST source (default: auto = clang if "
                             "installed, else the built-in parser)")
    parser.add_argument("--clang", default=None,
                        help="clang binary (default: $CLANG or the "
                             "newest clang++[-N] on PATH)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE,
                        help="AST dump cache (default: %(default)s)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="ratchet baseline (default: %(default)s)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 3) if the clang front-end "
                             "was requested but no binary exists")
    parser.add_argument("--report", default=None,
                        help="write a JSON analysis report here")
    parser.add_argument("--rule", action="append", dest="rules",
                        choices=RULE_NAMES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic-tree self-test")
    parser.add_argument("--check-seeded-break", action="store_true",
                        help="verify each rule catches a deliberate "
                             "violation seeded into the real tree")
    args = parser.parse_args(argv)

    if args.list_rules:
        doc = __doc__.split("Front-ends")[0]
        print(doc.split("\n", 6)[-1].rstrip())
        return 0
    if args.self_test:
        return self_test()

    frontend = args.frontend
    binary = find_clang(args.clang)
    if frontend == "auto":
        frontend = "clang" if binary else "internal"
    if frontend == "clang" and binary is None:
        if args.require:
            print("error: clang not found and --require given",
                  file=sys.stderr)
            return 3
        if args.check_seeded_break:
            print("dewrite_analyze: clang not installed; seeded-break "
                  "check runs on the internal front-end only")
            frontend = "internal"
        else:
            print("dewrite_analyze: clang not installed; skipping the "
                  "AST front-end (use --frontend internal for the "
                  "built-in parser; CI uses --require)")
            return 0

    if args.check_seeded_break:
        return check_seeded_break(frontend, binary, args.build_dir,
                                  args.cache_dir)

    if frontend == "clang":
        try:
            tree = load_tree_clang(binary, args.build_dir,
                                   args.cache_dir)
        except SystemExit as err:
            print(err, file=sys.stderr)
            return 2
    else:
        tree = load_tree_internal(collect_sources())
    if not tree.files:
        print("error: no src/ sources found", file=sys.stderr)
        return 2

    rules = tuple(args.rules) if args.rules else RULE_NAMES
    findings = analyze(tree, rules, require_roots=not args.paths)
    if args.paths:
        scoped = set()
        for only in args.paths:
            scoped.add(only.rstrip("/"))
        findings = [row for row in findings
                    if any(row[0] == o or row[0].startswith(o + "/")
                           for o in scoped)]

    if args.report:
        payload = {
            "frontend": frontend,
            "files": len(tree.files),
            "functions": len(tree.all_functions()),
            "mutable_statics": len(tree.all_globals()),
            "rules": list(rules),
            "findings": [
                {"file": rel, "line": line, "rule": rule,
                 "message": message}
                for rel, line, rule, message in findings],
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    counts = count_findings(findings)
    if args.update_baseline:
        write_baseline(args.baseline, counts)
        total = sum(sum(c.values()) for c in counts.values())
        print(f"baseline updated: {total} finding(s) -> "
              f"{args.baseline}")
        return 0

    regressions = diff_against_baseline(counts,
                                        load_baseline(args.baseline))
    if regressions:
        shown = {(rel, rule) for rel, rule, _f, _a in regressions}
        for rel, line, rule, message in findings:
            if (rel, rule) in shown:
                print(f"{rel}:{line}: [{rule}] {message}",
                      file=sys.stderr)
        print(f"\ndewrite-analyze: {len(regressions)} finding "
              f"class(es) over the baseline", file=sys.stderr)
        return 1
    print(f"dewrite-analyze clean ({frontend} front-end): "
          f"{len(tree.files)} files, "
          f"{len(tree.all_functions())} functions, "
          f"{len(rules)} rules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
