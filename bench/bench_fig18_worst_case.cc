/**
 * @file
 * Figure 18 — worst-case performance: a benchmark with no duplicate
 * writes at all (randomized values inserted into a 2-D array, then
 * traversed).
 *
 * Paper's shape: DeWrite's write latency, read latency, and IPC stay
 * within a few percent of the traditional secure NVM (IPC loss < 3%):
 * the prediction keeps encryption parallel to detection, PNA avoids
 * in-NVM hash queries, and metadata stays cached.
 */

#include <cstdio>

#include <memory>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/trace_gen.hh"

using namespace dewrite;

namespace {

RunResult
runWorstCase(const SystemConfig &config, const SchemeOptions &scheme)
{
    std::vector<std::unique_ptr<WorstCaseWorkload>> workloads;
    std::vector<TraceSource *> traces;
    for (unsigned core = 0; core < config.numCores; ++core) {
        workloads.push_back(
            std::make_unique<WorstCaseWorkload>(1024, 100.0, 17 + core));
        traces.push_back(workloads.back().get());
    }
    System system(config, scheme);
    return system.run(traces, experimentEvents());
}

} // namespace

int
main()
{
    std::printf("Figure 18: worst case — zero duplicate writes\n\n");

    SystemConfig config;
    const SchemeOptions schemes[] = { secureBaselineScheme(),
                                      dewriteScheme(
                                          DedupMode::Predicted) };
    std::vector<RunResult> runs(2);
    parallelFor(2, [&](std::size_t s) {
        runs[s] = runWorstCase(config, schemes[s]);
    });
    const RunResult &base = runs[0];
    const RunResult &dewrite = runs[1];

    TablePrinter table({ "metric", "baseline", "DeWrite",
                         "DeWrite/baseline" });
    table.addRow({ "write latency (ns)",
                   TablePrinter::num(base.avgWriteLatencyNs, 1),
                   TablePrinter::num(dewrite.avgWriteLatencyNs, 1),
                   TablePrinter::percent(dewrite.avgWriteLatencyNs /
                                         base.avgWriteLatencyNs) });
    table.addRow({ "read latency (ns)",
                   TablePrinter::num(base.avgReadLatencyNs, 1),
                   TablePrinter::num(dewrite.avgReadLatencyNs, 1),
                   TablePrinter::percent(dewrite.avgReadLatencyNs /
                                         base.avgReadLatencyNs) });
    table.addRow({ "IPC", TablePrinter::num(base.ipc, 3),
                   TablePrinter::num(dewrite.ipc, 3),
                   TablePrinter::percent(dewrite.ipc / base.ipc) });
    table.addRow({ "writes eliminated", "0",
                   TablePrinter::num(
                       static_cast<double>(dewrite.writesEliminated), 0),
                   "-" });
    table.print();

    std::printf("\npaper: negligible degradation; IPC loss < 3%%\n");
    return 0;
}
