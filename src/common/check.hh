/**
 * @file
 * Invariant assertion macros for the audit layer (DESIGN.md §5e).
 *
 * DEWRITE_CHECK(cond, fmt, ...) verifies @p cond in every build and
 * panics (prints file:line plus the formatted context, then aborts)
 * when it is false — use it for invariants whose violation means the
 * simulator state is corrupt and continuing would produce wrong
 * numbers silently.
 *
 * DEWRITE_DCHECK is the same contract but compiled out of NDEBUG
 * builds (the default RelWithDebInfo defines NDEBUG), so it may guard
 * hot-path invariants without costing the benchmarks anything. Define
 * DEWRITE_FORCE_DCHECKS to keep them in an optimized build (the
 * audit-enabled CI shard does).
 *
 * Both macros evaluate @p cond exactly once and the message arguments
 * not at all on the success path.
 */

#ifndef DEWRITE_COMMON_CHECK_HH
#define DEWRITE_COMMON_CHECK_HH

#include "common/logging.hh"

#define DEWRITE_CHECK(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::dewrite::detail::checkFailed(__FILE__, __LINE__, #cond,   \
                                           __VA_ARGS__);                \
        }                                                               \
    } while (false)

#if !defined(NDEBUG) || defined(DEWRITE_FORCE_DCHECKS)
#define DEWRITE_DCHECK(cond, ...) DEWRITE_CHECK(cond, __VA_ARGS__)
#else
#define DEWRITE_DCHECK(cond, ...)                                       \
    do {                                                                \
    } while (false)
#endif

namespace dewrite {
namespace detail {

/** Formats the context and panics. Never returns. */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *condition, const char *fmt,
                              ...) __attribute__((format(printf, 4, 5)));

} // namespace detail
} // namespace dewrite

#endif // DEWRITE_COMMON_CHECK_HH
