/**
 * @file
 * Per-line wear tracking and endurance projection.
 *
 * PCM cells endure ~1e7–1e8 writes; DeWrite's write elimination extends
 * lifetime proportionally. The tracker records per-line write counts
 * (sparse: only lines ever written) and projects module lifetime under
 * an idealized wear-leveling assumption, which is the standard way the
 * endurance literature normalizes comparisons.
 */

#ifndef DEWRITE_NVM_WEAR_TRACKER_HH
#define DEWRITE_NVM_WEAR_TRACKER_HH

#include <cstdint>

#include "common/paged_array.hh"
#include "common/types.hh"
#include "obs/metric_registry.hh"

namespace dewrite {

class WearTracker
{
  public:
    /** Pre-sizes the per-line count array for @p num_lines addresses. */
    // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
    // the hot edge is a member-name over-approximation
    void reserve(std::uint64_t num_lines) { lineWrites_.reserve(num_lines); }

    /** Records one write of @p bits_written cell-bits at @p addr. */
    void recordWrite(LineAddr addr, std::size_t bits_written);

    /** Total line writes recorded. */
    std::uint64_t totalWrites() const { return totalWrites_; }

    /** Total cell-bit writes recorded. */
    std::uint64_t totalBitsWritten() const { return totalBits_; }

    /** Highest per-line write count seen. */
    std::uint64_t maxLineWrites() const { return maxLineWrites_; }

    /** Number of distinct lines ever written. */
    std::size_t linesTouched() const { return linesTouched_; }

    /** Writes recorded against one line. */
    std::uint64_t lineWrites(LineAddr addr) const;

    /** Pure cache-warming hint for @p addr's write-count entry. */
    void prefetch(LineAddr addr) const { lineWrites_.prefetch(addr); }

    /**
     * Projected lifetime in arbitrary write-traffic units: with perfect
     * wear leveling over @p leveled_lines lines of @p cell_endurance
     * writes each, lifetime is inversely proportional to write traffic.
     * Two trackers' projections are meaningfully compared as ratios.
     */
    double relativeLifetime(std::uint64_t cell_endurance,
                            std::uint64_t leveled_lines) const;

    /** Registers wear metrics under @p scope (canonically
     * "device.wear"). */
    void registerMetrics(obs::MetricRegistry::Scope scope) const
    {
        scope.gauge("total_writes",
                    [this] {
                        return static_cast<double>(totalWrites());
                    },
                    "line writes charged to cells");
        scope.gauge("total_bits_written",
                    [this] {
                        return static_cast<double>(totalBitsWritten());
                    },
                    "cell-bit writes charged");
        scope.gauge("max_line_writes",
                    [this] {
                        return static_cast<double>(maxLineWrites());
                    },
                    "hottest line's write count");
        scope.gauge("lines_touched",
                    [this] {
                        return static_cast<double>(linesTouched());
                    },
                    "distinct lines ever written");
    }

  private:
    PagedArray<std::uint64_t> lineWrites_;
    std::size_t linesTouched_ = 0;
    std::uint64_t totalWrites_ = 0;
    std::uint64_t totalBits_ = 0;
    std::uint64_t maxLineWrites_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_NVM_WEAR_TRACKER_HH
