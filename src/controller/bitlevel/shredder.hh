/**
 * @file
 * Silent-Shredder-style zero-line elimination.
 *
 * Silent Shredder [Awad et al., ASPLOS'16] observes that data shredding
 * (zeroing) accounts for a noticeable share of NVM writes and services
 * zero-line writes purely in metadata: no cells are programmed, and a
 * read of a shredded line is answered without touching the array. The
 * paper uses it as the line-level comparison point for DeWrite
 * (Figures 2 and 13): zero lines are only ~16% of writes, so shredding
 * captures a fraction of what full deduplication eliminates.
 */

#ifndef DEWRITE_CONTROLLER_BITLEVEL_SHREDDER_HH
#define DEWRITE_CONTROLLER_BITLEVEL_SHREDDER_HH

#include "common/paged_array.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dewrite {

class ZeroLineDirectory
{
  public:
    /** True iff @p addr is currently known-zero without stored cells. */
    bool isZeroed(LineAddr addr) const { return zeroed_.contains(addr); }

    /** Records the elimination of a zero-line write. */
    void
    markZeroed(LineAddr addr)
    {
        zeroed_.insert(addr);
        eliminated_.increment();
    }

    /** Clears the zero mark when real data is written. */
    void clearZeroed(LineAddr addr) { zeroed_.erase(addr); }

    std::uint64_t eliminatedWrites() const { return eliminated_.value(); }
    std::size_t zeroedLines() const { return zeroed_.size(); }

  private:
    DenseAddrSet zeroed_;
    Counter eliminated_;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_BITLEVEL_SHREDDER_HH
