/**
 * @file
 * DedupEngine implementation.
 *
 * Invariants maintained across operations:
 *  - invHash_[S] holds a hash  <=>  slot S stores live ciphertext
 *    <=>  the hash store has a record (hash(S), S)  <=>  FSM marks S used.
 *  - A logical line L with valid data references exactly one slot:
 *    mapping_[L].realAddr when remapped, else its own slot L.
 *  - The hash-store reference count of slot S equals the number of
 *    logical lines referencing S (pinned once saturated at 255).
 *  - Slot S's encryption counter never decreases and is stored at its
 *    colocation home (mapping_[S] if null, else invHash_[S] if null,
 *    else the overflow store).
 */

#include "dedup/dedup_engine.hh"

#include <algorithm>
#include <array>

#include "common/check.hh"
#include "common/crc32.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

const char *
detectPolicyName(DetectPolicy policy)
{
    switch (policy) {
      case DetectPolicy::ConfirmRead:
        return "confirm-read";
      case DetectPolicy::WeakOnly:
        return "weak-only";
      case DetectPolicy::WeakStrong:
        return "weak-strong";
      case DetectPolicy::Adaptive:
        return "adaptive";
    }
    panic("bad detect policy");
}

DetectPolicy
detectPolicyFromEnv()
{
    // Names indexed by the DetectPolicy enum values.
    static const char *const kNames[] = { "confirm-read", "weak-only",
                                          "weak-strong", "adaptive" };
    return static_cast<DetectPolicy>(
        envChoice("DEWRITE_DETECT", 0, kNames, 4));
}

std::uint64_t
detectEpochFromEnv()
{
    return envUint("DEWRITE_DETECT_EPOCH", 4096, 64, 1ULL << 20);
}

DedupEngine::DedupEngine(const SystemConfig &config, NvmDevice &device,
                         MetadataCache &metadata, CounterModeEngine &cme,
                         Options options)
    : config_(config), device_(device), metadata_(metadata), cme_(cme),
      options_(options),
      hashIndexDiv_(config.memory.numLines ? config.memory.numLines : 1),
      fingerprinter_(options.hashFunction), fsm_(config.memory.numLines)
{
    // Size every hot-path structure up front from the config hints so
    // nothing rehashes or grows a directory mid-run (DESIGN.md §5).
    const std::uint64_t hint = config.memory.workingSetHint();
    hashStore_.reserve(hint);
    mapping_.reserve(config.memory.numLines);
    invHash_.reserve(config.memory.numLines);
    written_.reserve(config.memory.numLines);
    overflow_.reserve(64);
    majors_.reserve(64);
}

DedupEngine::DedupEngine(const SystemConfig &config, NvmDevice &device,
                         MetadataCache &metadata, CounterModeEngine &cme)
    : DedupEngine(config, device, metadata, cme, Options())
{
}

std::uint64_t
DedupEngine::hashIndex(std::uint64_t hash) const
{
    return hashIndexDiv_.mod(hash);
}

std::uint64_t
DedupEngine::counterOf(LineAddr slot) const
{
    // Fused single-walk probes: the colocation-home checks and the
    // counter read share one table lookup each instead of two.
    std::uint64_t counter;
    if (mapping_.counterIfNotRemapped(slot, counter))
        return counter;
    if (invHash_.counterIfNoData(slot, counter))
        return counter;
    const std::uint64_t *spilled = overflow_.find(slot);
    return spilled ? *spilled : 0;
}

void
DedupEngine::setCounterOf(LineAddr slot, std::uint64_t counter)
{
    if (mapping_.trySetCounter(slot, counter) ||
        invHash_.trySetCounter(slot, counter)) {
        overflow_.erase(slot);
    } else {
        overflow_[slot] = counter;
    }
}

obs::CounterHome
DedupEngine::counterHome(LineAddr slot) const
{
    if (slot == kInvalidAddr)
        return obs::CounterHome::None;
    if (!mapping_.isRemapped(slot))
        return obs::CounterHome::Mapping;
    if (!invHash_.holdsData(slot))
        return obs::CounterHome::InvertedHash;
    return obs::CounterHome::Overflow;
}

void
DedupEngine::registerMetrics(obs::MetricRegistry::Scope scope) const
{
    scope.counter("duplicate_commits", dupCommits_,
                  "writes committed as duplicates", "duplicate_commits");
    scope.counter("unique_commits", uniqueCommits_,
                  "writes committed as unique lines", "unique_commits");
    scope.counter("silent_stores", silentStores_,
                  "writes identical to their own slot", "silent_stores");
    scope.counter("collision_mismatches", collisionMismatches_,
                  "fingerprint matches refuted by the confirmation read",
                  "collision_mismatches");
    scope.counter("missed_by_pna", missedByPna_,
                  "duplicates missed because PNA skipped the NVM query",
                  "missed_by_pna");
    scope.counter("missed_by_saturation", missedBySaturation_,
                  "duplicates missed on saturated reference counts",
                  "missed_by_saturation");
    scope.counter("reencryptions", reencryptions_,
                  "optimistic ciphertexts discarded and redone",
                  "reencryptions");
    scope.counter("unsafe_corruptions", unsafeCorruptions_,
                  "collisions trusted without confirmation (ablation)",
                  "unsafe_corruptions");
    scope.counter("counter_wraps", counterWraps_,
                  "minor-counter wraps absorbed by major counters");
    scope.gauge("overflow_counters",
                [this] {
                    return static_cast<double>(overflowCounters());
                },
                "slot counters homeless in both tables",
                "overflow_counters");
    scope.gauge("energy_pj",
                [this] { return static_cast<double>(totalEnergy()); },
                "dedup logic + engine-issued AES energy");

    obs::MetricRegistry::Scope detect = scope.scope("detect");
    detect.gauge("mode",
                 [this] {
                     return static_cast<double>(
                         static_cast<int>(operationalDetectMode()));
                 },
                 "operational detection mode (0=confirm-read "
                 "1=weak-only 2=weak-strong)");
    detect.counter("detects", detects_,
                   "authoritative duplicate detections");
    detect.counter("confirm_reads", confirmReads_,
                   "candidate lines read for confirmation");
    detect.counter("confirm_reads_avoided", confirmReadsAvoided_,
                   "confirmations resolved by a cached strong "
                   "fingerprint instead of a read");
    detect.counter("strong_fp_computes", strongFpComputes_,
                   "strong fingerprints computed (incoming or stored)");
    detect.counter("strong_fp_hits", strongFpHits_,
                   "candidates compared via a valid cached fingerprint");
    detect.counter("strong_fp_caches", strongFpCaches_,
                   "fingerprints lazily installed on first confirmation");
    detect.counter("mode_switches", detectModeSwitches_,
                   "adaptive epoch transitions between tiers");
    detect.gauge("latency_ps_total",
                 [this] {
                     return static_cast<double>(detectPicoseconds_);
                 },
                 "summed simulated detection latency");

    obs::MetricRegistry::Scope pad = scope.scope("pad_cache");
    pad.counter("hits", padCache_.hitCounter(),
                "pad lookups served from the host-side memo");
    pad.counter("misses", padCache_.missCounter(),
                "pad lookups that regenerated through AES");
    pad.counter("prefills", padCache_.prefillCounter(),
                "pads speculatively batch-installed by fill()");

    if (stageProfile_) {
        // Registered only under DEWRITE_STAGE_PROFILE=1 so the default
        // registry snapshot stays byte-identical to an unprofiled run.
        obs::MetricRegistry::Scope stage = scope.scope("stage");
        stage.gauge("digest_cycles",
                    [this] {
                        return static_cast<double>(stageCycles_.digest);
                    },
                    "host cycles fingerprinting lines");
        stage.gauge("probe_cycles",
                    [this] {
                        return static_cast<double>(stageCycles_.probe);
                    },
                    "host cycles in metadata probes and prefetch");
        stage.gauge("pad_cycles",
                    [this] {
                        return static_cast<double>(stageCycles_.pad);
                    },
                    "host cycles generating AES pads");
        stage.gauge("confirm_read_cycles",
                    [this] {
                        return static_cast<double>(
                            stageCycles_.confirmRead);
                    },
                    "host cycles confirming candidates");
        stage.gauge("commit_cycles",
                    [this] {
                        return static_cast<double>(stageCycles_.commit);
                    },
                    "host cycles committing writes");
    }
}

std::uint64_t
DedupEngine::effectiveCounter(LineAddr slot) const
{
    const std::uint64_t *major = majors_.find(slot);
    return ((major ? *major : 0) << options_.counterBits) |
           counterOf(slot);
}

std::uint64_t
DedupEngine::bumpCounter(LineAddr slot)
{
    const std::uint64_t mask = (1ULL << options_.counterBits) - 1;
    const std::uint64_t minor = (counterOf(slot) + 1) & mask;
    if (minor == 0) {
        // Minor wrap: the major counter absorbs it so the effective
        // OTP counter keeps growing (split-counter discipline).
        ++majors_[slot];
        counterWraps_.increment();
    }
    // The caller re-homes the minor with setCounterOf() *after* its
    // table mutations; storing it here would race the colocation home.
    const std::uint64_t *major = majors_.find(slot);
    return ((major ? *major : 0) << options_.counterBits) | minor;
}

Time
DedupEngine::chargeCounterAccess(LineAddr slot, Time now)
{
    // The counter is read from its colocation home; when it has spilled
    // to the overflow store the probe still touches the mapping entry
    // first (that is where hardware would look).
    const MetadataTable table = !mapping_.isRemapped(slot)
        ? MetadataTable::Mapping
        : (!invHash_.holdsData(slot) ? MetadataTable::InvertedHash
                                     : MetadataTable::Mapping);
    return metadata_.access(table, slot, false, now).latency;
}

const Line &
DedupEngine::padFor(LineAddr slot, std::uint64_t counter)
{
    obs::StageTimer timer(stageSink(stageCycles_.pad));
    return padCache_.get(cme_, slot, counter);
}

bool
DedupEngine::storedEquals(LineAddr slot, const Line &plaintext)
{
    // stored == plaintext  <=>  ciphertext == plaintext ^ pad; an
    // unwritten slot reads as the zero line, whose "decryption" is the
    // pad itself.
    const Line *ciphertext = device_.peekPtr(slot);
    const Line &pad = padFor(slot, effectiveCounter(slot));
    if (!ciphertext)
        return plaintext == pad;
    return equalsXor(*ciphertext, plaintext, pad);
}

std::uint64_t
DedupEngine::peekBumpedCounter(LineAddr slot) const
{
    const std::uint64_t mask = (1ULL << options_.counterBits) - 1;
    const std::uint64_t minor = (counterOf(slot) + 1) & mask;
    const std::uint64_t *major = majors_.find(slot);
    std::uint64_t high = major ? *major : 0;
    if (minor == 0)
        ++high;
    return (high << options_.counterBits) | minor;
}

// dewrite-lint: hot
void
DedupEngine::prepareBatch(const CtrlWriteRequest *requests,
                          std::size_t count, std::uint64_t *hashes,
                          StrongFp *strong_fps, std::uint8_t *strong_ready)
{
    DEWRITE_DCHECK(count <= kMaxWriteBatch, "batch of %zu exceeds %zu",
                   count, kMaxWriteBatch);

    // In the weak+strong tier, candidates whose fingerprint is already
    // cached take the fingerprint compare instead of a confirmation
    // read, so their line/pad prefetches would be pure waste; the freed
    // AES slot batch-computes the members' own strong fingerprints.
    const DetectPolicy mode = fingerprinter_.cryptographic()
        ? DetectPolicy::WeakOnly
        : operationalDetectMode();
    const bool strong_mode = mode == DetectPolicy::WeakStrong &&
        strong_fps && strong_ready;
    const auto strongTier = [&](const HashEntry &entry) {
        return strong_mode && entry.strongValid &&
               entry.reference != HashStore::kMaxReference;
    };
    if (strong_ready) {
        for (std::size_t i = 0; i < count; ++i)
            strong_ready[i] = 0;
    }

    // Round 1: fingerprint every member back to back — pure SIMD CRC
    // work with no dependent loads between members.
    {
        obs::StageTimer timer(stageSink(stageCycles_.digest));
        for (std::size_t i = 0; i < count; ++i)
            hashes[i] = fingerprinter_.fingerprint(*requests[i].data);
    }

    // Round 2: issue every member's metadata prefetches before any
    // probe result is consumed, so the misses overlap each other
    // instead of serializing behind one another.
    {
        obs::StageTimer timer(stageSink(stageCycles_.probe));
        for (std::size_t i = 0; i < count; ++i) {
            const LineAddr addr = requests[i].addr;
            hashStore_.prefetch(hashes[i]);
            mapping_.prefetch(addr);
            invHash_.prefetch(addr);
            written_.prefetch(addr);
            device_.prefetchForWrite(addr);
        }
    }

    // Round 3: walk the (now warm) buckets and prefetch each live
    // candidate's stored line and metadata homes — again all members
    // before any consumption. Strong-tier candidates skip the line
    // prefetch (no confirmation read will touch them) but keep the
    // metadata warm-ups: detect still probes their records.
    {
        obs::StageTimer timer(stageSink(stageCycles_.probe));
        for (std::size_t i = 0; i < count; ++i) {
            const ChainView chain = hashStore_.lookup(hashes[i]);
            unsigned probes = 0;
            for (std::size_t j = chain.size(); j-- > 0;) {
                if (++probes > options_.maxChainProbe)
                    break;
                const LineAddr slot = chain[j].realAddr;
                if (!strongTier(chain[j]))
                    device_.prefetchLine(slot);
                mapping_.prefetch(slot);
                invHash_.prefetch(slot);
            }
        }
    }

    // In strong mode, batch-generate each live-chain member's own
    // strong fingerprint in the slot the skipped confirm pads vacated;
    // detect() takes it as @p precomputed_strong instead of computing
    // inline. Members with an empty chain never need one.
    if (strong_mode) {
        obs::StageTimer timer(stageSink(stageCycles_.digest));
        for (std::size_t i = 0; i < count; ++i) {
            if (hashStore_.lookup(hashes[i]).empty())
                continue;
            strong_fps[i] = strongFingerprint(*requests[i].data);
            strong_ready[i] = 1;
        }
    }

    // ...then collect the pads the members will need: confirm pads for
    // each candidate that will be compared, and a predicted in-place
    // commit pad when the chain is empty (the overwhelmingly likely
    // unique-commit outcome). Guesses that turn out wrong — a commit
    // that lands in a different slot, a counter bumped by an earlier
    // member — simply miss the exact-keyed pad cache and regenerate.
    std::array<PadRequest, 2 * kMaxWriteBatch> pad_requests;
    std::size_t num_pads = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const ChainView chain = hashStore_.lookup(hashes[i]);
        if (chain.size() == 0) {
            if (num_pads < pad_requests.size()) {
                pad_requests[num_pads++] = {
                    requests[i].addr,
                    peekBumpedCounter(requests[i].addr)
                };
            }
            continue;
        }
        unsigned probes = 0;
        for (std::size_t j = chain.size(); j-- > 0;) {
            if (++probes > options_.maxChainProbe ||
                num_pads >= pad_requests.size()) {
                break;
            }
            if (strongTier(chain[j]))
                continue;
            const LineAddr slot = chain[j].realAddr;
            pad_requests[num_pads++] = { slot, effectiveCounter(slot) };
        }
    }
    if (num_pads > 0) {
        obs::StageTimer timer(stageSink(stageCycles_.pad));
        padCache_.fill(cme_, pad_requests.data(), num_pads);
    }
}

void
DedupEngine::noteCommitForEpoch(bool duplicate)
{
    if (options_.detect != DetectPolicy::Adaptive)
        return;
    ++epochWrites_;
    if (duplicate)
        ++epochDups_;
    if (epochWrites_ >= options_.detectEpochWrites)
        rollDetectEpoch();
}

void
DedupEngine::rollDetectEpoch()
{
    const double ratio = static_cast<double>(epochDups_) /
                         static_cast<double>(epochWrites_);
    epochWrites_ = 0;
    epochDups_ = 0;

    DetectPolicy next = adaptiveMode_;
    if (adaptiveMode_ == DetectPolicy::WeakStrong) {
        // Hysteresis: drop back to confirmation reads only when the
        // duplicate ratio falls clearly below the entry threshold, so
        // a workload hovering near one threshold cannot thrash the
        // mode every epoch.
        if (ratio < kExitStrongRatio)
            next = DetectPolicy::ConfirmRead;
    } else if (ratio >= kEnterStrongRatio) {
        next = DetectPolicy::WeakStrong;
    }
    if (next != adaptiveMode_) {
        adaptiveMode_ = next;
        detectModeSwitches_.increment();
    }
}

Line
DedupEngine::decryptStored(LineAddr slot)
{
    const Line *ciphertext = device_.peekPtr(slot);
    const Line &pad = padFor(slot, effectiveCounter(slot));
    return ciphertext ? (*ciphertext ^ pad) : pad;
}

bool
DedupEngine::references(LineAddr init_addr, LineAddr slot) const
{
    if (mapping_.isRemapped(init_addr))
        return mapping_.realAddr(init_addr) == slot;
    return init_addr == slot && invHash_.holdsData(init_addr) &&
           written_.contains(init_addr);
}

DetectOutcome
DedupEngine::detect(const Line &plaintext, Time now, bool allow_nvm_fill,
                    const std::uint64_t *precomputed_hash,
                    const StrongFp *precomputed_strong)
{
    DetectOutcome out;
    {
        // A batch prepared by prepareBatch() hands back the digest it
        // already computed (same function, same input — identical).
        obs::StageTimer timer(stageSink(stageCycles_.digest));
        out.hash = precomputed_hash
            ? *precomputed_hash
            : fingerprinter_.fingerprint(plaintext);
    }
    Time t = now + fingerprinter_.latency();
    energy_ += fingerprinter_.energy(config_.energy);

    MetadataAccessResult probe;
    {
        obs::StageTimer timer(stageSink(stageCycles_.probe));
        probe = metadata_.access(MetadataTable::HashStore,
                                 hashIndex(out.hash), false, t,
                                 allow_nvm_fill);
    }
    t += probe.latency;

    if (!probe.hit && !allow_nvm_fill) {
        // PNA: predicted non-duplicate and not cached on chip — skip the
        // in-NVM query and treat the line as unique (Section III-B2).
        // The functional scan below only *counts* the duplicates this
        // shortcut misses (the ~1.5% of Figure 12's gap); it charges
        // nothing.
        const ChainView chain = hashStore_.lookup(out.hash);
        unsigned scanned = 0;
        for (std::size_t i = chain.size(); i-- > 0;) {
            const HashEntry &entry = chain[i];
            if (++scanned > options_.maxChainProbe)
                break;
            if (entry.reference == HashStore::kMaxReference)
                continue;
            if (storedEquals(entry.realAddr, plaintext)) {
                missedByPna_.increment();
                break;
            }
        }
        out.done = t;
        detects_.increment();
        detectPicoseconds_ += out.done - now;
        return out;
    }
    out.authoritative = true;

    // Resolve this write's detection tier once: a cryptographic
    // fingerprinter (the Table I comparator) is trusted outright — the
    // WeakOnly branch below, without the unsafe connotation — and any
    // other policy resolves through the per-epoch adaptive state.
    const DetectPolicy mode = fingerprinter_.cryptographic()
        ? DetectPolicy::WeakOnly
        : operationalDetectMode();

    // The incoming line's strong fingerprint is computed (and charged)
    // at most once per detection, lazily at the first candidate that
    // needs it. A batch prepared in strong mode hands back the value it
    // already pushed through the batched AES slot.
    StrongFp incoming_fp;
    bool incoming_fp_ready = false;
    const auto incomingStrongFp = [&]() -> const StrongFp & {
        if (!incoming_fp_ready) {
            {
                obs::StageTimer timer(stageSink(stageCycles_.digest));
                incoming_fp = precomputed_strong
                    ? *precomputed_strong
                    : strongFingerprint(plaintext);
            }
            incoming_fp_ready = true;
            strongFpComputes_.increment();
            t += config_.timing.strongFpLine;
            energy_ += config_.energy.strongFpLine;
        }
        return incoming_fp;
    };

    // Probe newest-first: when a popular content's old records are
    // pinned at the reference cap, its freshest record is the one with
    // spare references.
    obs::StageTimer confirm_timer(stageSink(stageCycles_.confirmRead));
    const ChainView chain = hashStore_.lookup(out.hash);
    unsigned probes = 0;
    for (std::size_t i = chain.size(); i-- > 0;) {
        const HashEntry &entry = chain[i];
        if (++probes > options_.maxChainProbe)
            break;

        if (mode == DetectPolicy::WeakStrong && entry.strongValid &&
            entry.reference != HashStore::kMaxReference) {
            // Strong tier: one 128-bit compare replaces the candidate's
            // confirmation read. Unequal fingerprints *prove* the
            // contents differ; equal ones are trusted the way hardware
            // would trust them — the kernel's collision rate is
            // negligible, including against CRC-forged inputs.
            const bool fp_equal = incomingStrongFp() == entry.strongFp;
            t += config_.timing.lineCompare;
            energy_ += config_.energy.compareLine;
            confirmReadsAvoided_.increment();
            strongFpHits_.increment();
            if (fp_equal) {
                out.duplicate = true;
                out.dupSlot = entry.realAddr;
                break;
            }
            collisionMismatches_.increment();
            continue;
        }

        // Fused compare against the stored ciphertext — equivalent to
        // decrypting and comparing, with no 256 B temporaries.
        const bool matches = storedEquals(entry.realAddr, plaintext);
        if (entry.reference == HashStore::kMaxReference) {
            // Highly referenced line: pinned, not deduplicated against
            // (Section III-B2). Count the elimination this forgoes.
            if (matches)
                missedBySaturation_.increment();
            continue;
        }
        if (mode == DetectPolicy::WeakOnly) {
            // Trusted fingerprint: either the cryptographic comparator
            // (collision-free in practice) or the unsafe CRC ablation.
            // The functional comparison above only counts the silent
            // corruptions trusting the digest causes.
            out.duplicate = true;
            out.dupSlot = entry.realAddr;
            if (!matches)
                unsafeCorruptions_.increment();
            break;
        }

        // Confirmation read (ConfirmRead mode, or a WeakStrong
        // candidate whose fingerprint is not cached yet): read the
        // candidate and compare byte-by-byte; the OTP for the
        // decryption is generated while the read is in flight. Only
        // the read's timing matters — the compare already ran against
        // the functional store.
        const Time counter_latency = chargeCounterAccess(entry.realAddr,
                                                         t);
        const NvmTiming access = device_.readTimed(entry.realAddr, t);
        const Time otp_ready =
            t + counter_latency + config_.timing.aesLine;
        energy_ += config_.energy.aesLine();
        t = std::max(access.complete, otp_ready) +
            config_.timing.lineCompare;
        energy_ += config_.energy.compareLine;
        ++out.confirmReads;
        confirmReads_.increment();

        if (mode == DetectPolicy::WeakStrong) {
            // Lazy fill: the line just read (and decrypted) streams
            // through the fingerprint engine and the result lands in
            // the candidate's record — a posted metadata update, off
            // the critical path. A matching candidate's fingerprint is
            // the incoming line's own; a mismatching one is computed
            // from the stored content.
            StrongFp cached;
            if (matches) {
                cached = incomingStrongFp();
            } else {
                {
                    obs::StageTimer timer(stageSink(stageCycles_.digest));
                    cached = strongFingerprint(
                        decryptStored(entry.realAddr));
                }
                strongFpComputes_.increment();
                t += config_.timing.strongFpLine;
                energy_ += config_.energy.strongFpLine;
            }
            hashStore_.setStrongFp(out.hash, entry.realAddr, cached);
            strongFpCaches_.increment();
            metadata_.postUpdate(MetadataTable::HashStore,
                                 hashIndex(out.hash), t);
        }

        if (matches) {
            out.duplicate = true;
            out.dupSlot = entry.realAddr;
            break;
        }
        collisionMismatches_.increment();
    }
    out.done = t;
    detects_.increment();
    detectPicoseconds_ += out.done - now;
    return out;
}

Time
DedupEngine::releaseOld(LineAddr init_addr, Time now)
{
    Time t = now;

    LineAddr slot = kInvalidAddr;
    if (mapping_.isRemapped(init_addr)) {
        slot = mapping_.realAddr(init_addr);
        if (slot == kNoData)
            return t;
    } else if (invHash_.holdsData(init_addr) &&
               written_.contains(init_addr)) {
        slot = init_addr;
    } else {
        return t; // Never written: nothing to release.
    }

    // Stale-hash cleaning (Section III-B2): the inverted hash table
    // recovers the fingerprint of the data the logical line is leaving.
    t += metadata_.access(MetadataTable::InvertedHash, slot, false, t)
             .latency;
    const std::uint64_t stale_hash = invHash_.hash(slot);
    // The stale record's decrement is a posted read-modify-write: a
    // stale hash only yields a benign failed comparison later, so it
    // never blocks the write path.
    t += metadata_.postUpdate(MetadataTable::HashStore,
                              hashIndex(stale_hash), t)
             .latency;

    if (hashStore_.dropReference(stale_hash, slot)) {
        // Last reference died: reclaim the slot. The counter keeps its
        // value across the free so a future allocation never reuses an
        // OTP.
        const std::uint64_t counter = counterOf(slot);
        invHash_.clearHash(slot);
        t += metadata_.access(MetadataTable::InvertedHash, slot, true, t)
                 .latency;
        setCounterOf(slot, counter);
        fsm_.release(slot);
        t += metadata_.access(MetadataTable::Fsm, slot, true, t).latency;
    }
    return t;
}

WriteCommit
DedupEngine::commitDuplicate(LineAddr init_addr, const DetectOutcome &detect,
                             Time now)
{
    if (!detect.duplicate)
        panic("commitDuplicate without a confirmed duplicate");

    noteCommitForEpoch(true);
    obs::StageTimer timer(stageSink(stageCycles_.commit));
    WriteCommit commit;
    commit.slot = detect.dupSlot;

    if (references(init_addr, detect.dupSlot)) {
        // Silent store: the logical line already points at this exact
        // content; nothing to update.
        silentStores_.increment();
        dupCommits_.increment();
        commit.done = now;
        return commit;
    }

    Time t = now;

    // Take the new reference before releasing the old one, so a
    // self-release can never momentarily free the slot being joined.
    t += metadata_.access(MetadataTable::HashStore, hashIndex(detect.hash),
                          true, t)
             .latency;
    if (!hashStore_.addReference(detect.hash, detect.dupSlot))
        panic("reference saturated between detect and commit");

    t = releaseOld(init_addr, t);

    const std::uint64_t own_counter = counterOf(init_addr);
    mapping_.remap(init_addr, detect.dupSlot);
    t += metadata_.access(MetadataTable::Mapping, init_addr, true, t)
             .latency;
    setCounterOf(init_addr, own_counter);

    written_.insert(init_addr);
    dupCommits_.increment();
    commit.done = t;
    return commit;
}

WriteCommit
DedupEngine::commitUnique(LineAddr init_addr, const Line &plaintext,
                          std::uint64_t hash, Time now, Time encrypt_ready)
{
    noteCommitForEpoch(false);
    obs::StageTimer timer(stageSink(stageCycles_.commit));
    WriteCommit commit;
    Time t = now;
    LineAddr slot;

    const bool owns_slot_exclusively =
        !mapping_.isRemapped(init_addr) && invHash_.holdsData(init_addr) &&
        written_.contains(init_addr) &&
        hashStore_.reference(invHash_.hash(init_addr), init_addr) == 1;

    if (owns_slot_exclusively) {
        // In-place overwrite: only this logical line references its
        // slot, so the old content can simply be replaced after its
        // stale hash record is dropped.
        slot = init_addr;
        t += metadata_.access(MetadataTable::InvertedHash, slot, true, t)
                 .latency;
        const std::uint64_t stale_hash = invHash_.hash(slot);
        t += metadata_.postUpdate(MetadataTable::HashStore,
                                  hashIndex(stale_hash), t)
                 .latency;
        if (!hashStore_.dropReference(stale_hash, slot))
            panic("exclusive slot's stale record did not die");
    } else {
        t = releaseOld(init_addr, t);
        slot = fsm_.allocatePreferring(init_addr);
        if (slot == kInvalidAddr)
            fatal("NVM is full: no free slot for a unique write");
        t += metadata_.access(MetadataTable::Fsm, slot, true, t).latency;

        if (slot != init_addr && !mapping_.isRemapped(slot)) {
            // The allocator handed us the slot of a never-written
            // logical line; mark that line "remapped to nothing" so a
            // read of it cannot alias the foreign data (DESIGN.md §5).
            const std::uint64_t foreign_counter = counterOf(slot);
            mapping_.remap(slot, kNoData);
            t += metadata_.access(MetadataTable::Mapping, slot, true, t)
                     .latency;
            setCounterOf(slot, foreign_counter);
        }
    }

    // Bump the slot counter and produce the ciphertext. A schedule that
    // overlapped encryption with detection encrypted optimistically for
    // the line's own slot; if the commit landed elsewhere that
    // ciphertext is useless and the AES runs again.
    const std::uint64_t counter = bumpCounter(slot);
    const std::uint64_t minor_counter =
        counter & ((1ULL << options_.counterBits) - 1);
    const bool reencrypt = slot != init_addr;
    Time ciphertext_ready;
    if (reencrypt) {
        reencryptions_.increment();
        energy_ += config_.energy.aesLine();
        ciphertext_ready = t + config_.timing.aesLine;
    } else {
        ciphertext_ready = std::max(encrypt_ready, t);
    }

    const Line ciphertext = plaintext ^ padFor(slot, counter);
    const std::size_t bits = options_.reducer
        ? options_.reducer->onWrite(slot, plaintext, counter)
        : kLineBits;
    const Time write_start = std::max(t, ciphertext_ready);
    const NvmTiming write = device_.write(slot, ciphertext, write_start,
                                          bits);

    // Install the new metadata; these cache updates overlap the 300 ns
    // cell write.
    Time tm = t;
    invHash_.setHash(slot, hash);
    tm += metadata_.access(MetadataTable::InvertedHash, slot, true, tm)
              .latency;
    hashStore_.insert(hash, slot);
    // A brand-new record: no-fetch allocate (nothing to read-modify).
    tm += metadata_.insertEntry(MetadataTable::HashStore, hashIndex(hash),
                                tm)
              .latency;

    if (slot == init_addr) {
        if (mapping_.isRemapped(init_addr))
            mapping_.clearRemap(init_addr);
    } else {
        // Remapping evicts whatever the mapping entry held; when the
        // entry was null it was the colocation home of slot
        // init_addr's own counter (possibly protecting shared data
        // still stored there), which must move to a new home.
        const std::uint64_t own_counter = counterOf(init_addr);
        mapping_.remap(init_addr, slot);
        setCounterOf(init_addr, own_counter);
    }
    tm += metadata_.access(MetadataTable::Mapping, init_addr, true, tm)
              .latency;
    setCounterOf(slot, minor_counter);

    written_.insert(init_addr);
    uniqueCommits_.increment();

    commit.slot = slot;
    commit.wroteLine = true;
    commit.reencrypted = reencrypt;
    commit.bitsProgrammed = bits;
    commit.done = std::max(write.complete, tm);
    return commit;
}

ReadOutcome
DedupEngine::read(LineAddr init_addr, Time now, bool want_data)
{
    ReadOutcome out;
    Time t = now +
             metadata_.access(MetadataTable::Mapping, init_addr, false, now)
                 .latency;

    LineAddr slot;
    Time counter_latency = 0;
    if (mapping_.isRemapped(init_addr)) {
        out.remapped = true;
        slot = mapping_.realAddr(init_addr);
        if (slot == kNoData) {
            out.done = t;
            return out; // Sentinel: logical line holds no data.
        }
        // The shared slot's counter lives at *its* colocation home,
        // which costs a second metadata access.
        counter_latency = chargeCounterAccess(slot, t);
    } else {
        if (!written_.contains(init_addr) ||
            !invHash_.holdsData(init_addr)) {
            out.done = t;
            return out; // Never written: reads as zero.
        }
        // Counter is colocated in the mapping entry just accessed —
        // this is the payoff of Section III-C on the read path.
        slot = init_addr;
    }

    const NvmTiming access = device_.readTimed(slot, t);
    const Time otp_ready =
        t + counter_latency + config_.timing.aesLine;
    energy_ += config_.energy.aesLine();

    if (want_data) {
        // Decrypt straight from the stored line (an unwritten slot
        // reads as zero, whose decryption is the pad itself).
        const Line *ciphertext = device_.peekPtr(slot);
        const Line &pad = padFor(slot, effectiveCounter(slot));
        out.data = ciphertext ? (*ciphertext ^ pad) : pad;
    }
    out.valid = true;
    out.done = std::max(access.complete, otp_ready) +
               config_.timing.otpXor;
    return out;
}

} // namespace dewrite
