/**
 * @file
 * Figure 19 — energy consumption relative to the traditional secure
 * NVM.
 *
 * Energy covers the NVM array (reads, cell writes), the AES circuit
 * (data encryption, OTPs, metadata crypto), and the dedup logic
 * (CRC-32 and comparisons). Eliminated writes save both cell energy
 * and their encryption.
 *
 * Paper's shape: -40% mean energy; savings track the write reduction.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 19: energy relative to the secure baseline\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    const std::vector<ExperimentResult> cells =
        runMatrix(apps, { secureBaselineScheme(),
                          dewriteScheme(DedupMode::Predicted) },
                  config);

    TablePrinter table({ "app", "baseline (uJ)", "DeWrite (uJ)",
                         "relative" });
    double rel_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExperimentResult &base = cells[2 * a];
        const ExperimentResult &dewrite = cells[2 * a + 1];
        const double relative =
            static_cast<double>(dewrite.run.totalEnergy) /
            static_cast<double>(base.run.totalEnergy);
        rel_sum += relative;
        table.addRow(
            { apps[a].name,
              TablePrinter::num(
                  static_cast<double>(base.run.totalEnergy) / 1e6, 1),
              TablePrinter::num(
                  static_cast<double>(dewrite.run.totalEnergy) / 1e6, 1),
              TablePrinter::percent(relative) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::percent(
                       rel_sum /
                       static_cast<double>(appCatalog().size())) });
    table.print();

    std::printf("\npaper: DeWrite consumes ~60%% of baseline energy "
                "(-40%%) on average\n");
    return 0;
}
