/**
 * @file
 * Counter-mode engine implementation.
 */

#include "crypto/counter_mode.hh"

#include <cstring>

namespace dewrite {

CounterModeEngine::CounterModeEngine(const AesKey &key) : cipher_(key)
{
}

Line
CounterModeEngine::makePad(LineAddr addr, std::uint64_t counter) const
{
    // Seed block: | addr (8B) | counter (7B) | block index (1B) |.
    // The counter is at most 28 bits in the stored metadata, so seven
    // bytes never truncate it. All sixteen seeds are independent, so
    // they are encrypted as one batch (pipelined on AES-NI).
    std::array<AesBlock, kAesBlocksPerLine> seeds;
    AesBlock base{};
    std::memcpy(base.data(), &addr, 8);
    std::memcpy(base.data() + 8, &counter, 7);
    for (std::size_t block = 0; block < kAesBlocksPerLine; ++block) {
        seeds[block] = base;
        seeds[block][15] = static_cast<std::uint8_t>(block);
    }

    Line pad;
    std::array<AesBlock, kAesBlocksPerLine> otps;
    cipher_.encryptBlocks(seeds.data(), otps.data(), kAesBlocksPerLine);
    std::memcpy(pad.data(), otps.data(), kAesBlocksPerLine * kAesBlockSize);
    return pad;
}

Line
CounterModeEngine::encryptLine(const Line &plaintext, LineAddr addr,
                               std::uint64_t counter) const
{
    return plaintext ^ makePad(addr, counter);
}

Line
CounterModeEngine::decryptLine(const Line &ciphertext, LineAddr addr,
                               std::uint64_t counter) const
{
    // XOR is an involution: decryption is encryption with the same pad.
    return ciphertext ^ makePad(addr, counter);
}

} // namespace dewrite
