/**
 * @file
 * Start-Gap wear leveling tests: mapping bijectivity, data
 * preservation across gap movements, and wear spreading.
 */

#include "nvm/start_gap.hh"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/rng.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(StartGapTest, InitialMappingIsIdentity)
{
    StartGapLeveler leveler(64, 100);
    for (LineAddr logical = 0; logical < 64; ++logical)
        EXPECT_EQ(leveler.translate(logical), logical);
    EXPECT_EQ(leveler.gap(), 64u);
}

TEST(StartGapTest, MappingStaysBijectiveAcrossFullRotations)
{
    const std::uint64_t lines = 37; // Odd size stresses the wrap.
    StartGapLeveler leveler(lines, 1);
    SystemConfig config = smallConfig();
    NvmDevice device(config);

    // Far more moves than one full rotation (lines+1 moves each).
    for (int move = 0; move < 500; ++move) {
        std::set<LineAddr> targets;
        for (LineAddr logical = 0; logical < lines; ++logical) {
            const LineAddr physical = leveler.translate(logical);
            EXPECT_LT(physical, lines + 1);
            EXPECT_NE(physical, leveler.gap()) << "move " << move;
            targets.insert(physical);
        }
        EXPECT_EQ(targets.size(), lines) << "move " << move;
        leveler.performGapMove(device, 0);
    }
    EXPECT_EQ(leveler.gapMoves(), 500u);
}

TEST(StartGapTest, DataSurvivesGapMovement)
{
    const std::uint64_t lines = 32;
    StartGapLeveler leveler(lines, 4);
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    Rng rng(171);

    // Reference contents per logical line, written through the
    // translation and re-read after every movement.
    std::unordered_map<LineAddr, Line> reference;
    for (int op = 0; op < 2000; ++op) {
        const LineAddr logical = rng.nextBelow(lines);
        const Line data = Line::random(rng);
        device.write(leveler.translate(logical), data, 0);
        reference[logical] = data;
        if (leveler.recordWrite())
            leveler.performGapMove(device, 0);

        // Spot-check a random line after the possible move.
        const LineAddr probe = rng.nextBelow(lines);
        if (reference.contains(probe)) {
            EXPECT_EQ(device.peek(leveler.translate(probe)),
                      reference[probe])
                << "op " << op;
        }
    }
    // Full sweep at the end.
    for (const auto &[logical, data] : reference)
        EXPECT_EQ(device.peek(leveler.translate(logical)), data);
}

TEST(StartGapTest, HotLineWearSpreadsOverRotation)
{
    const std::uint64_t lines = 16;
    StartGapLeveler leveler(lines, 8);
    SystemConfig config = smallConfig();
    NvmDevice device(config);

    // Hammer one logical line long enough for several full rotations.
    const Line data = Line::filled(0xee);
    for (int i = 0; i < 4000; ++i) {
        device.write(leveler.translate(7), data, 0);
        if (leveler.recordWrite())
            leveler.performGapMove(device, 0);
    }

    // Without leveling all 4000 writes hit one cell line; with it,
    // every physical line absorbed a share.
    std::uint64_t max_wear = 0;
    std::uint64_t touched = 0;
    for (LineAddr physical = 0; physical <= lines; ++physical) {
        const std::uint64_t wear = device.wear().lineWrites(physical);
        max_wear = std::max(max_wear, wear);
        touched += wear > 0;
    }
    EXPECT_EQ(touched, lines + 1);
    EXPECT_LT(max_wear, 4000u * 2 / 3);
}

TEST(StartGapTest, MovementIntervalControlsOverhead)
{
    StartGapLeveler leveler(128, 100);
    int due = 0;
    for (int i = 0; i < 1000; ++i)
        due += leveler.recordWrite();
    EXPECT_EQ(due, 10);
    EXPECT_DOUBLE_EQ(leveler.overheadFraction(), 0.01);
}

TEST(StartGapDeathTest, RejectsDegenerateParameters)
{
    EXPECT_EXIT(StartGapLeveler(0, 100), testing::ExitedWithCode(1),
                "line");
    EXPECT_EXIT(StartGapLeveler(10, 0), testing::ExitedWithCode(1),
                "interval");
}

} // namespace
} // namespace dewrite
