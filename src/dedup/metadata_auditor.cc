/**
 * @file
 * MetadataAuditor implementation.
 *
 * Every walk below visits entries in ascending address (or hash)
 * order, so the "first violated invariant" is a deterministic function
 * of the metadata state — a corruption reported at slot 17 on one run
 * is reported at slot 17 on every run and thread count.
 */

#include "dedup/metadata_auditor.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/check.hh"
#include "common/env.hh"
#include "common/paged_array.hh"
#include "dedup/dedup_engine.hh"

namespace dewrite {

bool
auditEnabled()
{
    return envFlag("DEWRITE_AUDIT", false);
}

std::uint64_t
auditEpochWrites()
{
    // Matches the tracer's default epoch so audit epochs line up with
    // the epoch time series when both are on.
    return envUint("DEWRITE_AUDIT_EPOCH", 10000, 1, 1ULL << 32);
}

const char *
auditInvariantName(AuditInvariant invariant)
{
    switch (invariant) {
      case AuditInvariant::MappingTargetHoldsData:
        return "mapping-target-holds-data";
      case AuditInvariant::DataSlotHasHashRecord:
        return "data-slot-has-hash-record";
      case AuditInvariant::HashRecordMatchesSlot:
        return "hash-record-matches-slot";
      case AuditInvariant::ReferenceCountMatches:
        return "reference-count-matches";
      case AuditInvariant::FsmMatchesDataSlots:
        return "fsm-matches-data-slots";
      case AuditInvariant::CounterSingleHome:
        return "counter-single-home";
      case AuditInvariant::StrongFpMatchesStoredLine:
        return "strong-fp-matches-stored-line";
    }
    return "unknown-invariant";
}

namespace {

__attribute__((format(printf, 1, 2))) std::string
formatDetail(const char *fmt, ...)
{
    char buffer[160];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof(buffer), fmt, args);
    va_end(args);
    return buffer;
}

/** Shorthand: the details only ever format addresses and counts. */
unsigned long long
u(std::uint64_t value)
{
    return static_cast<unsigned long long>(value);
}

} // namespace

MetadataAuditor::MetadataAuditor(const DedupEngine &engine)
    : engine_(engine)
{
}

std::optional<AuditViolation>
MetadataAuditor::check() const
{
    std::optional<AuditViolation> first;
    const auto report = [&first](AuditViolation violation) {
        if (!first)
            first = std::move(violation);
    };

    const AddressMappingTable &mapping = engine_.mapping();
    const InvertedHashTable &inv = engine_.invertedHash();
    const HashStore &store = engine_.hashStore();
    const FreeSpaceTable &fsm = engine_.freeSpace();

    // 1. Remapped logical lines must target live data (or the explicit
    //    "remapped to nothing" sentinel).
    mapping.forEachRemapped([&](LineAddr logical, LineAddr slot) {
        if (first || slot == DedupEngine::kNoData)
            return;
        if (!inv.holdsData(slot)) {
            AuditViolation v;
            v.invariant = AuditInvariant::MappingTargetHoldsData;
            v.logical = logical;
            v.slot = slot;
            v.detail = formatDetail(
                "logical %llu is remapped to slot %llu, which holds "
                "no data",
                u(logical), u(slot));
            report(std::move(v));
        }
    });

    // True per-slot reference counts, recomputed from the durable
    // tables exactly the way recovery does: remapped logicals pointing
    // at the slot, plus the slot's own logical when it keeps its data
    // in place.
    PagedArray<std::uint64_t> refs;
    mapping.forEachRemapped([&](LineAddr, LineAddr slot) {
        if (slot != DedupEngine::kNoData)
            ++refs.ref(slot);
    });
    inv.forEachDataSlot([&](LineAddr slot, std::uint64_t) {
        if (!mapping.isRemapped(slot) && engine_.written_.contains(slot))
            ++refs.ref(slot);
    });

    // 2. Every data slot needs a hash-store record under its stored
    //    fingerprint, with the true reference count, and must be
    //    marked allocated in the free-space bitmap.
    inv.forEachDataSlot([&](LineAddr slot, std::uint64_t hash) {
        if (first)
            return;
        const std::uint8_t recorded = store.reference(hash, slot);
        if (recorded == 0) {
            AuditViolation v;
            v.invariant = AuditInvariant::DataSlotHasHashRecord;
            v.slot = slot;
            v.expected = hash;
            v.detail = formatDetail(
                "slot %llu holds data fingerprinted %#llx but the "
                "hash store has no such record",
                u(slot), u(hash));
            report(std::move(v));
            return;
        }
        const std::uint64_t expected = refs.get(slot);
        if (recorded != HashStore::kMaxReference &&
            recorded != expected) {
            AuditViolation v;
            v.invariant = AuditInvariant::ReferenceCountMatches;
            v.slot = slot;
            v.expected = expected;
            v.actual = recorded;
            v.detail = formatDetail(
                "slot %llu is referenced by %llu logical lines but "
                "the hash store records %u",
                u(slot), u(expected), recorded);
            report(std::move(v));
            return;
        }
        if (fsm.isFree(slot)) {
            AuditViolation v;
            v.invariant = AuditInvariant::FsmMatchesDataSlots;
            v.slot = slot;
            v.expected = 1;
            v.actual = 0;
            v.detail = formatDetail(
                "slot %llu holds data but the free-space bitmap marks "
                "it free (hash %#llx)",
                u(slot), u(hash));
            report(std::move(v));
        }
    });

    // 3. Every hash-store record must describe a live data slot whose
    //    inverted-hash fingerprint matches (no stray/dangling record).
    // HashStore::forEach delegates to FlatMap::forEachSorted, so the
    // walk is hash-ascending and the first violation deterministic.
    // dewrite-lint: allow(unsorted-iteration)
    store.forEach([&](std::uint64_t hash, const HashEntry &entry) {
        if (first)
            return;
        if (!inv.holdsData(entry.realAddr) ||
            inv.hash(entry.realAddr) != hash) {
            AuditViolation v;
            v.invariant = AuditInvariant::HashRecordMatchesSlot;
            v.slot = entry.realAddr;
            v.expected = hash;
            v.actual = inv.holdsData(entry.realAddr)
                           ? inv.hash(entry.realAddr)
                           : 0;
            v.detail = formatDetail(
                "hash-store record (%#llx, slot %llu) does not match "
                "the inverted hash table",
                u(hash), u(entry.realAddr));
            report(std::move(v));
            return;
        }
        // 3b. A valid strong-fingerprint cache must equal the
        //     fingerprint of the slot's stored content — the property
        //     the weak+strong tier trusts instead of reading the line.
        //     decryptStored only touches the host-side pad memo, so the
        //     const_cast is observationally pure.
        if (entry.strongValid) {
            const StrongFp stored = strongFingerprint(
                const_cast<DedupEngine &>(engine_).decryptStored(
                    entry.realAddr));
            if (!(stored == entry.strongFp)) {
                AuditViolation v;
                v.invariant = AuditInvariant::StrongFpMatchesStoredLine;
                v.slot = entry.realAddr;
                v.expected = stored.lo;
                v.actual = entry.strongFp.lo;
                v.detail = formatDetail(
                    "slot %llu caches strong fingerprint "
                    "%016llx%016llx but its stored content "
                    "fingerprints %016llx%016llx",
                    u(entry.realAddr), u(entry.strongFp.hi),
                    u(entry.strongFp.lo), u(stored.hi), u(stored.lo));
                report(std::move(v));
            }
        }
    });

    // 4. The other direction of the FSM equivalence: an allocated slot
    //    must hold data (step 2 already caught free data slots).
    for (LineAddr slot = 0; slot < fsm.capacity() && !first; ++slot) {
        if (!fsm.isFree(slot) && !inv.holdsData(slot)) {
            AuditViolation v;
            v.invariant = AuditInvariant::FsmMatchesDataSlots;
            v.slot = slot;
            v.expected = 0;
            v.actual = 1;
            v.detail = formatDetail(
                "slot %llu is marked allocated but holds no data",
                u(slot));
            report(std::move(v));
        }
    }

    // 5. Counter colocation: an overflow entry is legal only while
    //    both of slot S's potential homes are occupied — otherwise the
    //    counter is double-homed (the table home would read 0/stale
    //    while the overflow value is live).
    engine_.overflow_.forEachSorted(
        [&](LineAddr slot, std::uint64_t counter) {
            if (first)
                return;
            const bool mapping_home_free = !mapping.isRemapped(slot);
            const bool inv_home_free = !inv.holdsData(slot);
            if (mapping_home_free || inv_home_free) {
                AuditViolation v;
                v.invariant = AuditInvariant::CounterSingleHome;
                v.slot = slot;
                v.actual = counter;
                v.detail = formatDetail(
                    "slot %llu's counter %llu sits in the overflow "
                    "store while its %s entry is a free home",
                    u(slot), u(counter),
                    mapping_home_free ? "mapping" : "inverted-hash");
                report(std::move(v));
            }
        });

    return first;
}

void
MetadataAuditor::enforce(const char *when) const
{
    const std::optional<AuditViolation> violation = check();
    DEWRITE_CHECK(
        !violation,
        "%s audit: invariant '%s' violated: %s "
        "(logical=%" PRIu64 " slot=%" PRIu64 " expected=%" PRIu64
        " actual=%" PRIu64 ")",
        when, auditInvariantName(violation->invariant),
        violation->detail.c_str(), violation->logical, violation->slot,
        violation->expected, violation->actual);
}

} // namespace dewrite
