/**
 * @file
 * Validation of model parameters.
 */

#include "common/timing.hh"

#include "common/logging.hh"

namespace dewrite {

void
validateConfig(const SystemConfig &config)
{
    if (config.timing.cyclePeriod == 0)
        fatal("core clock period must be nonzero");
    if (config.timing.nvmRead >= config.timing.nvmWrite) {
        fatal("NVM model requires read latency < write latency "
              "(the asymmetry DeWrite exploits)");
    }
    if (config.timing.numBanks == 0)
        fatal("NVM device needs at least one bank");
    if (config.memory.numLines == 0)
        fatal("memory must have at least one line");
    if (config.memory.prefetchEntries == 0)
        fatal("prefetch granularity must be at least one entry");
    if (config.memory.numLines > (1ULL << 32)) {
        fatal("4 B real addresses cover at most 2^32 lines (1 TB); "
              "%llu lines configured",
              static_cast<unsigned long long>(config.memory.numLines));
    }
}

} // namespace dewrite
