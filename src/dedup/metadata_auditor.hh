/**
 * @file
 * Cross-table invariant auditor for the dedup metadata (DESIGN.md §5e).
 *
 * DedupEngine maintains four structures whose mutual consistency the
 * compiler cannot see: the address-mapping table, the inverted hash
 * table, the hash store, and the free-space bitmap, plus the counter
 * colocation discipline of Section III-C. The invariants (stated at
 * the top of dedup_engine.cc) only break through bugs, and a break
 * silently skews every downstream figure. The auditor walks all four
 * structures and reports the *first* violated invariant with full
 * context (logical line, slot, expected/actual values), in a
 * deterministic order so a violation reproduces identically across
 * runs and thread counts.
 *
 * Cost is one full metadata walk, so audits are opt-in: set
 * DEWRITE_AUDIT=1 and the DeWrite controller audits after every audit
 * epoch (DEWRITE_AUDIT_EPOCH writes, default 10000), the recovery
 * manager audits after every rebuild, and System::run audits once more
 * at run end. Tests call check()/enforce() directly.
 */

#ifndef DEWRITE_DEDUP_METADATA_AUDITOR_HH
#define DEWRITE_DEDUP_METADATA_AUDITOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"

namespace dewrite {

class DedupEngine;

/** True iff DEWRITE_AUDIT=1 (strict 0/1 parse; fatal otherwise). */
bool auditEnabled();

/** Writes per audit epoch: DEWRITE_AUDIT_EPOCH, default 10000. */
std::uint64_t auditEpochWrites();

/** The named invariants the auditor can report. */
enum class AuditInvariant
{
    /** A remapped logical line must target a data-holding slot (or
     *  the explicit "remapped to nothing" sentinel). */
    MappingTargetHoldsData,
    /** Every inverted-hash data slot must have a live hash-store
     *  record under exactly the fingerprint the entry stores. */
    DataSlotHasHashRecord,
    /** Every hash-store record must describe a data-holding slot whose
     *  inverted-hash fingerprint matches the record's hash. */
    HashRecordMatchesSlot,
    /** A slot's reference count must equal the number of logical lines
     *  referencing it (records pinned at saturation are exempt). */
    ReferenceCountMatches,
    /** The free-space bitmap must mark exactly the inverted-hash data
     *  slots as allocated. */
    FsmMatchesDataSlots,
    /** A slot's encryption counter must live in exactly one home:
     *  overflow entries may exist only while both the mapping and
     *  inverted-hash entries of the slot are occupied. */
    CounterSingleHome,
    /** A hash-store record whose strong-fingerprint flag is valid must
     *  cache exactly the fingerprint of the slot's stored (decrypted)
     *  content — a stale cache would let the weak+strong tier merge
     *  distinct data (DESIGN.md §5j). */
    StrongFpMatchesStoredLine,
};

/** Stable identifier of @p invariant for reports and tests. */
const char *auditInvariantName(AuditInvariant invariant);

/** First violated invariant, with enough context to localize it. */
struct AuditViolation
{
    AuditInvariant invariant = AuditInvariant::MappingTargetHoldsData;
    LineAddr logical = kInvalidAddr; //!< Logical line, if applicable.
    LineAddr slot = kInvalidAddr;    //!< Storage slot, if applicable.
    std::uint64_t expected = 0;
    std::uint64_t actual = 0;
    std::string detail; //!< Human-readable one-line description.
};

class MetadataAuditor
{
  public:
    explicit MetadataAuditor(const DedupEngine &engine);

    /**
     * Walks every table and returns the first violated invariant in a
     * deterministic (ascending address / hash) order, or nullopt when
     * the metadata is fully consistent.
     */
    std::optional<AuditViolation> check() const;

    /**
     * check(), panicking with the violation context on failure.
     * @p when names the trigger point ("epoch", "recovery", "run-end")
     * so the report says which audit hook fired.
     */
    void enforce(const char *when) const;

  private:
    const DedupEngine &engine_;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_METADATA_AUDITOR_HH
