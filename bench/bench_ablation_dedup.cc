/**
 * @file
 * Ablations of DeWrite's design choices (DESIGN.md Section 5).
 *
 * On three representative applications (dup-heavy lbm, mid-range gcc,
 * dup-poor vips):
 *
 *  (a) PNA on/off — prediction-gated in-NVM hash queries trade a few
 *      missed duplicates for far fewer metadata fills on the write
 *      path;
 *  (b) confirm-by-read vs trusting the CRC — the unsafe mode saves the
 *      confirmation read but corrupts data on real collisions (counted
 *      functionally);
 *  (c) history-window depth — Figure 4's knob, measured end-to-end;
 *  (d) persist-queue depth — how much the store queue hides write
 *      latency.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

const char *const kApps[] = { "lbm", "gcc", "vips" };

ExperimentResult
run(const char *app, const SystemConfig &config,
    const DeWriteController::Options &options)
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::DeWrite;
    scheme.dewrite = options;
    return runApp(appByName(app), config, scheme,
                  experimentEvents() / 2, appSeed(appByName(app)));
}

} // namespace

int
main()
{
    SystemConfig config;

    std::printf("(a) prediction-gated NVM hash access (PNA)\n\n");
    {
        std::vector<ExperimentResult> cells(6);
        parallelFor(cells.size(), [&](std::size_t i) {
            DeWriteController::Options options;
            options.pnaEnabled = i % 2 == 0;
            cells[i] = run(kApps[i / 2], config, options);
        });
        TablePrinter table({ "app", "PNA", "write lat (ns)",
                             "eliminated", "missed by PNA",
                             "metadata fills" });
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentResult &r = cells[i];
            table.addRow(
                { kApps[i / 2], i % 2 == 0 ? "on" : "off",
                  TablePrinter::num(r.run.avgWriteLatencyNs, 1),
                  TablePrinter::percent(
                      static_cast<double>(r.run.writesEliminated) /
                      r.run.writes),
                  TablePrinter::num(r.stats.get("missed_by_pna"), 0),
                  TablePrinter::num(
                      r.stats.get("metadata_fill_reads"), 0) });
        }
        table.print();
    }

    std::printf("\n(b) confirm-by-read vs trusting the fingerprint\n\n");
    {
        std::vector<ExperimentResult> cells(6);
        parallelFor(cells.size(), [&](std::size_t i) {
            DeWriteController::Options options;
            options.detect = i % 2 == 0 ? DetectPolicy::ConfirmRead
                                        : DetectPolicy::WeakOnly;
            cells[i] = run(kApps[i / 2], config, options);
        });
        TablePrinter table({ "app", "confirm", "write lat (ns)",
                             "eliminated", "silent corruptions" });
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentResult &r = cells[i];
            table.addRow(
                { kApps[i / 2],
                  i % 2 == 0 ? "read+compare" : "trust hash",
                  TablePrinter::num(r.run.avgWriteLatencyNs, 1),
                  TablePrinter::percent(
                      static_cast<double>(r.run.writesEliminated) /
                      r.run.writes),
                  TablePrinter::num(
                      r.stats.get("unsafe_corruptions"), 0) });
        }
        table.print();
        std::printf("\n(zero corruptions here only means no collision "
                    "occurred in this sample; the engine tests construct "
                    "real CRC-32 collisions that the unsafe mode "
                    "silently merges)\n");
    }

    std::printf("\n(c) history-window depth\n\n");
    {
        const unsigned depths[] = { 1u, 3u, 8u };
        std::vector<ExperimentResult> cells(9);
        parallelFor(cells.size(), [&](std::size_t i) {
            DeWriteController::Options options;
            options.historyBits = depths[i % 3];
            cells[i] = run(kApps[i / 3], config, options);
        });
        TablePrinter table({ "app", "bits", "accuracy",
                             "write lat (ns)", "wasted AES" });
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentResult &r = cells[i];
            table.addRow(
                { kApps[i / 3], TablePrinter::num(depths[i % 3], 0),
                  TablePrinter::percent(
                      r.stats.get("prediction_accuracy")),
                  TablePrinter::num(r.run.avgWriteLatencyNs, 1),
                  TablePrinter::num(
                      r.stats.get("wasted_encryptions"), 0) });
        }
        table.print();
    }

    std::printf("\n(d-pre) bank interleaving policy\n\n");
    {
        std::vector<ExperimentResult> cells(6);
        parallelFor(cells.size(), [&](std::size_t i) {
            SystemConfig swept = config;
            swept.timing.rowInterleave = i % 2 == 1;
            cells[i] =
                run(kApps[i / 2], swept, DeWriteController::Options{});
        });
        TablePrinter table({ "app", "interleave", "write lat (ns)",
                             "read lat (ns)", "IPC" });
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentResult &r = cells[i];
            table.addRow({ kApps[i / 2], i % 2 == 1 ? "row" : "line",
                           TablePrinter::num(
                               r.run.avgWriteLatencyNs, 1),
                           TablePrinter::num(
                               r.run.avgReadLatencyNs, 1),
                           TablePrinter::num(r.run.ipc, 3) });
        }
        table.print();
    }

    std::printf("\n(d) persist write-queue depth\n\n");
    {
        const unsigned depths[] = { 1u, 4u, 8u };
        // 9 (app, depth) combos, each needing a baseline and a DeWrite
        // run — flatten to 18 independent cells.
        std::vector<ExperimentResult> cells(18);
        parallelFor(cells.size(), [&](std::size_t i) {
            const char *app = kApps[i / 6];
            SystemConfig swept = config;
            swept.timing.storeQueueDepth = depths[(i / 2) % 3];
            if (i % 2 == 0)
                cells[i] = runApp(appByName(app), swept,
                                  secureBaselineScheme(),
                                  experimentEvents() / 2,
                                  appSeed(appByName(app)));
            else
                cells[i] =
                    run(app, swept, DeWriteController::Options{});
        });
        TablePrinter table({ "app", "depth", "baseline IPC",
                             "DeWrite IPC", "relative" });
        for (std::size_t i = 0; i < cells.size(); i += 2) {
            const ExperimentResult &base = cells[i];
            const ExperimentResult &dewrite = cells[i + 1];
            table.addRow({ kApps[i / 6],
                           TablePrinter::num(depths[(i / 2) % 3], 0),
                           TablePrinter::num(base.run.ipc, 3),
                           TablePrinter::num(dewrite.run.ipc, 3),
                           TablePrinter::times(dewrite.run.ipc /
                                               base.run.ipc) });
        }
        table.print();
    }
    return 0;
}
