/**
 * @file
 * Bit-level reducer tests: the Figure 13 technique set.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "controller/bitlevel/bitflip.hh"
#include "controller/bitlevel/deuce.hh"
#include "controller/bitlevel/shredder.hh"
#include "crypto/counter_mode.hh"

namespace dewrite {
namespace {

AesKey
testKey()
{
    AesKey key{};
    key[7] = 0x99;
    return key;
}

class BitLevelTest : public ::testing::Test
{
  protected:
    BitLevelTest() : cme_(testKey()) {}

    /**
     * Mean flip fraction over @p writes rewrites of one slot, where
     * each rewrite changes @p mutated_words 64-bit words of plaintext.
     */
    double
    flipFraction(BitTechnique technique, int writes, int mutated_words)
    {
        auto reducer = makeReducer(technique, cme_);
        Rng rng(91);
        Line pt = Line::random(rng);
        std::uint64_t counter = 0;
        reducer->onWrite(7, pt, ++counter); // Initial fill.
        std::size_t flips = 0;
        for (int w = 0; w < writes; ++w) {
            for (int m = 0; m < mutated_words; ++m)
                pt.setWord64(rng.nextBelow(32), rng.next64());
            flips += reducer->onWrite(7, pt, ++counter);
        }
        return static_cast<double>(flips) /
               (static_cast<double>(writes) * kLineBits);
    }

    CounterModeEngine cme_;
};

TEST_F(BitLevelTest, FullWriteProgramsEverything)
{
    EXPECT_DOUBLE_EQ(flipFraction(BitTechnique::None, 50, 1), 1.0);
}

TEST_F(BitLevelTest, DcwOnEncryptedDataIsHalf)
{
    // Diffusion: every re-encryption flips ~50% of cells no matter how
    // small the plaintext change (the paper's DCW column).
    EXPECT_NEAR(flipFraction(BitTechnique::Dcw, 100, 1), 0.50, 0.02);
}

TEST_F(BitLevelTest, FnwBoundsFlipsBelowDcw)
{
    // E[min(d, 17-d)] for d ~ Binomial(16, 1/2) is ~43% of bits.
    const double fnw = flipFraction(BitTechnique::Fnw, 100, 1);
    EXPECT_NEAR(fnw, 0.43, 0.02);
}

TEST_F(BitLevelTest, DeuceExploitsSparseWrites)
{
    // With one mutated word per write, DEUCE re-encrypts only the
    // accumulated modified set — far fewer flips than DCW's 50%.
    const double deuce = flipFraction(BitTechnique::Deuce, 100, 1);
    EXPECT_LT(deuce, 0.35);
    EXPECT_GT(deuce, 0.01);
}

TEST_F(BitLevelTest, DeuceDegradesTowardDcwOnDenseWrites)
{
    const double dense = flipFraction(BitTechnique::Deuce, 100, 32);
    EXPECT_NEAR(dense, 0.50, 0.05);
}

TEST_F(BitLevelTest, DeuceEpochBoundaryReencryptsFully)
{
    auto reducer = makeReducer(BitTechnique::Deuce, cme_);
    Rng rng(92);
    Line pt = Line::random(rng);
    reducer->onWrite(3, pt, 1);
    // Counter 32 is an epoch boundary: even an unchanged plaintext
    // re-encrypts the full line (~50% flips).
    std::uint64_t counter = 1;
    std::size_t epoch_flips = 0;
    while (counter < DeuceReducer::kEpochInterval) {
        ++counter;
        const std::size_t flips = reducer->onWrite(3, pt, counter);
        if (counter == DeuceReducer::kEpochInterval)
            epoch_flips = flips;
        else
            EXPECT_EQ(flips, 0u) << "counter " << counter;
    }
    EXPECT_NEAR(static_cast<double>(epoch_flips) / kLineBits, 0.5, 0.05);
}

TEST_F(BitLevelTest, SecretBeatsDeuceOnZeroHeavyData)
{
    // Lines whose rewrites zero out words: SECRET stores the zeros
    // raw and repeated zeroing is free; DEUCE re-encrypts them.
    auto secret = makeReducer(BitTechnique::Secret, cme_);
    auto deuce = makeReducer(BitTechnique::Deuce, cme_);
    Rng rng(95);
    Line pt = Line::random(rng);
    std::uint64_t counter = 0;
    secret->onWrite(9, pt, counter + 1);
    deuce->onWrite(9, pt, counter + 1);
    ++counter;

    std::size_t secret_flips = 0, deuce_flips = 0;
    for (int w = 0; w < 60; ++w) {
        // Alternate between zeroing a word and writing data into it.
        const std::size_t word = rng.nextBelow(32);
        pt.setWord64(word, (w % 2 == 0) ? 0 : rng.next64());
        ++counter;
        secret_flips += secret->onWrite(9, pt, counter);
        deuce_flips += deuce->onWrite(9, pt, counter);
    }
    EXPECT_LT(secret_flips, deuce_flips);
}

TEST_F(BitLevelTest, SecretMatchesDeuceOnNonZeroData)
{
    // Without zero words SECRET degenerates to DEUCE-like behaviour.
    const double secret = flipFraction(BitTechnique::Secret, 60, 1);
    const double deuce = flipFraction(BitTechnique::Deuce, 60, 1);
    EXPECT_NEAR(secret, deuce, 0.05);
}

TEST_F(BitLevelTest, SecretZeroLineIsCheapAfterFirstZeroing)
{
    auto secret = makeReducer(BitTechnique::Secret, cme_);
    Rng rng(96);
    secret->onWrite(2, Line::random(rng), 1);
    secret->onWrite(2, Line(), 2);
    // Re-zeroing an already-zero line programs nothing.
    EXPECT_EQ(secret->onWrite(2, Line(), 3), 0u);
}

TEST_F(BitLevelTest, FirstWriteFromFreshCells)
{
    // Fresh PCM reads zero; the first encrypted write programs ~half
    // the cells under DCW (random ciphertext vs zeros).
    auto reducer = makeReducer(BitTechnique::Dcw, cme_);
    Rng rng(93);
    const std::size_t flips = reducer->onWrite(1, Line::random(rng), 1);
    EXPECT_NEAR(static_cast<double>(flips) / kLineBits, 0.5, 0.05);
}

TEST_F(BitLevelTest, TechniqueNamesAreStable)
{
    EXPECT_EQ(bitTechniqueName(BitTechnique::None), "Full");
    EXPECT_EQ(bitTechniqueName(BitTechnique::Dcw), "DCW");
    EXPECT_EQ(bitTechniqueName(BitTechnique::Fnw), "FNW");
    EXPECT_EQ(bitTechniqueName(BitTechnique::Deuce), "DEUCE");
    EXPECT_EQ(bitTechniqueName(BitTechnique::Secret), "SECRET");
}

TEST_F(BitLevelTest, FactoryProducesMatchingTechnique)
{
    for (BitTechnique t : { BitTechnique::None, BitTechnique::Dcw,
                            BitTechnique::Fnw, BitTechnique::Deuce,
                            BitTechnique::Secret }) {
        EXPECT_EQ(makeReducer(t, cme_)->technique(), t);
    }
}

TEST(ZeroLineDirectoryTest, MarkClearLifecycle)
{
    ZeroLineDirectory zeros;
    EXPECT_FALSE(zeros.isZeroed(5));
    zeros.markZeroed(5);
    EXPECT_TRUE(zeros.isZeroed(5));
    EXPECT_EQ(zeros.eliminatedWrites(), 1u);
    EXPECT_EQ(zeros.zeroedLines(), 1u);
    zeros.clearZeroed(5);
    EXPECT_FALSE(zeros.isZeroed(5));
    EXPECT_EQ(zeros.eliminatedWrites(), 1u); // Cumulative.
}

} // namespace
} // namespace dewrite
