/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) — the light-weight line fingerprint.
 *
 * DeWrite summarizes each 256 B line with CRC-32 (Section III-B1): the
 * hash is cheap (15 ns in hardware per Table Ia) but collisions are
 * possible, so a hash match is always confirmed with a byte-wise compare
 * of the candidate line.
 *
 * Host-side implementation notes (simulation throughput only — the
 * modelled hardware latency is a TimingConfig constant):
 *
 *  - crc32() is the paper's fingerprint and must stay bit-identical on
 *    every machine. It runs a portable slice-by-8 kernel, upgraded at
 *    runtime to a PCLMULQDQ carry-less-multiply folding kernel where
 *    the CPU supports it; both produce exactly the reference result.
 *  - crc32c() (Castagnoli polynomial) is *not* the paper's fingerprint;
 *    it exists because SSE4.2 implements it in one instruction
 *    (_mm_crc32_u64), making it the cheapest strong 32-bit mix the host
 *    has. Line::contentDigest() uses it for hash-map keying. The
 *    portable slice-by-8 fallback computes the identical polynomial, so
 *    digests are deterministic across machines either way.
 *  - the *Reference() variants are the original bytewise table loops,
 *    kept as the cross-check oracle the fast kernels are tested against.
 */

#ifndef DEWRITE_COMMON_CRC32_HH
#define DEWRITE_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

#include "common/line.hh"

namespace dewrite {

/** CRC-32 over an arbitrary buffer (init/final XOR 0xffffffff). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** CRC-32 of a full 256 B memory line. */
std::uint32_t crc32(const Line &line);

/**
 * Bytewise table CRC-32 — the reference implementation the fast
 * kernels are validated against (tests/common, tests/crypto).
 */
std::uint32_t crc32Reference(const std::uint8_t *data, std::size_t size);

/** CRC-32C (Castagnoli, init/final XOR 0xffffffff). */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t size);

/** CRC-32C of a full 256 B memory line. */
std::uint32_t crc32c(const Line &line);

/** Bytewise table CRC-32C reference for cross-checking. */
std::uint32_t crc32cReference(const std::uint8_t *data, std::size_t size);

/** @{ Which hardware fast path the running CPU dispatched to. */
bool crc32UsesClmul();  //!< PCLMULQDQ folding active for crc32().
bool crc32cUsesSse42(); //!< _mm_crc32_u64 active for crc32c().
/** @} */

} // namespace dewrite

#endif // DEWRITE_COMMON_CRC32_HH
