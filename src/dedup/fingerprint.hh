/**
 * @file
 * Line fingerprinting: the choice Table I is about.
 *
 * DeWrite fingerprints lines with CRC-32 (cheap, collides, must be
 * confirmed by a read); traditional deduplication uses MD5/SHA-1
 * (expensive, collision-free in practice, trusted outright). The
 * Fingerprinter folds that choice into one object the engine consults
 * for the digest, the hardware latency, the energy, and whether a
 * match needs confirmation.
 *
 * Digests are folded to 64 bits for the hash store's key; for the
 * cryptographic functions a 64-bit prefix keeps the no-collision
 * property at any realistic memory size (birthday bound ~2^32 lines).
 */

#ifndef DEWRITE_DEDUP_FINGERPRINT_HH
#define DEWRITE_DEDUP_FINGERPRINT_HH

#include <cstdint>

#include "common/hash_latency.hh"
#include "common/line.hh"
#include "common/timing.hh"

namespace dewrite {

class Fingerprinter
{
  public:
    explicit Fingerprinter(HashFunction function = HashFunction::Crc32);

    /** 64-bit store key of @p line under the selected function. */
    std::uint64_t fingerprint(const Line &line) const;

    /** Hardware latency to fingerprint one line (Table Ia). */
    Time latency() const { return spec_->latency; }

    /** Hashing energy per line. */
    Energy energy(const EnergyConfig &energy) const;

    /** True iff a fingerprint match needs no confirmation read. */
    bool cryptographic() const { return spec_->cryptographic; }

    /** Digest width, for metadata space accounting. */
    unsigned digestBits() const { return spec_->digestBits; }

    HashFunction function() const { return spec_->function; }

  private:
    const HashSpec *spec_;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_FINGERPRINT_HH
