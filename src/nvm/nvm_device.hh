/**
 * @file
 * The PCM main-memory device model (the NVMain substitute).
 *
 * Combines three concerns behind one interface:
 *  - functional storage: a paged, direct-indexed store of line contents
 *    (DenseLineStore), so the stack can verify end-to-end data
 *    integrity (encrypt-at-rest, dedup round-trips);
 *  - timing: per-bank busy-until scheduling with the paper's asymmetric
 *    read (75 ns) / write (300 ns) latencies;
 *  - accounting: energy (per-bit read/write), wear, and queueing stats.
 *
 * Controllers may write fewer cell-bits than a full line (DCW/FNW/DEUCE
 * write only modified bits); the caller passes the written-bit count so
 * energy and wear reflect the technique while functional content stays
 * exact.
 */

#ifndef DEWRITE_NVM_NVM_DEVICE_HH
#define DEWRITE_NVM_NVM_DEVICE_HH

#include <vector>

#include "common/dense_line_store.hh"
#include "common/line.hh"
#include "common/timing.hh"
#include "common/types.hh"
#include "nvm/nvm_address.hh"
#include "nvm/nvm_bank.hh"
#include "nvm/wear_tracker.hh"

namespace dewrite {

/**
 * Timing outcome of one device access. Carried by every access result;
 * accesses whose data the caller ignores (writes, metadata fills,
 * confirm reads that compare in place) return just this, so the hot
 * path never constructs a 256 B Line it will not read.
 */
struct NvmTiming
{
    Time start = 0;      //!< When the bank began servicing.
    Time complete = 0;   //!< When the access finished.
    Time queueDelay = 0; //!< Bank wait time (start - issue).

    /** Latency experienced by the requester: complete - issue. */
    Time latency(Time issued_at) const { return complete - issued_at; }
};

/** Result of one device read: timing plus the content returned. */
struct NvmAccess
{
    Line data;        //!< Content read (zero line if never written).
    Time start;       //!< When the bank began servicing.
    Time complete;    //!< When the access finished.
    Time queueDelay;  //!< Bank wait time (start - issue).

    /** Latency experienced by the requester: complete - issue. */
    Time latency(Time issued_at) const { return complete - issued_at; }
};

class NvmDevice
{
  public:
    explicit NvmDevice(const SystemConfig &config);

    /**
     * Reads the line at @p addr, issued at @p now.
     * Unwritten lines read as zero (fresh PCM).
     */
    NvmAccess read(LineAddr addr, Time now);

    /**
     * Identical timing, energy, wear, and counter accounting to read(),
     * but the content is not returned. For accesses that only need the
     * completion time (metadata fills, confirm reads that compare
     * through peekPtr()): charging the read without copying 256 B.
     */
    NvmTiming readTimed(LineAddr addr, Time now);

    /**
     * Writes @p data to @p addr, issued at @p now, programming
     * @p bits_written cells (pass kLineBits for a full-line write).
     */
    NvmTiming write(LineAddr addr, const Line &data, Time now,
                    std::size_t bits_written = kLineBits);

    /**
     * Background write: a lazily scheduled update (metadata writeback
     * from a battery-backed cache) that the controller slots into idle
     * bank cycles. Energy, wear, and the write count are charged, but
     * the write does not delay demand traffic; the count is reported
     * so saturation of the idle bandwidth can be audited.
     */
    void writeBackground(LineAddr addr, const Line &data,
                         std::size_t bits_written = kLineBits);

    /**
     * writeBackground() of the all-zero line, with the 256 B store
     * elided: accounting (write count, energy, wear) is identical and
     * the address is still marked written, but no content is copied.
     * The caller guarantees the stored line is already zero (fresh or
     * only ever zero-written; debug-checked). The metadata and counter
     * caches write back through this — their simulated region holds no
     * functional content, so the zero line is exact.
     */
    void writeBackgroundZero(LineAddr addr,
                             std::size_t bits_written = kLineBits);

    /** Peeks at content without timing or stats (testing/verification). */
    Line peek(LineAddr addr) const;

    /**
     * Pointer form of peek(): the stored line, or null if never
     * written. No timing, stats, or copies; the pointer is stable until
     * the next write to a new address.
     */
    const Line *peekPtr(LineAddr addr) const;

    /** @{ Pure cache-warming hints for an upcoming access to @p addr:
     * the stored content (reads/compares), plus the wear-tracking entry
     * for writes. Never allocate; safe to issue speculatively. */
    void prefetchLine(LineAddr addr) const;
    void prefetchForWrite(LineAddr addr) const;
    /** @} */

    /** True iff the line has ever been written. */
    bool isWritten(LineAddr addr) const;

    const WearTracker &wear() const { return wear_; }

    std::uint64_t numReads() const { return numReads_.value(); }
    std::uint64_t numWrites() const { return numWrites_.value(); }
    std::uint64_t numBackgroundWrites() const
    {
        return numBackgroundWrites_.value();
    }

    /** Total device energy in picojoules. */
    Energy totalEnergy() const { return energy_; }

    /** Aggregate queueing delay across all banks. */
    Time totalQueueDelay() const;

    /** Per-bank accessor for tests and detailed reporting. */
    const NvmBank &bank(unsigned index) const { return banks_[index]; }
    unsigned numBanks() const;

    /**
     * Registers device metrics (traffic, energy, queueing, wear) under
     * @p scope (canonically "device"). Metric names match the
     * historical dumpStats keys (num_reads, num_writes, ...).
     */
    void registerMetrics(obs::MetricRegistry::Scope scope) const;

  private:
    /** Row the access maps to, for row-buffer tracking. */
    std::uint64_t rowOf(const DecodedAddr &where) const;

    const SystemConfig &config_;
    AddressDecoder decoder_;
    std::vector<NvmBank> banks_;
    std::vector<std::uint64_t> openRow_; //!< Per-bank open row.
    DenseLineStore store_;
    WearTracker wear_;

    Counter numReads_;
    Counter numWrites_;
    Counter numBackgroundWrites_;
    Counter rowHits_;
    Energy energy_ = 0;

  public:
    /** Reads served from an open row buffer. */
    std::uint64_t rowBufferHits() const { return rowHits_.value(); }
};

} // namespace dewrite

#endif // DEWRITE_NVM_NVM_DEVICE_HH
