/**
 * @file
 * The address-mapping table (Section III-B2) with counter colocation
 * (Section III-C).
 *
 * Deduplication turns the logical-line -> storage-slot relation from
 * one-to-one into many-to-one. Entry L of this sequentially-stored table
 * is a tagged slot: when logical line L's data lives at another slot,
 * the entry holds that realAddr (flag = 1); otherwise the entry is
 * "null" and DeWrite reuses it to store slot L's counter-mode encryption
 * counter (flag = 0), eliminating the baseline's counter table.
 */

#ifndef DEWRITE_DEDUP_ADDRESS_MAPPING_HH
#define DEWRITE_DEDUP_ADDRESS_MAPPING_HH

#include <cstdint>

#include "common/paged_array.hh"
#include "common/types.hh"

namespace dewrite {

class AddressMappingTable
{
  public:
    /** Pre-sizes the table for @p num_lines logical lines. */
    // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
    // the hot edge is a member-name over-approximation
    void reserve(std::uint64_t num_lines) { entries_.reserve(num_lines); }

    /** Pure cache-warming hint for logical line @p init_addr's entry. */
    void prefetch(LineAddr init_addr) const
    {
        entries_.prefetch(init_addr);
    }

    /** True iff logical line @p init_addr is remapped to another slot. */
    bool isRemapped(LineAddr init_addr) const;

    /** The slot holding @p init_addr's data; only valid if remapped. */
    LineAddr realAddr(LineAddr init_addr) const;

    /**
     * Remaps @p init_addr to @p real_addr. Any counter colocated in the
     * entry is destroyed: the caller (DedupEngine::setCounterOf) must
     * save it beforehand and re-home it afterwards.
     */
    void remap(LineAddr init_addr, LineAddr real_addr);

    /**
     * Clears the remapping of @p init_addr; the entry becomes a null
     * (counter) slot holding 0 until the caller re-homes a counter.
     */
    void clearRemap(LineAddr init_addr);

    /**
     * Counter colocated at entry @p init_addr. Only valid when the entry
     * is not remapped. Unwritten entries hold counter 0.
     */
    std::uint64_t counter(LineAddr init_addr) const;

    /** Stores @p counter; entry must not be remapped. */
    void setCounter(LineAddr init_addr, std::uint64_t counter);

    /**
     * Fused isRemapped() + counter() in one table walk: when the entry
     * is not remapped, stores its colocated counter (0 if untouched)
     * into @p counter and returns true; returns false when remapped.
     */
    bool counterIfNotRemapped(LineAddr init_addr,
                              std::uint64_t &counter) const;

    /**
     * Fused isRemapped() + setCounter() in one table walk: stores
     * @p counter iff the entry is not remapped; returns whether it did.
     */
    bool trySetCounter(LineAddr init_addr, std::uint64_t counter);

    /** Number of remapped entries (deduplicated/relocated lines). */
    std::size_t remappedCount() const { return remapped_; }

    /**
     * Visits every remapped entry as (initAddr, realAddr) in ascending
     * address order. Used by recovery to recompute reference counts.
     */
    template <typename Visitor>
    void
    forEachRemapped(Visitor &&visit) const
    {
        // PagedArray visits ascending addresses (the auditor's
        // determinism relies on this order).
        // dewrite-lint: allow(unsorted-iteration)
        entries_.forEach([&](LineAddr init_addr, const Entry &entry) {
            if (entry.remapped)
                visit(init_addr, static_cast<LineAddr>(entry.value));
        });
    }

  private:
    struct Entry
    {
        bool remapped = false;
        // Union semantics of the paper's flag bit: realAddr when
        // remapped, encryption counter otherwise.
        std::uint64_t value = 0;
    };

    /** Direct-indexed backing: untouched entries read as
     *  (not remapped, counter 0), exactly like the paper's
     *  sequentially stored table. */
    PagedArray<Entry> entries_;
    std::size_t remapped_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_DEDUP_ADDRESS_MAPPING_HH
