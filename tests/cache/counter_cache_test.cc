/**
 * @file
 * CounterCache tests (the baseline's counter path).
 */

#include "cache/counter_cache.hh"

#include <gtest/gtest.h>

#include "nvm/nvm_device.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(CounterCacheTest, MissCostsOneNvmRead)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    CounterCache cache(config, device, config.memory.numLines);

    const MetadataAccessResult miss = cache.access(0, false, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.nvmReads, 1u);
    EXPECT_EQ(miss.latency,
              config.timing.metadataCacheAccess + config.timing.nvmRead);
}

TEST(CounterCacheTest, SpatialLocalityWithinCounterLine)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    CounterCache cache(config, device, config.memory.numLines);

    cache.access(0, false, 0);
    // 64 counters share a 256 B counter line.
    for (LineAddr addr = 1; addr < 64; ++addr)
        EXPECT_TRUE(cache.access(addr, false, 0).hit) << addr;
    EXPECT_FALSE(cache.access(64, false, 0).hit);
}

TEST(CounterCacheTest, DirtyEvictionWritesBack)
{
    SystemConfig config = smallConfig();
    config.memory.counterCacheBytes = 2 * kLineSize; // Two blocks.
    NvmDevice device(config);
    CounterCache cache(config, device, config.memory.numLines);

    cache.access(0, /*is_write=*/true, 0);
    const std::uint64_t before = device.numWrites();
    for (LineAddr block = 1; block < 64 && device.numWrites() == before;
         ++block) {
        cache.access(block * 64, false, 0);
    }
    EXPECT_GT(device.numWrites(), before);
    EXPECT_GT(cache.dirtyEvictions(), 0u);
}

TEST(CounterCacheTest, RegionSizedForAllCounters)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    CounterCache cache(config, device, config.memory.numLines);
    EXPECT_EQ(cache.regionLines(), config.memory.numLines / 64);
}

TEST(CounterCacheTest, HitRateReflectsReuse)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    CounterCache cache(config, device, config.memory.numLines);
    cache.access(10, false, 0);
    cache.access(10, false, 0);
    cache.access(10, false, 0);
    cache.access(10000, false, 0);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

} // namespace
} // namespace dewrite
