/**
 * @file
 * FastDiv must be bit-identical to the hardware divider: the golden
 * parity fingerprints depend on cache set indices and bank decode
 * staying exactly what `%` and `/` produce.
 */

#include "common/fast_div.hh"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

std::vector<std::uint64_t>
interestingValues(std::uint64_t divisor)
{
    std::vector<std::uint64_t> values = {
        0,
        1,
        2,
        63,
        64,
        65,
        (std::uint64_t{ 1 } << 32) - 1,
        std::uint64_t{ 1 } << 32,
        (std::uint64_t{ 1 } << 32) + 1,
        ~std::uint64_t{ 0 } - 1,
        ~std::uint64_t{ 0 },
    };
    // Straddle every multiple-of-divisor boundary near powers of two.
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const std::uint64_t base = std::uint64_t{ 1 } << shift;
        for (std::uint64_t delta = 0; delta <= 2; ++delta) {
            values.push_back(base + delta);
            values.push_back(base - delta);
        }
    }
    values.push_back(divisor - 1);
    values.push_back(divisor);
    values.push_back(divisor + 1);
    if (divisor > 2) {
        values.push_back(divisor * 2 - 1);
        values.push_back(divisor * 2);
    }
    return values;
}

TEST(FastDivTest, MatchesHardwareDivider)
{
    // Divisors drawn from the shapes the simulator actually builds:
    // powers of two (bank counts, FlatMap capacities), small odd
    // composites (hash-store entries per line), cache set counts from
    // capacity / associativity arithmetic, and numLines +/- 1 shapes
    // from the start-gap leveler.
    const std::uint64_t divisors[] = {
        1,    2,     3,      5,          7,          8,
        63,   64,    65,     204,        257,        1024,
        1638, 40960, 262144, 262145,     1000003,
        (std::uint64_t{ 1 } << 32) - 1, (std::uint64_t{ 1 } << 32) + 1,
        (std::uint64_t{ 1 } << 63) - 1, std::uint64_t{ 1 } << 63,
    };

    Rng rng(0xfa57d1fULL);
    for (const std::uint64_t d : divisors) {
        const FastDiv fast(d);
        EXPECT_EQ(fast.divisor(), d);
        for (const std::uint64_t n : interestingValues(d)) {
            EXPECT_EQ(fast.div(n), n / d) << "n=" << n << " d=" << d;
            EXPECT_EQ(fast.mod(n), n % d) << "n=" << n << " d=" << d;
        }
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t n = rng.next64();
            ASSERT_EQ(fast.div(n), n / d) << "n=" << n << " d=" << d;
            ASSERT_EQ(fast.mod(n), n % d) << "n=" << n << " d=" << d;
        }
    }
}

TEST(FastDivTest, DivisorOneIsIdentity)
{
    // The service's default DEWRITE_SHARDS=1 routes every key through
    // this degenerate divisor, so it gets its own pin: div is the
    // identity and mod is always zero, including at the extremes.
    const FastDiv fast(1);
    const std::uint64_t values[] = { 0, 1, 2, 12345,
                                     std::uint64_t{ 1 } << 32,
                                     ~std::uint64_t{ 0 } };
    for (const std::uint64_t n : values) {
        EXPECT_EQ(fast.div(n), n);
        EXPECT_EQ(fast.mod(n), 0u);
    }
}

TEST(FastDivTest, ShardCountModuli)
{
    // Every legal DEWRITE_SHARDS value is a FastDiv divisor on the
    // service's routing hot path; all 64 must satisfy the division
    // identity and match the hardware operators.
    Rng rng(0x5a4dc0de5ULL);
    for (std::uint64_t shards = 1; shards <= 64; ++shards) {
        const FastDiv fast(shards);
        for (const std::uint64_t n : interestingValues(shards)) {
            EXPECT_EQ(fast.div(n), n / shards) << "n=" << n;
            EXPECT_EQ(fast.mod(n), n % shards) << "n=" << n;
            EXPECT_EQ(fast.div(n) * shards + fast.mod(n), n);
        }
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t n = rng.next64();
            ASSERT_EQ(fast.div(n), n / shards) << "n=" << n;
            ASSERT_EQ(fast.mod(n), n % shards) << "n=" << n;
        }
    }
}

TEST(FastDivTest, DefaultDividesByOne)
{
    const FastDiv fast;
    EXPECT_EQ(fast.divisor(), 1u);
    EXPECT_EQ(fast.div(12345u), 12345u);
    EXPECT_EQ(fast.mod(12345u), 0u);
}

TEST(FastDivDeathTest, RejectsZeroDivisor)
{
    EXPECT_DEATH({ FastDiv fast(0); (void)fast; }, "nonzero");
}

} // namespace
} // namespace dewrite
